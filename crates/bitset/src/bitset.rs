//! The core fixed-capacity bitset type.

use crate::{words_for, Ones, WORD_BITS};
use std::fmt;

/// A dense, fixed-capacity set of bits backed by `u64` words.
///
/// The capacity (`len`) is fixed at construction; indexes must be
/// `< len()`. Binary operations (`union_with`, [`BitSet::and_not_count`], …)
/// require both operands to have the same capacity and panic otherwise —
/// mismatched capacities in the DMC tail phase would be a logic bug, not a
/// recoverable condition.
///
/// Unused high bits of the last word are kept zero as an internal invariant,
/// so equality and popcount never need masking.
///
/// # Examples
///
/// ```
/// use dmc_bitset::BitSet;
///
/// let mut a = BitSet::new(100);
/// a.insert(3);
/// a.insert(64);
/// let mut b = BitSet::new(100);
/// b.insert(64);
///
/// // Misses of `a` against `b`: bits set in `a` but not in `b`.
/// assert_eq!(a.and_not_count(&b), 1);
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitSet {
    words: Box<[u64]>,
    len: usize,
}

impl BitSet {
    /// Creates an empty bitset able to hold `len` bits, all zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; words_for(len)].into_boxed_slice(),
            len,
        }
    }

    /// Creates a bitset of capacity `len` with the given bits set.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= len`.
    #[must_use]
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut set = Self::new(len);
        for idx in indices {
            set.insert(idx);
        }
        set
    }

    /// Number of bits this set can hold.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the capacity is zero bits.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when no bit is set.
    #[inline]
    #[must_use]
    pub fn is_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[inline]
    fn check(&self, bit: usize) {
        assert!(
            bit < self.len,
            "bit index {bit} out of range for BitSet of len {}",
            self.len
        );
    }

    /// Sets `bit` to 1. Returns `true` if the bit was previously 0.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len()`.
    #[inline]
    pub fn insert(&mut self, bit: usize) -> bool {
        self.check(bit);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1u64 << (bit % WORD_BITS);
        let was_clear = *word & mask == 0;
        *word |= mask;
        was_clear
    }

    /// Sets `bit` to 0. Returns `true` if the bit was previously 1.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len()`.
    #[inline]
    pub fn remove(&mut self, bit: usize) -> bool {
        self.check(bit);
        let word = &mut self.words[bit / WORD_BITS];
        let mask = 1u64 << (bit % WORD_BITS);
        let was_set = *word & mask != 0;
        *word &= !mask;
        was_set
    }

    /// Returns the value of `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= len()`.
    #[inline]
    #[must_use]
    pub fn contains(&self, bit: usize) -> bool {
        self.check(bit);
        self.words[bit / WORD_BITS] & (1u64 << (bit % WORD_BITS)) != 0
    }

    /// Clears every bit, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    #[inline]
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    #[inline]
    fn check_same_len(&self, other: &Self) {
        assert_eq!(
            self.len, other.len,
            "BitSet capacity mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// `popcount(self & !other)` — the number of bits set in `self` but not
    /// in `other`.
    ///
    /// This is the miss count of Phase 1 of Algorithm 4.1: with `self` the
    /// tail bitmap of the rule's LHS column and `other` the RHS column's,
    /// it counts tail rows where the LHS is 1 and the RHS is 0.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[inline]
    #[must_use]
    pub fn and_not_count(&self, other: &Self) -> usize {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// `popcount(self & other)` — the number of bits set in both.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[inline]
    #[must_use]
    pub fn and_count(&self, other: &Self) -> usize {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `popcount(self | other)`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[inline]
    #[must_use]
    pub fn or_count(&self, other: &Self) -> usize {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// In-place union: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &Self) {
        self.check_same_len(other);
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection: `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &Self) {
        self.check_same_len(other);
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// In-place difference: `self &= !other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &Self) {
        self.check_same_len(other);
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// `true` when `self` and `other` share no set bit.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// `true` when every set bit of `self` is set in `other`.
    ///
    /// A subset check is a zero-miss check: `c_j ⇒ c_k` holds at 100%
    /// confidence over the tail iff `bm(c_j).is_subset(bm(c_k))`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.check_same_len(other);
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Iterates over the indices of set bits in ascending order.
    #[must_use]
    pub fn ones(&self) -> Ones<'_> {
        Ones::new(&self.words)
    }

    /// Index of the lowest set bit, or `None` when no bit is set.
    ///
    /// Word-batched: scans whole `u64` words and finishes with a single
    /// `trailing_zeros`, so it is O(words) rather than O(bits).
    #[inline]
    #[must_use]
    pub fn first_one(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|i| i * WORD_BITS + self.words[i].trailing_zeros() as usize)
    }

    /// Raw storage words (low bit of word 0 is bit 0).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes used by the storage.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a bitset sized to hold the largest index.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().max().map_or(0, |&m| m + 1);
        Self::from_indices(len, indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear() {
        let set = BitSet::new(130);
        assert_eq!(set.len(), 130);
        assert!(set.is_clear());
        assert_eq!(set.count_ones(), 0);
        assert!(!set.contains(0));
        assert!(!set.contains(129));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut set = BitSet::new(200);
        assert!(set.insert(0));
        assert!(set.insert(63));
        assert!(set.insert(64));
        assert!(set.insert(199));
        assert!(!set.insert(63), "second insert reports already-set");
        assert_eq!(set.count_ones(), 4);
        assert!(set.remove(63));
        assert!(!set.remove(63), "second remove reports already-clear");
        assert_eq!(set.count_ones(), 3);
        assert!(set.contains(0) && set.contains(64) && set.contains(199));
        assert!(!set.contains(63));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(64).insert(64);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn binary_op_len_mismatch_panics() {
        let a = BitSet::new(64);
        let b = BitSet::new(65);
        let _ = a.and_not_count(&b);
    }

    #[test]
    fn and_not_count_is_miss_count() {
        let a = BitSet::from_indices(100, [1, 5, 64, 99]);
        let b = BitSet::from_indices(100, [5, 64]);
        // Bits in a but not in b: 1 and 99.
        assert_eq!(a.and_not_count(&b), 2);
        // Bits in b but not in a: none.
        assert_eq!(b.and_not_count(&a), 0);
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn and_or_counts() {
        let a = BitSet::from_indices(70, [0, 1, 2, 68]);
        let b = BitSet::from_indices(70, [2, 3, 68, 69]);
        assert_eq!(a.and_count(&b), 2);
        assert_eq!(a.or_count(&b), 6);
        assert!(!a.is_disjoint(&b));
        let c = BitSet::from_indices(70, [10, 11]);
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn in_place_ops() {
        let mut a = BitSet::from_indices(80, [1, 2, 3]);
        let b = BitSet::from_indices(80, [3, 4]);
        a.union_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        a.intersect_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![3, 4]);
        a.difference_with(&BitSet::from_indices(80, [4]));
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn equality_ignores_nothing_because_high_bits_stay_zero() {
        let a = BitSet::from_indices(65, [64]);
        let mut b = BitSet::new(65);
        b.insert(64);
        assert_eq!(a, b);
        b.remove(64);
        assert_ne!(a, b);
        assert_eq!(b, BitSet::new(65));
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let set: BitSet = [3usize, 7, 2].into_iter().collect();
        assert_eq!(set.len(), 8);
        assert_eq!(set.ones().collect::<Vec<_>>(), vec![2, 3, 7]);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn first_one_finds_lowest_bit() {
        assert_eq!(BitSet::new(200).first_one(), None);
        assert_eq!(BitSet::from_indices(200, [199]).first_one(), Some(199));
        assert_eq!(BitSet::from_indices(200, [64, 65]).first_one(), Some(64));
        assert_eq!(BitSet::from_indices(200, [0, 150]).first_one(), Some(0));
        assert_eq!(BitSet::new(0).first_one(), None);
    }

    #[test]
    fn clear_resets_all() {
        let mut set = BitSet::from_indices(129, [0, 64, 128]);
        set.clear();
        assert!(set.is_clear());
        assert_eq!(set.len(), 129);
    }

    #[test]
    fn debug_format_lists_ones() {
        let set = BitSet::from_indices(10, [1, 4]);
        assert_eq!(format!("{set:?}"), "{1, 4}");
    }

    #[test]
    fn zero_capacity_set_is_usable() {
        let a = BitSet::new(0);
        let b = BitSet::new(0);
        assert!(a.is_empty() && a.is_clear());
        assert_eq!(a.and_not_count(&b), 0);
        assert!(a.is_subset(&b));
        assert_eq!(a.ones().count(), 0);
    }

    #[test]
    fn heap_bytes_tracks_words() {
        assert_eq!(BitSet::new(0).heap_bytes(), 0);
        assert_eq!(BitSet::new(1).heap_bytes(), 8);
        assert_eq!(BitSet::new(64).heap_bytes(), 8);
        assert_eq!(BitSet::new(65).heap_bytes(), 16);
    }
}
