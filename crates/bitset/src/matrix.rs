//! A column-indexed collection of equal-length bitmaps.
//!
//! DMC-bitmap (Algorithm 4.1) builds one bitmap per *surviving* column over
//! the tail rows `r_t..r_n`. Most columns never appear in the tail and get no
//! bitmap at all ("we do not have to create bitmaps for those columns that
//! have no 1's in the rest of rows"), so [`BitMatrix`] stores bitmaps
//! sparsely, keyed by column id.

use crate::BitSet;
use std::collections::HashMap;

/// A sparse map from column id to a fixed-width [`BitSet`] of tail rows.
///
/// `width` is the number of tail rows; every stored bitmap has exactly that
/// capacity. Columns without a bitmap are semantically all-zero, which the
/// query methods honor.
#[derive(Clone, Debug)]
pub struct BitMatrix {
    width: usize,
    rows_bits: HashMap<u32, BitSet>,
}

impl BitMatrix {
    /// Creates an empty matrix whose bitmaps will hold `width` bits.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            width,
            rows_bits: HashMap::new(),
        }
    }

    /// Number of bits per bitmap (tail length).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of columns that have at least one materialized bitmap.
    #[must_use]
    pub fn columns(&self) -> usize {
        self.rows_bits.len()
    }

    /// Sets bit `bit` of column `col`, materializing the bitmap on first use.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= width`.
    pub fn set(&mut self, col: u32, bit: usize) {
        let width = self.width;
        self.rows_bits
            .entry(col)
            .or_insert_with(|| BitSet::new(width))
            .insert(bit);
    }

    /// The bitmap of `col`, if it was ever written.
    #[must_use]
    pub fn get(&self, col: u32) -> Option<&BitSet> {
        self.rows_bits.get(&col)
    }

    /// Popcount of column `col`'s bitmap (0 if absent).
    #[must_use]
    pub fn count_ones(&self, col: u32) -> usize {
        self.get(col).map_or(0, BitSet::count_ones)
    }

    /// `popcount(bm(lhs) & !bm(rhs))`, treating absent bitmaps as all-zero.
    ///
    /// This is the tail miss count of Phase 1 of Algorithm 4.1. When the RHS
    /// column has no tail bitmap, every tail 1 of the LHS is a miss.
    #[must_use]
    pub fn miss_count(&self, lhs: u32, rhs: u32) -> usize {
        match (self.get(lhs), self.get(rhs)) {
            (None, _) => 0,
            (Some(l), None) => l.count_ones(),
            (Some(l), Some(r)) => l.and_not_count(r),
        }
    }

    /// `popcount(bm(lhs) & bm(rhs))`, treating absent bitmaps as all-zero.
    #[must_use]
    pub fn hit_count(&self, lhs: u32, rhs: u32) -> usize {
        match (self.get(lhs), self.get(rhs)) {
            (Some(l), Some(r)) => l.and_count(r),
            _ => 0,
        }
    }

    /// `true` when the two columns have identical tail bitmaps
    /// (absent ≡ all-zero).
    #[must_use]
    pub fn identical(&self, a: u32, b: u32) -> bool {
        match (self.get(a), self.get(b)) {
            (None, None) => true,
            (Some(x), None) | (None, Some(x)) => x.is_clear(),
            (Some(x), Some(y)) => x == y,
        }
    }

    /// Iterates over `(column, bitmap)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &BitSet)> {
        self.rows_bits.iter().map(|(&c, b)| (c, b))
    }

    /// Approximate heap bytes used by the materialized bitmaps.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.rows_bits
            .values()
            .map(|b| b.heap_bytes() + std::mem::size_of::<(u32, BitSet)>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_columns_are_all_zero() {
        let mut m = BitMatrix::new(10);
        m.set(3, 0);
        m.set(3, 7);
        assert_eq!(m.count_ones(3), 2);
        assert_eq!(m.count_ones(99), 0);
        // Misses of col 3 against an absent column: all of col 3's ones.
        assert_eq!(m.miss_count(3, 99), 2);
        // Misses of an absent column against anything: zero.
        assert_eq!(m.miss_count(99, 3), 0);
        assert_eq!(m.hit_count(3, 99), 0);
    }

    #[test]
    fn miss_and_hit_counts() {
        let mut m = BitMatrix::new(8);
        for bit in [0, 1, 2] {
            m.set(1, bit);
        }
        for bit in [1, 2, 3] {
            m.set(2, bit);
        }
        assert_eq!(m.miss_count(1, 2), 1); // bit 0
        assert_eq!(m.miss_count(2, 1), 1); // bit 3
        assert_eq!(m.hit_count(1, 2), 2); // bits 1, 2
    }

    #[test]
    fn identical_handles_absent_and_empty() {
        let mut m = BitMatrix::new(4);
        m.set(1, 2);
        m.set(2, 2);
        assert!(m.identical(1, 2));
        assert!(m.identical(50, 51), "two absent columns are identical");
        m.set(3, 0);
        assert!(!m.identical(1, 3));
        assert!(!m.identical(3, 50));
    }

    #[test]
    fn columns_counts_materialized_only() {
        let mut m = BitMatrix::new(4);
        assert_eq!(m.columns(), 0);
        m.set(7, 0);
        m.set(7, 1);
        m.set(9, 3);
        assert_eq!(m.columns(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_past_width_panics() {
        BitMatrix::new(4).set(0, 4);
    }
}
