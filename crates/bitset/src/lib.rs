//! Fixed-size bitsets for the DMC rule-mining workspace.
//!
//! The DMC-bitmap phase of the paper ("Dynamic Miss-Counting Algorithms",
//! ICDE 2000, §4.2) represents the tail of the row stream as one bitmap per
//! column and needs exactly three primitives to finish miss counting:
//!
//! * `popcount(bm(c_j) & !bm(c_k))` — misses of `c_j` against `c_k` in the
//!   tail (Phase 1 of Algorithm 4.1),
//! * bitmap equality — identical-column extraction (DMC-sim step 2),
//! * iteration over set bits — hit counting (Phase 2 of Algorithm 4.1).
//!
//! No sanctioned offline crate provides this, so the substrate lives here.
//! [`BitSet`] is a dense, heap-allocated, fixed-capacity bitset over `u64`
//! words; all binary operations require equal capacity and are `O(words)`.

mod bitset;
mod iter;
mod matrix;

pub use bitset::BitSet;
pub use iter::{IntoOnes, Ones};
pub use matrix::BitMatrix;

/// Number of bits per storage word.
pub(crate) const WORD_BITS: usize = u64::BITS as usize;

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub(crate) const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(63), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }
}
