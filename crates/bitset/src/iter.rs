//! Iteration over set bits.

use crate::{BitSet, WORD_BITS};

/// Iterator over the indices of set bits of a [`BitSet`], ascending.
///
/// Uses the standard trailing-zeros / clear-lowest-bit loop, so iteration
/// cost is proportional to the number of set bits plus the number of words.
#[derive(Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    /// Remaining bits of the word currently being drained.
    current: u64,
    /// Index of the *next* word to load, minus one is the current word.
    word_idx: usize,
}

impl<'a> Ones<'a> {
    pub(crate) fn new(words: &'a [u64]) -> Self {
        Self {
            words,
            current: 0,
            word_idx: 0,
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            let &word = self.words.get(self.word_idx)?;
            self.current = word;
            self.word_idx += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some((self.word_idx - 1) * WORD_BITS + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let lower = self.current.count_ones() as usize;
        let rest: usize = self.words[self.word_idx.min(self.words.len())..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (lower + rest, Some(lower + rest))
    }
}

impl ExactSizeIterator for Ones<'_> {}
impl std::iter::FusedIterator for Ones<'_> {}

/// Owning iterator over set bits, used by `IntoIterator for BitSet`.
pub struct IntoOnes {
    set: BitSet,
    next_bit: usize,
}

impl Iterator for IntoOnes {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.next_bit < self.set.len() {
            let bit = self.next_bit;
            self.next_bit += 1;
            if self.set.contains(bit) {
                return Some(bit);
            }
        }
        None
    }
}

impl IntoIterator for BitSet {
    type Item = usize;
    type IntoIter = IntoOnes;

    fn into_iter(self) -> IntoOnes {
        IntoOnes {
            set: self,
            next_bit: 0,
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Ones<'a>;

    fn into_iter(self) -> Ones<'a> {
        self.ones()
    }
}

#[cfg(test)]
mod tests {
    use crate::BitSet;

    #[test]
    fn ones_crosses_word_boundaries() {
        let set = BitSet::from_indices(200, [0, 63, 64, 65, 127, 128, 199]);
        let collected: Vec<usize> = set.ones().collect();
        assert_eq!(collected, vec![0, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn ones_exact_size() {
        let set = BitSet::from_indices(150, [3, 70, 149]);
        let iter = set.ones();
        assert_eq!(iter.len(), 3);
        let mut iter = iter;
        iter.next();
        assert_eq!(iter.len(), 2);
    }

    #[test]
    fn ones_empty() {
        let set = BitSet::new(128);
        assert_eq!(set.ones().next(), None);
    }

    #[test]
    fn into_iter_owning_and_borrowing_agree() {
        let set = BitSet::from_indices(90, [5, 64, 89]);
        let borrowed: Vec<usize> = (&set).into_iter().collect();
        let owned: Vec<usize> = set.into_iter().collect();
        assert_eq!(borrowed, owned);
        assert_eq!(owned, vec![5, 64, 89]);
    }

    #[test]
    fn fused_after_exhaustion() {
        let set = BitSet::from_indices(10, [9]);
        let mut iter = set.ones();
        assert_eq!(iter.next(), Some(9));
        assert_eq!(iter.next(), None);
        assert_eq!(iter.next(), None);
    }
}
