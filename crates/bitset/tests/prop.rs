//! Property-based tests: BitSet operations agree with a naive
//! `std::collections::BTreeSet<usize>` model.

use dmc_bitset::BitSet;
use proptest::prelude::*;
use std::collections::BTreeSet;

const LEN: usize = 300;

fn index_set() -> impl Strategy<Value = BTreeSet<usize>> {
    proptest::collection::btree_set(0..LEN, 0..64)
}

fn build(model: &BTreeSet<usize>) -> BitSet {
    BitSet::from_indices(LEN, model.iter().copied())
}

proptest! {
    #[test]
    fn ones_matches_model(model in index_set()) {
        let set = build(&model);
        let collected: Vec<usize> = set.ones().collect();
        let expected: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(collected, expected);
        prop_assert_eq!(set.count_ones(), model.len());
    }

    #[test]
    fn and_not_count_matches_model(a in index_set(), b in index_set()) {
        let (sa, sb) = (build(&a), build(&b));
        let expected = a.difference(&b).count();
        prop_assert_eq!(sa.and_not_count(&sb), expected);
    }

    #[test]
    fn and_or_counts_match_model(a in index_set(), b in index_set()) {
        let (sa, sb) = (build(&a), build(&b));
        prop_assert_eq!(sa.and_count(&sb), a.intersection(&b).count());
        prop_assert_eq!(sa.or_count(&sb), a.union(&b).count());
    }

    #[test]
    fn subset_and_disjoint_match_model(a in index_set(), b in index_set()) {
        let (sa, sb) = (build(&a), build(&b));
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
    }

    #[test]
    fn in_place_ops_match_model(a in index_set(), b in index_set()) {
        let sb = build(&b);

        let mut u = build(&a);
        u.union_with(&sb);
        prop_assert_eq!(u.ones().collect::<Vec<_>>(),
                        a.union(&b).copied().collect::<Vec<_>>());

        let mut i = build(&a);
        i.intersect_with(&sb);
        prop_assert_eq!(i.ones().collect::<Vec<_>>(),
                        a.intersection(&b).copied().collect::<Vec<_>>());

        let mut d = build(&a);
        d.difference_with(&sb);
        prop_assert_eq!(d.ones().collect::<Vec<_>>(),
                        a.difference(&b).copied().collect::<Vec<_>>());
    }

    #[test]
    fn insert_remove_toggle(model in index_set(), bit in 0..LEN) {
        let mut set = build(&model);
        let had = set.contains(bit);
        prop_assert_eq!(set.insert(bit), !had);
        prop_assert!(set.contains(bit));
        prop_assert!(set.remove(bit));
        prop_assert!(!set.contains(bit));
        prop_assert_eq!(set.count_ones(), model.len() - usize::from(had));
    }

    #[test]
    fn equality_matches_model(a in index_set(), b in index_set()) {
        prop_assert_eq!(build(&a) == build(&b), a == b);
    }
}
