//! Sparse binary matrix substrate for DMC rule mining.
//!
//! The paper ("Dynamic Miss-Counting Algorithms", ICDE 2000, §2) views the
//! data as an `n x m` 0/1 matrix `M`: rows are transactions, columns are
//! attributes, and `S_i` is the set of rows with a 1 in column `c_i`. Every
//! algorithm in the workspace — DMC itself, a-priori, Min-Hash, K-Min, and
//! the exact oracle — scans matrices through this crate.
//!
//! Storage is CSR-like: each row is a sorted, deduplicated slice of column
//! ids. That matches the paper's framing ("a row consists of a set of
//! columns", Algorithm 3.1) and makes the candidate-list merge of DMC-base a
//! sorted-sequence merge.
//!
//! Beyond raw storage the crate provides the pieces §4 and §6 of the paper
//! need:
//!
//! * [`order`] — row re-ordering (§4.1): exact sparsest-first and the
//!   paper's power-of-two density buckets.
//! * [`stats`] — Table-1 style size stats and the Fig-4 column-density
//!   histogram.
//! * [`transform`] — transpose (plinkF vs plinkT), support pruning
//!   (WlogP/NewsP derivation), row selection.
//! * [`io`] — a line-oriented text interchange format, with a streaming
//!   row reader for out-of-core pipelines; [`io_binary`] is the compact
//!   binary sibling for repeated reloads.
//! * [`spill`] — disk-backed density buckets (the paper's out-of-core row
//!   re-ordering), with checksummed frames and retry-aware I/O.
//! * [`spill_io`] — the pluggable spill I/O surface: the real filesystem
//!   backend, a deterministic fault-injecting backend for tests, retry
//!   policy, and shared I/O counters.
//! * [`framed`] — the spill's checksummed frame codec as a standalone
//!   writer/reader pair over the same I/O surface, for protocols beyond
//!   row spills (the multi-process shard manifest lives on it).

mod builder;
mod colorder;
pub mod framed;
pub mod io;
pub mod io_binary;
mod matrix;
pub mod order;
pub mod spill;
pub mod spill_io;
pub mod stats;
pub mod transform;

pub use builder::MatrixBuilder;
pub use colorder::{canonical_less, ColumnInfo};
pub use matrix::{RowsIter, SparseMatrix};

/// Column identifier. `u32` keeps hot per-candidate state small
/// (perf-book "smaller integers" guidance); 4 billion columns is far beyond
/// the paper's 700k-column data sets.
pub type ColumnId = u32;

/// Row identifier.
pub type RowId = u32;
