//! Text interchange format for sparse 0/1 matrices.
//!
//! One row per line: space-separated column ids, in any order. A header line
//! `# cols <m>` pins the column-space size; without it the size is inferred
//! as `max id + 1`. Blank lines are empty rows; `#`-prefixed lines (other
//! than the header) are comments. This is the usual transaction-file shape
//! of association-mining data sets (each line lists the items of one
//! basket).

use crate::{ColumnId, MatrixBuilder, SparseMatrix};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    Io(io::Error),
    /// A token was not a valid column id; payload is (line number, token).
    BadToken {
        line: usize,
        token: String,
    },
    /// A `# cols` header was malformed.
    BadHeader {
        line: usize,
    },
    /// A column id at or beyond the declared column count; payload is
    /// (line number, id, declared columns).
    ColumnOutOfRange {
        line: usize,
        id: u64,
        cols: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "io error: {e}"),
            ParseError::BadToken { line, token } => {
                write!(f, "line {line}: invalid column id {token:?}")
            }
            ParseError::BadHeader { line } => write!(f, "line {line}: malformed '# cols' header"),
            ParseError::ColumnOutOfRange { line, id, cols } => {
                write!(
                    f,
                    "line {line}: column id {id} >= declared column count {cols}"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads a matrix from the text format.
///
/// # Errors
///
/// Returns [`ParseError`] on IO failure, unparsable tokens, a malformed
/// header, or ids exceeding a declared column count.
pub fn read_matrix<R: Read>(reader: R) -> Result<SparseMatrix, ParseError> {
    let reader = BufReader::new(reader);
    let mut declared_cols: Option<usize> = None;
    let mut rows: Vec<Vec<ColumnId>> = Vec::new();
    let mut max_id: Option<ColumnId> = None;

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("cols") {
                let cols = parts
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or(ParseError::BadHeader { line: line_no })?;
                declared_cols = Some(cols);
            }
            continue;
        }
        let mut row = Vec::new();
        for token in trimmed.split_whitespace() {
            let id: u64 = token.parse().map_err(|_| ParseError::BadToken {
                line: line_no,
                token: token.to_string(),
            })?;
            if let Some(cols) = declared_cols {
                if id >= cols as u64 {
                    return Err(ParseError::ColumnOutOfRange {
                        line: line_no,
                        id,
                        cols,
                    });
                }
            }
            let id = ColumnId::try_from(id).map_err(|_| ParseError::BadToken {
                line: line_no,
                token: token.to_string(),
            })?;
            max_id = Some(max_id.map_or(id, |m| m.max(id)));
            row.push(id);
        }
        rows.push(row);
    }

    let n_cols = declared_cols.unwrap_or(max_id.map_or(0, |m| m as usize + 1));
    let mut builder = MatrixBuilder::new(n_cols);
    for row in rows {
        builder.push_row(row);
    }
    Ok(builder.finish())
}

/// Streaming row reader over the text format: yields one parsed row at a
/// time without materializing the matrix (for the out-of-core pipeline in
/// `dmc-core::stream`).
///
/// The `# cols` header, when present, is exposed via
/// [`RowLines::declared_cols`] after it has been read; ids are validated
/// against it.
pub struct RowLines<R: BufRead> {
    reader: R,
    line_no: usize,
    declared_cols: Option<usize>,
    buf: String,
}

impl<R: BufRead> RowLines<R> {
    /// Wraps a buffered reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            line_no: 0,
            declared_cols: None,
            buf: String::new(),
        }
    }

    /// The `# cols` header value, if one has been read so far.
    #[must_use]
    pub fn declared_cols(&self) -> Option<usize> {
        self.declared_cols
    }

    fn parse_line(&mut self) -> Result<Option<Option<Vec<ColumnId>>>, ParseError> {
        // Ok(None) = EOF; Ok(Some(None)) = comment/header line;
        // Ok(Some(Some(row))) = a data row.
        self.buf.clear();
        if self.reader.read_line(&mut self.buf)? == 0 {
            return Ok(None);
        }
        self.line_no += 1;
        let line_no = self.line_no;
        let trimmed = self.buf.trim();
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("cols") {
                let cols = parts
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or(ParseError::BadHeader { line: line_no })?;
                self.declared_cols = Some(cols);
            }
            return Ok(Some(None));
        }
        let mut row = Vec::new();
        for token in trimmed.split_whitespace() {
            let id: u64 = token.parse().map_err(|_| ParseError::BadToken {
                line: line_no,
                token: token.to_string(),
            })?;
            if let Some(cols) = self.declared_cols {
                if id >= cols as u64 {
                    return Err(ParseError::ColumnOutOfRange {
                        line: line_no,
                        id,
                        cols,
                    });
                }
            }
            let id = ColumnId::try_from(id).map_err(|_| ParseError::BadToken {
                line: line_no,
                token: token.to_string(),
            })?;
            row.push(id);
        }
        row.sort_unstable();
        row.dedup();
        Ok(Some(Some(row)))
    }
}

impl<R: BufRead> Iterator for RowLines<R> {
    type Item = Result<Vec<ColumnId>, ParseError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.parse_line() {
                Ok(None) => return None,
                Ok(Some(None)) => {} // comment or header: keep reading
                Ok(Some(Some(row))) => return Some(Ok(row)),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Writes a matrix in the text format, including the `# cols` header so the
/// column-space size round-trips.
///
/// # Errors
///
/// Propagates IO errors from `writer`.
pub fn write_matrix<W: Write>(matrix: &SparseMatrix, mut writer: W) -> io::Result<()> {
    writeln!(writer, "# cols {}", matrix.n_cols())?;
    let mut line = String::new();
    for row in matrix.rows() {
        line.clear();
        for (i, c) in row.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&c.to_string());
        }
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = SparseMatrix::from_rows(5, vec![vec![0, 4], vec![], vec![2]]);
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let back = read_matrix(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn reads_without_header_inferring_cols() {
        let text = "1 3\n\n2\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.row(1), &[] as &[ColumnId]);
    }

    #[test]
    fn normalizes_unsorted_input() {
        let m = read_matrix("3 1 1 0\n".as_bytes()).unwrap();
        assert_eq!(m.row(0), &[0, 1, 3]);
    }

    #[test]
    fn skips_comments() {
        let text = "# a comment\n# cols 10\n5\n# trailing comment\n7\n";
        let m = read_matrix(text.as_bytes()).unwrap();
        assert_eq!(m.n_cols(), 10);
        assert_eq!(m.n_rows(), 2);
    }

    #[test]
    fn rejects_bad_token() {
        let err = read_matrix("1 x 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::BadToken { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_out_of_range_when_declared() {
        let err = read_matrix("# cols 3\n0 3\n".as_bytes()).unwrap_err();
        assert!(
            matches!(
                err,
                ParseError::ColumnOutOfRange {
                    line: 2,
                    id: 3,
                    cols: 3
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_matrix("# cols many\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::BadHeader { line: 1 }), "{err}");
    }

    #[test]
    fn empty_input_is_empty_matrix() {
        let m = read_matrix("".as_bytes()).unwrap();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
    }

    #[test]
    fn row_lines_streams_rows() {
        let text = "# cols 5\n3 1\n\n# mid comment\n4\n";
        let mut lines = RowLines::new(text.as_bytes());
        assert_eq!(lines.next().unwrap().unwrap(), vec![1, 3]);
        assert_eq!(lines.declared_cols(), Some(5));
        assert_eq!(lines.next().unwrap().unwrap(), vec![]);
        assert_eq!(lines.next().unwrap().unwrap(), vec![4]);
        assert!(lines.next().is_none());
    }

    #[test]
    fn row_lines_agree_with_read_matrix() {
        let text = "# cols 6\n0 5\n2 2 1\n\n3\n";
        let streamed: Vec<Vec<ColumnId>> =
            RowLines::new(text.as_bytes()).map(Result::unwrap).collect();
        let matrix = read_matrix(text.as_bytes()).unwrap();
        let direct: Vec<Vec<ColumnId>> = matrix.rows().map(<[ColumnId]>::to_vec).collect();
        assert_eq!(streamed, direct);
    }

    #[test]
    fn row_lines_propagates_errors() {
        let mut lines = RowLines::new("1 bad\n".as_bytes());
        assert!(matches!(
            lines.next().unwrap().unwrap_err(),
            ParseError::BadToken { line: 1, .. }
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_matrix("9 q\n".as_bytes()).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 1") && msg.contains('q'), "{msg}");
    }
}
