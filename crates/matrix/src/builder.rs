//! Incremental construction of [`SparseMatrix`].

use crate::{ColumnId, SparseMatrix};

/// Builds a [`SparseMatrix`] one row at a time.
///
/// Rows may be pushed unsorted and with duplicates; the builder normalizes
/// each row to a strictly increasing column list (the paper treats a row as
/// a *set* of columns).
///
/// # Examples
///
/// ```
/// use dmc_matrix::MatrixBuilder;
///
/// let mut b = MatrixBuilder::new(4);
/// b.push_row(vec![3, 1, 1]); // unsorted + duplicate: normalized to {1, 3}
/// b.push_row(vec![]);
/// let m = b.finish();
/// assert_eq!(m.row(0), &[1, 3]);
/// assert_eq!(m.row_len(1), 0);
/// ```
#[derive(Debug)]
pub struct MatrixBuilder {
    row_offsets: Vec<usize>,
    col_indices: Vec<ColumnId>,
    n_cols: usize,
}

impl MatrixBuilder {
    /// Starts a builder for a matrix with `n_cols` columns.
    #[must_use]
    pub fn new(n_cols: usize) -> Self {
        Self {
            row_offsets: vec![0],
            col_indices: Vec::new(),
            n_cols,
        }
    }

    /// Pre-allocates for an expected number of rows and non-zeros.
    #[must_use]
    pub fn with_capacity(n_cols: usize, rows: usize, nnz: usize) -> Self {
        let mut row_offsets = Vec::with_capacity(rows + 1);
        row_offsets.push(0);
        Self {
            row_offsets,
            col_indices: Vec::with_capacity(nnz),
            n_cols,
        }
    }

    /// Number of rows pushed so far.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Appends a row given as an arbitrary-order, possibly-duplicated column
    /// list.
    ///
    /// # Panics
    ///
    /// Panics if any column id is `>= n_cols`.
    pub fn push_row(&mut self, mut cols: Vec<ColumnId>) {
        cols.sort_unstable();
        cols.dedup();
        self.push_sorted_row(&cols);
    }

    /// Appends a row that is already strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is not strictly increasing or any id is
    /// `>= n_cols`.
    pub fn push_sorted_row(&mut self, cols: &[ColumnId]) {
        if let Some(&last) = cols.last() {
            assert!(
                (last as usize) < self.n_cols,
                "column id {last} out of range for {} columns",
                self.n_cols
            );
        }
        assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "push_sorted_row requires a strictly increasing column list"
        );
        self.col_indices.extend_from_slice(cols);
        self.row_offsets.push(self.col_indices.len());
    }

    /// Finalizes the matrix.
    #[must_use]
    pub fn finish(self) -> SparseMatrix {
        SparseMatrix::from_parts(self.row_offsets, self.col_indices, self.n_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_unsorted_duplicated_rows() {
        let mut b = MatrixBuilder::new(10);
        b.push_row(vec![5, 2, 9, 2, 5]);
        let m = b.finish();
        assert_eq!(m.row(0), &[2, 5, 9]);
    }

    #[test]
    fn with_capacity_matches_new() {
        let mut a = MatrixBuilder::new(3);
        let mut b = MatrixBuilder::with_capacity(3, 2, 4);
        for builder in [&mut a, &mut b] {
            builder.push_row(vec![0, 2]);
            builder.push_row(vec![1]);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn n_rows_tracks_pushes() {
        let mut b = MatrixBuilder::new(2);
        assert_eq!(b.n_rows(), 0);
        b.push_row(vec![0]);
        b.push_row(vec![]);
        assert_eq!(b.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_column() {
        let mut b = MatrixBuilder::new(3);
        b.push_row(vec![3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_sorted_rejects_unsorted() {
        let mut b = MatrixBuilder::new(5);
        b.push_sorted_row(&[2, 1]);
    }
}
