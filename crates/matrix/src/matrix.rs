//! CSR storage for 0/1 matrices.

use crate::{ColumnId, RowId};
use std::fmt;

/// A sparse 0/1 matrix in row-major (CSR) form.
///
/// Each row is stored as a strictly increasing slice of [`ColumnId`]s.
/// Construct via [`crate::MatrixBuilder`] or [`SparseMatrix::from_rows`].
/// Existing rows never change, but new rows can be appended in place with
/// [`SparseMatrix::append_row`] — CSR appends are `O(row length)` — which
/// is what the incremental-ingest engine builds on.
///
/// # Examples
///
/// ```
/// use dmc_matrix::SparseMatrix;
///
/// // Figure 1 of the paper: rows r1..r4 over columns c1..c3 (0-indexed).
/// let m = SparseMatrix::from_rows(3, vec![
///     vec![1, 2],    // r1 = {c2, c3}
///     vec![0, 1, 2], // r2 = {c1, c2, c3}
///     vec![0],       // r3 = {c1}
///     vec![1],       // r4 = {c2}
/// ]);
/// assert_eq!(m.n_rows(), 4);
/// assert_eq!(m.n_cols(), 3);
/// assert_eq!(m.row(0), &[1, 2]);
/// assert_eq!(m.column_ones(), vec![2, 3, 2]); // |S_1|=2, |S_2|=3, |S_3|=2
/// ```
#[derive(Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SparseMatrix {
    /// `row_offsets[r]..row_offsets[r+1]` indexes `col_indices` for row `r`.
    row_offsets: Vec<usize>,
    /// Concatenated sorted column ids of every row.
    col_indices: Vec<ColumnId>,
    n_cols: usize,
}

impl SparseMatrix {
    /// Builds a matrix from per-row column lists.
    ///
    /// Rows are sorted and deduplicated; `n_cols` is the column-space size
    /// (may exceed the largest id present, to represent all-zero columns).
    ///
    /// # Panics
    ///
    /// Panics if any column id is `>= n_cols`.
    #[must_use]
    pub fn from_rows(n_cols: usize, rows: Vec<Vec<ColumnId>>) -> Self {
        let mut builder = crate::MatrixBuilder::new(n_cols);
        for row in rows {
            builder.push_row(row);
        }
        builder.finish()
    }

    pub(crate) fn from_parts(
        row_offsets: Vec<usize>,
        col_indices: Vec<ColumnId>,
        n_cols: usize,
    ) -> Self {
        debug_assert!(!row_offsets.is_empty());
        debug_assert_eq!(*row_offsets.last().unwrap(), col_indices.len());
        Self {
            row_offsets,
            col_indices,
            n_cols,
        }
    }

    /// Number of rows `n`.
    #[inline]
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of columns `m` (the column-id space, including all-zero
    /// columns).
    #[inline]
    #[must_use]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total number of 1 entries.
    #[inline]
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.col_indices.len()
    }

    /// The sorted column ids of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= n_rows()`.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[ColumnId] {
        &self.col_indices[self.row_offsets[r]..self.row_offsets[r + 1]]
    }

    /// Number of 1s in row `r`.
    #[inline]
    #[must_use]
    pub fn row_len(&self, r: usize) -> usize {
        self.row_offsets[r + 1] - self.row_offsets[r]
    }

    /// `true` iff entry `(r, c)` is 1.
    #[must_use]
    pub fn contains(&self, r: usize, c: ColumnId) -> bool {
        self.row(r).binary_search(&c).is_ok()
    }

    /// Iterates rows in index order.
    #[must_use]
    pub fn rows(&self) -> RowsIter<'_> {
        RowsIter {
            matrix: self,
            next: 0,
        }
    }

    /// Per-column 1-counts: `ones[c] = |S_c|` (the first scan of
    /// Algorithm 3.1, step 1).
    #[must_use]
    pub fn column_ones(&self) -> Vec<u32> {
        let mut ones = vec![0u32; self.n_cols];
        for &c in &self.col_indices {
            ones[c as usize] += 1;
        }
        ones
    }

    /// The row sets `S_c` for every column — i.e. the transpose as adjacency
    /// lists, in ascending row order.
    #[must_use]
    pub fn column_rows(&self) -> Vec<Vec<RowId>> {
        let mut cols = vec![Vec::new(); self.n_cols];
        for (r, row) in self.rows().enumerate() {
            for &c in row {
                cols[c as usize].push(r as RowId);
            }
        }
        cols
    }

    /// Appends a row given as an arbitrary-order, possibly-duplicated
    /// column list, normalizing it to a strictly increasing set (same
    /// contract as [`crate::MatrixBuilder::push_row`]).
    ///
    /// # Panics
    ///
    /// Panics if any column id is `>= n_cols`.
    pub fn append_row(&mut self, mut cols: Vec<ColumnId>) {
        cols.sort_unstable();
        cols.dedup();
        self.append_sorted_row(&cols);
    }

    /// Appends a row that is already strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `cols` is not strictly increasing or any id is
    /// `>= n_cols`.
    pub fn append_sorted_row(&mut self, cols: &[ColumnId]) {
        if let Some(&last) = cols.last() {
            assert!(
                (last as usize) < self.n_cols,
                "column id {last} out of range for {} columns",
                self.n_cols
            );
        }
        assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "append_sorted_row requires a strictly increasing column list"
        );
        self.col_indices.extend_from_slice(cols);
        self.row_offsets.push(self.col_indices.len());
    }

    /// Approximate heap bytes held by the storage.
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.row_offsets.capacity() * std::mem::size_of::<usize>()
            + self.col_indices.capacity() * std::mem::size_of::<ColumnId>()
    }
}

impl fmt::Debug for SparseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SparseMatrix({} x {}, nnz {})",
            self.n_rows(),
            self.n_cols(),
            self.nnz()
        )
    }
}

/// Iterator over the rows of a [`SparseMatrix`], yielding sorted column
/// slices.
pub struct RowsIter<'a> {
    matrix: &'a SparseMatrix,
    next: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [ColumnId];

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.matrix.n_rows() {
            return None;
        }
        let row = self.matrix.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.matrix.n_rows() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RowsIter<'_> {}
impl std::iter::FusedIterator for RowsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> SparseMatrix {
        SparseMatrix::from_rows(3, vec![vec![1, 2], vec![0, 1, 2], vec![0], vec![1]])
    }

    #[test]
    fn basic_shape() {
        let m = fig1();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.row_len(2), 1);
        assert_eq!(format!("{m:?}"), "SparseMatrix(4 x 3, nnz 7)");
    }

    #[test]
    fn contains_checks_entries() {
        let m = fig1();
        assert!(m.contains(0, 1));
        assert!(!m.contains(0, 0));
        assert!(m.contains(3, 1));
        assert!(!m.contains(2, 2));
    }

    #[test]
    fn column_ones_counts() {
        assert_eq!(fig1().column_ones(), vec![2, 3, 2]);
    }

    #[test]
    fn column_rows_is_transpose_adjacency() {
        let m = fig1();
        let cols = m.column_rows();
        assert_eq!(cols[0], vec![1, 2]);
        assert_eq!(cols[1], vec![0, 1, 3]);
        assert_eq!(cols[2], vec![0, 1]);
    }

    #[test]
    fn rows_iterator_yields_all() {
        let m = fig1();
        let rows: Vec<&[ColumnId]> = m.rows().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1], &[0, 1, 2]);
        assert_eq!(m.rows().len(), 4);
    }

    #[test]
    fn append_row_extends_in_place() {
        let mut m = fig1();
        m.append_row(vec![2, 0, 2]); // unsorted + duplicate: normalized
        m.append_sorted_row(&[1]);
        assert_eq!(m.n_rows(), 6);
        assert_eq!(m.row(4), &[0, 2]);
        assert_eq!(m.row(5), &[1]);
        assert_eq!(m.column_ones(), vec![3, 4, 3]);
        // Identical to building the whole thing at once.
        let rebuilt = SparseMatrix::from_rows(
            3,
            vec![
                vec![1, 2],
                vec![0, 1, 2],
                vec![0],
                vec![1],
                vec![0, 2],
                vec![1],
            ],
        );
        assert_eq!(m, rebuilt);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn append_rejects_out_of_range_column() {
        let mut m = fig1();
        m.append_row(vec![3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn append_sorted_rejects_unsorted() {
        let mut m = fig1();
        m.append_sorted_row(&[2, 1]);
    }

    #[test]
    fn empty_matrix() {
        let m = SparseMatrix::from_rows(5, vec![]);
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 5);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.column_ones(), vec![0; 5]);
        assert_eq!(m.rows().count(), 0);
    }

    #[test]
    fn empty_rows_and_columns_allowed() {
        let m = SparseMatrix::from_rows(4, vec![vec![], vec![2], vec![]]);
        assert_eq!(m.n_rows(), 3);
        assert_eq!(m.row(0), &[] as &[ColumnId]);
        assert_eq!(m.column_ones(), vec![0, 0, 1, 0]);
    }
}
