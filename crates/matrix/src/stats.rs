//! Size and density statistics (Table 1 and Fig. 4 of the paper).

use crate::SparseMatrix;

/// Table-1 style summary of a data set.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MatrixStats {
    pub rows: usize,
    pub cols: usize,
    /// Columns with at least one 1 (the column-id space may be larger).
    pub nonzero_cols: usize,
    pub nnz: usize,
    /// Mean 1s per row.
    pub avg_row_density: f64,
    /// Largest number of 1s in any row.
    pub max_row_density: usize,
    /// Largest number of 1s in any column.
    pub max_col_ones: usize,
}

/// Computes the Table-1 style summary of `matrix`.
#[must_use]
pub fn matrix_stats(matrix: &SparseMatrix) -> MatrixStats {
    let ones = matrix.column_ones();
    let max_row_density = (0..matrix.n_rows())
        .map(|r| matrix.row_len(r))
        .max()
        .unwrap_or(0);
    MatrixStats {
        rows: matrix.n_rows(),
        cols: matrix.n_cols(),
        nonzero_cols: ones.iter().filter(|&&o| o > 0).count(),
        nnz: matrix.nnz(),
        avg_row_density: if matrix.n_rows() == 0 {
            0.0
        } else {
            matrix.nnz() as f64 / matrix.n_rows() as f64
        },
        max_row_density,
        max_col_ones: ones.iter().copied().max().unwrap_or(0) as usize,
    }
}

/// The Fig.-4 column-density distribution: `histogram[b]` is the number of
/// columns whose 1-count falls in the log2 bucket `b` (bucket 0 holds counts
/// 0..=1, bucket `i` holds `[2^i, 2^(i+1))`).
///
/// The paper plots the number of columns against the number of 1s per
/// column on log-log axes; log2 buckets carry the same shape.
#[must_use]
pub fn column_density_histogram(matrix: &SparseMatrix) -> Vec<usize> {
    let ones = matrix.column_ones();
    let mut hist = Vec::new();
    for &o in &ones {
        let bucket = crate::order::density_bucket(o as usize);
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Exact column-density counts: `counts[k]` = number of columns with exactly
/// `k` ones. The tail is truncated at the largest occurring count.
#[must_use]
pub fn column_density_counts(matrix: &SparseMatrix) -> Vec<usize> {
    let ones = matrix.column_ones();
    let max = ones.iter().copied().max().unwrap_or(0) as usize;
    let mut counts = vec![0usize; max + 1];
    for &o in &ones {
        counts[o as usize] += 1;
    }
    counts
}

/// Row-density histogram over the paper's `[2^i, 2^(i+1))` buckets — the
/// bucket sizes a §4.1 first scan would produce.
#[must_use]
pub fn row_density_histogram(matrix: &SparseMatrix) -> Vec<usize> {
    let mut hist = Vec::new();
    for r in 0..matrix.n_rows() {
        let bucket = crate::order::density_bucket(matrix.row_len(r));
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_rows(
            5,
            vec![vec![0, 1, 2, 3], vec![1], vec![1, 2], vec![], vec![1, 2]],
        )
    }

    #[test]
    fn stats_of_sample() {
        let s = matrix_stats(&sample());
        assert_eq!(s.rows, 5);
        assert_eq!(s.cols, 5);
        assert_eq!(s.nonzero_cols, 4, "column 4 is all-zero");
        assert_eq!(s.nnz, 9);
        assert!((s.avg_row_density - 1.8).abs() < 1e-12);
        assert_eq!(s.max_row_density, 4);
        assert_eq!(s.max_col_ones, 4, "column 1 appears in 4 rows");
    }

    #[test]
    fn stats_of_empty() {
        let s = matrix_stats(&SparseMatrix::from_rows(3, vec![]));
        assert_eq!(s.rows, 0);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.avg_row_density, 0.0);
        assert_eq!(s.max_row_density, 0);
    }

    #[test]
    fn column_histogram_buckets() {
        // ones per column: [1, 4, 3, 1, 0] -> buckets [0, 2, 1, 0, 0]
        let hist = column_density_histogram(&sample());
        assert_eq!(hist, vec![3, 1, 1]);
    }

    #[test]
    fn column_density_exact_counts() {
        let counts = column_density_counts(&sample());
        // count 0: col 4; count 1: cols 0 and 3; count 3: col 2; count 4: col 1
        assert_eq!(counts, vec![1, 2, 0, 1, 1]);
    }

    #[test]
    fn row_histogram_buckets() {
        // row lens: [4, 1, 2, 0, 2] -> buckets [2, 0, 1, 0, 1]
        let hist = row_density_histogram(&sample());
        assert_eq!(hist, vec![2, 2, 1]);
    }
}
