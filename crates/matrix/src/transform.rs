//! Matrix transforms used to derive the paper's data-set variants.
//!
//! * [`transpose`] — `plinkF` vs `plinkT` are transposes of the same link
//!   graph (§6.1).
//! * [`prune_columns_by_support`] — `WlogP` prunes columns with ≤ 10 ones;
//!   `NewsP` applies both a minimum (35) and maximum (3278) support bound.
//! * [`select_rows`] / [`permute_rows`] — row subsetting and physical
//!   re-ordering (algorithms normally scan through a permutation instead,
//!   see [`crate::order`], but tests and generators want the physical form).

use crate::{ColumnId, MatrixBuilder, RowId, SparseMatrix};

/// The transpose `Mᵀ`: entry `(r, c)` of the result is entry `(c, r)` of
/// `matrix`.
#[must_use]
pub fn transpose(matrix: &SparseMatrix) -> SparseMatrix {
    let mut builder = MatrixBuilder::with_capacity(matrix.n_rows(), matrix.n_cols(), matrix.nnz());
    for col_rows in matrix.column_rows() {
        // Row ids ascend within each column list, so the row is sorted.
        let as_cols: Vec<ColumnId> = col_rows; // RowId and ColumnId are both u32
        builder.push_sorted_row(&as_cols);
    }
    builder.finish()
}

/// Result of a column-pruning transform: the pruned matrix plus the mapping
/// from new column ids to the original ids.
#[derive(Clone, Debug)]
pub struct PrunedMatrix {
    pub matrix: SparseMatrix,
    /// `original_ids[new_id] = old_id`.
    pub original_ids: Vec<ColumnId>,
}

impl PrunedMatrix {
    /// Translates a pruned-space column id back to the original id.
    #[must_use]
    pub fn original_id(&self, new_id: ColumnId) -> ColumnId {
        self.original_ids[new_id as usize]
    }
}

/// Keeps only columns whose 1-count lies in `[min_support, max_support]`,
/// renumbering the survivors densely in original-id order.
///
/// `max_support = usize::MAX` (see [`prune_min_support`]) disables the upper
/// bound. Rows that become empty are kept as empty rows, matching the
/// paper's `WlogP` row count staying within the same order of magnitude.
#[must_use]
pub fn prune_columns_by_support(
    matrix: &SparseMatrix,
    min_support: usize,
    max_support: usize,
) -> PrunedMatrix {
    let ones = matrix.column_ones();
    let mut remap = vec![ColumnId::MAX; matrix.n_cols()];
    let mut original_ids = Vec::new();
    for (old, &o) in ones.iter().enumerate() {
        let o = o as usize;
        if o >= min_support && o <= max_support {
            remap[old] = original_ids.len() as ColumnId;
            original_ids.push(old as ColumnId);
        }
    }
    let mut builder =
        MatrixBuilder::with_capacity(original_ids.len(), matrix.n_rows(), matrix.nnz());
    let mut scratch: Vec<ColumnId> = Vec::new();
    for row in matrix.rows() {
        scratch.clear();
        scratch.extend(
            row.iter()
                .map(|&c| remap[c as usize])
                .filter(|&c| c != ColumnId::MAX),
        );
        // remap preserves relative order, so scratch stays sorted.
        builder.push_sorted_row(&scratch);
    }
    PrunedMatrix {
        matrix: builder.finish(),
        original_ids,
    }
}

/// Keeps only columns with at least `min_support` ones.
#[must_use]
pub fn prune_min_support(matrix: &SparseMatrix, min_support: usize) -> PrunedMatrix {
    prune_columns_by_support(matrix, min_support, usize::MAX)
}

/// Builds a new matrix from the selected rows, in the given order.
///
/// # Panics
///
/// Panics if any row index is out of range.
#[must_use]
pub fn select_rows(matrix: &SparseMatrix, rows: &[RowId]) -> SparseMatrix {
    let mut builder = MatrixBuilder::with_capacity(matrix.n_cols(), rows.len(), matrix.nnz());
    for &r in rows {
        builder.push_sorted_row(matrix.row(r as usize));
    }
    builder.finish()
}

/// Physically re-orders rows by a permutation (see [`crate::order`]).
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n_rows`.
#[must_use]
pub fn permute_rows(matrix: &SparseMatrix, perm: &[RowId]) -> SparseMatrix {
    assert_eq!(perm.len(), matrix.n_rows(), "permutation length mismatch");
    select_rows(matrix, perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::RowOrder;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_rows(4, vec![vec![0, 2], vec![1, 2, 3], vec![2], vec![0, 2]])
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = transpose(&m);
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 4);
        assert_eq!(t.row(0), &[0, 3]); // column 0 had ones in rows 0 and 3
        assert_eq!(t.row(2), &[0, 1, 2, 3]);
        assert_eq!(transpose(&t), m);
    }

    #[test]
    fn transpose_empty_and_rectangular() {
        let m = SparseMatrix::from_rows(3, vec![vec![0], vec![2]]);
        let t = transpose(&m);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.row(0), &[0]);
        assert_eq!(t.row(1), &[] as &[ColumnId]);
        assert_eq!(t.row(2), &[1]);
    }

    #[test]
    fn min_support_pruning_drops_and_renumbers() {
        // ones: [2, 1, 4, 1]; min_support 2 keeps columns 0 and 2.
        let pruned = prune_min_support(&sample(), 2);
        assert_eq!(pruned.original_ids, vec![0, 2]);
        assert_eq!(pruned.matrix.n_cols(), 2);
        assert_eq!(pruned.matrix.row(0), &[0, 1]);
        assert_eq!(pruned.matrix.row(1), &[1]);
        assert_eq!(pruned.original_id(1), 2);
    }

    #[test]
    fn support_window_prunes_both_ends() {
        // ones: [2, 1, 4, 1]; window [2, 3] keeps only column 0.
        let pruned = prune_columns_by_support(&sample(), 2, 3);
        assert_eq!(pruned.original_ids, vec![0]);
        assert_eq!(pruned.matrix.row(1), &[] as &[ColumnId]);
        assert_eq!(pruned.matrix.column_ones(), vec![2]);
    }

    #[test]
    fn pruning_to_nothing_yields_empty_columns() {
        let pruned = prune_min_support(&sample(), 100);
        assert_eq!(pruned.matrix.n_cols(), 0);
        assert_eq!(pruned.matrix.n_rows(), 4);
        assert_eq!(pruned.matrix.nnz(), 0);
    }

    #[test]
    fn permute_rows_matches_order_module() {
        let m = sample();
        let perm = RowOrder::ExactSparsestFirst.permutation(&m);
        let p = permute_rows(&m, &perm);
        assert_eq!(p.row(0), &[2]); // sparsest row first
        assert_eq!(p.nnz(), m.nnz());
        assert_eq!(p.column_ones(), m.column_ones());
    }

    #[test]
    fn select_rows_subset() {
        let m = sample();
        let s = select_rows(&m, &[2, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row(0), &[2]);
        assert_eq!(s.row(1), &[0, 2]);
    }
}
