//! Compact binary interchange format for sparse 0/1 matrices.
//!
//! The text format (`io`) is human-friendly; this one is for pipelines
//! that reload the same matrix many times (the experiment harness, CI
//! fixtures). Layout, all little-endian:
//!
//! ```text
//! magic   8 bytes  "DMCMAT01"
//! n_cols  u64
//! n_rows  u64
//! nnz     u64
//! offsets (n_rows + 1) x u64   row start offsets into the id array
//! ids     nnz x u32            concatenated sorted row column ids
//! ```
//!
//! Buffers are assembled and parsed with the `bytes` crate's `Buf`/`BufMut`
//! cursors, which keep the offset arithmetic honest.

use crate::{ColumnId, MatrixBuilder, SparseMatrix};
use bytes::{Buf, BufMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"DMCMAT01";

/// Errors produced while decoding the binary format.
#[derive(Debug)]
pub enum BinaryError {
    Io(io::Error),
    /// The magic header did not match.
    BadMagic,
    /// Structural inconsistency; payload describes it.
    Corrupt(&'static str),
}

impl std::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinaryError::Io(e) => write!(f, "io error: {e}"),
            BinaryError::BadMagic => write!(f, "not a DMCMAT01 file"),
            BinaryError::Corrupt(what) => write!(f, "corrupt matrix file: {what}"),
        }
    }
}

impl std::error::Error for BinaryError {}

impl From<io::Error> for BinaryError {
    fn from(e: io::Error) -> Self {
        BinaryError::Io(e)
    }
}

/// Encodes `matrix` into a byte vector.
#[must_use]
pub fn encode_matrix(matrix: &SparseMatrix) -> Vec<u8> {
    let n_rows = matrix.n_rows();
    let mut buf = Vec::with_capacity(8 + 24 + (n_rows + 1) * 8 + matrix.nnz() * 4);
    buf.put_slice(MAGIC);
    buf.put_u64_le(matrix.n_cols() as u64);
    buf.put_u64_le(n_rows as u64);
    buf.put_u64_le(matrix.nnz() as u64);
    let mut offset = 0u64;
    buf.put_u64_le(0);
    for r in 0..n_rows {
        offset += matrix.row_len(r) as u64;
        buf.put_u64_le(offset);
    }
    for row in matrix.rows() {
        for &c in row {
            buf.put_u32_le(c);
        }
    }
    buf
}

/// Decodes a matrix from a byte slice.
///
/// # Errors
///
/// Returns [`BinaryError`] on truncation, bad magic, or inconsistent
/// structure (non-monotone offsets, unsorted rows, out-of-range ids).
pub fn decode_matrix(mut data: &[u8]) -> Result<SparseMatrix, BinaryError> {
    if data.remaining() < 8 + 24 {
        return Err(BinaryError::Corrupt("truncated header"));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(BinaryError::BadMagic);
    }
    let n_cols = data.get_u64_le() as usize;
    let n_rows = data.get_u64_le() as usize;
    let nnz = data.get_u64_le() as usize;
    let need = n_rows
        .checked_add(1)
        .and_then(|r| r.checked_mul(8))
        .and_then(|o| o.checked_add(nnz.checked_mul(4)?))
        .ok_or(BinaryError::Corrupt("size overflow"))?;
    if data.remaining() < need {
        return Err(BinaryError::Corrupt("truncated body"));
    }
    let mut offsets = Vec::with_capacity(n_rows + 1);
    for _ in 0..=n_rows {
        offsets.push(data.get_u64_le() as usize);
    }
    if offsets[0] != 0 || offsets[n_rows] != nnz {
        return Err(BinaryError::Corrupt("offset endpoints"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(BinaryError::Corrupt("offsets not monotone"));
    }
    let mut builder = MatrixBuilder::with_capacity(n_cols, n_rows, nnz);
    let mut row: Vec<ColumnId> = Vec::new();
    for r in 0..n_rows {
        let len = offsets[r + 1] - offsets[r];
        row.clear();
        for _ in 0..len {
            let id = data.get_u32_le();
            if id as usize >= n_cols {
                return Err(BinaryError::Corrupt("column id out of range"));
            }
            row.push(id);
        }
        if row.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BinaryError::Corrupt("row not strictly increasing"));
        }
        builder.push_sorted_row(&row);
    }
    Ok(builder.finish())
}

/// Writes the binary encoding to `writer`.
///
/// # Errors
///
/// Propagates IO errors.
pub fn write_matrix_binary<W: Write>(matrix: &SparseMatrix, mut writer: W) -> io::Result<()> {
    writer.write_all(&encode_matrix(matrix))
}

/// Reads a binary matrix from `reader` (consumes to EOF).
///
/// # Errors
///
/// Returns [`BinaryError`] on IO failure or malformed content.
pub fn read_matrix_binary<R: Read>(mut reader: R) -> Result<SparseMatrix, BinaryError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    decode_matrix(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_rows(7, vec![vec![0, 3, 6], vec![], vec![2], vec![1, 2, 3, 4, 5]])
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = encode_matrix(&m);
        assert_eq!(&bytes[..8], b"DMCMAT01");
        let back = decode_matrix(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_through_writer_reader() {
        let m = sample();
        let mut buf = Vec::new();
        write_matrix_binary(&m, &mut buf).unwrap();
        let back = read_matrix_binary(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = SparseMatrix::from_rows(0, vec![]);
        assert_eq!(decode_matrix(&encode_matrix(&m)).unwrap(), m);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode_matrix(&sample());
        bytes[0] = b'X';
        assert!(matches!(decode_matrix(&bytes), Err(BinaryError::BadMagic)));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = encode_matrix(&sample());
        for len in 0..bytes.len() {
            assert!(
                decode_matrix(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_id() {
        let m = sample();
        let mut bytes = encode_matrix(&m);
        // Overwrite the last id with one beyond n_cols = 7.
        let last = bytes.len() - 4;
        bytes[last..].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(
            decode_matrix(&bytes),
            Err(BinaryError::Corrupt("column id out of range"))
        ));
    }

    #[test]
    fn rejects_unsorted_row() {
        let m = SparseMatrix::from_rows(5, vec![vec![1, 3]]);
        let mut bytes = encode_matrix(&m);
        let len = bytes.len();
        // Swap the two ids.
        bytes.swap(len - 8, len - 4);
        bytes.swap(len - 7, len - 3);
        bytes.swap(len - 6, len - 2);
        bytes.swap(len - 5, len - 1);
        assert!(decode_matrix(&bytes).is_err());
    }

    #[test]
    fn error_display() {
        assert!(BinaryError::BadMagic.to_string().contains("DMCMAT01"));
        assert!(BinaryError::Corrupt("x").to_string().contains('x'));
    }
}
