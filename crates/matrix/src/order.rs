//! Row re-ordering (§4.1 of the paper).
//!
//! DMC-base's memory footprint depends heavily on the order rows are
//! scanned: dense rows early create many candidates. §4.1 therefore scans
//! sparser rows first. Sorting exactly by density is expensive on disk-scale
//! data, so the paper instead buckets rows by density ranges `[2^i, 2^(i+1))`
//! during the first scan and reads lower-density buckets first — at most
//! `ceil(log2 m) + 1` buckets.
//!
//! This module computes both orders as row-index permutations; algorithms
//! scan via the permutation rather than physically shuffling the matrix.

use crate::{RowId, SparseMatrix};

/// How the second scan should visit rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RowOrder {
    /// Original row order (no §4.1 optimization).
    #[default]
    Original,
    /// The paper's bucketed order: density buckets `[2^i, 2^(i+1))`,
    /// sparsest bucket first, original order within a bucket.
    BucketedSparsestFirst,
    /// Exact stable sort by ascending density (the idealized order §4.1
    /// approximates).
    ExactSparsestFirst,
    /// A caller-supplied permutation of `0..n_rows`.
    Custom(Vec<RowId>),
}

impl RowOrder {
    /// Materializes this order as a permutation of row indices for `matrix`.
    ///
    /// # Panics
    ///
    /// Panics if a [`RowOrder::Custom`] permutation has the wrong length or
    /// is not a permutation of `0..n_rows`.
    #[must_use]
    pub fn permutation(&self, matrix: &SparseMatrix) -> Vec<RowId> {
        match self {
            RowOrder::Original => (0..matrix.n_rows() as RowId).collect(),
            RowOrder::BucketedSparsestFirst => bucketed_sparsest_first(matrix),
            RowOrder::ExactSparsestFirst => exact_sparsest_first(matrix),
            RowOrder::Custom(perm) => {
                validate_permutation(perm, matrix.n_rows());
                perm.clone()
            }
        }
    }
}

/// Density bucket index of a row with `len` 1s: rows with 0 or 1 entries
/// share bucket 0; otherwise bucket `i` holds `[2^i, 2^(i+1))`.
#[inline]
#[must_use]
pub fn density_bucket(len: usize) -> usize {
    if len <= 1 {
        0
    } else {
        usize::BITS as usize - 1 - len.leading_zeros() as usize
    }
}

/// The paper's bucketed sparsest-first permutation.
#[must_use]
pub fn bucketed_sparsest_first(matrix: &SparseMatrix) -> Vec<RowId> {
    // Counting sort over at most ceil(log2 m) + 1 buckets, stable within
    // a bucket — exactly the "write rows into per-bucket files during the
    // first scan, then read buckets in order" behaviour of §4.1.
    let n = matrix.n_rows();
    let max_bucket = density_bucket(matrix.n_cols().max(1)) + 1;
    let mut counts = vec![0usize; max_bucket + 1];
    for r in 0..n {
        counts[density_bucket(matrix.row_len(r))] += 1;
    }
    let mut starts = vec![0usize; max_bucket + 1];
    let mut acc = 0;
    for (bucket, &count) in counts.iter().enumerate() {
        starts[bucket] = acc;
        acc += count;
    }
    let mut perm = vec![0 as RowId; n];
    for r in 0..n {
        let bucket = density_bucket(matrix.row_len(r));
        perm[starts[bucket]] = r as RowId;
        starts[bucket] += 1;
    }
    perm
}

/// Exact stable ascending-density permutation.
#[must_use]
pub fn exact_sparsest_first(matrix: &SparseMatrix) -> Vec<RowId> {
    let mut perm: Vec<RowId> = (0..matrix.n_rows() as RowId).collect();
    perm.sort_by_key(|&r| matrix.row_len(r as usize));
    perm
}

fn validate_permutation(perm: &[RowId], n_rows: usize) {
    assert_eq!(
        perm.len(),
        n_rows,
        "custom row order has {} entries for {} rows",
        perm.len(),
        n_rows
    );
    let mut seen = vec![false; n_rows];
    for &r in perm {
        let idx = r as usize;
        assert!(idx < n_rows, "row index {r} out of range");
        assert!(!seen[idx], "row index {r} appears twice");
        seen[idx] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseMatrix;

    /// Figure 2 of the paper, reconstructed from the textual constraints of
    /// Example 3.1 and §4.1 (9 rows, 6 columns with five 1s each; the unique
    /// matrix reproducing the Example 3.1 trace, the final 80% rules and the
    /// original-order candidate history). 0-indexed columns.
    pub(crate) fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],          // r1 = {c2, c6}
                vec![2, 3, 4],       // r2 = {c3, c4, c5}
                vec![2, 4],          // r3 = {c3, c5}
                vec![0, 1, 2, 5],    // r4 = {c1, c2, c3, c6}
                vec![0, 1, 2, 3, 4], // r5 = {c1..c5}
                vec![0, 1, 3, 5],    // r6 = {c1, c2, c4, c6}
                vec![0, 2, 3, 4, 5], // r7 = {c1, c3, c4, c5, c6}
                vec![3, 5],          // r8 = {c4, c6}
                vec![0, 1, 4],       // r9 = {c1, c2, c5}
            ],
        )
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(density_bucket(0), 0);
        assert_eq!(density_bucket(1), 0);
        assert_eq!(density_bucket(2), 1);
        assert_eq!(density_bucket(3), 1);
        assert_eq!(density_bucket(4), 2);
        assert_eq!(density_bucket(7), 2);
        assert_eq!(density_bucket(8), 3);
    }

    #[test]
    fn sparsest_first_order_of_fig2_matches_paper() {
        // §4.1 lists the sparsest-first order of Fig. 2 as
        // (r1, r3, r8, r2, r5, r4, r6, r9, r7); with the reconstructed
        // densities (2,3,2,4,5,4,5,2,3) the true stable density sort is
        // (r1, r3, r8, r2, r9, r4, r6, r5, r7) — the paper's listing swaps
        // r5 and r9 (see DESIGN.md).
        let m = fig2();
        let perm = exact_sparsest_first(&m);
        let densities: Vec<usize> = perm.iter().map(|&r| m.row_len(r as usize)).collect();
        assert!(densities.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(perm, vec![0, 2, 7, 1, 8, 3, 5, 4, 6]);
    }

    #[test]
    fn bucketed_order_is_stable_and_bucket_monotone() {
        let m = fig2();
        let perm = bucketed_sparsest_first(&m);
        let buckets: Vec<usize> = perm
            .iter()
            .map(|&r| density_bucket(m.row_len(r as usize)))
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        // Bucket [2,4) holds r1,r2,r3,r8,r9 in original order; bucket [4,8)
        // holds r4..r7 in original order.
        assert_eq!(perm, vec![0, 1, 2, 7, 8, 3, 4, 5, 6]);
    }

    #[test]
    fn original_and_custom_orders() {
        let m = fig2();
        assert_eq!(
            RowOrder::Original.permutation(&m),
            (0..9).collect::<Vec<RowId>>()
        );
        let custom: Vec<RowId> = (0..9).rev().collect();
        assert_eq!(RowOrder::Custom(custom.clone()).permutation(&m), custom);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn custom_order_rejects_duplicates() {
        let m = fig2();
        let _ = RowOrder::Custom(vec![0; 9]).permutation(&m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn custom_order_rejects_out_of_range() {
        let m = SparseMatrix::from_rows(2, vec![vec![0], vec![1]]);
        let _ = RowOrder::Custom(vec![0, 5]).permutation(&m);
    }

    #[test]
    fn empty_matrix_orders() {
        let m = SparseMatrix::from_rows(3, vec![]);
        assert!(RowOrder::BucketedSparsestFirst.permutation(&m).is_empty());
        assert!(RowOrder::ExactSparsestFirst.permutation(&m).is_empty());
    }
}
