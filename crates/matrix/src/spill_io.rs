//! Pluggable I/O surface for the out-of-core spill, with deterministic
//! fault injection.
//!
//! The DMC paper's exactness guarantee ("no false positives or negatives")
//! is only as strong as the spill files the out-of-core drivers stake it
//! on. [`SpillIo`] abstracts the create/open/remove surface that
//! [`crate::spill::BucketSpill`] writes through, so tests (in any crate)
//! can swap the real filesystem ([`StdFsIo`]) for [`FaultyIo`]: a wrapper
//! that injects a seeded, deterministic [`FaultPlan`] of write failures,
//! torn writes, bit flips, short reads and EINTR-style transient errors.
//!
//! Two more pieces live here because every spill user needs them:
//!
//! * [`RetryPolicy`] — bounded retries with deterministic jittered
//!   exponential backoff for faults classified transient by
//!   [`is_transient`]. The contract an implementation must honor for
//!   retries to be sound: a *transient* failure is clean (no bytes were
//!   consumed or produced by the failed call).
//! * [`SpillIoStats`] — shared atomic counters (frames, retries, detected
//!   corruption) that the drivers roll into the run report's `io` section.
//!
//! [`crc32`] is the hand-rolled IEEE CRC-32 the framed spill codec
//! checksums rows with (the sanctioned offline dependency set has no
//! checksum crate).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// A writable spill file. Implementations may buffer internally; the
/// spill calls [`Write::flush`] before any replay.
pub trait SpillWrite: Write + Send {}
impl<T: Write + Send> SpillWrite for T {}

/// A readable spill file.
pub trait SpillRead: Read + Send {}
impl<T: Read + Send> SpillRead for T {}

/// The spill's file-system surface: everything `BucketSpill` and
/// `SpillReplay` do to disk goes through one of these three calls.
pub trait SpillIo: Send + Sync {
    /// Creates (truncating) a bucket file for writing.
    ///
    /// # Errors
    ///
    /// Propagates creation failures.
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>>;

    /// Opens an existing bucket file for reading.
    ///
    /// # Errors
    ///
    /// Propagates open failures.
    fn open(&self, path: &Path) -> io::Result<Box<dyn SpillRead>>;

    /// Removes a bucket file (cleanup; callers ignore failures).
    ///
    /// # Errors
    ///
    /// Propagates removal failures.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Short name for debug output.
    fn label(&self) -> &'static str {
        "spill-io"
    }
}

/// The real filesystem: buffered `std::fs` files.
#[derive(Clone, Copy, Debug, Default)]
pub struct StdFsIo;

impl SpillIo for StdFsIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)?;
        Ok(Box::new(BufWriter::new(file)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn SpillRead>> {
        Ok(Box::new(BufReader::new(File::open(path)?)))
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn label(&self) -> &'static str {
        "std-fs"
    }
}

/// `true` for error kinds worth retrying: the EINTR-style interruptions
/// that clear on their own. Everything else (disk full, I/O error,
/// permission) is permanent and must surface to the caller.
#[must_use]
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Bounded retry with deterministic jittered exponential backoff, applied
/// by the spill to operations that fail with a [transient](is_transient)
/// error kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per operation after the first attempt. `0` disables
    /// retrying entirely.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Hard cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// The default policy: 3 retries, 1 ms base backoff, 50 ms cap.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// No retries: every failure is final.
    #[must_use]
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            seed: 0,
        }
    }

    /// A policy with `max_retries` retries and the standard backoff.
    #[must_use]
    pub fn with_retries(max_retries: u32) -> Self {
        Self {
            max_retries,
            ..Self::standard()
        }
    }

    /// The jittered backoff before retry number `attempt` (1-based),
    /// advancing the caller's jitter state. Deterministic per seed.
    #[must_use]
    pub fn backoff(&self, attempt: u32, jitter: &mut u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        // Full jitter: uniform in [exp/2, exp], so synchronized retriers
        // de-correlate while the expected backoff still doubles.
        let r = xorshift64(jitter);
        let nanos = exp.as_nanos().min(u128::from(u64::MAX)) as u64;
        let jittered = nanos / 2 + (r % (nanos / 2 + 1));
        Duration::from_nanos(jittered).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::standard()
    }
}

/// The xorshift64 step used for jitter and seeded fault plans: tiny,
/// deterministic, and good enough for test scheduling (not cryptography).
fn xorshift64(state: &mut u64) -> u64 {
    let mut x = state.wrapping_add(0x2545_f491_4f6c_dd1d) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// IEEE CRC-32 (polynomial `0xEDB88320`), table-driven and hand-rolled:
/// the integrity check on every spill frame.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Shared atomic counters for one spill's I/O trajectory. Cloned into
/// every replay (including cross-thread `SharedSpill` replays), snapshotted
/// by the drivers into the run report's `io` section.
#[derive(Debug, Default)]
pub struct SpillIoStats {
    /// Row frames appended by `push_row`.
    pub frames_written: AtomicU64,
    /// Row frames successfully decoded across all replays.
    pub frames_read: AtomicU64,
    /// Full replays started.
    pub replays: AtomicU64,
    /// Write calls retried after a transient failure.
    pub write_retries: AtomicU64,
    /// Read calls retried after a transient failure.
    pub read_retries: AtomicU64,
    /// Frames rejected by the checksum/framing guards.
    pub corrupt_frames: AtomicU64,
}

impl SpillIoStats {
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A plain-value copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> SpillIoSnapshot {
        SpillIoSnapshot {
            frames_written: self.frames_written.load(Ordering::Relaxed),
            frames_read: self.frames_read.load(Ordering::Relaxed),
            replays: self.replays.load(Ordering::Relaxed),
            write_retries: self.write_retries.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`SpillIoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillIoSnapshot {
    /// Row frames appended by `push_row`.
    pub frames_written: u64,
    /// Row frames successfully decoded across all replays.
    pub frames_read: u64,
    /// Full replays started.
    pub replays: u64,
    /// Write calls retried after a transient failure.
    pub write_retries: u64,
    /// Read calls retried after a transient failure.
    pub read_retries: u64,
    /// Frames rejected by the checksum/framing guards.
    pub corrupt_frames: u64,
}

/// How the spill performs its I/O: which [`SpillIo`] backend, which
/// [`RetryPolicy`], and where the bucket files live.
#[derive(Clone)]
pub struct SpillSettings {
    /// The I/O backend. Tests substitute [`FaultyIo`]; everything else
    /// uses [`StdFsIo`].
    pub io: Arc<dyn SpillIo>,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Spill directory; `None` means the system temp directory.
    pub dir: Option<PathBuf>,
}

impl SpillSettings {
    /// Standard settings over `io`.
    #[must_use]
    pub fn with_io(io: Arc<dyn SpillIo>) -> Self {
        Self {
            io,
            ..Self::default()
        }
    }

    /// Builder-style: set the retry policy.
    #[must_use]
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

impl Default for SpillSettings {
    fn default() -> Self {
        Self {
            io: Arc::new(StdFsIo),
            retry: RetryPolicy::standard(),
            dir: None,
        }
    }
}

impl fmt::Debug for SpillSettings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpillSettings")
            .field("io", &self.io.label())
            .field("retry", &self.retry)
            .field("dir", &self.dir)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One injectable fault kind.
///
/// *Transient* faults fire once and are clean: the failed call consumed
/// and produced no bytes, so a retry succeeds. *Sticky* faults keep
/// firing from their trigger operation onward (the disk stayed broken).
/// The data-damage kinds — [`TornWrite`](FaultKind::TornWrite) and
/// [`FlipByte`](FaultKind::FlipByte) — fire once, *report success*, and
/// silently damage the stream; the framed codec must detect them at
/// replay, not avoid them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The write call fails cleanly: EINTR-style if transient, ENOSPC
    /// forever after if not.
    WriteError {
        /// Whether retrying the write succeeds.
        transient: bool,
    },
    /// The write persists only a prefix of the buffer but reports full
    /// success (power loss after a partial page persist).
    TornWrite,
    /// One byte of the written buffer is flipped with `xor`; the write
    /// reports success (bit rot / silent medium corruption).
    FlipByte {
        /// The mask xor-ed into a middle byte; zero is promoted to 1.
        xor: u8,
    },
    /// The read call fails cleanly (transient or sticky-permanent EIO).
    ReadError {
        /// Whether retrying the read succeeds.
        transient: bool,
    },
    /// Reads report end-of-file from the trigger operation onward (the
    /// file lost its tail).
    ShortRead,
    /// Creating a bucket file fails with ENOSPC (sticky).
    CreateError,
    /// Opening a bucket file for replay fails (transient or sticky EIO).
    OpenError {
        /// Whether retrying the open succeeds.
        transient: bool,
    },
}

/// A [`FaultKind`] scheduled at the `op`-th operation of its class
/// (0-based; writes, reads, creates and opens are counted separately,
/// across all files of the wrapped io).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// 0-based operation index within the fault's class.
    pub op: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

impl Fault {
    fn class(&self) -> OpClass {
        match self.kind {
            FaultKind::WriteError { .. } | FaultKind::TornWrite | FaultKind::FlipByte { .. } => {
                OpClass::Write
            }
            FaultKind::ReadError { .. } | FaultKind::ShortRead => OpClass::Read,
            FaultKind::CreateError => OpClass::Create,
            FaultKind::OpenError { .. } => OpClass::Open,
        }
    }

    fn sticky(&self) -> bool {
        matches!(
            self.kind,
            FaultKind::WriteError { transient: false }
                | FaultKind::ReadError { transient: false }
                | FaultKind::ShortRead
                | FaultKind::CreateError
                | FaultKind::OpenError { transient: false }
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OpClass {
    Write,
    Read,
    Create,
    Open,
}

/// A deterministic schedule of faults. Build one explicitly with the
/// `fail_*` builders or derive one from a seed with [`FaultPlan::seeded`];
/// either way the same plan injects the same faults at the same
/// operations on every run, so a failing seed replays exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults; [`FaultyIo`] behaves like its inner io).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Fail the `n`-th write call.
    #[must_use]
    pub fn fail_write(self, n: u64, transient: bool) -> Self {
        self.with(Fault {
            op: n,
            kind: FaultKind::WriteError { transient },
        })
    }

    /// Tear the `n`-th write call: persist a prefix, report success.
    #[must_use]
    pub fn torn_write(self, n: u64) -> Self {
        self.with(Fault {
            op: n,
            kind: FaultKind::TornWrite,
        })
    }

    /// Flip a byte of the `n`-th write call's buffer with `xor`.
    #[must_use]
    pub fn flip_byte(self, n: u64, xor: u8) -> Self {
        self.with(Fault {
            op: n,
            kind: FaultKind::FlipByte { xor },
        })
    }

    /// Fail the `n`-th read call.
    #[must_use]
    pub fn fail_read(self, n: u64, transient: bool) -> Self {
        self.with(Fault {
            op: n,
            kind: FaultKind::ReadError { transient },
        })
    }

    /// Report end-of-file from the `n`-th read call onward.
    #[must_use]
    pub fn short_read(self, n: u64) -> Self {
        self.with(Fault {
            op: n,
            kind: FaultKind::ShortRead,
        })
    }

    /// Fail the `n`-th bucket-file creation with ENOSPC.
    #[must_use]
    pub fn fail_create(self, n: u64) -> Self {
        self.with(Fault {
            op: n,
            kind: FaultKind::CreateError,
        })
    }

    /// Fail the `n`-th bucket-file open.
    #[must_use]
    pub fn fail_open(self, n: u64, transient: bool) -> Self {
        self.with(Fault {
            op: n,
            kind: FaultKind::OpenError { transient },
        })
    }

    /// A pseudo-random single-fault plan derived from `seed`: uniform over
    /// the fault taxonomy, operation index in `0..48`. The same seed
    /// always yields the same plan (the CI fault sweep depends on this to
    /// replay failing seeds).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        let mut s = seed;
        let op = xorshift64(&mut s) % 48;
        let transient = xorshift64(&mut s) % 2 == 0;
        let kind = match xorshift64(&mut s) % 7 {
            0 => FaultKind::WriteError { transient },
            1 => FaultKind::TornWrite,
            2 => FaultKind::FlipByte {
                xor: (xorshift64(&mut s) % 255 + 1) as u8,
            },
            3 => FaultKind::ReadError { transient },
            4 => FaultKind::ShortRead,
            5 => FaultKind::CreateError,
            _ => FaultKind::OpenError { transient },
        };
        Self::new().with(Fault { op, kind })
    }

    /// The scheduled faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` when every scheduled fault is transient — i.e. a run under
    /// this plan with retries enabled must produce output identical to a
    /// fault-free run.
    #[must_use]
    pub fn all_transient(&self) -> bool {
        self.faults.iter().all(|f| {
            matches!(
                f.kind,
                FaultKind::WriteError { transient: true }
                    | FaultKind::ReadError { transient: true }
                    | FaultKind::OpenError { transient: true }
            )
        })
    }
}

impl fmt::Display for FaultPlan {
    /// One replayable `[op N Kind]` entry per fault — the format the CI
    /// fault sweep uploads as its failing-seed artifact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "fault plan: (empty)");
        }
        write!(f, "fault plan:")?;
        for fault in &self.faults {
            write!(f, " [op {} {:?}]", fault.op, fault.kind)?;
        }
        Ok(())
    }
}

struct FaultState {
    plan: FaultPlan,
    fired: Vec<bool>,
    writes: u64,
    reads: u64,
    creates: u64,
    opens: u64,
}

impl FaultState {
    /// The fault to inject for the next operation of `class`, if any,
    /// advancing the class counter.
    fn next_op(&mut self, class: OpClass) -> Option<Fault> {
        let n = match class {
            OpClass::Write => {
                self.writes += 1;
                self.writes - 1
            }
            OpClass::Read => {
                self.reads += 1;
                self.reads - 1
            }
            OpClass::Create => {
                self.creates += 1;
                self.creates - 1
            }
            OpClass::Open => {
                self.opens += 1;
                self.opens - 1
            }
        };
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if fault.class() != class {
                continue;
            }
            let hit = if fault.sticky() {
                fault.op <= n
            } else {
                fault.op == n && !self.fired[i]
            };
            if hit {
                self.fired[i] = true;
                return Some(*fault);
            }
        }
        None
    }
}

fn enospc() -> io::Error {
    // ENOSPC by number: the StorageFull kind is younger than our MSRV.
    io::Error::from_raw_os_error(28)
}

fn eio() -> io::Error {
    io::Error::from_raw_os_error(5)
}

fn eintr() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected transient fault")
}

/// A [`SpillIo`] that injects a [`FaultPlan`] on top of an inner backend
/// (the real filesystem by default). Wraps at the *outermost* layer —
/// above any buffering — so one spill-frame write or read is one counted
/// operation and fault positions are deterministic.
///
/// Share it via `Arc` so the miner under test and the asserting test
/// observe the same [`fired`](FaultyIo::fired) state.
pub struct FaultyIo {
    inner: Arc<dyn SpillIo>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultyIo {
    /// Faults injected over the real filesystem.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self::over(Arc::new(StdFsIo), plan)
    }

    /// Faults injected over an arbitrary inner backend.
    #[must_use]
    pub fn over(inner: Arc<dyn SpillIo>, plan: FaultPlan) -> Self {
        let fired = vec![false; plan.faults.len()];
        Self {
            inner,
            state: Arc::new(Mutex::new(FaultState {
                plan,
                fired,
                writes: 0,
                reads: 0,
                creates: 0,
                opens: 0,
            })),
        }
    }

    /// The plan this io injects.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.lock().plan.clone()
    }

    /// The scheduled faults that have fired at least once so far.
    #[must_use]
    pub fn fired(&self) -> Vec<Fault> {
        let state = self.lock();
        state
            .plan
            .faults
            .iter()
            .zip(&state.fired)
            .filter(|&(_, fired)| *fired)
            .map(|(f, _)| *f)
            .collect()
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        self.state.lock().expect("fault state poisoned")
    }
}

impl fmt::Debug for FaultyIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyIo")
            .field("plan", &self.plan())
            .finish()
    }
}

impl SpillIo for FaultyIo {
    fn create(&self, path: &Path) -> io::Result<Box<dyn SpillWrite>> {
        if self.lock().next_op(OpClass::Create).is_some() {
            return Err(enospc());
        }
        let inner = self.inner.create(path)?;
        Ok(Box::new(FaultyWriter {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn SpillRead>> {
        if let Some(fault) = self.lock().next_op(OpClass::Open) {
            return Err(match fault.kind {
                FaultKind::OpenError { transient: true } => eintr(),
                _ => eio(),
            });
        }
        let inner = self.inner.open(path)?;
        Ok(Box::new(FaultyReader {
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn label(&self) -> &'static str {
        "faulty"
    }
}

struct FaultyWriter {
    inner: Box<dyn SpillWrite>,
    state: Arc<Mutex<FaultState>>,
}

impl Write for FaultyWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let fault = self
            .state
            .lock()
            .expect("fault state poisoned")
            .next_op(OpClass::Write);
        match fault.map(|f| f.kind) {
            None => self.inner.write(buf),
            Some(FaultKind::WriteError { transient }) => {
                Err(if transient { eintr() } else { enospc() })
            }
            Some(FaultKind::TornWrite) => {
                // Persist a prefix, report full success: the classic torn
                // write the replay-side framing must catch.
                let torn = buf.len() / 2;
                self.inner.write_all(&buf[..torn])?;
                Ok(buf.len())
            }
            Some(FaultKind::FlipByte { xor }) => {
                let mut damaged = buf.to_vec();
                if let Some(last) = damaged.len().checked_sub(1) {
                    damaged[last / 2] ^= xor.max(1);
                }
                self.inner.write_all(&damaged)?;
                Ok(buf.len())
            }
            Some(_) => unreachable!("non-write fault routed to writer"),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

struct FaultyReader {
    inner: Box<dyn SpillRead>,
    state: Arc<Mutex<FaultState>>,
}

impl Read for FaultyReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let fault = self
            .state
            .lock()
            .expect("fault state poisoned")
            .next_op(OpClass::Read);
        match fault.map(|f| f.kind) {
            None => self.inner.read(buf),
            Some(FaultKind::ReadError { transient }) => {
                Err(if transient { eintr() } else { eio() })
            }
            Some(FaultKind::ShortRead) => Ok(0),
            Some(_) => unreachable!("non-read fault routed to reader"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dmc-spill-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_byte_change() {
        let base = b"hello spill frame".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for xor in [0x01u8, 0x80, 0xFF] {
                let mut damaged = base.clone();
                damaged[i] ^= xor;
                assert_ne!(crc32(&damaged), reference, "flip at {i} xor {xor:#x}");
            }
        }
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(io::ErrorKind::Interrupted));
        assert!(is_transient(io::ErrorKind::WouldBlock));
        assert!(is_transient(io::ErrorKind::TimedOut));
        assert!(!is_transient(io::ErrorKind::NotFound));
        assert!(!is_transient(enospc().kind()));
        assert!(!is_transient(eio().kind()));
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let policy = RetryPolicy::standard();
        let mut j1 = policy.seed;
        let mut j2 = policy.seed;
        for attempt in 1..=8 {
            let a = policy.backoff(attempt, &mut j1);
            let b = policy.backoff(attempt, &mut j2);
            assert_eq!(a, b, "same seed, same backoff");
            assert!(a <= policy.max_backoff);
        }
        let mut j = 0;
        assert_eq!(RetryPolicy::none().backoff(1, &mut j), Duration::ZERO);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        for seed in 0..64 {
            assert_eq!(FaultPlan::seeded(seed), FaultPlan::seeded(seed));
        }
        let kinds: std::collections::BTreeSet<String> = (0..64)
            .map(|s| format!("{:?}", FaultPlan::seeded(s).faults()[0].kind))
            .collect();
        assert!(kinds.len() > 4, "seed space covers the taxonomy: {kinds:?}");
    }

    #[test]
    fn transient_write_fault_fires_once() {
        let path = scratch("fault-once.bin");
        let io = FaultyIo::new(FaultPlan::new().fail_write(1, true));
        let mut w = io.create(&path).unwrap();
        assert_eq!(w.write(b"aa").unwrap(), 2);
        let err = w.write(b"bb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(w.write(b"bb").unwrap(), 2, "clean retry succeeds");
        w.flush().unwrap();
        drop(w);
        assert_eq!(std::fs::read(&path).unwrap(), b"aabb");
        assert_eq!(io.fired().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn permanent_write_fault_is_sticky() {
        let path = scratch("fault-sticky.bin");
        let io = FaultyIo::new(FaultPlan::new().fail_write(0, false));
        let mut w = io.create(&path).unwrap();
        for _ in 0..3 {
            let err = w.write(b"xx").unwrap_err();
            assert_eq!(err.raw_os_error(), Some(28), "ENOSPC every time");
        }
        drop(w);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_read_reports_eof_forever() {
        let path = scratch("fault-short.bin");
        std::fs::write(&path, b"0123456789").unwrap();
        let io = FaultyIo::new(FaultPlan::new().short_read(1));
        let mut r = io.open(&path).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).unwrap(), 4);
        assert_eq!(r.read(&mut buf).unwrap(), 0, "tail is gone");
        assert_eq!(r.read(&mut buf).unwrap(), 0, "and stays gone");
        drop(r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flip_byte_damages_exactly_one_byte() {
        let path = scratch("fault-flip.bin");
        let io = FaultyIo::new(FaultPlan::new().flip_byte(0, 0x40));
        let mut w = io.create(&path).unwrap();
        w.write_all(b"abcdefgh").unwrap();
        w.flush().unwrap();
        drop(w);
        let written = std::fs::read(&path).unwrap();
        let diffs: Vec<usize> = written
            .iter()
            .zip(b"abcdefgh")
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one byte flipped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_fault_is_enospc() {
        let io = FaultyIo::new(FaultPlan::new().fail_create(0));
        let err = match io.create(Path::new("/nonexistent-dir-ignored/by-fault")) {
            Err(e) => e,
            Ok(_) => panic!("create should fail"),
        };
        assert_eq!(err.raw_os_error(), Some(28));
    }

    #[test]
    fn fault_plan_display_is_replayable() {
        let plan = FaultPlan::new().fail_write(3, true).short_read(7);
        let s = plan.to_string();
        assert!(s.contains("op 3"), "{s}");
        assert!(s.contains("op 7"), "{s}");
        assert!(FaultPlan::new().to_string().contains("empty"));
    }
}
