//! Disk-backed density buckets (§4.1's out-of-core row re-ordering).
//!
//! The paper avoids sorting disk-resident data by density: during the
//! first scan each row is appended to one of `⌈log₂ m⌉ + 1` bucket files
//! by its 1-count, and the second scan reads the bucket files sparsest
//! first. [`BucketSpill`] implements exactly that: rows go in via
//! [`BucketSpill::push_row`], come back out in bucketed sparsest-first
//! order via [`BucketSpill::replay`], any number of times.
//!
//! # Frame format
//!
//! Every row is one self-checking little-endian frame:
//!
//! ```text
//! len: u32 | !len: u32 | crc: u32 | ids: len × u32
//! ```
//!
//! `!len` is the bitwise complement of `len` (a guard that catches any
//! corruption of the length field itself), and `crc` is the IEEE CRC-32
//! of the payload bytes. [`SpillReplay`] verifies both, plus a per-bucket
//! frame count recorded at flush time, so torn writes, truncation, bit
//! rot and lost tails all surface as a typed
//! [`SpillReadError::Corrupt`] — never as silently-wrong rows. The DMC
//! exactness guarantee survives a bad disk by failing loudly.
//!
//! # Faults and retries
//!
//! All file I/O goes through the [`crate::spill_io::SpillIo`] backend in
//! [`SpillSettings`], so tests can inject deterministic faults with
//! [`crate::spill_io::FaultyIo`]. Failures whose
//! [`io::ErrorKind`] is [transient](crate::spill_io::is_transient) are
//! retried with bounded jittered backoff per the settings'
//! [`RetryPolicy`]; retry and corruption counts accumulate in the spill's
//! shared [`SpillIoStats`] for the run report.
//!
//! # Cleanup
//!
//! Every handle that can read the files — the [`BucketSpill`] itself, each
//! [`SharedSpill`] clone, and each live [`SpillReplay`] — shares ownership
//! of an internal guard; the bucket files are unlinked when the **last**
//! handle drops. An early error return (or a spill dropped mid-replay)
//! therefore never strands files on disk, and a replay in flight keeps its
//! files alive even if the spill that created it is gone.
//!
//! # Sharing
//!
//! [`BucketSpill::share`] seals the spill (no more writes) into a
//! [`SharedSpill`], which is `Clone + Send + Sync`: the parallel streamed
//! drivers hand clones to reader threads that replay the same files
//! concurrently.

use crate::order::density_bucket;
use crate::spill_io::{
    crc32, is_transient, RetryPolicy, SpillIo, SpillIoStats, SpillRead, SpillSettings, SpillWrite,
};
use crate::ColumnId;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static SPILL_ID: AtomicU64 = AtomicU64::new(0);

/// Bytes of frame header preceding the payload: `len | !len | crc`.
pub const FRAME_HEADER_BYTES: u64 = 12;

/// Upper bound on a decoded row length. A frame whose length field passes
/// the complement guard but exceeds this is corrupt framing (e.g. a torn
/// write that happened to produce complementary words), not a real row.
const MAX_ROW_LEN: u32 = 1 << 26;

/// A spill read failure: either the underlying I/O failed permanently, or
/// the frame integrity checks rejected the data.
#[derive(Debug)]
pub enum SpillReadError {
    /// The backend failed after exhausting any retries.
    Io {
        /// What the spill was doing ("open spill bucket", "read spill frame").
        context: &'static str,
        /// The underlying error, kind preserved.
        error: io::Error,
    },
    /// A frame failed its integrity checks.
    Corrupt {
        /// 0-based index of the offending frame in replay order.
        frame: u64,
        /// Which guard tripped.
        reason: &'static str,
    },
}

impl fmt::Display for SpillReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillReadError::Io { context, error } => write!(f, "spill io ({context}): {error}"),
            SpillReadError::Corrupt { frame, reason } => {
                write!(f, "corrupt spill frame {frame}: {reason}")
            }
        }
    }
}

impl std::error::Error for SpillReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillReadError::Io { error, .. } => Some(error),
            SpillReadError::Corrupt { .. } => None,
        }
    }
}

/// Owns the on-disk bucket files; unlinks them (through the spill's io
/// backend) on drop. Shared (via `Arc`) by the spill, its [`SharedSpill`]
/// handles, and live replays, so the files survive exactly as long as
/// something can still read them.
struct SpillFiles {
    io: Arc<dyn SpillIo>,
    paths: Mutex<Vec<Option<PathBuf>>>,
    /// Frames per bucket, recorded at flush time; replays verify against it.
    counts: Mutex<Vec<u64>>,
}

impl Drop for SpillFiles {
    fn drop(&mut self) {
        let paths = self.paths.get_mut().expect("spill path lock poisoned");
        for path in paths.iter().flatten() {
            let _ = self.io.remove(path);
        }
    }
}

impl SpillFiles {
    fn snapshot(&self) -> (Vec<Option<PathBuf>>, Vec<u64>) {
        (
            self.paths.lock().expect("spill path lock poisoned").clone(),
            self.counts
                .lock()
                .expect("spill count lock poisoned")
                .clone(),
        )
    }
}

/// Encodes `row` as one frame into `scratch` (cleared first).
fn encode_frame(scratch: &mut Vec<u8>, row: &[ColumnId]) {
    scratch.clear();
    scratch.reserve(FRAME_HEADER_BYTES as usize + 4 * row.len());
    let len = row.len() as u32;
    scratch.extend_from_slice(&len.to_le_bytes());
    scratch.extend_from_slice(&(!len).to_le_bytes());
    scratch.extend_from_slice(&[0u8; 4]); // crc placeholder
    for &c in row {
        scratch.extend_from_slice(&c.to_le_bytes());
    }
    let crc = crc32(&scratch[FRAME_HEADER_BYTES as usize..]);
    scratch[8..12].copy_from_slice(&crc.to_le_bytes());
}

/// Writes all of `buf`, retrying transient failures per `retry`.
/// Assumes the transient-failure contract: a failed call wrote nothing.
fn write_full_retry(
    writer: &mut dyn Write,
    buf: &[u8],
    retry: &RetryPolicy,
    jitter: &mut u64,
    stats: &SpillIoStats,
) -> io::Result<()> {
    let mut offset = 0;
    let mut attempts = 0u32;
    while offset < buf.len() {
        match writer.write(&buf[offset..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "spill write accepted no bytes",
                ))
            }
            Ok(n) => offset += n,
            Err(e) if is_transient(e.kind()) && attempts < retry.max_retries => {
                attempts += 1;
                SpillIoStats::add(&stats.write_retries, 1);
                let pause = retry.backoff(attempts, jitter);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads up to `buf.len()` bytes, stopping early only at end-of-file;
/// transient failures are retried per `retry`. Returns the bytes read.
fn read_full_retry(
    reader: &mut dyn Read,
    buf: &mut [u8],
    retry: &RetryPolicy,
    jitter: &mut u64,
    stats: &SpillIoStats,
) -> io::Result<usize> {
    let mut offset = 0;
    let mut attempts = 0u32;
    while offset < buf.len() {
        match reader.read(&mut buf[offset..]) {
            Ok(0) => break,
            Ok(n) => offset += n,
            Err(e) if is_transient(e.kind()) && attempts < retry.max_retries => {
                attempts += 1;
                SpillIoStats::add(&stats.read_retries, 1);
                let pause = retry.backoff(attempts, jitter);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(offset)
}

/// Writes rows into per-density bucket files and replays them sparsest
/// bucket first.
pub struct BucketSpill {
    dir: PathBuf,
    prefix: String,
    /// Lazily opened writers, one per bucket.
    writers: Vec<Option<Box<dyn SpillWrite>>>,
    /// Frames pushed per bucket; synced to `files` at flush time.
    counts: Vec<u64>,
    files: Arc<SpillFiles>,
    settings: SpillSettings,
    stats: Arc<SpillIoStats>,
    scratch: Vec<u8>,
    jitter: u64,
    rows: usize,
    bytes: u64,
}

impl BucketSpill {
    /// Creates a spill area under `dir` for matrices of up to `n_cols`
    /// columns, with default I/O settings.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>, n_cols: usize) -> io::Result<Self> {
        let settings = SpillSettings {
            dir: Some(dir.into()),
            ..SpillSettings::default()
        };
        Self::with_settings(n_cols, settings)
    }

    /// Creates a spill area in the system temp directory with default
    /// I/O settings.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn in_temp(n_cols: usize) -> io::Result<Self> {
        Self::with_settings(n_cols, SpillSettings::default())
    }

    /// Creates a spill area with explicit [`SpillSettings`] (backend,
    /// retry policy, directory).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn with_settings(n_cols: usize, settings: SpillSettings) -> io::Result<Self> {
        let dir = settings
            .dir
            .clone()
            .unwrap_or_else(|| std::env::temp_dir().join("dmc-spill"));
        std::fs::create_dir_all(&dir)?;
        let buckets = density_bucket(n_cols.max(1)) + 1;
        let prefix = format!(
            "dmc-spill-{}-{}",
            std::process::id(),
            SPILL_ID.fetch_add(1, Ordering::Relaxed)
        );
        let mut writers = Vec::with_capacity(buckets);
        writers.resize_with(buckets, || None);
        let jitter = settings.retry.seed;
        Ok(Self {
            dir,
            prefix,
            writers,
            counts: vec![0; buckets],
            files: Arc::new(SpillFiles {
                io: Arc::clone(&settings.io),
                paths: Mutex::new(vec![None; buckets]),
                counts: Mutex::new(vec![0; buckets]),
            }),
            settings,
            stats: Arc::new(SpillIoStats::default()),
            scratch: Vec::new(),
            jitter,
            rows: 0,
            bytes: 0,
        })
    }

    fn bucket_path(&self, bucket: usize) -> PathBuf {
        self.dir.join(format!("{}-b{bucket}.rows", self.prefix))
    }

    /// Rows spilled so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes written to the bucket files so far (frame headers included).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The spill's shared I/O counters.
    #[must_use]
    pub fn stats(&self) -> Arc<SpillIoStats> {
        Arc::clone(&self.stats)
    }

    /// Appends a sorted row to its density bucket as one checksummed
    /// frame, retrying transient write failures per the retry policy.
    ///
    /// # Errors
    ///
    /// Propagates file IO errors (after retries are exhausted).
    pub fn push_row(&mut self, row: &[ColumnId]) -> io::Result<()> {
        let bucket = density_bucket(row.len()).min(self.writers.len() - 1);
        if self.writers[bucket].is_none() {
            let path = self.bucket_path(bucket);
            let writer = self.settings.io.create(&path)?;
            self.writers[bucket] = Some(writer);
            self.files.paths.lock().expect("spill path lock poisoned")[bucket] = Some(path);
        }
        encode_frame(&mut self.scratch, row);
        let writer = self.writers[bucket].as_mut().expect("just opened");
        write_full_retry(
            writer.as_mut(),
            &self.scratch,
            &self.settings.retry,
            &mut self.jitter,
            &self.stats,
        )?;
        self.counts[bucket] += 1;
        self.rows += 1;
        self.bytes += self.scratch.len() as u64;
        SpillIoStats::add(&self.stats.frames_written, 1);
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        for writer in self.writers.iter_mut().flatten() {
            writer.flush()?;
        }
        *self.files.counts.lock().expect("spill count lock poisoned") = self.counts.clone();
        Ok(())
    }

    /// Flushes writers and returns an iterator over all rows, sparsest
    /// bucket first (original order within a bucket). Can be called
    /// repeatedly. The replay keeps the bucket files alive even if the
    /// spill is dropped before the replay finishes.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn replay(&mut self) -> io::Result<SpillReplay> {
        self.flush()?;
        Ok(SpillReplay::over(
            Arc::clone(&self.files),
            self.settings.retry,
            Arc::clone(&self.stats),
        ))
    }

    /// Seals the spill for reading and returns a cloneable, thread-safe
    /// handle over the same bucket files. No further rows can be pushed;
    /// the files are removed when the last handle (and last live replay)
    /// drops.
    ///
    /// # Errors
    ///
    /// Propagates flush failures (the files are still cleaned up).
    pub fn share(mut self) -> io::Result<SharedSpill> {
        self.flush()?;
        // Close the write handles; SharedSpill re-opens per replay.
        self.writers.clear();
        Ok(SharedSpill {
            files: Arc::clone(&self.files),
            retry: self.settings.retry,
            stats: Arc::clone(&self.stats),
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed, read-only view of a [`BucketSpill`]'s files, safe to clone
/// across threads. Created by [`BucketSpill::share`].
#[derive(Clone)]
pub struct SharedSpill {
    files: Arc<SpillFiles>,
    retry: RetryPolicy,
    stats: Arc<SpillIoStats>,
    rows: usize,
    bytes: u64,
}

impl SharedSpill {
    /// Rows in the spill.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes in the spill's bucket files (frame headers included).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The spill's shared I/O counters.
    #[must_use]
    pub fn stats(&self) -> Arc<SpillIoStats> {
        Arc::clone(&self.stats)
    }

    /// A fresh sparsest-bucket-first row iterator. Independent replays
    /// (including concurrent ones from clones) do not interfere.
    #[must_use]
    pub fn replay(&self) -> SpillReplay {
        SpillReplay::over(Arc::clone(&self.files), self.retry, Arc::clone(&self.stats))
    }
}

/// Row iterator over a [`BucketSpill`], sparsest bucket first. Each frame
/// is integrity-checked; the first error (I/O after retries, or corrupt
/// frame) ends the iteration.
pub struct SpillReplay {
    paths: Vec<Option<PathBuf>>,
    counts: Vec<u64>,
    next_bucket: usize,
    current: Option<Box<dyn SpillRead>>,
    /// Frames expected in the current bucket (recorded at flush).
    expected_in_bucket: u64,
    /// Frames decoded from the current bucket so far.
    read_in_bucket: u64,
    /// Global frame index in replay order, for error reporting.
    frame_index: u64,
    retry: RetryPolicy,
    jitter: u64,
    stats: Arc<SpillIoStats>,
    finished: bool,
    /// Keeps the bucket files on disk while this replay is alive.
    files: Arc<SpillFiles>,
}

impl SpillReplay {
    fn over(files: Arc<SpillFiles>, retry: RetryPolicy, stats: Arc<SpillIoStats>) -> Self {
        let (paths, counts) = files.snapshot();
        SpillIoStats::add(&stats.replays, 1);
        let jitter = retry.seed ^ 0xD6E8_FEB8_6659_FD93;
        Self {
            paths,
            counts,
            next_bucket: 0,
            current: None,
            expected_in_bucket: 0,
            read_in_bucket: 0,
            frame_index: 0,
            retry,
            jitter,
            stats,
            finished: false,
            files,
        }
    }

    fn corrupt(&mut self, reason: &'static str) -> SpillReadError {
        SpillIoStats::add(&self.stats.corrupt_frames, 1);
        self.finished = true;
        SpillReadError::Corrupt {
            frame: self.frame_index,
            reason,
        }
    }

    fn io_error(&mut self, context: &'static str, error: io::Error) -> SpillReadError {
        self.finished = true;
        SpillReadError::Io { context, error }
    }

    /// Opens bucket `bucket`, retrying transient open failures.
    fn open_bucket(&mut self, bucket: usize) -> io::Result<Box<dyn SpillRead>> {
        let path = self.paths[bucket].as_ref().expect("caller checked");
        let mut attempts = 0u32;
        loop {
            match self.files.io.open(path) {
                Ok(reader) => return Ok(reader),
                Err(e) if is_transient(e.kind()) && attempts < self.retry.max_retries => {
                    attempts += 1;
                    SpillIoStats::add(&self.stats.read_retries, 1);
                    let pause = self.retry.backoff(attempts, &mut self.jitter);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Decodes the next frame from the current reader. `Ok(None)` means a
    /// clean end-of-bucket (count verified by the caller's loop).
    fn read_frame(&mut self) -> Result<Option<Vec<ColumnId>>, SpillReadError> {
        let mut header = [0u8; FRAME_HEADER_BYTES as usize];
        let reader = self.current.as_mut().expect("caller checked").as_mut();
        let got = match read_full_retry(
            reader,
            &mut header,
            &self.retry,
            &mut self.jitter,
            &self.stats,
        ) {
            Ok(got) => got,
            Err(e) => return Err(self.io_error("read spill frame", e)),
        };
        if got == 0 {
            // Clean end-of-bucket; verify the frame count before moving on.
            if self.read_in_bucket != self.expected_in_bucket {
                return Err(self.corrupt("row count mismatch"));
            }
            return Ok(None);
        }
        if got < header.len() {
            return Err(self.corrupt("truncated frame"));
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let guard = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if guard != !len {
            return Err(self.corrupt("length guard mismatch"));
        }
        if len > MAX_ROW_LEN {
            return Err(self.corrupt("implausible row length"));
        }
        let mut payload = vec![0u8; 4 * len as usize];
        let reader = self.current.as_mut().expect("caller checked").as_mut();
        let got = match read_full_retry(
            reader,
            &mut payload,
            &self.retry,
            &mut self.jitter,
            &self.stats,
        ) {
            Ok(got) => got,
            Err(e) => return Err(self.io_error("read spill frame", e)),
        };
        if got < payload.len() {
            return Err(self.corrupt("truncated frame"));
        }
        if crc32(&payload) != crc {
            return Err(self.corrupt("checksum mismatch"));
        }
        let row: Vec<ColumnId> = payload
            .chunks_exact(4)
            .map(|b| ColumnId::from_le_bytes(b.try_into().expect("4 bytes")))
            .collect();
        self.read_in_bucket += 1;
        self.frame_index += 1;
        SpillIoStats::add(&self.stats.frames_read, 1);
        Ok(Some(row))
    }
}

impl Iterator for SpillReplay {
    type Item = Result<Vec<ColumnId>, SpillReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.finished {
            return None;
        }
        loop {
            if self.current.is_some() {
                match self.read_frame() {
                    Ok(Some(row)) => return Some(Ok(row)),
                    Ok(None) => self.current = None,
                    Err(e) => return Some(Err(e)),
                }
            }
            // Advance to the next existing bucket file.
            loop {
                if self.next_bucket >= self.paths.len() {
                    self.finished = true;
                    return None;
                }
                let bucket = self.next_bucket;
                self.next_bucket += 1;
                if self.paths[bucket].is_some() {
                    match self.open_bucket(bucket) {
                        Ok(reader) => {
                            self.current = Some(reader);
                            self.expected_in_bucket = self.counts[bucket];
                            self.read_in_bucket = 0;
                            break;
                        }
                        Err(e) => return Some(Err(self.io_error("open spill bucket", e))),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill_io::{FaultPlan, FaultyIo};

    fn temp_dir() -> PathBuf {
        std::env::temp_dir().join("dmc-spill-tests")
    }

    fn faulty_settings(plan: FaultPlan, retry: RetryPolicy) -> (SpillSettings, Arc<FaultyIo>) {
        let io = Arc::new(FaultyIo::new(plan));
        let settings = SpillSettings::with_io(Arc::<FaultyIo>::clone(&io) as Arc<dyn SpillIo>)
            .retry(RetryPolicy {
                base_backoff: std::time::Duration::ZERO,
                ..retry
            });
        let settings = SpillSettings {
            dir: Some(temp_dir()),
            ..settings
        };
        (settings, io)
    }

    #[test]
    fn replay_orders_buckets_sparsest_first() {
        let mut spill = BucketSpill::new(temp_dir(), 100).unwrap();
        spill.push_row(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap(); // bucket 3
        spill.push_row(&[9]).unwrap(); // bucket 0
        spill.push_row(&[1, 2]).unwrap(); // bucket 1
        spill.push_row(&[7]).unwrap(); // bucket 0
        assert_eq!(spill.rows(), 4);

        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(
            rows,
            vec![vec![9], vec![7], vec![1, 2], vec![1, 2, 3, 4, 5, 6, 7, 8]]
        );
    }

    #[test]
    fn replay_is_repeatable() {
        let mut spill = BucketSpill::new(temp_dir(), 10).unwrap();
        spill.push_row(&[0, 1]).unwrap();
        spill.push_row(&[2]).unwrap();
        let first: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        let second: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
        let snap = spill.stats().snapshot();
        assert_eq!(snap.frames_written, 2);
        assert_eq!(snap.frames_read, 4, "two frames per replay");
        assert_eq!(snap.replays, 2);
        assert_eq!(snap.corrupt_frames, 0);
    }

    #[test]
    fn byte_count_tracks_encoded_size() {
        let mut spill = BucketSpill::new(temp_dir(), 10).unwrap();
        assert_eq!(spill.bytes(), 0);
        spill.push_row(&[0, 1, 2]).unwrap(); // 12-byte header + 3*4
        spill.push_row(&[]).unwrap(); // 12-byte header
        assert_eq!(spill.bytes(), 36);
        let shared = spill.share().unwrap();
        assert_eq!(shared.bytes(), 36);
    }

    #[test]
    fn empty_spill_replays_nothing() {
        let mut spill = BucketSpill::new(temp_dir(), 5).unwrap();
        assert_eq!(spill.replay().unwrap().count(), 0);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut spill = BucketSpill::new(temp_dir(), 5).unwrap();
        spill.push_row(&[]).unwrap();
        spill.push_row(&[3]).unwrap();
        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(rows, vec![vec![], vec![3]]);
    }

    #[test]
    fn files_are_cleaned_up_on_drop() {
        let dir = temp_dir();
        let path;
        {
            let mut spill = BucketSpill::new(&dir, 10).unwrap();
            spill.push_row(&[1]).unwrap();
            path = spill.bucket_path(0);
            let _ = spill.replay().unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "bucket file removed on drop");
    }

    #[test]
    fn live_replay_keeps_files_after_spill_drop() {
        let dir = temp_dir();
        let mut spill = BucketSpill::new(&dir, 10).unwrap();
        spill.push_row(&[1]).unwrap();
        spill.push_row(&[2]).unwrap();
        let path = spill.bucket_path(0);
        let mut replay = spill.replay().unwrap();
        assert_eq!(replay.next().unwrap().unwrap(), vec![1]);
        drop(spill);
        assert!(path.exists(), "replay in flight keeps the file");
        assert_eq!(replay.next().unwrap().unwrap(), vec![2]);
        drop(replay);
        assert!(!path.exists(), "last handle removes the file");
    }

    #[test]
    fn shared_spill_replays_from_clones_and_cleans_up_last() {
        let dir = temp_dir();
        let mut spill = BucketSpill::new(&dir, 10).unwrap();
        spill.push_row(&[0, 1]).unwrap();
        spill.push_row(&[2]).unwrap();
        let path = spill.bucket_path(0);
        let shared = spill.share().unwrap();
        assert_eq!(shared.rows(), 2);

        let clone = shared.clone();
        let rows: Vec<Vec<ColumnId>> =
            std::thread::spawn(move || clone.replay().map(Result::unwrap).collect())
                .join()
                .unwrap();
        assert_eq!(rows, vec![vec![2], vec![0, 1]]);
        assert!(path.exists(), "original handle still alive");

        let again: Vec<Vec<ColumnId>> = shared.replay().map(Result::unwrap).collect();
        assert_eq!(again, rows);
        drop(shared);
        assert!(!path.exists(), "last shared handle removes the files");
    }

    #[test]
    fn large_roundtrip() {
        let mut spill = BucketSpill::new(temp_dir(), 1000).unwrap();
        let mut expected_by_bucket: Vec<Vec<Vec<ColumnId>>> = vec![Vec::new(); 16];
        for i in 0..500u32 {
            let len = (i % 37) as usize;
            let row: Vec<ColumnId> = (0..len as u32).map(|k| k * 7 % 1000).collect();
            let mut sorted = row.clone();
            sorted.sort_unstable();
            sorted.dedup();
            spill.push_row(&sorted).unwrap();
            expected_by_bucket[density_bucket(sorted.len())].push(sorted);
        }
        let expected: Vec<Vec<ColumnId>> = expected_by_bucket.into_iter().flatten().collect();
        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(rows, expected);
    }

    #[test]
    fn transient_write_fault_is_retried_transparently() {
        let (settings, io) = faulty_settings(
            FaultPlan::new().fail_write(1, true),
            RetryPolicy::standard(),
        );
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        spill.push_row(&[0, 1]).unwrap();
        spill.push_row(&[2]).unwrap(); // second write: transient fault + retry
        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(rows, vec![vec![2], vec![0, 1]]);
        let snap = spill.stats().snapshot();
        assert_eq!(snap.write_retries, 1);
        assert_eq!(snap.corrupt_frames, 0);
        assert_eq!(io.fired().len(), 1);
    }

    #[test]
    fn transient_read_fault_is_retried_transparently() {
        let (settings, _io) =
            faulty_settings(FaultPlan::new().fail_read(0, true), RetryPolicy::standard());
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        spill.push_row(&[5]).unwrap();
        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(rows, vec![vec![5]]);
        assert!(spill.stats().snapshot().read_retries >= 1);
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let (settings, _io) =
            faulty_settings(FaultPlan::new().fail_write(0, true), RetryPolicy::none());
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        let err = spill.push_row(&[1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn permanent_write_fault_surfaces_enospc() {
        let (settings, _io) = faulty_settings(
            FaultPlan::new().fail_write(0, false),
            RetryPolicy::standard(),
        );
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        let err = spill.push_row(&[1]).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC, not retried");
        assert_eq!(spill.stats().snapshot().write_retries, 0);
    }

    #[test]
    fn flipped_byte_is_detected_as_corrupt() {
        let (settings, _io) =
            faulty_settings(FaultPlan::new().flip_byte(0, 0x04), RetryPolicy::standard());
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        spill.push_row(&[1, 2, 3]).unwrap();
        let results: Vec<_> = spill.replay().unwrap().collect();
        assert_eq!(results.len(), 1, "error ends the iteration");
        assert!(
            matches!(results[0], Err(SpillReadError::Corrupt { frame: 0, .. })),
            "got {results:?}"
        );
        assert_eq!(spill.stats().snapshot().corrupt_frames, 1);
    }

    #[test]
    fn torn_write_is_detected_as_corrupt() {
        let (settings, _io) =
            faulty_settings(FaultPlan::new().torn_write(1), RetryPolicy::standard());
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        spill.push_row(&[1, 2]).unwrap();
        spill.push_row(&[3, 4]).unwrap(); // torn: only half the frame lands
        let results: Vec<_> = spill.replay().unwrap().collect();
        let errs: Vec<_> = results.iter().filter(|r| r.is_err()).collect();
        assert_eq!(errs.len(), 1, "exactly one error: {results:?}");
        assert!(matches!(errs[0], Err(SpillReadError::Corrupt { .. })));
    }

    #[test]
    fn lost_tail_is_detected_via_row_counts() {
        let (settings, _io) =
            faulty_settings(FaultPlan::new().short_read(2), RetryPolicy::standard());
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        spill.push_row(&[1]).unwrap();
        spill.push_row(&[2]).unwrap();
        spill.push_row(&[3]).unwrap();
        let results: Vec<_> = spill.replay().unwrap().collect();
        assert!(
            results
                .iter()
                .any(|r| matches!(r, Err(SpillReadError::Corrupt { .. }))),
            "a lost tail must not pass silently: {results:?}"
        );
    }

    #[test]
    fn permanent_read_fault_preserves_kind_and_context() {
        let (settings, _io) = faulty_settings(
            FaultPlan::new().fail_read(0, false),
            RetryPolicy::standard(),
        );
        let mut spill = BucketSpill::with_settings(10, settings).unwrap();
        spill.push_row(&[1]).unwrap();
        let results: Vec<_> = spill.replay().unwrap().collect();
        match &results[0] {
            Err(SpillReadError::Io { context, error }) => {
                assert_eq!(*context, "read spill frame");
                assert_eq!(error.raw_os_error(), Some(5), "EIO preserved");
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn spill_read_error_display_and_source() {
        let io_err = SpillReadError::Io {
            context: "read spill frame",
            error: io::Error::new(io::ErrorKind::Interrupted, "boom"),
        };
        assert!(io_err.to_string().contains("read spill frame"));
        assert!(std::error::Error::source(&io_err).is_some());
        let corrupt = SpillReadError::Corrupt {
            frame: 7,
            reason: "checksum mismatch",
        };
        assert!(corrupt.to_string().contains("frame 7"));
        assert!(corrupt.to_string().contains("checksum mismatch"));
        assert!(std::error::Error::source(&corrupt).is_none());
    }
}
