//! Disk-backed density buckets (§4.1's out-of-core row re-ordering).
//!
//! The paper avoids sorting disk-resident data by density: during the
//! first scan each row is appended to one of `⌈log₂ m⌉ + 1` bucket files
//! by its 1-count, and the second scan reads the bucket files sparsest
//! first. [`BucketSpill`] implements exactly that: rows go in via
//! [`BucketSpill::push_row`], come back out in bucketed sparsest-first
//! order via [`BucketSpill::replay`], any number of times.
//!
//! Rows are stored in a simple length-prefixed little-endian binary format
//! (`u32` count, then `u32` ids). Files live in a caller-supplied or
//! temporary directory.
//!
//! # Cleanup
//!
//! Every handle that can read the files — the [`BucketSpill`] itself, each
//! [`SharedSpill`] clone, and each live [`SpillReplay`] — shares ownership
//! of an internal guard; the bucket files are unlinked when the **last**
//! handle drops. An early error return (or a spill dropped mid-replay)
//! therefore never strands files on disk, and a replay in flight keeps its
//! files alive even if the spill that created it is gone.
//!
//! # Sharing
//!
//! [`BucketSpill::share`] seals the spill (no more writes) into a
//! [`SharedSpill`], which is `Clone + Send + Sync`: the parallel streamed
//! drivers hand clones to reader threads that replay the same files
//! concurrently.

use crate::order::density_bucket;
use crate::ColumnId;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

static SPILL_ID: AtomicU64 = AtomicU64::new(0);

/// Owns the on-disk bucket files; unlinks them on drop. Shared (via `Arc`)
/// by the spill, its [`SharedSpill`] handles, and live replays, so the
/// files survive exactly as long as something can still read them.
#[derive(Default)]
struct SpillFiles {
    paths: Mutex<Vec<Option<PathBuf>>>,
}

impl Drop for SpillFiles {
    fn drop(&mut self) {
        let paths = self.paths.get_mut().expect("spill path lock poisoned");
        for path in paths.iter().flatten() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl SpillFiles {
    fn snapshot(&self) -> Vec<Option<PathBuf>> {
        self.paths.lock().expect("spill path lock poisoned").clone()
    }
}

/// Writes rows into per-density bucket files and replays them sparsest
/// bucket first.
pub struct BucketSpill {
    dir: PathBuf,
    prefix: String,
    /// Lazily opened writers, one per bucket.
    writers: Vec<Option<BufWriter<File>>>,
    files: Arc<SpillFiles>,
    rows: usize,
    bytes: u64,
}

impl BucketSpill {
    /// Creates a spill area under `dir` for matrices of up to `n_cols`
    /// columns.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>, n_cols: usize) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let buckets = density_bucket(n_cols.max(1)) + 1;
        let prefix = format!(
            "dmc-spill-{}-{}",
            std::process::id(),
            SPILL_ID.fetch_add(1, Ordering::Relaxed)
        );
        let mut writers = Vec::with_capacity(buckets);
        writers.resize_with(buckets, || None);
        Ok(Self {
            dir,
            prefix,
            writers,
            files: Arc::new(SpillFiles {
                paths: Mutex::new(vec![None; buckets]),
            }),
            rows: 0,
            bytes: 0,
        })
    }

    /// Creates a spill area in the system temp directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn in_temp(n_cols: usize) -> io::Result<Self> {
        Self::new(std::env::temp_dir().join("dmc-spill"), n_cols)
    }

    fn bucket_path(&self, bucket: usize) -> PathBuf {
        self.dir.join(format!("{}-b{bucket}.rows", self.prefix))
    }

    /// Rows spilled so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes written to the bucket files so far (length prefixes included).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Appends a sorted row to its density bucket.
    ///
    /// # Errors
    ///
    /// Propagates file IO errors.
    pub fn push_row(&mut self, row: &[ColumnId]) -> io::Result<()> {
        let bucket = density_bucket(row.len()).min(self.writers.len() - 1);
        if self.writers[bucket].is_none() {
            let path = self.bucket_path(bucket);
            let file = OpenOptions::new()
                .create(true)
                .truncate(true)
                .write(true)
                .open(&path)?;
            self.writers[bucket] = Some(BufWriter::new(file));
            self.files.paths.lock().expect("spill path lock poisoned")[bucket] = Some(path);
        }
        let writer = self.writers[bucket].as_mut().expect("just opened");
        writer.write_all(&(row.len() as u32).to_le_bytes())?;
        for &c in row {
            writer.write_all(&c.to_le_bytes())?;
        }
        self.rows += 1;
        self.bytes += 4 + 4 * row.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        for writer in self.writers.iter_mut().flatten() {
            writer.flush()?;
        }
        Ok(())
    }

    /// Flushes writers and returns an iterator over all rows, sparsest
    /// bucket first (original order within a bucket). Can be called
    /// repeatedly. The replay keeps the bucket files alive even if the
    /// spill is dropped before the replay finishes.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn replay(&mut self) -> io::Result<SpillReplay> {
        self.flush()?;
        Ok(SpillReplay::over(Arc::clone(&self.files)))
    }

    /// Seals the spill for reading and returns a cloneable, thread-safe
    /// handle over the same bucket files. No further rows can be pushed;
    /// the files are removed when the last handle (and last live replay)
    /// drops.
    ///
    /// # Errors
    ///
    /// Propagates flush failures (the files are still cleaned up).
    pub fn share(mut self) -> io::Result<SharedSpill> {
        self.flush()?;
        // Close the write handles; SharedSpill re-opens per replay.
        self.writers.clear();
        Ok(SharedSpill {
            files: Arc::clone(&self.files),
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed, read-only view of a [`BucketSpill`]'s files, safe to clone
/// across threads. Created by [`BucketSpill::share`].
#[derive(Clone)]
pub struct SharedSpill {
    files: Arc<SpillFiles>,
    rows: usize,
    bytes: u64,
}

impl SharedSpill {
    /// Rows in the spill.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes in the spill's bucket files (length prefixes included).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// A fresh sparsest-bucket-first row iterator. Independent replays
    /// (including concurrent ones from clones) do not interfere.
    #[must_use]
    pub fn replay(&self) -> SpillReplay {
        SpillReplay::over(Arc::clone(&self.files))
    }
}

/// Row iterator over a [`BucketSpill`], sparsest bucket first.
pub struct SpillReplay {
    paths: Vec<Option<PathBuf>>,
    next_bucket: usize,
    current: Option<BufReader<File>>,
    /// Keeps the bucket files on disk while this replay is alive.
    _files: Arc<SpillFiles>,
}

impl SpillReplay {
    fn over(files: Arc<SpillFiles>) -> Self {
        Self {
            paths: files.snapshot(),
            next_bucket: 0,
            current: None,
            _files: files,
        }
    }

    fn read_row(reader: &mut BufReader<File>) -> io::Result<Option<Vec<ColumnId>>> {
        let mut len_buf = [0u8; 4];
        match reader.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        let mut row = Vec::with_capacity(len);
        let mut id_buf = [0u8; 4];
        for _ in 0..len {
            reader.read_exact(&mut id_buf)?;
            row.push(ColumnId::from_le_bytes(id_buf));
        }
        Ok(Some(row))
    }
}

impl Iterator for SpillReplay {
    type Item = io::Result<Vec<ColumnId>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(reader) = &mut self.current {
                match Self::read_row(reader) {
                    Ok(Some(row)) => return Some(Ok(row)),
                    Ok(None) => self.current = None,
                    Err(e) => return Some(Err(e)),
                }
            }
            // Advance to the next existing bucket file.
            loop {
                if self.next_bucket >= self.paths.len() {
                    return None;
                }
                let bucket = self.next_bucket;
                self.next_bucket += 1;
                if let Some(path) = &self.paths[bucket] {
                    match File::open(path) {
                        Ok(file) => {
                            self.current = Some(BufReader::new(file));
                            break;
                        }
                        Err(e) => return Some(Err(e)),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir() -> PathBuf {
        std::env::temp_dir().join("dmc-spill-tests")
    }

    #[test]
    fn replay_orders_buckets_sparsest_first() {
        let mut spill = BucketSpill::new(temp_dir(), 100).unwrap();
        spill.push_row(&[1, 2, 3, 4, 5, 6, 7, 8]).unwrap(); // bucket 3
        spill.push_row(&[9]).unwrap(); // bucket 0
        spill.push_row(&[1, 2]).unwrap(); // bucket 1
        spill.push_row(&[7]).unwrap(); // bucket 0
        assert_eq!(spill.rows(), 4);

        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(
            rows,
            vec![vec![9], vec![7], vec![1, 2], vec![1, 2, 3, 4, 5, 6, 7, 8]]
        );
    }

    #[test]
    fn replay_is_repeatable() {
        let mut spill = BucketSpill::new(temp_dir(), 10).unwrap();
        spill.push_row(&[0, 1]).unwrap();
        spill.push_row(&[2]).unwrap();
        let first: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        let second: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn byte_count_tracks_encoded_size() {
        let mut spill = BucketSpill::new(temp_dir(), 10).unwrap();
        assert_eq!(spill.bytes(), 0);
        spill.push_row(&[0, 1, 2]).unwrap(); // 4 + 3*4
        spill.push_row(&[]).unwrap(); // 4
        assert_eq!(spill.bytes(), 20);
        let shared = spill.share().unwrap();
        assert_eq!(shared.bytes(), 20);
    }

    #[test]
    fn empty_spill_replays_nothing() {
        let mut spill = BucketSpill::new(temp_dir(), 5).unwrap();
        assert_eq!(spill.replay().unwrap().count(), 0);
    }

    #[test]
    fn empty_rows_are_preserved() {
        let mut spill = BucketSpill::new(temp_dir(), 5).unwrap();
        spill.push_row(&[]).unwrap();
        spill.push_row(&[3]).unwrap();
        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(rows, vec![vec![], vec![3]]);
    }

    #[test]
    fn files_are_cleaned_up_on_drop() {
        let dir = temp_dir();
        let path;
        {
            let mut spill = BucketSpill::new(&dir, 10).unwrap();
            spill.push_row(&[1]).unwrap();
            path = spill.bucket_path(0);
            let _ = spill.replay().unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "bucket file removed on drop");
    }

    #[test]
    fn live_replay_keeps_files_after_spill_drop() {
        let dir = temp_dir();
        let mut spill = BucketSpill::new(&dir, 10).unwrap();
        spill.push_row(&[1]).unwrap();
        spill.push_row(&[2]).unwrap();
        let path = spill.bucket_path(0);
        let mut replay = spill.replay().unwrap();
        assert_eq!(replay.next().unwrap().unwrap(), vec![1]);
        drop(spill);
        assert!(path.exists(), "replay in flight keeps the file");
        assert_eq!(replay.next().unwrap().unwrap(), vec![2]);
        drop(replay);
        assert!(!path.exists(), "last handle removes the file");
    }

    #[test]
    fn shared_spill_replays_from_clones_and_cleans_up_last() {
        let dir = temp_dir();
        let mut spill = BucketSpill::new(&dir, 10).unwrap();
        spill.push_row(&[0, 1]).unwrap();
        spill.push_row(&[2]).unwrap();
        let path = spill.bucket_path(0);
        let shared = spill.share().unwrap();
        assert_eq!(shared.rows(), 2);

        let clone = shared.clone();
        let rows: Vec<Vec<ColumnId>> =
            std::thread::spawn(move || clone.replay().map(Result::unwrap).collect())
                .join()
                .unwrap();
        assert_eq!(rows, vec![vec![2], vec![0, 1]]);
        assert!(path.exists(), "original handle still alive");

        let again: Vec<Vec<ColumnId>> = shared.replay().map(Result::unwrap).collect();
        assert_eq!(again, rows);
        drop(shared);
        assert!(!path.exists(), "last shared handle removes the files");
    }

    #[test]
    fn large_roundtrip() {
        let mut spill = BucketSpill::new(temp_dir(), 1000).unwrap();
        let mut expected_by_bucket: Vec<Vec<Vec<ColumnId>>> = vec![Vec::new(); 16];
        for i in 0..500u32 {
            let len = (i % 37) as usize;
            let row: Vec<ColumnId> = (0..len as u32).map(|k| k * 7 % 1000).collect();
            let mut sorted = row.clone();
            sorted.sort_unstable();
            sorted.dedup();
            spill.push_row(&sorted).unwrap();
            expected_by_bucket[density_bucket(sorted.len())].push(sorted);
        }
        let expected: Vec<Vec<ColumnId>> = expected_by_bucket.into_iter().flatten().collect();
        let rows: Vec<Vec<ColumnId>> = spill.replay().unwrap().map(Result::unwrap).collect();
        assert_eq!(rows, expected);
    }
}
