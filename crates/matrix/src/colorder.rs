//! The paper's canonical column ordering.
//!
//! §2: since `Conf(c_j ⇒ c_i) ≤ Conf(c_i ⇒ c_j)` whenever `|S_i| < |S_j|`,
//! only rules `c_i ⇒ c_j` with `|S_i| < |S_j|`, or `|S_i| = |S_j| ∧ i < j`,
//! are considered. Every candidate-admission test in Algorithm 3.1 ("add all
//! columns `c_k` such that `ones(c_k) > ones(c_j)` or (`ones(c_k) =
//! ones(c_j)` and `k > j`)") is a comparison in this total order, so it lives
//! in one place.

use crate::ColumnId;

/// `true` iff column `a` precedes column `b` in the canonical order:
/// fewer 1s first, ties broken by smaller id.
///
/// A rule `a ⇒ b` (or a similarity candidate `(a, b)`) is only tracked when
/// `canonical_less(a, ones_a, b, ones_b)` holds.
#[inline]
#[must_use]
pub fn canonical_less(a: ColumnId, ones_a: u32, b: ColumnId, ones_b: u32) -> bool {
    ones_a < ones_b || (ones_a == ones_b && a < b)
}

/// A column id bundled with its 1-count, ordered canonically.
///
/// Useful for sorting column sets into scan order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ColumnInfo {
    pub id: ColumnId,
    pub ones: u32,
}

impl PartialOrd for ColumnInfo {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ColumnInfo {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ones, self.id).cmp(&(other.ones, other.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_ones_comes_first() {
        assert!(canonical_less(5, 2, 1, 10));
        assert!(!canonical_less(1, 10, 5, 2));
    }

    #[test]
    fn ties_break_by_id() {
        assert!(canonical_less(1, 4, 2, 4));
        assert!(!canonical_less(2, 4, 1, 4));
        assert!(!canonical_less(3, 4, 3, 4), "irreflexive");
    }

    #[test]
    fn total_order_is_antisymmetric() {
        for (a, oa, b, ob) in [(0u32, 1u32, 1u32, 1u32), (0, 2, 1, 1), (7, 3, 2, 3)] {
            let ab = canonical_less(a, oa, b, ob);
            let ba = canonical_less(b, ob, a, oa);
            assert!(ab != ba, "exactly one direction holds for distinct columns");
        }
    }

    #[test]
    fn column_info_sort_matches_canonical_less() {
        let mut cols = [
            ColumnInfo { id: 3, ones: 5 },
            ColumnInfo { id: 1, ones: 2 },
            ColumnInfo { id: 2, ones: 5 },
            ColumnInfo { id: 0, ones: 9 },
        ];
        cols.sort();
        let ids: Vec<u32> = cols.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![1, 2, 3, 0]);
        for w in cols.windows(2) {
            assert!(canonical_less(w[0].id, w[0].ones, w[1].id, w[1].ones));
        }
    }
}
