//! Generic framed-record files over the [`spill_io`](crate::spill_io)
//! surface.
//!
//! The bucket spill ([`crate::spill`]) frames every row as
//! `len | !len | crc32 | payload` (little-endian) so truncation and
//! corruption become typed errors instead of garbage replay. The shard
//! manifest protocol needs exactly the same guarantees for records that
//! are *not* rows — shard headers, rule batches, manifest entries — so
//! this module exposes the frame codec as a standalone writer/reader pair
//! over any [`SpillIo`] backend. Everything the fault injector
//! ([`crate::spill_io::FaultyIo`]) can do to the row spill it can
//! therefore do to any framed file: torn writes surface as
//! [`FramedError::Corrupt`], transient faults are retried per the
//! [`RetryPolicy`], and permanent faults surface as [`FramedError::Io`].

use crate::spill_io::{crc32, is_transient, RetryPolicy, SpillIo, SpillRead, SpillWrite};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// Bytes of frame header preceding the payload: `len | !len | crc`.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Upper bound on a framed payload. A frame whose length field passes the
/// complement guard but exceeds this is corrupt framing (e.g. a torn write
/// that happened to produce complementary words), not a real record.
const MAX_PAYLOAD_LEN: u32 = 1 << 28;

/// A framed read/write failure: either the backend failed permanently, or
/// a frame failed its integrity checks.
#[derive(Debug)]
pub enum FramedError {
    /// The backend failed after exhausting any retries.
    Io {
        /// What the file was doing ("create framed file", "read frame").
        context: &'static str,
        /// The underlying error, kind preserved.
        error: io::Error,
    },
    /// A frame failed its integrity checks.
    Corrupt {
        /// 0-based index of the offending frame in file order.
        frame: u64,
        /// Which guard tripped.
        reason: &'static str,
    },
}

impl fmt::Display for FramedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FramedError::Io { context, error } => write!(f, "framed io ({context}): {error}"),
            FramedError::Corrupt { frame, reason } => {
                write!(f, "corrupt frame {frame}: {reason}")
            }
        }
    }
}

impl std::error::Error for FramedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FramedError::Io { error, .. } => Some(error),
            FramedError::Corrupt { .. } => None,
        }
    }
}

/// Writes all of `buf`, retrying transient failures per `retry`.
fn write_full_retry(
    writer: &mut dyn Write,
    buf: &[u8],
    retry: &RetryPolicy,
    jitter: &mut u64,
) -> io::Result<()> {
    let mut offset = 0;
    let mut attempts = 0u32;
    while offset < buf.len() {
        match writer.write(&buf[offset..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "framed write accepted no bytes",
                ))
            }
            Ok(n) => offset += n,
            Err(e) if is_transient(e.kind()) && attempts < retry.max_retries => {
                attempts += 1;
                let pause = retry.backoff(attempts, jitter);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads up to `buf.len()` bytes, stopping early only at end-of-file;
/// transient failures are retried per `retry`. Returns the bytes read.
fn read_full_retry(
    reader: &mut dyn Read,
    buf: &mut [u8],
    retry: &RetryPolicy,
    jitter: &mut u64,
) -> io::Result<usize> {
    let mut offset = 0;
    let mut attempts = 0u32;
    while offset < buf.len() {
        match reader.read(&mut buf[offset..]) {
            Ok(0) => break,
            Ok(n) => offset += n,
            Err(e) if is_transient(e.kind()) && attempts < retry.max_retries => {
                attempts += 1;
                let pause = retry.backoff(attempts, jitter);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(offset)
}

/// Appends checksummed frames to one file through a [`SpillIo`] backend.
pub struct FrameWriter {
    inner: Box<dyn SpillWrite>,
    retry: RetryPolicy,
    jitter: u64,
    scratch: Vec<u8>,
    frames: u64,
    bytes: u64,
}

impl FrameWriter {
    /// Creates (truncating) `path` through `io` for framed writing.
    ///
    /// # Errors
    ///
    /// [`FramedError::Io`] when creation fails.
    pub fn create(io: &dyn SpillIo, path: &Path, retry: RetryPolicy) -> Result<Self, FramedError> {
        let inner = io.create(path).map_err(|error| FramedError::Io {
            context: "create framed file",
            error,
        })?;
        Ok(Self {
            inner,
            retry,
            jitter: retry.seed ^ 0x9E37_79B9_7F4A_7C15,
            scratch: Vec::new(),
            frames: 0,
            bytes: 0,
        })
    }

    /// Appends one frame wrapping `payload`.
    ///
    /// # Errors
    ///
    /// [`FramedError::Io`] when the write fails permanently.
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), FramedError> {
        assert!(
            payload.len() <= MAX_PAYLOAD_LEN as usize,
            "framed payload exceeds {MAX_PAYLOAD_LEN} bytes"
        );
        let len = payload.len() as u32;
        self.scratch.clear();
        self.scratch.reserve(FRAME_HEADER_BYTES + payload.len());
        self.scratch.extend_from_slice(&len.to_le_bytes());
        self.scratch.extend_from_slice(&(!len).to_le_bytes());
        self.scratch
            .extend_from_slice(&crc32(payload).to_le_bytes());
        self.scratch.extend_from_slice(payload);
        write_full_retry(
            &mut self.inner,
            &self.scratch,
            &self.retry,
            &mut self.jitter,
        )
        .map_err(|error| FramedError::Io {
            context: "write frame",
            error,
        })?;
        self.frames += 1;
        self.bytes += self.scratch.len() as u64;
        Ok(())
    }

    /// Flushes and closes the file; returns `(frames, bytes)` written.
    ///
    /// # Errors
    ///
    /// [`FramedError::Io`] when the flush fails.
    pub fn finish(mut self) -> Result<(u64, u64), FramedError> {
        self.inner.flush().map_err(|error| FramedError::Io {
            context: "flush framed file",
            error,
        })?;
        Ok((self.frames, self.bytes))
    }
}

/// Replays checksummed frames from one file through a [`SpillIo`] backend.
pub struct FrameReader {
    inner: Box<dyn SpillRead>,
    retry: RetryPolicy,
    jitter: u64,
    frame: u64,
}

impl FrameReader {
    /// Opens `path` through `io` for framed reading.
    ///
    /// # Errors
    ///
    /// [`FramedError::Io`] when the open fails (kind preserved, so callers
    /// can distinguish a missing file from a permission failure).
    pub fn open(io: &dyn SpillIo, path: &Path, retry: RetryPolicy) -> Result<Self, FramedError> {
        let inner = io.open(path).map_err(|error| FramedError::Io {
            context: "open framed file",
            error,
        })?;
        Ok(Self {
            inner,
            retry,
            jitter: retry.seed ^ 0x6A09_E667_F3BC_C908,
            frame: 0,
        })
    }

    /// Decodes the next frame's payload; `None` at a clean end-of-file.
    ///
    /// A partial header or payload (truncation), a length/complement
    /// mismatch, an oversized length and a checksum mismatch all surface
    /// as [`FramedError::Corrupt`] naming the offending frame.
    ///
    /// # Errors
    ///
    /// [`FramedError::Io`] on permanent backend failure,
    /// [`FramedError::Corrupt`] on integrity failure.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FramedError> {
        let mut header = [0u8; FRAME_HEADER_BYTES];
        let got = read_full_retry(&mut self.inner, &mut header, &self.retry, &mut self.jitter)
            .map_err(|error| FramedError::Io {
                context: "read frame header",
                error,
            })?;
        if got == 0 {
            return Ok(None);
        }
        if got < FRAME_HEADER_BYTES {
            return Err(self.corrupt("truncated frame header"));
        }
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let not_len = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if len != !not_len {
            return Err(self.corrupt("length complement mismatch"));
        }
        if len > MAX_PAYLOAD_LEN {
            return Err(self.corrupt("payload length exceeds maximum"));
        }
        let mut payload = vec![0u8; len as usize];
        let got = read_full_retry(&mut self.inner, &mut payload, &self.retry, &mut self.jitter)
            .map_err(|error| FramedError::Io {
                context: "read frame payload",
                error,
            })?;
        if got < payload.len() {
            return Err(self.corrupt("truncated frame payload"));
        }
        if crc32(&payload) != crc {
            return Err(self.corrupt("checksum mismatch"));
        }
        self.frame += 1;
        Ok(Some(payload))
    }

    fn corrupt(&self, reason: &'static str) -> FramedError {
        FramedError::Corrupt {
            frame: self.frame,
            reason,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spill_io::{FaultPlan, FaultyIo, StdFsIo};
    use std::sync::Arc;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "dmc-framed-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
        fn path(&self, name: &str) -> std::path::PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn roundtrip(io: &dyn SpillIo, path: &Path, retry: RetryPolicy) -> Vec<Vec<u8>> {
        let payloads: Vec<Vec<u8>> = vec![b"hello".to_vec(), Vec::new(), vec![0xAB; 1000]];
        let mut w = FrameWriter::create(io, path, retry).unwrap();
        for p in &payloads {
            w.write_frame(p).unwrap();
        }
        let (frames, bytes) = w.finish().unwrap();
        assert_eq!(frames, 3);
        assert_eq!(
            bytes,
            payloads
                .iter()
                .map(|p| (FRAME_HEADER_BYTES + p.len()) as u64)
                .sum::<u64>()
        );
        let mut r = FrameReader::open(io, path, retry).unwrap();
        let mut got = Vec::new();
        while let Some(p) = r.next_frame().unwrap() {
            got.push(p);
        }
        got
    }

    #[test]
    fn frames_round_trip() {
        let dir = TempDir::new("roundtrip");
        let payloads = roundtrip(&StdFsIo, &dir.path("f.bin"), RetryPolicy::none());
        assert_eq!(
            payloads,
            vec![b"hello".to_vec(), Vec::new(), vec![0xAB; 1000]]
        );
    }

    #[test]
    fn truncation_is_typed_corrupt() {
        let dir = TempDir::new("trunc");
        let path = dir.path("f.bin");
        let mut w = FrameWriter::create(&StdFsIo, &path, RetryPolicy::none()).unwrap();
        w.write_frame(b"first").unwrap();
        w.write_frame(b"second").unwrap();
        w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut into the second frame's payload.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut r = FrameReader::open(&StdFsIo, &path, RetryPolicy::none()).unwrap();
        assert_eq!(r.next_frame().unwrap().unwrap(), b"first");
        match r.next_frame() {
            Err(FramedError::Corrupt { frame: 1, reason }) => {
                assert!(reason.contains("truncated"), "reason={reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn flipped_byte_is_checksum_mismatch() {
        let dir = TempDir::new("flip");
        let path = dir.path("f.bin");
        let mut w = FrameWriter::create(&StdFsIo, &path, RetryPolicy::none()).unwrap();
        w.write_frame(b"payload-bytes").unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = FRAME_HEADER_BYTES + 4;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut r = FrameReader::open(&StdFsIo, &path, RetryPolicy::none()).unwrap();
        match r.next_frame() {
            Err(FramedError::Corrupt { frame: 0, reason }) => {
                assert_eq!(reason, "checksum mismatch");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_keeps_error_kind() {
        let dir = TempDir::new("missing");
        let err = FrameReader::open(&StdFsIo, &dir.path("absent.bin"), RetryPolicy::none())
            .err()
            .expect("open fails");
        match err {
            FramedError::Io { error, .. } => {
                assert_eq!(error.kind(), io::ErrorKind::NotFound);
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    /// Every seeded single-fault plan either retries to the exact payloads
    /// (transient) or surfaces a typed error — never wrong data.
    #[test]
    fn seeded_faults_retry_or_surface() {
        let dir = TempDir::new("faults");
        for seed in 0..32u64 {
            let plan = FaultPlan::seeded(seed);
            let io = FaultyIo::over(Arc::new(StdFsIo), plan.clone());
            let path = dir.path(&format!("seed{seed}.bin"));
            let retry = RetryPolicy {
                seed,
                ..RetryPolicy::standard()
            };
            let write_then_read = || -> Result<Vec<Vec<u8>>, FramedError> {
                let mut w = FrameWriter::create(&io, &path, retry)?;
                for i in 0..8u8 {
                    w.write_frame(&[i; 64])?;
                }
                w.finish()?;
                let mut r = FrameReader::open(&io, &path, retry)?;
                let mut got = Vec::new();
                while let Some(p) = r.next_frame()? {
                    got.push(p);
                }
                Ok(got)
            };
            match write_then_read() {
                Ok(got) => {
                    let expect: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 64]).collect();
                    assert_eq!(got, expect, "seed={seed}");
                }
                Err(_) => {
                    assert!(
                        !plan.all_transient(),
                        "transient-only plan must recover (seed={seed})"
                    );
                }
            }
        }
    }
}
