//! Property tests for the matrix substrate: round-trips, parser
//! robustness (never panic on arbitrary input), and order/transform
//! invariants.

use dmc_matrix::io::{read_matrix, write_matrix, RowLines};
use dmc_matrix::io_binary::{decode_matrix, encode_matrix};
use dmc_matrix::order::{bucketed_sparsest_first, density_bucket, exact_sparsest_first};
use dmc_matrix::spill::BucketSpill;
use dmc_matrix::transform::transpose;
use dmc_matrix::{ColumnId, SparseMatrix};
use proptest::prelude::*;

fn matrix_strategy() -> impl Strategy<Value = SparseMatrix> {
    (1usize..30).prop_flat_map(|cols| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..cols as ColumnId, 0..cols.min(10)),
            0..25,
        )
        .prop_map(move |rows| {
            SparseMatrix::from_rows(
                cols,
                rows.into_iter().map(|s| s.into_iter().collect()).collect(),
            )
        })
    })
}

proptest! {
    #[test]
    fn text_roundtrip(m in matrix_strategy()) {
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        prop_assert_eq!(read_matrix(&buf[..]).unwrap(), m);
    }

    #[test]
    fn binary_roundtrip(m in matrix_strategy()) {
        prop_assert_eq!(decode_matrix(&encode_matrix(&m)).unwrap(), m);
    }

    #[test]
    fn streaming_reader_agrees_with_batch(m in matrix_strategy()) {
        let mut buf = Vec::new();
        write_matrix(&m, &mut buf).unwrap();
        let streamed: Vec<Vec<ColumnId>> =
            RowLines::new(&buf[..]).map(Result::unwrap).collect();
        let direct: Vec<Vec<ColumnId>> = m.rows().map(<[ColumnId]>::to_vec).collect();
        prop_assert_eq!(streamed, direct);
    }

    /// The text parser returns Ok or Err but never panics, whatever bytes
    /// arrive.
    #[test]
    fn text_parser_never_panics(input in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = read_matrix(&input[..]);
        for row in RowLines::new(&input[..]) {
            let _ = row;
        }
    }

    /// The binary decoder survives arbitrary bytes (including truncated or
    /// bit-flipped real encodings).
    #[test]
    fn binary_decoder_never_panics(input in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = decode_matrix(&input);
    }

    #[test]
    fn binary_decoder_survives_corruption(
        m in matrix_strategy(),
        flip in any::<(usize, u8)>(),
    ) {
        let mut bytes = encode_matrix(&m);
        if !bytes.is_empty() {
            let idx = flip.0 % bytes.len();
            bytes[idx] ^= flip.1;
        }
        // Either decodes to *some* matrix or errors; never panics.
        let _ = decode_matrix(&bytes);
    }

    #[test]
    fn orders_are_permutations(m in matrix_strategy()) {
        for perm in [bucketed_sparsest_first(&m), exact_sparsest_first(&m)] {
            let mut sorted: Vec<u32> = perm.clone();
            sorted.sort_unstable();
            let expected: Vec<u32> = (0..m.n_rows() as u32).collect();
            prop_assert_eq!(sorted, expected);
            // Bucketed order is bucket-monotone.
        }
        let perm = bucketed_sparsest_first(&m);
        let buckets: Vec<usize> = perm
            .iter()
            .map(|&r| density_bucket(m.row_len(r as usize)))
            .collect();
        prop_assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn transpose_involution(m in matrix_strategy()) {
        prop_assert_eq!(transpose(&transpose(&m)), m);
    }

    #[test]
    fn spill_replay_preserves_rows_in_bucket_order(m in matrix_strategy()) {
        let dir = std::env::temp_dir().join("dmc-matrix-prop");
        let mut spill = BucketSpill::new(dir, m.n_cols()).unwrap();
        for row in m.rows() {
            spill.push_row(row).unwrap();
        }
        let replayed: Vec<Vec<ColumnId>> =
            spill.replay().unwrap().map(Result::unwrap).collect();
        let perm = bucketed_sparsest_first(&m);
        let expected: Vec<Vec<ColumnId>> =
            perm.iter().map(|&r| m.row(r as usize).to_vec()).collect();
        prop_assert_eq!(replayed, expected);
    }
}
