//! `dmc-serve`: a rule-serving daemon over a persistent
//! [`Engine`](dmc_core::Engine).
//!
//! The batch miners answer "what are the rules of this matrix, right
//! now". This crate keeps the engine alive behind a TCP listener so the
//! answers stay cheap as the data grows: point queries and rule listings
//! are served from the engine's column postings under a read lock, and
//! `ingest` requests append rows and incrementally re-derive the rule
//! set under a write lock — bit-identical to a from-scratch mine, per
//! the monotonicity argument in the engine docs, without re-scanning the
//! accumulated matrix.
//!
//! The wire format is 4-byte big-endian length-framed JSON
//! ([`protocol`]), written and parsed with the workspace's own
//! [`dmc_metrics::json`] — no second JSON dialect. [`server`] holds the
//! accept loop; [`run_daemon`] is the shared entry point behind both the
//! standalone `dmc-serve` binary and the `dmc serve` subcommand: it
//! mines, prints `listening on ADDR` (machine-parseable; bind port 0 to
//! let the OS pick), serves until a `shutdown` request, and then writes
//! the engine's `dmc.run_report.v8` report — `serve`, `ingest` and
//! `telemetry` sections included — wherever `--metrics` pointed.
//!
//! With `--telemetry-addr` the daemon also binds a plain-HTTP listener
//! serving the live registry in Prometheus text format: `telemetry on
//! HOST:PORT` is printed *before* the `listening on` line, so scripts
//! that wait for readiness have both addresses by then.

pub mod protocol;
pub mod server;

pub use protocol::{read_frame, request, write_frame, Request, MAX_FRAME_BYTES};
pub use server::Server;

use dmc_core::Engine;
use dmc_metrics::{ServeStats, TelemetryReport};
use std::io;
use std::net::{TcpListener, ToSocketAddrs};

/// Options for [`run_daemon`], shared by the binary and `dmc serve`.
#[derive(Clone, Debug)]
pub struct DaemonOptions {
    /// Bind address; port 0 lets the OS pick (reported on stdout).
    pub addr: String,
    /// Where to write the final run report (`-` for stdout), if anywhere.
    pub metrics: Option<String>,
    /// Bind address for the Prometheus text exposition listener; `None`
    /// leaves scraping off.
    pub telemetry_addr: Option<String>,
}

impl Default for DaemonOptions {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            metrics: None,
            telemetry_addr: None,
        }
    }
}

/// Mines, serves until shutdown, then writes the final report.
///
/// Prints exactly one `listening on HOST:PORT` line to stdout once the
/// socket is bound and the initial mine has completed — scripts should
/// wait for that line before connecting. With a telemetry address
/// configured, a `telemetry on HOST:PORT` line precedes it.
///
/// # Errors
///
/// Fails on bind/accept failures or an unwritable metrics destination.
pub fn run_daemon(engine: Engine, options: &DaemonOptions) -> io::Result<ServeStats> {
    let addrs: Vec<_> = options.addr.to_socket_addrs()?.collect();
    let server = Server::bind(engine, &addrs[..])?;
    let engine = server.engine();
    {
        // Mine before announcing readiness so the first client sees rules.
        let mut engine = engine
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if engine.report().is_none() {
            engine.mine();
        }
    }
    if let Some(taddr) = &options.telemetry_addr {
        let listener = TcpListener::bind(taddr)?;
        println!("telemetry on {}", listener.local_addr()?);
        server.spawn_exposition(listener);
    }
    println!("listening on {}", server.local_addr()?);
    let stats = server.run()?;

    if let Some(dest) = &options.metrics {
        let engine = engine
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut report = engine
            .report_with_ingest()
            .expect("the daemon mined before serving");
        report.serve = Some(stats);
        report.telemetry = Some(TelemetryReport::from_snapshot(&server.metrics_snapshot()));
        let json = report.to_json();
        if dest == "-" {
            println!("{json}");
        } else {
            std::fs::write(dest, format!("{json}\n"))?;
            eprintln!("run report written to {dest}");
        }
    }
    Ok(stats)
}
