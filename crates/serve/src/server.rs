//! The TCP serve loop around a shared [`Engine`].
//!
//! One [`Server`] owns the listener and an `Arc<RwLock<Engine>>`. Each
//! accepted connection gets its own thread; queries (`rule`, `rules_ge`,
//! `expand`, `stats`) take the read lock so they run concurrently,
//! `ingest` takes the write lock so a batch is atomic with respect to
//! every query. When the engine carries a compaction stage, `rules_ge`
//! answers from the filtered irredundant base (each rule annotated with
//! its confidence boost) and `expand` rebuilds the full implied rule set
//! from that base.
//! A malformed frame or request produces an `{"ok": false}` response and
//! leaves that connection usable — one bad client cannot take down its
//! own session, let alone the daemon. Connection, request and error
//! counts are kept in shared atomics and surface both in `stats`
//! responses and in the final [`ServeStats`] that [`Server::run`]
//! returns (the run report's `serve` section).
//!
//! Shutdown is cooperative: a `shutdown` request flips the shared flag
//! and pokes the listener with a loopback connection so the blocking
//! `accept` wakes up and the loop exits.
//!
//! # Telemetry
//!
//! Every received frame — well-formed or not — is timed into exactly one
//! per-request-type latency histogram (`serve.request.rule`, `.rules_ge`,
//! `.expand`, `.ingest`, `.stats`, `.metrics`, plus `.error` for frames
//! that fail to parse and `.shutdown`), so the histogram counts sum to
//! the `requests` counter with no gaps. The instruments live in a
//! per-server [`Registry`] (a test process runs many servers; their
//! counts must not bleed into each other) and are merged with the
//! process-wide [`telemetry::global()`](dmc_metrics::telemetry::global)
//! registry — miner and engine instruments — at snapshot time: the
//! `metrics` request and the Prometheus exposition both serve that
//! merged view.

use crate::protocol::{read_frame, write_frame, Request};
use dmc_core::threshold::{conf_qualifies, sim_qualifies};
use dmc_core::{Engine, IngestReport, MineConfig, RuleAnswer};
use dmc_metrics::json::JsonWriter;
use dmc_metrics::telemetry::{self, Counter, Gauge, Histogram, Registry, RegistrySnapshot};
use dmc_metrics::ServeStats;
use std::io::{self, Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;
use std::time::{Duration, Instant};

/// The request-type labels, in the order their histograms are resolved.
/// `error` covers frames that failed to parse; everything else is the
/// wire `type` tag.
const REQUEST_KINDS: [&str; 8] = [
    "rule", "rules_ge", "expand", "ingest", "stats", "metrics", "error", "shutdown",
];

/// Pre-resolved per-server instruments: one latency histogram per request
/// kind, the in-flight gauge, and byte counters. Owning the [`Registry`]
/// per server keeps concurrent servers in one process (the tests) from
/// polluting each other's counts.
struct ServeTelemetry {
    registry: Registry,
    request_hists: Vec<(&'static str, Arc<Histogram>)>,
    in_flight: Arc<Gauge>,
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
}

impl ServeTelemetry {
    fn new() -> Self {
        let registry = Registry::default();
        let request_hists = REQUEST_KINDS
            .iter()
            .map(|&kind| (kind, registry.histogram(&format!("serve.request.{kind}"))))
            .collect();
        let in_flight = registry.gauge("serve.in_flight");
        let bytes_in = registry.counter("serve.bytes_in");
        let bytes_out = registry.counter("serve.bytes_out");
        Self {
            registry,
            request_hists,
            in_flight,
            bytes_in,
            bytes_out,
        }
    }

    /// Times one finished request into its kind's histogram.
    fn record(&self, kind: &str, elapsed: Duration) {
        if let Some((_, h)) = self.request_hists.iter().find(|(k, _)| *k == kind) {
            h.record(elapsed);
        }
    }

    /// This server's instruments merged with the process-wide registry.
    fn merged_snapshot(&self) -> RegistrySnapshot {
        let mut snap = self.registry.snapshot();
        snap.merge(&telemetry::global().snapshot());
        snap
    }
}

/// Live counters and the shutdown flag, shared across connection threads.
struct Shared {
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    shutdown: AtomicBool,
    telemetry: ServeTelemetry,
}

impl Default for Shared {
    fn default() -> Self {
        Self {
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            telemetry: ServeTelemetry::new(),
        }
    }
}

impl Shared {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// A bound rule-serving daemon; see the [module docs](self).
pub struct Server {
    listener: TcpListener,
    engine: Arc<RwLock<Engine>>,
    shared: Arc<Shared>,
}

/// Read the engine even if a handler thread panicked mid-lock: the
/// engine's state is only written under [`write_engine`], whose guard is
/// not held across anything that can panic halfway through an update.
fn read_engine(engine: &RwLock<Engine>) -> RwLockReadGuard<'_, Engine> {
    engine
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_engine(engine: &RwLock<Engine>) -> RwLockWriteGuard<'_, Engine> {
    engine
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Server {
    /// Binds `addr` (use port 0 to let the OS pick) around the engine.
    /// The engine is mined lazily by [`Server::run`] if it has not been
    /// already, so queries never observe an empty pre-mine rule set.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(engine: Engine, addr: A) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine: Arc::new(RwLock::new(engine)),
            shared: Arc::new(Shared::default()),
        })
    }

    /// The bound address — the port to print for clients when binding
    /// port 0.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle on the shared engine, valid after [`Server::run`]
    /// returns (for the final report) or from another thread while
    /// serving.
    #[must_use]
    pub fn engine(&self) -> Arc<RwLock<Engine>> {
        Arc::clone(&self.engine)
    }

    /// Current serve counters.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.snapshot()
    }

    /// This server's telemetry registry merged with the process-wide
    /// one — the same view a `metrics` request answers with.
    #[must_use]
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.shared.telemetry.merged_snapshot()
    }

    /// Spawns a detached Prometheus text-exposition listener answering
    /// every connection on `listener` with the merged registry snapshot.
    /// The thread lives until the process exits (scrape listeners have no
    /// drain protocol; the daemon's lifetime is the process's).
    pub fn spawn_exposition(&self, listener: TcpListener) {
        let shared = Arc::clone(&self.shared);
        thread::spawn(move || serve_exposition(&listener, &shared));
    }

    /// Accepts and serves connections until a `shutdown` request, then
    /// returns the final counters.
    ///
    /// Connection threads are detached; a client that is mid-request at
    /// shutdown finishes its request against the still-shared engine.
    ///
    /// # Errors
    ///
    /// Fails only if `accept` itself fails.
    pub fn run(&self) -> io::Result<ServeStats> {
        {
            let mut engine = write_engine(&self.engine);
            if engine.report().is_none() {
                engine.mine();
            }
        }
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            self.shared.connections.fetch_add(1, Ordering::Relaxed);
            let engine = Arc::clone(&self.engine);
            let shared = Arc::clone(&self.shared);
            let addr = self.listener.local_addr()?;
            thread::spawn(move || {
                // Per-connection IO errors end that connection only.
                let _ = serve_connection(stream, &engine, &shared);
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Wake the blocking accept so the serve loop can exit.
                    drop(TcpStream::connect(addr));
                }
            });
        }
        Ok(self.shared.snapshot())
    }
}

/// Answers one plain-HTTP connection per scrape with the merged registry
/// rendered as Prometheus text format 0.0.4.
fn serve_exposition(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let body = shared.telemetry.merged_snapshot().to_prometheus_text();
        let response = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        );
        // Drain the scraper's request line best-effort, then answer;
        // a scrape failure must never disturb the daemon.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut buf = [0u8; 1024];
        let _ = stream.read(&mut buf);
        let _ = stream.write_all(response.as_bytes());
    }
}

/// The wire `type` tag of a parsed request, doubling as its histogram
/// label.
fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::Rule { .. } => "rule",
        Request::RulesGe { .. } => "rules_ge",
        Request::Expand { .. } => "expand",
        Request::Ingest { .. } => "ingest",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::Shutdown => "shutdown",
    }
}

/// Frame-at-a-time request loop for one client.
fn serve_connection(
    mut stream: TcpStream,
    engine: &RwLock<Engine>,
    shared: &Shared,
) -> io::Result<()> {
    while let Some(payload) = read_frame(&mut stream)? {
        let start = Instant::now();
        let t = &shared.telemetry;
        shared.requests.fetch_add(1, Ordering::Relaxed);
        t.bytes_in.add(4 + payload.len() as u64);
        t.in_flight.add(1);
        let parsed = Request::parse(&payload);
        let (kind, response) = match &parsed {
            Err(message) => {
                shared.errors.fetch_add(1, Ordering::Relaxed);
                ("error", error_response(message))
            }
            Ok(Request::Shutdown) => {
                shared.shutdown.store(true, Ordering::SeqCst);
                ("shutdown", ok_response())
            }
            Ok(Request::Metrics) => {
                // Record this request's latency *before* snapshotting, so
                // the snapshot it answers with already reconciles: the
                // histogram counts sum to the requests counter with no
                // off-by-one for the request in flight.
                t.record("metrics", start.elapsed());
                ("metrics", metrics_response(t))
            }
            Ok(request) => {
                let kind = request_kind(request);
                let response = match handle(request, engine, shared) {
                    Ok(response) => response,
                    Err(message) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        error_response(&message)
                    }
                };
                (kind, response)
            }
        };
        if kind != "metrics" {
            t.record(kind, start.elapsed());
        }
        t.in_flight.add(-1);
        t.bytes_out.add(4 + response.len() as u64);
        write_frame(&mut stream, &response)?;
        if matches!(parsed, Ok(Request::Shutdown)) {
            return Ok(());
        }
    }
    Ok(())
}

/// Dispatches one parsed request against the engine.
fn handle(request: &Request, engine: &RwLock<Engine>, shared: &Shared) -> Result<String, String> {
    match request {
        Request::Rule { lhs, rhs } => {
            let engine = read_engine(engine);
            match engine.query(*lhs, *rhs) {
                Some(answer) => Ok(answer_response(&answer)),
                None => Err(format!(
                    "column id out of range (matrix has {} columns)",
                    engine.matrix().n_cols()
                )),
            }
        }
        Request::RulesGe { threshold, limit } => {
            Ok(rules_response(&read_engine(engine), *threshold, *limit))
        }
        Request::Expand { threshold, limit } => {
            let engine = read_engine(engine);
            let threshold = threshold.unwrap_or_else(|| engine.config().threshold());
            Ok(expand_response(&engine, threshold, *limit))
        }
        Request::Ingest { rows } => {
            let mut engine = write_engine(engine);
            engine
                .ingest(rows)
                .map(|report| ingest_response(&report))
                .map_err(|e| e.to_string())
        }
        Request::Stats => Ok(stats_response(&read_engine(engine), &shared.snapshot())),
        Request::Metrics | Request::Shutdown => {
            unreachable!("metrics and shutdown are handled in the connection loop")
        }
    }
}

/// The merged registry snapshot as a framed response. The snapshot JSON
/// comes pre-rendered from [`RegistrySnapshot::to_json`]; splicing it in
/// keeps the registry's encoding in one place.
fn metrics_response(t: &ServeTelemetry) -> String {
    format!(
        "{{\"ok\": true, \"metrics\": {}}}",
        t.merged_snapshot().to_json()
    )
}

fn ok_response() -> String {
    let mut w = JsonWriter::new();
    w.object();
    w.bool("ok", true);
    w.end_object();
    w.finish()
}

fn error_response(message: &str) -> String {
    let mut w = JsonWriter::new();
    w.object();
    w.bool("ok", false);
    w.string("error", message);
    w.end_object();
    w.finish()
}

fn answer_response(a: &RuleAnswer) -> String {
    let mut w = JsonWriter::new();
    w.object();
    w.bool("ok", true);
    w.object_key("answer");
    w.uint("lhs", u64::from(a.lhs));
    w.uint("rhs", u64::from(a.rhs));
    w.uint("hits", u64::from(a.hits));
    w.uint("lhs_ones", u64::from(a.lhs_ones));
    w.uint("rhs_ones", u64::from(a.rhs_ones));
    w.float("confidence", a.confidence);
    w.float("similarity", a.similarity);
    w.bool("qualifies", a.qualifies);
    w.end_object();
    w.end_object();
    w.finish()
}

/// One implication rule object, with its boost when served from a base.
fn write_imp_rule(w: &mut JsonWriter, r: &dmc_core::ImplicationRule, boost: Option<f64>) {
    w.object();
    w.uint("lhs", u64::from(r.lhs));
    w.uint("rhs", u64::from(r.rhs));
    w.uint("hits", u64::from(r.hits));
    w.uint("lhs_ones", u64::from(r.lhs_ones));
    w.uint("rhs_ones", u64::from(r.rhs_ones));
    w.float("confidence", r.confidence());
    if let Some(boost) = boost {
        w.float("boost", boost);
    }
    w.end_object();
}

/// One similarity rule object, with its boost when served from a base.
fn write_sim_rule(w: &mut JsonWriter, r: &dmc_core::SimilarityRule, boost: Option<f64>) {
    w.object();
    w.uint("a", u64::from(r.a));
    w.uint("b", u64::from(r.b));
    w.uint("hits", u64::from(r.hits));
    w.uint("a_ones", u64::from(r.a_ones));
    w.uint("b_ones", u64::from(r.b_ones));
    w.float("similarity", r.similarity());
    if let Some(boost) = boost {
        w.float("boost", boost);
    }
    w.end_object();
}

fn imp_qualifies(r: &dmc_core::ImplicationRule, threshold: f64) -> bool {
    conf_qualifies(u64::from(r.hits), u64::from(r.lhs_ones), threshold)
}

fn sim_rule_qualifies(r: &dmc_core::SimilarityRule, threshold: f64) -> bool {
    sim_qualifies(
        u64::from(r.hits),
        u64::from(r.a_ones),
        u64::from(r.b_ones),
        threshold,
    )
}

/// Rules at or above `threshold`, using the miners' own boundary
/// predicates so "at" means exactly what mining meant by it. With a
/// compaction stage configured, answers come from the selected
/// irredundant base and carry a `boost` field per rule.
fn rules_response(engine: &Engine, threshold: f64, limit: Option<usize>) -> String {
    let limit = limit.unwrap_or(usize::MAX);
    let mut w = JsonWriter::new();
    w.object();
    w.bool("ok", true);
    w.string("algorithm", engine.config().algorithm());
    if let (Some(base), Some(config)) = (engine.compacted_base(), engine.compaction()) {
        w.bool("base", true);
        let (imps, sims) = base.select(config);
        match engine.config() {
            MineConfig::Implication(_) => {
                let matching: Vec<_> = imps
                    .iter()
                    .filter(|b| imp_qualifies(&b.rule, threshold))
                    .collect();
                w.uint("total", matching.len() as u64);
                w.array_key("rules");
                for b in matching.into_iter().take(limit) {
                    write_imp_rule(&mut w, &b.rule, Some(b.boost));
                }
                w.end_array();
            }
            MineConfig::Similarity(_) => {
                let matching: Vec<_> = sims
                    .iter()
                    .filter(|b| sim_rule_qualifies(&b.rule, threshold))
                    .collect();
                w.uint("total", matching.len() as u64);
                w.array_key("rules");
                for b in matching.into_iter().take(limit) {
                    write_sim_rule(&mut w, &b.rule, Some(b.boost));
                }
                w.end_array();
            }
        }
        w.end_object();
        return w.finish();
    }
    match engine.config() {
        MineConfig::Implication(_) => {
            let matching: Vec<_> = engine
                .implication_rules()
                .iter()
                .filter(|r| imp_qualifies(r, threshold))
                .collect();
            w.uint("total", matching.len() as u64);
            w.array_key("rules");
            for r in matching.into_iter().take(limit) {
                write_imp_rule(&mut w, r, None);
            }
            w.end_array();
        }
        MineConfig::Similarity(_) => {
            let matching: Vec<_> = engine
                .similarity_rules()
                .iter()
                .filter(|r| sim_rule_qualifies(r, threshold))
                .collect();
            w.uint("total", matching.len() as u64);
            w.array_key("rules");
            for r in matching.into_iter().take(limit) {
                write_sim_rule(&mut w, r, None);
            }
            w.end_array();
        }
    }
    w.end_object();
    w.finish()
}

/// The full rule set implied by the irredundant base at or above
/// `threshold` — the compaction round trip served over the wire. Without
/// a compaction stage the expansion is computed on the fly and equals the
/// current rule set.
fn expand_response(engine: &Engine, threshold: f64, limit: Option<usize>) -> String {
    let limit = limit.unwrap_or(usize::MAX);
    let (imps, sims) = engine.expand_rules();
    let mut w = JsonWriter::new();
    w.object();
    w.bool("ok", true);
    w.string("algorithm", engine.config().algorithm());
    match engine.config() {
        MineConfig::Implication(_) => {
            let matching: Vec<_> = imps
                .iter()
                .filter(|r| imp_qualifies(r, threshold))
                .collect();
            w.uint("total", matching.len() as u64);
            w.array_key("rules");
            for r in matching.into_iter().take(limit) {
                write_imp_rule(&mut w, r, None);
            }
            w.end_array();
        }
        MineConfig::Similarity(_) => {
            let matching: Vec<_> = sims
                .iter()
                .filter(|r| sim_rule_qualifies(r, threshold))
                .collect();
            w.uint("total", matching.len() as u64);
            w.array_key("rules");
            for r in matching.into_iter().take(limit) {
                write_sim_rule(&mut w, r, None);
            }
            w.end_array();
        }
    }
    w.end_object();
    w.finish()
}

fn ingest_response(report: &IngestReport) -> String {
    let mut w = JsonWriter::new();
    w.object();
    w.bool("ok", true);
    w.object_key("report");
    w.uint("rows", report.rows as u64);
    w.uint("pairs_bumped", report.pairs_bumped);
    w.uint("pairs_recounted", report.pairs_recounted);
    w.uint("rules_born", report.rules_born);
    w.uint("rules_died", report.rules_died);
    w.uint("rules", report.rules as u64);
    w.float("wall_seconds", report.wall_seconds);
    w.end_object();
    w.end_object();
    w.finish()
}

fn stats_response(engine: &Engine, stats: &ServeStats) -> String {
    let mut w = JsonWriter::new();
    w.object();
    w.bool("ok", true);
    w.object_key("stats");
    w.string("algorithm", engine.config().algorithm());
    w.float("threshold", engine.config().threshold());
    w.uint("rows", engine.matrix().n_rows() as u64);
    w.uint("cols", engine.matrix().n_cols() as u64);
    w.uint("rules", engine.rule_count() as u64);
    w.uint("connections", stats.connections);
    w.uint("requests", stats.requests);
    w.uint("errors", stats.errors);
    let ingest = engine.ingest_stats();
    w.object_key("ingest");
    w.uint("batches", ingest.batches);
    w.uint("rows_ingested", ingest.rows_ingested);
    w.end_object();
    w.end_object();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::request;
    use dmc_matrix::SparseMatrix;
    use dmc_metrics::json::JsonValue;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    fn start(config: MineConfig) -> (std::net::SocketAddr, thread::JoinHandle<ServeStats>) {
        let server = Server::bind(Engine::new(config, fig2()), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn get_u64(v: &JsonValue, path: &[&str]) -> u64 {
        path.iter()
            .try_fold(v, |v, key| v.get(key))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("missing {path:?} in {v:?}"))
    }

    #[test]
    fn serves_queries_ingest_and_stats_end_to_end() {
        let (addr, handle) = start(MineConfig::implications(0.8).unwrap());
        let mut client = TcpStream::connect(addr).unwrap();

        // Point query: c5 ⇒ c3 has hits 3 over 5 ones.
        let v = request(&mut client, "{\"type\": \"rule\", \"lhs\": 5, \"rhs\": 3}").unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(get_u64(&v, &["answer", "hits"]), 3);
        assert_eq!(get_u64(&v, &["answer", "lhs_ones"]), 5);

        // Rule listing matches a from-scratch mine of the same matrix.
        let expected = {
            let mut engine = Engine::new(MineConfig::implications(0.8).unwrap(), fig2());
            engine.mine();
            engine.implication_rules().len() as u64
        };
        let v = request(&mut client, "{\"type\": \"rules_ge\", \"threshold\": 0.8}").unwrap();
        assert_eq!(get_u64(&v, &["total"]), expected);
        assert_eq!(
            v.get("rules").and_then(JsonValue::as_array).unwrap().len() as u64,
            expected
        );
        let v = request(
            &mut client,
            "{\"type\": \"rules_ge\", \"threshold\": 0.8, \"limit\": 1}",
        )
        .unwrap();
        assert_eq!(get_u64(&v, &["total"]), expected, "total ignores the limit");
        assert_eq!(
            v.get("rules").and_then(JsonValue::as_array).unwrap().len(),
            1
        );

        // Ingest two rows, then see the updated counts in a query.
        let v = request(
            &mut client,
            "{\"type\": \"ingest\", \"rows\": [[3, 5], [3, 5]]}",
        )
        .unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(get_u64(&v, &["report", "rows"]), 2);
        let v = request(&mut client, "{\"type\": \"rule\", \"lhs\": 5, \"rhs\": 3}").unwrap();
        assert_eq!(get_u64(&v, &["answer", "hits"]), 5);
        assert_eq!(get_u64(&v, &["answer", "lhs_ones"]), 7);

        // Stats reflect the matrix growth and this connection's traffic.
        let v = request(&mut client, "{\"type\": \"stats\"}").unwrap();
        assert_eq!(get_u64(&v, &["stats", "rows"]), 11);
        assert_eq!(get_u64(&v, &["stats", "connections"]), 1);
        assert!(get_u64(&v, &["stats", "requests"]) >= 5);
        assert_eq!(get_u64(&v, &["stats", "errors"]), 0);
        assert_eq!(get_u64(&v, &["stats", "ingest", "rows_ingested"]), 2);

        let v = request(&mut client, "{\"type\": \"shutdown\"}").unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        let stats = handle.join().unwrap();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn bad_requests_do_not_poison_the_connection() {
        let (addr, handle) = start(MineConfig::similarities(0.4).unwrap());
        let mut client = TcpStream::connect(addr).unwrap();

        let v = request(&mut client, "this is not json").unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)));
        assert!(v.get("error").and_then(JsonValue::as_str).is_some());

        let v = request(&mut client, "{\"type\": \"rule\", \"lhs\": 0, \"rhs\": 99}").unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(false)));

        let v = request(&mut client, "{\"type\": \"ingest\", \"rows\": [[0], [99]]}").unwrap();
        assert_eq!(
            v.get("ok"),
            Some(&JsonValue::Bool(false)),
            "out-of-range ingest fails"
        );

        // The same connection still answers real queries afterwards.
        let v = request(&mut client, "{\"type\": \"rules_ge\", \"threshold\": 0.4}").unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(
            v.get("algorithm").and_then(JsonValue::as_str),
            Some("similarity")
        );

        request(&mut client, "{\"type\": \"shutdown\"}").unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.errors, 3);
        assert!(stats.requests >= 5);
    }

    #[test]
    fn compacted_engine_serves_base_and_expansion() {
        use dmc_core::{CompactionConfig, ImplicationConfig};
        // Reverse emission doubles fig2's 0.8-confidence rules, so the
        // base (reverses dropped, rebuilt on expansion) is a real subset.
        let config = || MineConfig::Implication(ImplicationConfig::new(0.8).with_reverse(true));
        let engine = Engine::new(config(), fig2()).with_compaction(CompactionConfig::default());
        let server = Server::bind(engine, "127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = thread::spawn(move || server.run().unwrap());
        let mut client = TcpStream::connect(addr).unwrap();

        // Offline reference: the same engine mined directly.
        let (full, base_len) = {
            let mut e = Engine::new(config(), fig2()).with_compaction(CompactionConfig::default());
            e.mine();
            (
                e.implication_rules().to_vec(),
                e.compacted_base().unwrap().rules_in_base(),
            )
        };
        assert!(base_len < full.len(), "fig2 at 0.8 must actually compact");

        // rules_ge answers from the base, each rule carrying its boost.
        let v = request(&mut client, "{\"type\": \"rules_ge\", \"threshold\": 0.8}").unwrap();
        assert_eq!(v.get("base"), Some(&JsonValue::Bool(true)));
        assert_eq!(get_u64(&v, &["total"]), base_len as u64);
        let rules = v.get("rules").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rules.len(), base_len);
        assert!(
            rules
                .iter()
                .all(|r| r.get("boost").and_then(JsonValue::as_f64).is_some()),
            "base rules carry a boost field"
        );

        // expand rebuilds the full implied rule set, in mined order.
        let v = request(&mut client, "{\"type\": \"expand\"}").unwrap();
        assert_eq!(get_u64(&v, &["total"]), full.len() as u64);
        let pairs: Vec<(u64, u64)> = v
            .get("rules")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .map(|r| (get_u64(r, &["lhs"]), get_u64(r, &["rhs"])))
            .collect();
        let expected: Vec<(u64, u64)> = full
            .iter()
            .map(|r| (u64::from(r.lhs), u64::from(r.rhs)))
            .collect();
        assert_eq!(pairs, expected, "expansion equals the uncompacted set");

        // A raised threshold narrows the expansion; the limit caps the
        // listing but not the total.
        let v = request(
            &mut client,
            "{\"type\": \"expand\", \"threshold\": 1.0, \"limit\": 1}",
        )
        .unwrap();
        let total = get_u64(&v, &["total"]);
        assert!(total <= full.len() as u64);
        assert!(v.get("rules").and_then(JsonValue::as_array).unwrap().len() <= 1);

        request(&mut client, "{\"type\": \"shutdown\"}").unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn expand_without_compaction_matches_rules_ge() {
        let (addr, handle) = start(MineConfig::similarities(0.4).unwrap());
        let mut client = TcpStream::connect(addr).unwrap();
        let ge = request(&mut client, "{\"type\": \"rules_ge\", \"threshold\": 0.4}").unwrap();
        let ex = request(&mut client, "{\"type\": \"expand\"}").unwrap();
        assert_eq!(
            get_u64(&ge, &["total"]),
            get_u64(&ex, &["total"]),
            "on-the-fly expansion reproduces the served rule set"
        );
        assert_eq!(ge.get("rules"), ex.get("rules"));
        request(&mut client, "{\"type\": \"shutdown\"}").unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn metrics_request_reconciles_with_the_request_counter() {
        let (addr, handle) = start(MineConfig::implications(0.8).unwrap());
        let mut client = TcpStream::connect(addr).unwrap();
        for _ in 0..3 {
            request(&mut client, "{\"type\": \"rule\", \"lhs\": 5, \"rhs\": 3}").unwrap();
        }
        request(&mut client, "this is not json").unwrap();

        // 3 rule + 1 error + this metrics request = 5 frames so far; the
        // snapshot in the response must already include all of them.
        let v = request(&mut client, "{\"type\": \"metrics\"}").unwrap();
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        let m = v.get("metrics").expect("metrics payload");
        let hists = m.get("histograms").expect("histograms section");
        let request_count: u64 = hists
            .keys()
            .into_iter()
            .filter(|name| name.starts_with("serve.request."))
            .map(|name| get_u64(hists, &[name, "count"]))
            .sum();
        assert_eq!(request_count, 5, "every frame lands in one histogram");
        assert_eq!(get_u64(hists, &["serve.request.rule", "count"]), 3);
        assert_eq!(get_u64(hists, &["serve.request.error", "count"]), 1);
        assert_eq!(get_u64(hists, &["serve.request.metrics", "count"]), 1);
        let p50 = get_u64(hists, &["serve.request.rule", "p50_us"]);
        let p99 = get_u64(hists, &["serve.request.rule", "p99_us"]);
        let max = get_u64(hists, &["serve.request.rule", "max_us"]);
        assert!(p50 <= p99 && p99 <= max, "quantiles are monotone");
        let counters = m.get("counters").expect("counters section");
        assert!(get_u64(counters, &["serve.bytes_in"]) > 0);
        assert!(get_u64(counters, &["serve.bytes_out"]) > 0);

        request(&mut client, "{\"type\": \"shutdown\"}").unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.requests, 6);
        assert_eq!(stats.errors, 1);
    }

    #[test]
    fn concurrent_clients_each_get_exact_answers() {
        let (addr, handle) = start(MineConfig::implications(0.8).unwrap());
        let workers: Vec<_> = (0..4)
            .map(|_| {
                thread::spawn(move || {
                    let mut client = TcpStream::connect(addr).unwrap();
                    for _ in 0..25 {
                        let v =
                            request(&mut client, "{\"type\": \"rule\", \"lhs\": 5, \"rhs\": 3}")
                                .unwrap();
                        assert_eq!(get_u64(&v, &["answer", "hits"]), 3);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let mut client = TcpStream::connect(addr).unwrap();
        request(&mut client, "{\"type\": \"shutdown\"}").unwrap();
        let stats = handle.join().unwrap();
        assert_eq!(stats.connections, 5);
        assert_eq!(stats.requests, 101);
        assert_eq!(stats.errors, 0);
    }
}
