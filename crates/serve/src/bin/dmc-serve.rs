//! The standalone daemon: load a matrix, mine once, serve until a
//! `shutdown` request.
//!
//! ```text
//! dmc-serve <matrix-file> (--minconf X | --minsim X)
//!           [--threads N] [--addr HOST:PORT] [--metrics FILE]
//!           [--telemetry-addr HOST:PORT]
//! ```
//!
//! Prints `listening on HOST:PORT` once ready (with `--addr` defaulting
//! to `127.0.0.1:0`, the OS picks the port and this line is how clients
//! learn it). Exit code 2 for usage errors, 1 for runtime failures.

use dmc_core::{Engine, MineConfig};
use dmc_matrix::io::read_matrix;
use dmc_serve::{run_daemon, DaemonOptions};
use std::fs::File;
use std::process::ExitCode;

const USAGE: &str = "usage: dmc-serve <matrix-file> (--minconf X | --minsim X) \
[--threads N] [--addr HOST:PORT] [--metrics FILE] [--telemetry-addr HOST:PORT]";

struct Cli {
    matrix: String,
    config: MineConfig,
    threads: usize,
    options: DaemonOptions,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut matrix = None;
    let mut minconf = None;
    let mut minsim = None;
    let mut threads = 1usize;
    let mut options = DaemonOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--minconf" => minconf = Some(value("--minconf")?),
            "--minsim" => minsim = Some(value("--minsim")?),
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?
            }
            "--addr" => options.addr = value("--addr")?,
            "--metrics" => options.metrics = Some(value("--metrics")?),
            "--telemetry-addr" => options.telemetry_addr = Some(value("--telemetry-addr")?),
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            other if matrix.is_none() => matrix = Some(other.to_string()),
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    let matrix = matrix.ok_or_else(|| "a matrix file is required".to_string())?;
    let parse_threshold = |name: &str, text: String| {
        text.parse::<f64>()
            .map_err(|_| format!("{name} needs a number"))
    };
    let config =
        match (minconf, minsim) {
            (Some(c), None) => MineConfig::implications(parse_threshold("--minconf", c)?)
                .map_err(|e| e.to_string())?,
            (None, Some(s)) => MineConfig::similarities(parse_threshold("--minsim", s)?)
                .map_err(|e| e.to_string())?,
            _ => return Err("exactly one of --minconf or --minsim is required".to_string()),
        };
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    Ok(Cli {
        matrix,
        config,
        threads,
        options,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let matrix = match File::open(&cli.matrix)
        .map_err(|e| e.to_string())
        .and_then(|f| read_matrix(f).map_err(|e| e.to_string()))
    {
        Ok(matrix) => matrix,
        Err(message) => {
            eprintln!("{}: {message}", cli.matrix);
            return ExitCode::from(1);
        }
    };
    let engine = Engine::new(cli.config, matrix).with_threads(cli.threads);
    match run_daemon(engine, &cli.options) {
        Ok(stats) => {
            eprintln!(
                "served {} requests over {} connections ({} errors)",
                stats.requests, stats.connections, stats.errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::from(1)
        }
    }
}
