//! The wire protocol: length-framed JSON over a byte stream.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The same framing carries requests and responses;
//! a client writes one request frame and reads one response frame, any
//! number of times per connection. Frames above [`MAX_FRAME_BYTES`] are
//! rejected before the payload is read, so a corrupt or hostile length
//! prefix cannot make the peer allocate unboundedly.
//!
//! The payload dialect is the workspace's own [`dmc_metrics::json`]
//! writer/parser pair — the daemon introduces no second JSON
//! implementation. Requests are objects with a `"type"` tag:
//!
//! | `type`     | fields                                   | answer            |
//! |------------|------------------------------------------|-------------------|
//! | `rule`     | `lhs`, `rhs` (column ids)                | exact counts and scores for that directed pair |
//! | `rules_ge` | `threshold`, optional `limit`            | current rules at or above `threshold` (from the filtered irredundant base when the engine has a compaction stage) |
//! | `expand`   | optional `threshold`, optional `limit`   | all rules implied by the irredundant base at or above `threshold` (default: the engine's own threshold) — byte-identical to the uncompacted rule set |
//! | `ingest`   | `rows` (array of column-id arrays)       | the incremental [`IngestReport`](dmc_core::IngestReport) |
//! | `stats`    | —                                        | engine shape plus live serve counters |
//! | `metrics`  | —                                        | the daemon's telemetry registry: named counters, gauges, and per-request-type latency histograms with p50/p90/p99 |
//! | `shutdown` | —                                        | `{"ok": true}`, then the daemon drains and exits |
//!
//! Every response carries `"ok"`; failures are `{"ok": false, "error":
//! "..."}` and leave the connection usable (per-request error isolation).

use dmc_matrix::ColumnId;
use dmc_metrics::json::JsonValue;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload, requests and responses alike.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one frame: big-endian length prefix, then the payload.
///
/// # Errors
///
/// Propagates write errors; rejects payloads above [`MAX_FRAME_BYTES`]
/// with [`io::ErrorKind::InvalidInput`].
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF before any header byte.
///
/// # Errors
///
/// Fails on short reads mid-frame, oversized lengths, or non-UTF-8
/// payloads.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<String>> {
    let mut header = [0u8; 4];
    // Distinguish "peer closed between frames" (clean) from "closed
    // mid-header" (an error): only a zero-byte first read is clean.
    match r.read(&mut header[..1])? {
        0 => return Ok(None),
        _ => r.read_exact(&mut header[1..])?,
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// One request/response round trip; the client-side convenience used by
/// the CLI, the tests and CI's smoke client.
///
/// # Errors
///
/// Fails on IO errors, an EOF instead of a response, or a response that
/// is not valid JSON.
pub fn request<S: Read + Write>(stream: &mut S, payload: &str) -> io::Result<JsonValue> {
    write_frame(stream, payload)?;
    let text = read_frame(stream)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the response",
        )
    })?;
    JsonValue::parse(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad response JSON: {e}"),
        )
    })
}

/// A parsed client request; see the [module docs](self) for the schema.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Exact counts for the directed pair `lhs ⇒ rhs`.
    Rule { lhs: ColumnId, rhs: ColumnId },
    /// Current rules scoring at or above `threshold`, optionally capped.
    RulesGe {
        threshold: f64,
        limit: Option<usize>,
    },
    /// Every rule implied by the compacted base at or above `threshold`
    /// (the engine's own mine threshold when omitted), optionally capped.
    Expand {
        threshold: Option<f64>,
        limit: Option<usize>,
    },
    /// Append rows and incrementally re-derive the rule set.
    Ingest { rows: Vec<Vec<ColumnId>> },
    /// Engine shape and live serve counters.
    Stats,
    /// The live telemetry registry: counters, gauges, and latency
    /// histograms, merged across the daemon and the process globals.
    Metrics,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

fn column_id(v: &JsonValue, what: &str) -> Result<ColumnId, String> {
    let n = v
        .as_u64()
        .ok_or_else(|| format!("{what} must be a non-negative integer"))?;
    ColumnId::try_from(n).map_err(|_| format!("{what} {n} does not fit a column id"))
}

impl Request {
    /// Parses one request payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (the daemon echoes it in the
    /// `"error"` field) for malformed JSON, a missing/unknown `"type"`,
    /// or fields of the wrong shape.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let ty = v
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "request is missing the \"type\" field".to_string())?;
        match ty {
            "rule" => Ok(Request::Rule {
                lhs: column_id(v.get("lhs").unwrap_or(&JsonValue::Null), "\"lhs\"")?,
                rhs: column_id(v.get("rhs").unwrap_or(&JsonValue::Null), "\"rhs\"")?,
            }),
            "rules_ge" => {
                let threshold = v
                    .get("threshold")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| "\"threshold\" must be a number".to_string())?;
                let limit = match v.get("limit") {
                    None | Some(JsonValue::Null) => None,
                    Some(l) => Some(
                        l.as_u64()
                            .ok_or_else(|| "\"limit\" must be a non-negative integer".to_string())?
                            as usize,
                    ),
                };
                Ok(Request::RulesGe { threshold, limit })
            }
            "expand" => {
                let threshold = match v.get("threshold") {
                    None | Some(JsonValue::Null) => None,
                    Some(t) => Some(
                        t.as_f64()
                            .ok_or_else(|| "\"threshold\" must be a number".to_string())?,
                    ),
                };
                let limit = match v.get("limit") {
                    None | Some(JsonValue::Null) => None,
                    Some(l) => Some(
                        l.as_u64()
                            .ok_or_else(|| "\"limit\" must be a non-negative integer".to_string())?
                            as usize,
                    ),
                };
                Ok(Request::Expand { threshold, limit })
            }
            "ingest" => {
                let rows = v
                    .get("rows")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| "\"rows\" must be an array of rows".to_string())?;
                let rows = rows
                    .iter()
                    .map(|row| {
                        row.as_array()
                            .ok_or_else(|| "each row must be an array of column ids".to_string())?
                            .iter()
                            .map(|c| column_id(c, "column id"))
                            .collect()
                    })
                    .collect::<Result<Vec<Vec<ColumnId>>, String>>()?;
                Ok(Request::Ingest { rows })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\": \"stats\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"type\": \"stats\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF is None");
    }

    #[test]
    fn oversized_lengths_are_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        // Header promises 10 bytes, payload has 3.
        let mut buf = Vec::new();
        buf.extend_from_slice(&10u32.to_be_bytes());
        buf.extend_from_slice(b"abc");
        assert!(read_frame(&mut Cursor::new(buf)).is_err());
        // Partial header.
        assert!(read_frame(&mut Cursor::new(vec![0u8, 0])).is_err());
    }

    #[test]
    fn requests_parse() {
        assert_eq!(
            Request::parse("{\"type\": \"rule\", \"lhs\": 3, \"rhs\": 7}").unwrap(),
            Request::Rule { lhs: 3, rhs: 7 }
        );
        assert_eq!(
            Request::parse("{\"type\": \"rules_ge\", \"threshold\": 0.9}").unwrap(),
            Request::RulesGe {
                threshold: 0.9,
                limit: None
            }
        );
        assert_eq!(
            Request::parse("{\"type\": \"rules_ge\", \"threshold\": 0.5, \"limit\": 10}").unwrap(),
            Request::RulesGe {
                threshold: 0.5,
                limit: Some(10)
            }
        );
        assert_eq!(
            Request::parse("{\"type\": \"expand\"}").unwrap(),
            Request::Expand {
                threshold: None,
                limit: None
            }
        );
        assert_eq!(
            Request::parse("{\"type\": \"expand\", \"threshold\": 0.8, \"limit\": 3}").unwrap(),
            Request::Expand {
                threshold: Some(0.8),
                limit: Some(3)
            }
        );
        assert_eq!(
            Request::parse("{\"type\": \"ingest\", \"rows\": [[0, 2], [1]]}").unwrap(),
            Request::Ingest {
                rows: vec![vec![0, 2], vec![1]]
            }
        );
        assert_eq!(
            Request::parse("{\"type\": \"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse("{\"type\": \"metrics\"}").unwrap(),
            Request::Metrics
        );
        assert_eq!(
            Request::parse("{\"type\": \"shutdown\"}").unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn bad_requests_read_as_messages_not_panics() {
        for (text, needle) in [
            ("not json", "JSON parse error"),
            ("{}", "missing the \"type\""),
            ("{\"type\": \"frobnicate\"}", "unknown request type"),
            (
                "{\"type\": \"rule\", \"lhs\": -1, \"rhs\": 0}",
                "non-negative",
            ),
            ("{\"type\": \"rule\", \"lhs\": 1}", "\"rhs\""),
            ("{\"type\": \"rules_ge\"}", "\"threshold\""),
            (
                "{\"type\": \"expand\", \"threshold\": \"hi\"}",
                "\"threshold\" must be a number",
            ),
            (
                "{\"type\": \"expand\", \"limit\": -2}",
                "\"limit\" must be a non-negative integer",
            ),
            ("{\"type\": \"ingest\", \"rows\": 3}", "array of rows"),
            (
                "{\"type\": \"ingest\", \"rows\": [3]}",
                "array of column ids",
            ),
        ] {
            let err = Request::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }
}
