//! The `dmc-benchsuite` binary's compare gate, end to end: exit codes,
//! verdict rendering, and error reporting on malformed records — the
//! exact contract CI's bench-gate job relies on.

use dmc_bench::baseline::{self, BENCH_SCHEMA};
use dmc_bench::suite::{BenchCell, BenchSuite, CounterFingerprint};
use std::path::PathBuf;
use std::process::{Command, Output};

fn cell(id: &str, median: f64) -> BenchCell {
    BenchCell {
        id: id.into(),
        algorithm: "imp".into(),
        mode: "mem".into(),
        threads: 1,
        scale: "small".into(),
        rows: 100,
        cols: 20,
        threshold: 0.9,
        rules: 5,
        median_seconds: median,
        mad_seconds: median * 0.01,
        rows_per_sec: 100.0 / median,
        deletions_per_sec: 10.0 / median,
        spill_bytes_per_sec: 0.0,
        seconds: vec![median * 0.99, median, median * 1.01],
        counters: CounterFingerprint {
            rows_scanned: 100,
            candidates_admitted: 15,
            candidates_deleted: 10,
            misses_counted: 30,
            rules_emitted: 5,
            spill_bytes: 0,
        },
    }
}

fn record(medians: &[(&str, f64)]) -> BenchSuite {
    BenchSuite {
        schema: BENCH_SCHEMA.into(),
        name: "cli-test".into(),
        scales: vec!["small".into()],
        threads: vec![1],
        warmup: 0,
        repeats: 3,
        cells: medians.iter().map(|(id, m)| cell(id, *m)).collect(),
    }
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("dmc-benchsuite-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn write(&self, name: &str, suite: &BenchSuite) -> PathBuf {
        let path = self.0.join(name);
        baseline::save(suite, &path).unwrap();
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn benchsuite(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dmc-benchsuite"))
        .args(args)
        .output()
        .expect("spawn dmc-benchsuite")
}

#[test]
fn gate_passes_on_identical_records() {
    let dir = TempDir::new("pass");
    let base = dir.write("base.json", &record(&[("a", 1.0), ("b", 2.0)]));
    let out = benchsuite(&[
        "compare",
        base.to_str().unwrap(),
        base.to_str().unwrap(),
        "--gate",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("gate: PASS"), "stdout: {stdout}");
    assert!(stdout.contains("unchanged"), "stdout: {stdout}");
}

#[test]
fn gate_fails_on_a_slowed_cell() {
    let dir = TempDir::new("fail");
    let base = dir.write("base.json", &record(&[("a", 1.0), ("b", 2.0)]));
    let cur = dir.write("cur.json", &record(&[("a", 1.0), ("b", 4.0)]));
    let out = benchsuite(&[
        "compare",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--gate",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("REGRESSED"), "stdout: {stdout}");
    assert!(stdout.contains("gate: FAIL"), "stdout: {stdout}");

    // Without --gate the same regression is advisory: exit 0.
    let advisory = benchsuite(&["compare", base.to_str().unwrap(), cur.to_str().unwrap()]);
    assert!(advisory.status.success());
    assert!(String::from_utf8_lossy(&advisory.stdout).contains("REGRESSED"));
}

#[test]
fn tolerance_flags_reach_the_comparator() {
    let dir = TempDir::new("tol");
    let base = dir.write("base.json", &record(&[("a", 1.0)]));
    // +20%: regression at the default 5% floor, absorbed at 30%.
    let cur = dir.write("cur.json", &record(&[("a", 1.2)]));
    let strict = benchsuite(&[
        "compare",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--gate",
    ]);
    assert_eq!(strict.status.code(), Some(1));
    let loose = benchsuite(&[
        "compare",
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--gate",
        "--rel-floor",
        "0.3",
    ]);
    let stdout = String::from_utf8_lossy(&loose.stdout);
    assert!(loose.status.success(), "stdout: {stdout}");
}

#[test]
fn schema_and_shape_errors_exit_nonzero_with_context() {
    let dir = TempDir::new("schema");
    let good = dir.write("good.json", &record(&[("a", 1.0)]));
    let bad = dir.0.join("bad.json");
    std::fs::write(
        &bad,
        baseline::to_json(&record(&[("a", 1.0)])).replace(BENCH_SCHEMA, "dmc.bench.v0"),
    )
    .unwrap();
    let out = benchsuite(&[
        "compare",
        good.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--gate",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("schema mismatch"), "stderr: {stderr}");

    let missing = dir.0.join("nope.json");
    let out = benchsuite(&["compare", good.to_str().unwrap(), missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));

    // A record with a cell the baseline lacks is a hard error, not a
    // silently shorter table.
    let extra = dir.write("extra.json", &record(&[("a", 1.0), ("z", 1.0)]));
    let out = benchsuite(&["compare", good.to_str().unwrap(), extra.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing"), "stderr: {stderr}");
}

#[test]
fn bad_usage_exits_two() {
    assert_eq!(benchsuite(&[]).status.code(), Some(2));
    assert_eq!(benchsuite(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(
        benchsuite(&["compare", "only-one.json"]).status.code(),
        Some(2)
    );
    assert_eq!(benchsuite(&["run", "--bogus"]).status.code(), Some(2));
    assert_eq!(
        benchsuite(&["compare", "a", "b", "--mad-k", "minus"])
            .status
            .code(),
        Some(2)
    );
}
