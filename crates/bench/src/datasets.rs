//! The seven Table-1 data sets, generated at a configurable scale.
//!
//! Name mapping (paper → here): `Wlog`/`WlogP` → [`wlog`]/[`wlogp`],
//! `plinkF`/`plinkT` → [`plink`], `News`/`NewsP` → [`news_full`]/[`newsp`],
//! `dicD` → [`dicd`]. The default [`Scale::Medium`] keeps every sweep in
//! seconds on a laptop; [`Scale::Large`] stresses the same shapes harder.
//! Absolute sizes are smaller than the paper's (its corpora are up to 700k
//! columns); the shapes — heavy tails, crawler rows, frequency-≤4 link
//! columns, topical clusters, synonym columns — are preserved, which is
//! what drives every qualitative result (see DESIGN.md §4).

use dmc_datagen::{
    dictionary, link_graph, news, weblog, DictionaryConfig, LinkGraphConfig, NewsConfig,
    WeblogConfig,
};
use dmc_matrix::transform::{prune_columns_by_support, prune_min_support};
use dmc_matrix::SparseMatrix;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-sweep sizes for tests and quick runs.
    Small,
    /// The default experiment scale.
    Medium,
    /// Stress scale.
    Large,
}

impl Scale {
    /// Parses `small` / `medium` / `large`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    fn factor(self) -> usize {
        match self {
            Scale::Small => 1,
            Scale::Medium => 4,
            Scale::Large => 12,
        }
    }
}

/// `Wlog`: web access log, heavy-tailed with crawler rows.
#[must_use]
pub fn wlog(scale: Scale) -> SparseMatrix {
    let f = scale.factor();
    let mut cfg = WeblogConfig::new(5000 * f, 1000 * f, seed(1));
    cfg.crawlers = 3 + f;
    weblog(&cfg)
}

/// `WlogP`: [`wlog`] with columns of ≤ 10 ones pruned (the paper's
/// derivation).
#[must_use]
pub fn wlogp(scale: Scale) -> SparseMatrix {
    prune_min_support(&wlog(scale), 11).matrix
}

/// `plinkF` and `plinkT`: the link graph in both orientations.
#[must_use]
pub fn plink(scale: Scale) -> dmc_datagen::LinkGraphs {
    let f = scale.factor();
    link_graph(&LinkGraphConfig::new(2500 * f, seed(2)))
}

/// `News`: the full synthetic corpus.
#[must_use]
pub fn news_full(scale: Scale) -> dmc_datagen::NewsData {
    let f = scale.factor();
    news(&NewsConfig::new(3000 * f, 2000 * f, seed(3)))
}

/// `NewsP`: the corpus support-pruned to the paper's window (min 0.2%,
/// max 20% of documents) — the a-priori-friendly comparison set of Fig
/// 6(i),(j).
#[must_use]
pub fn newsp(scale: Scale) -> SparseMatrix {
    let data = news_full(scale);
    let docs = data.matrix.n_rows();
    let min = (docs as f64 * 0.002).ceil() as usize;
    let max = (docs as f64 * 0.20).floor() as usize;
    prune_columns_by_support(&data.matrix, min.max(2), max).matrix
}

/// `dicD`: the dictionary matrix.
#[must_use]
pub fn dicd(scale: Scale) -> SparseMatrix {
    let f = scale.factor();
    dictionary(&DictionaryConfig::new(1500 * f, 900 * f, seed(4)))
}

/// Deterministic per-dataset seeds.
fn seed(i: u64) -> u64 {
    0xD31C_0000 + i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_at_small_scale() {
        let w = wlog(Scale::Small);
        assert_eq!(w.n_rows(), 5000);
        let wp = wlogp(Scale::Small);
        assert!(wp.n_cols() < w.n_cols(), "pruning removes columns");
        let g = plink(Scale::Small);
        assert_eq!(g.forward.n_rows(), 2500);
        let n = news_full(Scale::Small);
        assert_eq!(n.matrix.n_rows(), 3000);
        let np = newsp(Scale::Small);
        assert!(np.n_cols() < n.matrix.n_cols());
        let d = dicd(Scale::Small);
        assert_eq!(d.n_cols(), 1500);
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("huge"), None);
    }
}
