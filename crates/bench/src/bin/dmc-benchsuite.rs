//! `dmc-benchsuite` — machine-readable benchmark suite with a
//! noise-aware regression gate.
//!
//! ```text
//! dmc-benchsuite run [--quick] [-o FILE] [--name NAME]
//! dmc-benchsuite compare BASELINE CURRENT [--gate]
//!     [--mad-k K] [--rel-floor F] [--abs-floor S]
//! ```
//!
//! `run` executes the workload matrix (in-memory vs streamed ×
//! implication vs similarity × thread counts × planted scales), records
//! median/MAD wall times and work-normalized rates per cell, and writes a
//! `dmc.bench.v1` record. `compare` diffs two records and renders a
//! per-cell verdict table; with `--gate` it exits nonzero when any cell
//! regressed beyond the noise band **or** the current record's widest
//! parallel cell is slower than its sequential cell in any
//! (algorithm, mode, scale) group (the thread-scaling gate).

use dmc_bench::baseline;
use dmc_bench::compare::{compare, render_scaling, scaling_checks, Tolerance};
use dmc_bench::suite::{run_suite, SuiteConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dmc-benchsuite run [--quick] [-o FILE] [--name NAME]\n\
         \x20      dmc-benchsuite compare BASELINE CURRENT [--gate]\n\
         \x20          [--mad-k K] [--rel-floor F] [--abs-floor S]\n\
         \n\
         run      mine the workload matrix and write a dmc.bench.v1 record\n\
         \x20        --quick    small scale, threads 1/4, 5 repeats (CI gate matrix)\n\
         \x20        -o FILE    output path (default BENCH_<name>.json)\n\
         \x20        --name N   record name (default full/quick)\n\
         compare  diff two records with a noise-aware threshold and check\n\
         \x20      the current record's t1-vs-tmax thread scaling\n\
         \x20        --gate       exit 1 when any cell regressed or any\n\
         \x20                     parallel cell is slower than sequential\n\
         \x20        --mad-k K    MAD multiplier in the noise band (default 3)\n\
         \x20        --rel-floor F  relative band floor (default 0.05)\n\
         \x20        --abs-floor S  absolute band floor in seconds (default 0.02)"
    );
    ExitCode::from(2)
}

fn parse_flag_value(
    args: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
    flag: &str,
) -> Result<String, ExitCode> {
    args.next().ok_or_else(|| {
        eprintln!("dmc-benchsuite: {flag} needs a value");
        ExitCode::from(2)
    })
}

fn run(args: Vec<String>) -> ExitCode {
    let mut quick = false;
    let mut out: Option<PathBuf> = None;
    let mut name: Option<String> = None;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "-o" | "--out" => match parse_flag_value(&mut args, &arg) {
                Ok(v) => out = Some(PathBuf::from(v)),
                Err(code) => return code,
            },
            "--name" => match parse_flag_value(&mut args, &arg) {
                Ok(v) => name = Some(v),
                Err(code) => return code,
            },
            _ => {
                eprintln!("dmc-benchsuite: unknown run argument {arg:?}");
                return usage();
            }
        }
    }
    let mut config = if quick {
        SuiteConfig::quick()
    } else {
        SuiteConfig::full()
    };
    if let Some(name) = name {
        config.name = name;
    }
    let out = out.unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", config.name)));
    eprintln!(
        "running {} suite: scales {:?}, threads {:?}, {} warmup + {} repeats per cell",
        config.name, config.scales, config.threads, config.warmup, config.repeats
    );
    let suite = run_suite(&config, |line| eprintln!("  {line}"));
    if let Err(e) = baseline::save(&suite, &out) {
        eprintln!("dmc-benchsuite: cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {} ({} cells)", out.display(), suite.cells.len());
    // Advisory thread-scaling readout (the gate runs under `compare`).
    let checks = scaling_checks(&suite, Tolerance::scaling());
    if !checks.is_empty() {
        eprint!("{}", render_scaling(&checks));
    }
    ExitCode::SUCCESS
}

fn run_compare(args: Vec<String>) -> ExitCode {
    let mut gate = false;
    let mut tolerance = Tolerance::default();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        let float_flag = |args: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
                          target: &mut f64|
         -> Option<ExitCode> {
            match parse_flag_value(args, &arg) {
                Ok(v) => match v.parse::<f64>() {
                    Ok(parsed) if parsed >= 0.0 => {
                        *target = parsed;
                        None
                    }
                    _ => {
                        eprintln!("dmc-benchsuite: {arg} needs a non-negative number, got {v:?}");
                        Some(ExitCode::from(2))
                    }
                },
                Err(code) => Some(code),
            }
        };
        match arg.as_str() {
            "--gate" => gate = true,
            "--mad-k" => {
                if let Some(code) = float_flag(&mut args, &mut tolerance.mad_k) {
                    return code;
                }
            }
            "--rel-floor" => {
                if let Some(code) = float_flag(&mut args, &mut tolerance.rel_floor) {
                    return code;
                }
            }
            "--abs-floor" => {
                if let Some(code) = float_flag(&mut args, &mut tolerance.abs_floor) {
                    return code;
                }
            }
            _ if arg.starts_with('-') => {
                eprintln!("dmc-benchsuite: unknown compare argument {arg:?}");
                return usage();
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        eprintln!("dmc-benchsuite: compare needs exactly two record paths");
        return usage();
    };
    let load = |path: &Path| {
        baseline::load(path).map_err(|e| {
            eprintln!("dmc-benchsuite: {}: {e}", path.display());
            ExitCode::FAILURE
        })
    };
    let (base, cur) = match (load(base_path), load(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        _ => return ExitCode::FAILURE,
    };
    let cmp = match compare(&base, &cur, tolerance) {
        Ok(cmp) => cmp,
        Err(e) => {
            eprintln!("dmc-benchsuite: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", cmp.render());
    // Thread-scaling gate on the current record: parallel cells must not
    // be slower than their sequential counterparts.
    let checks = scaling_checks(&cur, Tolerance::scaling());
    if !checks.is_empty() {
        print!("{}", render_scaling(&checks));
    }
    let scaling_failures = checks.iter().filter(|c| !c.ok).count();
    let regressions = cmp.regressions();
    if regressions.is_empty() && scaling_failures == 0 {
        println!(
            "gate: PASS ({} cells within the noise band, {} scaling groups ok)",
            cmp.cells.len(),
            checks.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "gate: {} ({} of {} cells regressed, {} scaling groups slower than t1)",
            if gate {
                "FAIL"
            } else {
                "problems found (advisory, no --gate)"
            },
            regressions.len(),
            cmp.cells.len(),
            scaling_failures
        );
        if gate {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let subcommand = args.remove(0);
    match subcommand.as_str() {
        "run" => run(args),
        "compare" => run_compare(args),
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("dmc-benchsuite: unknown subcommand {subcommand:?}");
            usage()
        }
    }
}
