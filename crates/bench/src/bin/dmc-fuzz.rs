//! Differential fuzzer: random matrices × random configurations, every
//! result checked against the brute-force oracle.
//!
//! ```text
//! cargo run --release -p dmc-bench --bin dmc-fuzz -- [iterations] [seed]
//! ```
//!
//! Each iteration draws a random sparse matrix (dimensions, density and
//! skew all randomized), a random threshold, and a random configuration
//! (row order, switch point, stage/pruning toggles, thread count, streamed
//! or in-memory), mines it every way, and asserts byte-identical agreement
//! with `dmc_baselines::oracle`. Exits non-zero on the first mismatch with
//! a reproduction line.

use dmc_baselines::oracle;
use dmc_core::{
    find_implications, find_implications_parallel, find_implications_streamed, find_similarities,
    find_similarities_parallel, find_similarities_streamed, ImplicationConfig, RowOrder,
    SimilarityConfig, SparseMatrix, SwitchPolicy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

fn random_matrix(rng: &mut StdRng) -> SparseMatrix {
    let rows = rng.gen_range(0..120);
    let cols = rng.gen_range(1..40);
    let density = rng.gen_range(0.02..0.5);
    // Skew: some columns are much more likely than others.
    let col_weight: Vec<f64> = (0..cols)
        .map(|_| rng.gen_range(0.2..3.0) * density)
        .collect();
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row: Vec<u32> = Vec::new();
        for (c, &w) in col_weight.iter().enumerate() {
            if rng.gen::<f64>() < w.min(0.95) {
                row.push(c as u32);
            }
        }
        // Occasionally duplicate a previous row (identical-column pressure).
        data.push(row);
    }
    // Occasionally append a dense crawler row.
    if rows > 0 && rng.gen::<f64>() < 0.3 {
        data.push((0..cols as u32).collect());
    }
    SparseMatrix::from_rows(cols, data)
}

fn random_threshold(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..4) {
        0 => 1.0,
        1 => [0.99, 0.95, 0.9, 0.85, 0.8, 0.75][rng.gen_range(0..6usize)],
        2 => rng.gen_range(0.3..1.0),
        _ => rng.gen_range(0.05..0.4),
    }
}

fn random_order(rng: &mut StdRng, n_rows: usize) -> RowOrder {
    match rng.gen_range(0..4) {
        0 => RowOrder::Original,
        1 => RowOrder::BucketedSparsestFirst,
        2 => RowOrder::ExactSparsestFirst,
        _ => {
            let mut perm: Vec<u32> = (0..n_rows as u32).collect();
            for i in (1..perm.len()).rev() {
                perm.swap(i, rng.gen_range(0..=i));
            }
            RowOrder::Custom(perm)
        }
    }
}

fn random_switch(rng: &mut StdRng, n_rows: usize) -> SwitchPolicy {
    match rng.gen_range(0..3) {
        0 => SwitchPolicy::never(),
        1 => SwitchPolicy::paper(),
        _ => SwitchPolicy::always_at(rng.gen_range(1..=n_rows.max(1))),
    }
}

fn check_iteration(iter: u64, rng: &mut StdRng) -> Result<(), String> {
    let m = random_matrix(rng);
    let thr = random_threshold(rng);

    let mut imp_cfg = ImplicationConfig::new(thr)
        .with_row_order(random_order(rng, m.n_rows()))
        .with_switch(random_switch(rng, m.n_rows()))
        .with_hundred_stage(rng.gen())
        .with_reverse(rng.gen());
    imp_cfg.release_completed = rng.gen();

    let want_imp = oracle::exact_implications(&m, thr, imp_cfg.emit_reverse);
    let got = find_implications(&m, &imp_cfg);
    if got.rules != want_imp {
        return Err(format!(
            "iter {iter}: find_implications mismatch (thr {thr})"
        ));
    }
    let threads = rng.gen_range(1..5);
    let par = find_implications_parallel(&m, &imp_cfg, threads);
    if par.rules != want_imp {
        return Err(format!(
            "iter {iter}: parallel({threads}) implications mismatch (thr {thr})"
        ));
    }
    let rows: Vec<Result<Vec<u32>, std::convert::Infallible>> =
        m.rows().map(|r| Ok(r.to_vec())).collect();
    let streamed =
        find_implications_streamed(rows, m.n_cols(), &imp_cfg).expect("streamed mining failed");
    if streamed.rules != want_imp {
        return Err(format!(
            "iter {iter}: streamed implications mismatch (thr {thr})"
        ));
    }

    let mut sim_cfg = SimilarityConfig::new(thr)
        .with_row_order(random_order(rng, m.n_rows()))
        .with_switch(random_switch(rng, m.n_rows()))
        .with_hundred_stage(rng.gen())
        .with_max_hits_pruning(rng.gen());
    sim_cfg.release_completed = rng.gen();

    let want_sim = oracle::exact_similarities(&m, thr);
    let got = find_similarities(&m, &sim_cfg);
    if got.rules != want_sim {
        return Err(format!(
            "iter {iter}: find_similarities mismatch (thr {thr})"
        ));
    }
    let par = find_similarities_parallel(&m, &sim_cfg, threads);
    if par.rules != want_sim {
        return Err(format!(
            "iter {iter}: parallel({threads}) similarities mismatch (thr {thr})"
        ));
    }
    let rows: Vec<Result<Vec<u32>, std::convert::Infallible>> =
        m.rows().map(|r| Ok(r.to_vec())).collect();
    let streamed =
        find_similarities_streamed(rows, m.n_cols(), &sim_cfg).expect("streamed mining failed");
    if streamed.rules != want_sim {
        return Err(format!(
            "iter {iter}: streamed similarities mismatch (thr {thr})"
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iterations: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(500);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0xFACE);

    let mut rng = StdRng::seed_from_u64(seed);
    for iter in 0..iterations {
        if let Err(msg) = check_iteration(iter, &mut rng) {
            eprintln!("FUZZ FAILURE: {msg}");
            eprintln!("reproduce with: dmc-fuzz {} {seed}", iter + 1);
            return ExitCode::FAILURE;
        }
        if (iter + 1) % 100 == 0 {
            eprintln!("{} iterations clean", iter + 1);
        }
    }
    eprintln!("all {iterations} iterations agree with the oracle (seed {seed})");
    ExitCode::SUCCESS
}
