//! CLI regenerating the paper's tables and figures.
//!
//! ```text
//! dmc-experiments <experiment> [scale]
//!   experiment: table1 | fig2 | fig3 | fig4 | fig6a | fig6b | fig6cd |
//!               fig6ef | fig6gh | fig6ij | fig7 | speedups | ablation |
//!               reports | verify | all
//!   scale:      small | medium (default) | large
//! ```

use dmc_bench::datasets::Scale;
use dmc_bench::experiments as exp;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dmc-experiments <experiment> [scale]\n\
         experiments: table1 fig2 fig3 fig4 fig6a fig6b fig6cd fig6ef \
         fig6gh fig6ij fig7 speedups ablation reports verify all\n\
         scales: small medium large (default medium)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else {
        return usage();
    };
    let scale = match args.get(1).map(String::as_str) {
        None => Scale::Medium,
        Some(s) => match Scale::parse(s) {
            Some(s) => s,
            None => return usage(),
        },
    };

    let run_one = |name: &str| -> Option<String> {
        Some(match name {
            "table1" => exp::table1(scale),
            "fig2" => exp::fig2_trace(),
            "fig3" => exp::fig3(scale),
            "fig4" => exp::fig4(scale),
            "fig6a" => exp::fig6a(scale),
            "fig6b" => exp::fig6b(scale),
            "fig6cd" => exp::fig6cd(scale),
            "fig6ef" => exp::fig6ef(scale),
            "fig6gh" => exp::fig6gh(scale),
            "fig6ij" => exp::fig6ij(scale),
            "fig7" => exp::fig7(scale),
            "speedups" => exp::speedups(scale),
            "ablation" => exp::ablation(scale),
            "reports" => exp::reports(scale),
            "verify" => exp::verify(scale),
            _ => return None,
        })
    };

    if which == "all" {
        for name in [
            "table1", "fig2", "fig3", "fig4", "fig6a", "fig6b", "fig6cd", "fig6ef", "fig6gh",
            "fig6ij", "fig7", "speedups", "ablation", "reports", "verify",
        ] {
            println!("==== {name} ====");
            println!("{}", run_one(name).expect("known experiment"));
        }
        return ExitCode::SUCCESS;
    }
    match run_one(which) {
        Some(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        None => usage(),
    }
}
