//! Experiment harness for the DMC reproduction.
//!
//! [`datasets`] builds the seven laptop-scale analogues of the paper's
//! Table 1 corpora; [`experiments`] regenerates every table and figure of
//! §6 (run them via the `dmc-experiments` binary); [`table`] renders the
//! results as aligned text tables, which `EXPERIMENTS.md` records next to
//! the paper's numbers.

pub mod datasets;
pub mod experiments;
pub mod table;
