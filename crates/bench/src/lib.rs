//! Experiment harness for the DMC reproduction.
//!
//! [`datasets`] builds the seven laptop-scale analogues of the paper's
//! Table 1 corpora; [`experiments`] regenerates every table and figure of
//! §6 (run them via the `dmc-experiments` binary); [`table`] renders the
//! results as aligned text tables, which `EXPERIMENTS.md` records next to
//! the paper's numbers.
//!
//! [`suite`], [`baseline`], and [`compare`] form the machine-readable
//! benchmark suite behind the `dmc-benchsuite` binary: a fixed workload
//! matrix measured via each run's own `RunReport`, serialized as
//! `dmc.bench.v1`, and diffed with a noise-aware regression gate.

pub mod baseline;
pub mod compare;
pub mod datasets;
pub mod experiments;
pub mod suite;
pub mod table;
