//! Noise-aware comparison of two bench records.
//!
//! A raw wall-time diff on a shared CI runner flaps: the same binary on
//! the same data jitters by scheduler noise, and a gate that fires on
//! jitter trains people to ignore it. The comparator therefore classifies
//! each cell against a **noise band** derived from the measurements
//! themselves — a multiple of the two runs' MADs — widened by a relative
//! floor (small medians have small MADs, but a 2% swing on 40ms is still
//! noise) and an absolute floor (sub-millisecond cells where even the
//! relative floor is below timer resolution). Only a median outside the
//! band counts as a change; inside it, the verdict is `Unchanged`, so
//! comparing a record against itself is always clean.

use crate::baseline::BaselineError;
use crate::suite::BenchSuite;
use crate::table::Table;
use std::fmt;

/// Noise thresholds for verdict classification.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// MAD multiplier: the band includes `mad_k * (base.mad + cur.mad)`.
    pub mad_k: f64,
    /// Relative floor: the band is at least `rel_floor * base.median`.
    pub rel_floor: f64,
    /// Absolute floor in seconds: the band is at least this wide.
    pub abs_floor: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            mad_k: 3.0,
            rel_floor: 0.05,
            // The quick matrix's cells sit in the tens of milliseconds,
            // where a shared machine jitters by whole scheduler quanta
            // between back-to-back runs; a sub-20ms swing is noise, not
            // a regression.
            abs_floor: 0.02,
        }
    }
}

impl Tolerance {
    /// Default band for the thread-scaling gate ([`scaling_checks`]): a
    /// tighter absolute floor than the cross-record diff, because the
    /// symptom it guards against — parallel severalfold slower than
    /// sequential on small cells — amounts to only a few milliseconds,
    /// and a generous relative floor, because a parallel run merely
    /// matching the sequential one is acceptable at small scales.
    #[must_use]
    pub fn scaling() -> Self {
        Self {
            mad_k: 3.0,
            rel_floor: 0.25,
            abs_floor: 0.005,
        }
    }

    /// Half-width of the noise band around the baseline median, given the
    /// two cells' MADs.
    #[must_use]
    pub fn band(&self, base_median: f64, base_mad: f64, cur_mad: f64) -> f64 {
        (self.mad_k * (base_mad + cur_mad))
            .max(self.rel_floor * base_median)
            .max(self.abs_floor)
    }
}

/// Per-cell classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Current median is more than the band below the baseline.
    Improved,
    /// Current median is within the band of the baseline.
    Unchanged,
    /// Current median is more than the band above the baseline.
    Regressed,
}

impl Verdict {
    /// Lowercase label for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Unchanged => "unchanged",
            Verdict::Regressed => "REGRESSED",
        }
    }
}

/// One compared cell.
#[derive(Clone, Debug)]
pub struct CellComparison {
    /// Cell id shared by both records.
    pub id: String,
    /// Baseline median (seconds).
    pub base_median: f64,
    /// Current median (seconds).
    pub cur_median: f64,
    /// Band half-width used for this cell (seconds).
    pub band: f64,
    /// `(cur - base) / base`, or 0 when the baseline median is 0.
    pub delta_ratio: f64,
    /// Classification.
    pub verdict: Verdict,
    /// True when the work counters disagree between the records — the two
    /// runs measured different computations, so the timing verdict is
    /// advisory at best.
    pub counters_diverged: bool,
}

/// Result of comparing two records.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Per-cell results, in baseline order.
    pub cells: Vec<CellComparison>,
    /// Tolerance the verdicts were computed with.
    pub tolerance: Tolerance,
}

/// Why two records could not be compared.
#[derive(Debug)]
pub enum CompareError {
    /// A record failed to load or declared the wrong schema.
    Baseline(BaselineError),
    /// The current record lacks a cell the baseline has (or vice versa).
    MissingCell { id: String, side: &'static str },
    /// A record has no cells at all.
    Empty { side: &'static str },
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::Baseline(e) => write!(f, "{e}"),
            CompareError::MissingCell { id, side } => {
                write!(f, "cell {id:?} is missing from the {side} record")
            }
            CompareError::Empty { side } => write!(f, "the {side} record has no cells"),
        }
    }
}

impl std::error::Error for CompareError {}

impl From<BaselineError> for CompareError {
    fn from(e: BaselineError) -> Self {
        CompareError::Baseline(e)
    }
}

/// Compares `current` against `baseline`, cell by cell.
///
/// Every baseline cell must exist in the current record and vice versa;
/// a partial run cannot pass the gate by silently skipping its slow
/// cells.
pub fn compare(
    baseline: &BenchSuite,
    current: &BenchSuite,
    tolerance: Tolerance,
) -> Result<Comparison, CompareError> {
    if baseline.cells.is_empty() {
        return Err(CompareError::Empty { side: "baseline" });
    }
    if current.cells.is_empty() {
        return Err(CompareError::Empty { side: "current" });
    }
    for cell in &current.cells {
        if baseline.cell(&cell.id).is_none() {
            return Err(CompareError::MissingCell {
                id: cell.id.clone(),
                side: "baseline",
            });
        }
    }
    let mut cells = Vec::with_capacity(baseline.cells.len());
    for base in &baseline.cells {
        let cur = current
            .cell(&base.id)
            .ok_or_else(|| CompareError::MissingCell {
                id: base.id.clone(),
                side: "current",
            })?;
        let band = tolerance.band(base.median_seconds, base.mad_seconds, cur.mad_seconds);
        let delta = cur.median_seconds - base.median_seconds;
        let verdict = if delta > band {
            Verdict::Regressed
        } else if -delta > band {
            Verdict::Improved
        } else {
            Verdict::Unchanged
        };
        cells.push(CellComparison {
            id: base.id.clone(),
            base_median: base.median_seconds,
            cur_median: cur.median_seconds,
            band,
            delta_ratio: if base.median_seconds > 0.0 {
                delta / base.median_seconds
            } else {
                0.0
            },
            verdict,
            counters_diverged: base.counters.work_counters() != cur.counters.work_counters()
                || base.rules != cur.rules,
        });
    }
    Ok(Comparison { cells, tolerance })
}

impl Comparison {
    /// True when no cell regressed.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.cells.iter().all(|c| c.verdict != Verdict::Regressed)
    }

    /// Cells that regressed.
    #[must_use]
    pub fn regressions(&self) -> Vec<&CellComparison> {
        self.cells
            .iter()
            .filter(|c| c.verdict == Verdict::Regressed)
            .collect()
    }

    /// Renders the verdict table (aligned text, one row per cell).
    #[must_use]
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "cell", "base (s)", "cur (s)", "delta", "band (s)", "verdict",
        ]);
        for c in &self.cells {
            let mut verdict = c.verdict.label().to_string();
            if c.counters_diverged {
                verdict.push_str(" [counters diverged]");
            }
            table.row(vec![
                c.id.clone(),
                format!("{:.4}", c.base_median),
                format!("{:.4}", c.cur_median),
                format!("{:+.1}%", c.delta_ratio * 100.0),
                format!("{:.4}", c.band),
                verdict,
            ]);
        }
        table.render()
    }
}

/// One thread-scaling check: the widest parallel cell of an
/// (algorithm, mode, scale) group against the sequential cell of the same
/// record.
#[derive(Clone, Debug)]
pub struct ScalingCheck {
    /// Group label, e.g. `imp/mem/small`.
    pub group: String,
    /// Sequential cell id (`t1`).
    pub t1_id: String,
    /// Widest parallel cell id (e.g. `t4`).
    pub tmax_id: String,
    /// Sequential median (seconds).
    pub t1_median: f64,
    /// Parallel median (seconds).
    pub tmax_median: f64,
    /// Noise-band half-width used (seconds).
    pub band: f64,
    /// True when the parallel median does not exceed the sequential one
    /// beyond the band.
    pub ok: bool,
}

/// The parallel-slower-than-sequential gate over a single record: for
/// every (algorithm, mode, scale) group with both a `t1` cell and at
/// least one parallel cell, the widest parallel cell's median must not
/// exceed the sequential median by more than the noise band. Groups
/// lacking either side are skipped.
///
/// This is an absolute property of one record, not a diff: a suite whose
/// 4-thread cells are slower than its 1-thread cells is scheduling work
/// badly no matter what the baseline says.
#[must_use]
pub fn scaling_checks(record: &BenchSuite, tolerance: Tolerance) -> Vec<ScalingCheck> {
    let mut checks = Vec::new();
    for t1 in record.cells.iter().filter(|c| c.threads == 1) {
        let tmax = record
            .cells
            .iter()
            .filter(|c| {
                c.threads > 1
                    && c.algorithm == t1.algorithm
                    && c.mode == t1.mode
                    && c.scale == t1.scale
            })
            .max_by_key(|c| c.threads);
        let Some(tmax) = tmax else { continue };
        let band = tolerance.band(t1.median_seconds, t1.mad_seconds, tmax.mad_seconds);
        checks.push(ScalingCheck {
            group: format!("{}/{}/{}", t1.algorithm, t1.mode, t1.scale),
            t1_id: t1.id.clone(),
            tmax_id: tmax.id.clone(),
            t1_median: t1.median_seconds,
            tmax_median: tmax.median_seconds,
            band,
            ok: tmax.median_seconds <= t1.median_seconds + band,
        });
    }
    checks
}

/// Renders the scaling checks as an aligned table (one row per group).
#[must_use]
pub fn render_scaling(checks: &[ScalingCheck]) -> String {
    let mut table = Table::new(vec!["group", "t1 (s)", "tmax (s)", "band (s)", "verdict"]);
    for c in checks {
        table.row(vec![
            format!("{} ({} vs {})", c.group, c.t1_id, c.tmax_id),
            format!("{:.4}", c.t1_median),
            format!("{:.4}", c.tmax_median),
            format!("{:.4}", c.band),
            if c.ok { "ok" } else { "SLOWER THAN t1" }.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::BENCH_SCHEMA;
    use crate::suite::{BenchCell, BenchSuite, CounterFingerprint};
    use proptest::prelude::*;

    fn cell(id: &str, median: f64, mad: f64) -> BenchCell {
        BenchCell {
            id: id.into(),
            algorithm: "imp".into(),
            mode: "mem".into(),
            threads: 1,
            scale: "small".into(),
            rows: 100,
            cols: 20,
            threshold: 0.9,
            rules: 7,
            median_seconds: median,
            mad_seconds: mad,
            rows_per_sec: 0.0,
            deletions_per_sec: 0.0,
            spill_bytes_per_sec: 0.0,
            seconds: vec![median; 3],
            counters: CounterFingerprint {
                rows_scanned: 200,
                candidates_admitted: 57,
                candidates_deleted: 50,
                misses_counted: 90,
                rules_emitted: 7,
                spill_bytes: 0,
            },
        }
    }

    fn suite(cells: Vec<BenchCell>) -> BenchSuite {
        BenchSuite {
            schema: BENCH_SCHEMA.into(),
            name: "t".into(),
            scales: vec!["small".into()],
            threads: vec![1],
            warmup: 0,
            repeats: 3,
            cells,
        }
    }

    /// MAD term dominant: band = 3 * (0.01 + 0.01) = 0.06 on a 1s median.
    fn tol() -> Tolerance {
        Tolerance {
            mad_k: 3.0,
            rel_floor: 0.05,
            abs_floor: 0.005,
        }
    }

    #[test]
    fn verdicts_at_the_noise_boundary() {
        let base = suite(vec![cell("a", 1.0, 0.01)]);
        // band = max(3*(0.01+0.01), 0.05*1.0, 0.005) = 0.06.
        let just_inside = suite(vec![cell("a", 1.059, 0.01)]);
        let just_over = suite(vec![cell("a", 1.061, 0.01)]);
        let way_under = suite(vec![cell("a", 0.90, 0.01)]);
        assert_eq!(
            compare(&base, &just_inside, tol()).unwrap().cells[0].verdict,
            Verdict::Unchanged
        );
        assert_eq!(
            compare(&base, &just_over, tol()).unwrap().cells[0].verdict,
            Verdict::Regressed
        );
        assert_eq!(
            compare(&base, &way_under, tol()).unwrap().cells[0].verdict,
            Verdict::Improved
        );
    }

    #[test]
    fn relative_floor_absorbs_small_mad_jitter() {
        // Tiny MADs: the 5% relative floor (0.05s on a 1s median) rules.
        let base = suite(vec![cell("a", 1.0, 0.0001)]);
        let inside = suite(vec![cell("a", 1.04, 0.0001)]);
        let outside = suite(vec![cell("a", 1.06, 0.0001)]);
        assert_eq!(
            compare(&base, &inside, tol()).unwrap().cells[0].verdict,
            Verdict::Unchanged
        );
        assert_eq!(
            compare(&base, &outside, tol()).unwrap().cells[0].verdict,
            Verdict::Regressed
        );
    }

    #[test]
    fn absolute_floor_absorbs_sub_millisecond_cells() {
        // 1ms median: MAD and relative bands are microscopic, but the 5ms
        // absolute floor keeps a 3ms swing from gating.
        let base = suite(vec![cell("a", 0.001, 0.00005)]);
        let noisy = suite(vec![cell("a", 0.004, 0.00005)]);
        assert_eq!(
            compare(&base, &noisy, tol()).unwrap().cells[0].verdict,
            Verdict::Unchanged
        );
    }

    #[test]
    fn missing_cells_error_both_ways() {
        let base = suite(vec![cell("a", 1.0, 0.01), cell("b", 1.0, 0.01)]);
        let cur = suite(vec![cell("a", 1.0, 0.01)]);
        match compare(&base, &cur, tol()) {
            Err(CompareError::MissingCell { id, side }) => {
                assert_eq!(id, "b");
                assert_eq!(side, "current");
            }
            other => panic!("expected missing cell, got {other:?}"),
        }
        match compare(&cur, &base, tol()) {
            Err(CompareError::MissingCell { id, side }) => {
                assert_eq!(id, "b");
                assert_eq!(side, "baseline");
            }
            other => panic!("expected missing cell, got {other:?}"),
        }
        assert!(matches!(
            compare(&suite(vec![]), &cur, tol()),
            Err(CompareError::Empty { side: "baseline" })
        ));
    }

    #[test]
    fn counter_divergence_is_flagged_but_not_a_verdict() {
        let base = suite(vec![cell("a", 1.0, 0.01)]);
        let mut changed = cell("a", 1.0, 0.01);
        changed.counters.candidates_deleted += 1;
        let cur = suite(vec![changed]);
        let cmp = compare(&base, &cur, tol()).unwrap();
        assert!(cmp.cells[0].counters_diverged);
        assert_eq!(cmp.cells[0].verdict, Verdict::Unchanged);
        assert!(cmp.render().contains("counters diverged"));
    }

    #[test]
    fn gate_summary_helpers() {
        let base = suite(vec![cell("a", 1.0, 0.01), cell("b", 1.0, 0.01)]);
        let cur = suite(vec![cell("a", 2.0, 0.01), cell("b", 1.0, 0.01)]);
        let cmp = compare(&base, &cur, tol()).unwrap();
        assert!(!cmp.passes());
        assert_eq!(cmp.regressions().len(), 1);
        assert_eq!(cmp.regressions()[0].id, "a");
        assert!(cmp.render().contains("REGRESSED"));
    }

    fn tcell(id: &str, threads: u64, median: f64, mad: f64) -> BenchCell {
        let mut c = cell(id, median, mad);
        c.threads = threads;
        c
    }

    #[test]
    fn scaling_gate_flags_parallel_slower_than_sequential() {
        // The regression this gate exists for: 4 threads ~3x slower than
        // 1 on the small in-memory cell.
        let bad = suite(vec![
            tcell("imp/mem/t1/small", 1, 0.0036, 0.0002),
            tcell("imp/mem/t4/small", 4, 0.0112, 0.0003),
        ]);
        let checks = scaling_checks(&bad, Tolerance::scaling());
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].t1_id, "imp/mem/t1/small");
        assert_eq!(checks[0].tmax_id, "imp/mem/t4/small");
        assert!(!checks[0].ok);
        assert!(render_scaling(&checks).contains("SLOWER THAN t1"));

        // Parallel at or below sequential passes.
        let good = suite(vec![
            tcell("imp/mem/t1/small", 1, 0.0036, 0.0002),
            tcell("imp/mem/t2/small", 2, 0.0050, 0.0002),
            tcell("imp/mem/t4/small", 4, 0.0030, 0.0002),
        ]);
        let checks = scaling_checks(&good, Tolerance::scaling());
        assert_eq!(checks.len(), 1, "only the widest parallel cell is checked");
        assert!(checks[0].ok);

        // Groups lacking a sequential or a parallel cell are skipped.
        let lonely = suite(vec![tcell("imp/mem/t1/small", 1, 1.0, 0.01)]);
        assert!(scaling_checks(&lonely, Tolerance::scaling()).is_empty());
    }

    proptest! {
        /// A record compared against itself is always fully unchanged,
        /// for any positive tolerance and any timings.
        #[test]
        fn self_comparison_is_always_unchanged(
            medians in proptest::collection::vec(0.0f64..100.0, 1..8),
            mads in proptest::collection::vec(0.0f64..1.0, 8),
            mad_k in 0.0f64..10.0,
            rel_floor in 0.0f64..0.5,
            abs_floor in 1e-6f64..0.1,
        ) {
            let cells: Vec<BenchCell> = medians
                .iter()
                .enumerate()
                .map(|(i, &m)| cell(&format!("c{i}"), m, mads[i]))
                .collect();
            let s = suite(cells);
            let t = Tolerance { mad_k, rel_floor, abs_floor };
            let cmp = compare(&s, &s, t).unwrap();
            prop_assert!(cmp.passes());
            for c in &cmp.cells {
                prop_assert_eq!(c.verdict, Verdict::Unchanged);
                prop_assert!(!c.counters_diverged);
            }
        }
    }
}
