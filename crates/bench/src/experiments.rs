//! One function per table/figure of the paper's evaluation (§6).
//!
//! Each experiment returns rendered text so the `dmc-experiments` binary
//! can print it and `EXPERIMENTS.md` can record it. Absolute times are this
//! machine's, not the paper's Sun Ultra 2; the claims under reproduction
//! are the *shapes*: which algorithm wins where, where memory explodes,
//! and where the bitmap phase jumps.

use crate::datasets::{self, Scale};
use crate::table::{bytes, secs, Table};
use dmc_baselines::apriori::{apriori_implications, apriori_similarities, AprioriConfig};
use dmc_baselines::kmin::{kmin_implications, KMinConfig};
use dmc_baselines::minhash::{minhash_similarities, MinHashConfig};
use dmc_baselines::oracle;
use dmc_core::{
    find_implications, find_similarities, ImplicationConfig, Miner, RowOrder, SimilarityConfig,
    SparseMatrix,
};
use dmc_matrix::stats::{column_density_histogram, matrix_stats};
use dmc_matrix::transform::prune_min_support;
use std::fmt::Write as _;
use std::time::Instant;

/// The threshold sweep used across Fig 6.
pub const SWEEP: [f64; 7] = [1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7];

/// Table 1: data-set sizes (rows, columns, plus our nnz for context).
#[must_use]
pub fn table1(scale: Scale) -> String {
    let mut t = Table::new(vec!["data", "rows", "columns", "nnz", "max row", "max col"]);
    let mut add = |name: &str, m: &SparseMatrix| {
        let s = matrix_stats(m);
        t.row(vec![
            name.into(),
            s.rows.to_string(),
            s.cols.to_string(),
            s.nnz.to_string(),
            s.max_row_density.to_string(),
            s.max_col_ones.to_string(),
        ]);
    };
    add("Wlog", &datasets::wlog(scale));
    add("WlogP", &datasets::wlogp(scale));
    let g = datasets::plink(scale);
    add("plinkF", &g.forward);
    add("plinkT", &g.transposed);
    add("News", &datasets::news_full(scale).matrix);
    add("NewsP", &datasets::newsp(scale));
    add("dicD", &datasets::dicd(scale));
    format!(
        "Table 1 (synthetic analogues, scale {scale:?})\n{}",
        t.render()
    )
}

/// Figure 2 trace: the worked Example 3.1 on the reconstructed matrix.
#[must_use]
pub fn fig2_trace() -> String {
    let m = SparseMatrix::from_rows(
        6,
        vec![
            vec![1, 5],
            vec![2, 3, 4],
            vec![2, 4],
            vec![0, 1, 2, 5],
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 3, 5],
            vec![0, 2, 3, 4, 5],
            vec![3, 5],
            vec![0, 1, 4],
        ],
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 2 / Example 3.1 (80% confidence, reconstructed matrix)"
    );
    let cfg = ImplicationConfig::new(0.8).with_row_order(RowOrder::Original);
    let result = find_implications(&m, &cfg);
    for rule in &result.rules {
        // Report 1-indexed ids like the paper.
        let _ = writeln!(
            out,
            "  c{} => c{}  (confidence {:.2})",
            rule.lhs + 1,
            rule.rhs + 1,
            rule.confidence()
        );
    }
    let mut hist_cfg = ImplicationConfig::new(0.8).with_row_order(RowOrder::Original);
    hist_cfg.record_memory_history = true;
    hist_cfg.release_completed = false;
    hist_cfg.hundred_stage = false;
    let hist = find_implications(&m, &hist_cfg);
    let counts: Vec<String> = hist
        .memory
        .history()
        .iter()
        .map(|s| s.candidates.to_string())
        .collect();
    let _ = writeln!(
        out,
        "  candidate history (original order): ({})",
        counts.join(",")
    );
    let _ = writeln!(
        out,
        "  paper:                              (1,4,4,7,9,7,7,6,2)"
    );
    out
}

/// Figure 3: counter-array memory vs rows scanned at 100% confidence, in
/// original vs sparsest-first order.
#[must_use]
pub fn fig3(scale: Scale) -> String {
    let mut out = String::new();
    for (name, m) in [
        ("Wlog", datasets::wlog(scale)),
        ("plinkT", datasets::plink(scale).transposed),
    ] {
        let _ = writeln!(
            out,
            "Fig 3 — {name}: candidate entries vs rows scanned (minconf 1.0)"
        );
        let mut t = Table::new(vec!["order", "25%", "50%", "75%", "100%", "peak"]);
        for (label, order) in [
            ("original", RowOrder::Original),
            ("sparsest-first", RowOrder::BucketedSparsestFirst),
        ] {
            let mut cfg = ImplicationConfig::new(1.0).with_row_order(order);
            cfg.hundred_stage = false; // general scan records the history
            cfg.record_memory_history = true;
            let result = find_implications(&m, &cfg);
            let hist = result.memory.history();
            let at = |frac: f64| -> String {
                if hist.is_empty() {
                    return "0".into();
                }
                let idx = ((hist.len() - 1) as f64 * frac) as usize;
                hist[idx].candidates.to_string()
            };
            t.row(vec![
                label.into(),
                at(0.25),
                at(0.5),
                at(0.75),
                at(1.0),
                result.memory.peak_candidates().to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 4: column-density distributions (log2 buckets).
#[must_use]
pub fn fig4(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig 4 — columns per 1-count bucket [2^i, 2^(i+1))");
    let sets: Vec<(&str, SparseMatrix)> = vec![
        ("Wlog", datasets::wlog(scale)),
        ("plinkF", datasets::plink(scale).forward),
        ("News", datasets::news_full(scale).matrix),
        ("dicD", datasets::dicd(scale)),
    ];
    let max_buckets = sets
        .iter()
        .map(|(_, m)| column_density_histogram(m).len())
        .max()
        .unwrap_or(0);
    let mut headers = vec!["bucket".to_string()];
    headers.extend(sets.iter().map(|(n, _)| (*n).to_string()));
    let mut t = Table::new(headers.iter().map(String::as_str).collect());
    let hists: Vec<Vec<usize>> = sets
        .iter()
        .map(|(_, m)| column_density_histogram(m))
        .collect();
    for b in 0..max_buckets {
        let mut row = vec![format!("2^{b}")];
        for h in &hists {
            row.push(h.get(b).copied().unwrap_or(0).to_string());
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

fn six_datasets(scale: Scale) -> Vec<(&'static str, SparseMatrix)> {
    let g = datasets::plink(scale);
    vec![
        ("Wlog", datasets::wlog(scale)),
        ("WlogP", datasets::wlogp(scale)),
        ("plinkF", g.forward),
        ("plinkT", g.transposed),
        ("News", datasets::news_full(scale).matrix),
        ("dicD", datasets::dicd(scale)),
    ]
}

/// Figure 6(a): DMC-imp execution time vs minconf on the six data sets.
#[must_use]
pub fn fig6a(scale: Scale) -> String {
    sweep_table(
        "Fig 6(a) — DMC-imp time (s) vs minconf",
        scale,
        |m, thr| {
            let start = Instant::now();
            let out = find_implications(m, &ImplicationConfig::new(thr));
            (start.elapsed(), out.rules.len())
        },
    )
}

/// Figure 6(b): DMC-sim execution time vs minsim.
#[must_use]
pub fn fig6b(scale: Scale) -> String {
    sweep_table(
        "Fig 6(b) — DMC-sim time (s) vs minsim",
        scale,
        |m, thr| {
            let start = Instant::now();
            let out = find_similarities(m, &SimilarityConfig::new(thr));
            (start.elapsed(), out.rules.len())
        },
    )
}

fn sweep_table(
    title: &str,
    scale: Scale,
    mut run: impl FnMut(&SparseMatrix, f64) -> (std::time::Duration, usize),
) -> String {
    let mut headers = vec!["data".to_string()];
    headers.extend(SWEEP.iter().map(|t| format!("{t:.2}")));
    let mut t = Table::new(headers.iter().map(String::as_str).collect());
    let mut rules_t = t.clone();
    for (name, m) in six_datasets(scale) {
        let mut row = vec![name.to_string()];
        let mut rrow = vec![name.to_string()];
        for &thr in &SWEEP {
            let (elapsed, rules) = run(&m, thr);
            row.push(secs(elapsed));
            rrow.push(rules.to_string());
        }
        t.row(row);
        rules_t.row(rrow);
    }
    format!("{title}\n{}\nrules found\n{}", t.render(), rules_t.render())
}

/// Figure 6(c),(d): execution-time breakdown for Wlog.
#[must_use]
pub fn fig6cd(scale: Scale) -> String {
    breakdown_table(
        "Fig 6(c),(d) — Wlog breakdown (s)",
        datasets::wlog(scale),
        dmc_core::SwitchPolicy::paper(),
    )
}

/// Figure 6(e),(f): execution-time breakdown for plinkT — the DMC-bitmap
/// jump as the threshold stops pruning frequency-4 columns.
///
/// The paper's 50 MB switch threshold is calibrated to its 700k-column
/// corpus; at laptop scale the counter array peaks in the hundreds of KiB,
/// so the switch policy is scaled down proportionally (64 tail rows /
/// 96 KiB) to exercise the same mechanism.
#[must_use]
pub fn fig6ef(scale: Scale) -> String {
    let switch = dmc_core::SwitchPolicy {
        max_tail_rows: 64,
        memory_limit_bytes: 96 * 1024,
    };
    breakdown_table(
        "Fig 6(e),(f) — plinkT breakdown (s, scaled switch 64 rows/96KiB)",
        datasets::plink(scale).transposed,
        switch,
    )
}

fn breakdown_table(title: &str, m: SparseMatrix, switch: dmc_core::SwitchPolicy) -> String {
    let mut out = String::new();
    for kind in ["imp", "sim"] {
        let _ = writeln!(out, "{title} [{kind}]");
        let mut t = Table::new(vec![
            "threshold",
            "pre-scan",
            "100% rules",
            "<100% rules",
            "bitmap tail",
            "total",
            "rules",
        ]);
        for &thr in &SWEEP {
            let (phases, rules) = if kind == "imp" {
                let r = find_implications(&m, &ImplicationConfig::new(thr).with_switch(switch));
                (r.phases, r.rules.len())
            } else {
                let r = find_similarities(&m, &SimilarityConfig::new(thr).with_switch(switch));
                (r.phases, r.rules.len())
            };
            t.row(vec![
                format!("{thr:.2}"),
                secs(phases.phase("pre-scan")),
                secs(phases.phase("100% rules")),
                secs(phases.phase("<100% rules")),
                secs(phases.phase("bitmap tail")),
                secs(phases.total()),
                rules.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 6(g),(h): peak counter-array memory vs threshold.
#[must_use]
pub fn fig6gh(scale: Scale) -> String {
    let mut out = String::new();
    for kind in ["imp (g)", "sim (h)"] {
        let _ = writeln!(out, "Fig 6(g),(h) — peak counter-array bytes [{kind}]");
        let mut headers = vec!["data".to_string()];
        headers.extend(SWEEP.iter().map(|t| format!("{t:.2}")));
        let mut t = Table::new(headers.iter().map(String::as_str).collect());
        for (name, m) in six_datasets(scale) {
            let mut row = vec![name.to_string()];
            for &thr in &SWEEP {
                let peak = if kind.starts_with("imp") {
                    find_implications(&m, &ImplicationConfig::new(thr))
                        .memory
                        .peak_bytes()
                } else {
                    find_similarities(&m, &SimilarityConfig::new(thr))
                        .memory
                        .peak_bytes()
                };
                row.push(bytes(peak));
            }
            t.row(row);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 6(i),(j): DMC vs a-priori vs K-Min / Min-Hash on NewsP.
#[must_use]
pub fn fig6ij(scale: Scale) -> String {
    let m = datasets::newsp(scale);
    let stats = matrix_stats(&m);
    let mut out = format!(
        "Fig 6(i),(j) — NewsP comparison ({} rows, {} columns)\n",
        stats.rows, stats.cols
    );

    // (i): implication rules.
    let mut t = Table::new(vec!["minconf", "DMC-imp", "a-priori", "K-Min", "K-Min FN%"]);
    for &thr in &SWEEP {
        let start = Instant::now();
        let dmc = find_implications(&m, &ImplicationConfig::new(thr));
        let dmc_time = start.elapsed();

        let start = Instant::now();
        let ap = apriori_implications(&m, &AprioriConfig::new(1, u32::MAX), thr);
        let ap_time = start.elapsed();

        let start = Instant::now();
        let km = kmin_implications(&m, thr, &KMinConfig::new(32));
        let km_time = start.elapsed();
        let fn_rate = if dmc.rules.is_empty() {
            0.0
        } else {
            let found = km.rules.iter().filter(|r| dmc.rules.contains(r)).count();
            100.0 * (dmc.rules.len() - found) as f64 / dmc.rules.len() as f64
        };
        assert_eq!(
            ap.rules, dmc.rules,
            "a-priori (unpruned) and DMC must agree exactly at {thr}"
        );
        t.row(vec![
            format!("{thr:.2}"),
            secs(dmc_time),
            secs(ap_time),
            secs(km_time),
            format!("{fn_rate:.1}"),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // (j): similarity rules.
    let mut t = Table::new(vec!["minsim", "DMC-sim", "a-priori", "Min-Hash", "MH FN%"]);
    for &thr in &SWEEP {
        let start = Instant::now();
        let dmc = find_similarities(&m, &SimilarityConfig::new(thr));
        let dmc_time = start.elapsed();

        let start = Instant::now();
        let ap = apriori_similarities(&m, &AprioriConfig::new(1, u32::MAX), thr);
        let ap_time = start.elapsed();

        let start = Instant::now();
        let mh = minhash_similarities(&m, thr, &MinHashConfig::new(96).with_banding(24, 4));
        let mh_time = start.elapsed();
        let fn_rate = if dmc.rules.is_empty() {
            0.0
        } else {
            let found = mh.rules.iter().filter(|r| dmc.rules.contains(r)).count();
            100.0 * (dmc.rules.len() - found) as f64 / dmc.rules.len() as f64
        };
        assert_eq!(
            ap.rules, dmc.rules,
            "a-priori and DMC-sim must agree at {thr}"
        );
        t.row(vec![
            format!("{thr:.2}"),
            secs(dmc_time),
            secs(ap_time),
            secs(mh_time),
            format!("{fn_rate:.1}"),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The Fig-7 vocabulary: topic 0 is the Polgar story.
#[must_use]
pub fn fig7_word_name(data: &dmc_datagen::NewsData, col: u32) -> String {
    const POLGAR_THEME: [&str; 12] = [
        "chess",
        "judit",
        "grandmaster",
        "kasparov",
        "champion",
        "soviet",
        "hungary",
        "international",
        "top",
        "youngest",
        "players",
        "federation",
    ];
    if data.anchors.first() == Some(&col) {
        return "polgar".into();
    }
    if let Some(theme) = data.themes.first() {
        if let Some(pos) = theme.iter().position(|&w| w == col) {
            if pos < POLGAR_THEME.len() {
                return POLGAR_THEME[pos].into();
            }
        }
    }
    for (t, anchor) in data.anchors.iter().enumerate().skip(1) {
        if *anchor == col {
            return format!("anchor{t}");
        }
        if let Some(pos) = data.themes[t].iter().position(|&w| w == col) {
            return format!("t{t}w{pos}");
        }
    }
    format!("word{col}")
}

/// Figure 7: rules reachable from the "polgar" keyword at 85% confidence
/// with support-< 5 pruning, expanded recursively like §6.3.
#[must_use]
pub fn fig7(scale: Scale) -> String {
    let data = datasets::news_full(scale);
    let pruned = prune_min_support(&data.matrix, 5);
    let result = find_implications(&pruned.matrix, &ImplicationConfig::new(0.85));

    // Map pruned ids back to original ids for naming.
    let orig = |c: u32| pruned.original_ids[c as usize];
    let seed_col = data.anchors[0];
    let Some(seed_pruned) = pruned.original_ids.iter().position(|&c| c == seed_col) else {
        return "Fig 7 — anchor pruned away (increase scale)".into();
    };

    // Recursive closure over rule successors.
    let mut frontier = vec![seed_pruned as u32];
    let mut seen: Vec<u32> = frontier.clone();
    let mut lines: Vec<String> = Vec::new();
    while let Some(lhs) = frontier.pop() {
        for rule in result.rules.iter().filter(|r| r.lhs == lhs) {
            lines.push(format!(
                "  {} -> {}  ({:.2})",
                fig7_word_name(&data, orig(rule.lhs)),
                fig7_word_name(&data, orig(rule.rhs)),
                rule.confidence()
            ));
            if !seen.contains(&rule.rhs) {
                seen.push(rule.rhs);
                frontier.push(rule.rhs);
            }
        }
    }
    lines.sort();
    lines.dedup();
    format!(
        "Fig 7 — rules reachable from 'polgar' (minconf 0.85, support >= 5)\n{}\n",
        lines.join("\n")
    )
}

/// §7 headline speedups at the 85% threshold on NewsP.
#[must_use]
pub fn speedups(scale: Scale) -> String {
    let m = datasets::newsp(scale);
    let thr = 0.85;
    let time = |f: &mut dyn FnMut() -> usize| {
        let start = Instant::now();
        let n = f();
        (start.elapsed(), n)
    };
    let (dmc_imp, n_imp) = time(&mut || {
        find_implications(&m, &ImplicationConfig::new(thr))
            .rules
            .len()
    });
    let (ap_imp, _) = time(&mut || {
        apriori_implications(&m, &AprioriConfig::new(1, u32::MAX), thr)
            .rules
            .len()
    });
    let (km, _) = time(&mut || kmin_implications(&m, thr, &KMinConfig::new(32)).rules.len());
    let (dmc_sim, n_sim) = time(&mut || {
        find_similarities(&m, &SimilarityConfig::new(thr))
            .rules
            .len()
    });
    let (ap_sim, _) = time(&mut || {
        apriori_similarities(&m, &AprioriConfig::new(1, u32::MAX), thr)
            .rules
            .len()
    });
    let (mh, _) = time(&mut || {
        minhash_similarities(&m, thr, &MinHashConfig::new(96).with_banding(24, 4))
            .rules
            .len()
    });

    let ratio = |a: std::time::Duration, b: std::time::Duration| {
        format!("{:.1}x", a.as_secs_f64() / b.as_secs_f64().max(1e-9))
    };
    let mut out = format!("§7 speedups at 85% on NewsP ({n_imp} imp rules, {n_sim} sim rules)\n");
    let mut t = Table::new(vec!["comparison", "measured", "paper"]);
    t.row(vec![
        "DMC-imp vs a-priori".into(),
        ratio(ap_imp, dmc_imp),
        "1.7x".into(),
    ]);
    t.row(vec![
        "DMC-imp vs K-Min".into(),
        ratio(km, dmc_imp),
        "1.9x".into(),
    ]);
    t.row(vec![
        "DMC-sim vs a-priori".into(),
        ratio(ap_sim, dmc_sim),
        "5.9x".into(),
    ]);
    t.row(vec![
        "DMC-sim vs Min-Hash".into(),
        ratio(mh, dmc_sim),
        "1.7x".into(),
    ]);
    out.push_str(&t.render());
    out
}

/// Ablation: each §4/§5 optimization toggled off, on Wlog and plinkT.
#[must_use]
pub fn ablation(scale: Scale) -> String {
    let mut out = String::new();
    for (name, m) in [
        ("Wlog", datasets::wlog(scale)),
        ("plinkT", datasets::plink(scale).transposed),
    ] {
        let _ = writeln!(out, "Ablation — {name} (imp @ 0.85 / sim @ 0.85)");
        let mut t = Table::new(vec!["variant", "time", "peak candidates", "rules"]);
        let mut run_imp = |label: &str, cfg: ImplicationConfig| {
            let start = Instant::now();
            let r = find_implications(&m, &cfg);
            t.row(vec![
                label.into(),
                secs(start.elapsed()),
                r.memory.peak_candidates().to_string(),
                r.rules.len().to_string(),
            ]);
        };
        run_imp("imp: full", ImplicationConfig::new(0.85));
        run_imp(
            "imp: original row order",
            ImplicationConfig::new(0.85).with_row_order(RowOrder::Original),
        );
        run_imp(
            "imp: no 100% stage",
            ImplicationConfig::new(0.85).with_hundred_stage(false),
        );
        run_imp(
            "imp: no bitmap switch",
            ImplicationConfig::new(0.85).with_switch(dmc_core::SwitchPolicy::never()),
        );
        let mut run_sim = |label: &str, cfg: SimilarityConfig| {
            let start = Instant::now();
            let r = find_similarities(&m, &cfg);
            t.row(vec![
                label.into(),
                secs(start.elapsed()),
                r.memory.peak_candidates().to_string(),
                r.rules.len().to_string(),
            ]);
        };
        run_sim("sim: full", SimilarityConfig::new(0.85));
        run_sim(
            "sim: no max-hits pruning",
            SimilarityConfig::new(0.85).with_max_hits_pruning(false),
        );
        run_sim(
            "sim: original row order",
            SimilarityConfig::new(0.85).with_row_order(RowOrder::Original),
        );
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Structured run reports across the thread sweep: mines NewsP at 85%
/// once per thread count (1/2/4/8, in-memory and streamed), checks each
/// report's counters reconcile, writes the JSON array to
/// `BENCH_reports.json`, and returns a counter summary table.
///
/// # Panics
///
/// Panics if any run report fails its reconciliation invariants.
#[must_use]
pub fn reports(scale: Scale) -> String {
    let m = datasets::newsp(scale);
    let thr = 0.85;
    let mut entries = Vec::new();
    let mut t = Table::new(vec![
        "run",
        "rules",
        "rows scanned",
        "admitted",
        "deleted",
        "misses",
        "peak cands",
    ]);
    let mut record = |label: String, r: &dmc_core::RunReport| {
        assert!(r.reconciles(), "run report must reconcile ({label})");
        t.row(vec![
            label,
            r.rules.to_string(),
            r.counters.rows_scanned.to_string(),
            r.counters.candidates_admitted.to_string(),
            r.counters.candidates_deleted.to_string(),
            r.counters.misses_counted.to_string(),
            r.peak_candidates.to_string(),
        ]);
        entries.push(r.to_json());
    };
    for threads in [1usize, 2, 4, 8] {
        let out = Miner::implications(thr)
            .threads(threads)
            .mine(&m)
            .expect("in-memory mines cannot fail");
        record(format!("imp t={threads}"), &out.report);
    }
    let rows: Vec<Result<Vec<dmc_core::ColumnId>, std::convert::Infallible>> =
        m.rows().map(|r| Ok(r.to_vec())).collect();
    let streamed = Miner::implications(thr)
        .threads(4)
        .mine_streamed(rows, m.n_cols())
        .expect("in-memory rows cannot fail");
    record("imp t=4 streamed".into(), &streamed.report);
    let sim = Miner::similarities(thr)
        .threads(4)
        .mine(&m)
        .expect("in-memory mines cannot fail");
    record("sim t=4".into(), &sim.report);

    let path = "BENCH_reports.json";
    let json = format!("[\n{}\n]\n", entries.join(",\n"));
    let note = match std::fs::write(path, json) {
        Ok(()) => format!("JSON written to {path}"),
        Err(e) => format!("could not write {path}: {e}"),
    };
    format!(
        "Run reports (NewsP @ 0.85, schema {}), {note}\n{}",
        dmc_core::RUN_REPORT_SCHEMA,
        t.render()
    )
}

/// Sanity experiment: DMC against the exact oracle on a small slice (used
/// by `dmc-experiments verify`).
#[must_use]
pub fn verify(scale: Scale) -> String {
    let m = datasets::newsp(match scale {
        Scale::Small => Scale::Small,
        _ => Scale::Small, // the oracle is quadratic; keep it small
    });
    let mut out = String::from("Exactness check vs brute-force oracle (NewsP small)\n");
    for &thr in &[0.9, 0.8, 0.7] {
        let dmc = find_implications(&m, &ImplicationConfig::new(thr));
        let exact = oracle::exact_implications(&m, thr, false);
        let ok = dmc.rules == exact;
        let _ = writeln!(
            out,
            "  imp @ {thr:.2}: {} rules, oracle match: {ok}",
            exact.len()
        );
        assert!(ok, "DMC-imp diverged from the oracle at {thr}");
        let dmc_s = find_similarities(&m, &SimilarityConfig::new(thr));
        let exact_s = oracle::exact_similarities(&m, thr);
        let ok = dmc_s.rules == exact_s;
        let _ = writeln!(
            out,
            "  sim @ {thr:.2}: {} rules, oracle match: {ok}",
            exact_s.len()
        );
        assert!(ok, "DMC-sim diverged from the oracle at {thr}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_trace_reports_paper_rules() {
        let out = fig2_trace();
        assert!(out.contains("c1 => c2"), "{out}");
        assert!(out.contains("c3 => c5"), "{out}");
        assert!(out.contains("(1,4,4,7,9,7,7,6,2)"), "{out}");
    }

    #[test]
    fn verify_passes_at_small_scale() {
        let out = verify(Scale::Small);
        assert!(out.contains("oracle match: true"));
    }

    #[test]
    fn fig7_finds_polgar_rules() {
        let out = fig7(Scale::Small);
        assert!(out.contains("polgar ->"), "{out}");
        assert!(out.contains("chess"), "{out}");
    }
}
