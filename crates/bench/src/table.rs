//! Aligned text tables for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// ```
/// use dmc_bench::table::Table;
///
/// let mut t = Table::new(vec!["data", "rows"]);
/// t.row(vec!["Wlog".into(), "218518".into()]);
/// let s = t.render();
/// assert!(s.contains("Wlog"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<&str>) -> Self {
        Self {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with padded columns, a header separator, and a trailing
    /// newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a duration in seconds with millisecond resolution.
#[must_use]
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count as KiB/MiB with one decimal.
#[must_use]
pub fn bytes(n: usize) -> String {
    if n >= 1024 * 1024 {
        format!("{:.1}MiB", n as f64 / (1024.0 * 1024.0))
    } else if n >= 1024 {
        format!("{:.1}KiB", n as f64 / 1024.0)
    } else {
        format!("{n}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len(), "aligned widths");
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(bytes(512), "512B");
        assert_eq!(bytes(2048), "2.0KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0MiB");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
