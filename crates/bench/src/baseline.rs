//! Serialization of [`BenchSuite`] records under the `dmc.bench.v1`
//! schema, through the shared hand-rolled writer/parser in
//! [`dmc_metrics::json`] — the same machinery that serializes run
//! reports, so there is exactly one JSON dialect in the tree.
//!
//! The committed `BENCH_baseline.json` at the repo root is a record in
//! this format; CI's bench gate compares a fresh `--quick` run against it
//! with [`compare`](crate::compare).

use crate::suite::{BenchCell, BenchSuite, CounterFingerprint};
use dmc_metrics::json::{JsonValue, JsonWriter};
use std::fmt;
use std::fs;
use std::path::Path;

/// Schema identifier written into (and required of) every bench record.
pub const BENCH_SCHEMA: &str = "dmc.bench.v1";

/// Why a bench record failed to load or parse.
#[derive(Debug)]
pub enum BaselineError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The bytes were not the JSON this writer emits.
    Json(String),
    /// A required key was missing or had the wrong type.
    Shape(String),
    /// The record declares a schema other than [`BENCH_SCHEMA`].
    SchemaMismatch { found: String },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "cannot read bench record: {e}"),
            BaselineError::Json(e) => write!(f, "invalid JSON: {e}"),
            BaselineError::Shape(e) => write!(f, "malformed bench record: {e}"),
            BaselineError::SchemaMismatch { found } => {
                write!(f, "schema mismatch: found {found:?}, need {BENCH_SCHEMA:?}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<std::io::Error> for BaselineError {
    fn from(e: std::io::Error) -> Self {
        BaselineError::Io(e)
    }
}

/// Renders a suite as `dmc.bench.v1` JSON (pretty, deterministic key
/// order).
#[must_use]
pub fn to_json(suite: &BenchSuite) -> String {
    let mut w = JsonWriter::new();
    w.object();
    w.string("schema", &suite.schema);
    w.string("name", &suite.name);
    w.array_key("scales");
    for s in &suite.scales {
        w.item_string(s);
    }
    w.end_array();
    w.array_key("threads");
    for t in &suite.threads {
        w.item_uint(*t);
    }
    w.end_array();
    w.uint("warmup", suite.warmup);
    w.uint("repeats", suite.repeats);
    w.array_key("cells");
    for cell in &suite.cells {
        w.object();
        w.string("id", &cell.id);
        w.string("algorithm", &cell.algorithm);
        w.string("mode", &cell.mode);
        w.uint("threads", cell.threads);
        w.string("scale", &cell.scale);
        w.uint("rows", cell.rows);
        w.uint("cols", cell.cols);
        w.float("threshold", cell.threshold);
        w.uint("rules", cell.rules);
        w.array_key("seconds");
        for s in &cell.seconds {
            w.item_float(*s);
        }
        w.end_array();
        w.float("median_seconds", cell.median_seconds);
        w.float("mad_seconds", cell.mad_seconds);
        w.float("rows_per_sec", cell.rows_per_sec);
        w.float("deletions_per_sec", cell.deletions_per_sec);
        w.float("spill_bytes_per_sec", cell.spill_bytes_per_sec);
        w.object_key("counters");
        w.uint("rows_scanned", cell.counters.rows_scanned);
        w.uint("candidates_admitted", cell.counters.candidates_admitted);
        w.uint("candidates_deleted", cell.counters.candidates_deleted);
        w.uint("misses_counted", cell.counters.misses_counted);
        w.uint("rules_emitted", cell.counters.rules_emitted);
        w.uint("spill_bytes", cell.counters.spill_bytes);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

fn need<'a>(v: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a JsonValue, BaselineError> {
    v.get(key)
        .ok_or_else(|| BaselineError::Shape(format!("{ctx}: missing key {key:?}")))
}

fn need_str(v: &JsonValue, key: &str, ctx: &str) -> Result<String, BaselineError> {
    need(v, key, ctx)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| BaselineError::Shape(format!("{ctx}: {key:?} is not a string")))
}

fn need_u64(v: &JsonValue, key: &str, ctx: &str) -> Result<u64, BaselineError> {
    need(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| BaselineError::Shape(format!("{ctx}: {key:?} is not an unsigned integer")))
}

fn need_f64(v: &JsonValue, key: &str, ctx: &str) -> Result<f64, BaselineError> {
    need(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| BaselineError::Shape(format!("{ctx}: {key:?} is not a number")))
}

fn need_array<'a>(
    v: &'a JsonValue,
    key: &str,
    ctx: &str,
) -> Result<&'a [JsonValue], BaselineError> {
    need(v, key, ctx)?
        .as_array()
        .ok_or_else(|| BaselineError::Shape(format!("{ctx}: {key:?} is not an array")))
}

/// Parses a `dmc.bench.v1` record, rejecting other schemas.
pub fn parse(text: &str) -> Result<BenchSuite, BaselineError> {
    let root = JsonValue::parse(text).map_err(|e| BaselineError::Json(e.to_string()))?;
    let schema = need_str(&root, "schema", "record")?;
    if schema != BENCH_SCHEMA {
        return Err(BaselineError::SchemaMismatch { found: schema });
    }
    let mut scales = Vec::new();
    for s in need_array(&root, "scales", "record")? {
        scales.push(
            s.as_str()
                .map(str::to_owned)
                .ok_or_else(|| BaselineError::Shape("scales: non-string entry".into()))?,
        );
    }
    let mut threads = Vec::new();
    for t in need_array(&root, "threads", "record")? {
        threads.push(
            t.as_u64()
                .ok_or_else(|| BaselineError::Shape("threads: non-integer entry".into()))?,
        );
    }
    let mut cells = Vec::new();
    for (i, c) in need_array(&root, "cells", "record")?.iter().enumerate() {
        let ctx = format!("cells[{i}]");
        let mut seconds = Vec::new();
        for s in need_array(c, "seconds", &ctx)? {
            seconds.push(
                s.as_f64()
                    .ok_or_else(|| BaselineError::Shape(format!("{ctx}: non-number timing")))?,
            );
        }
        let counters = need(c, "counters", &ctx)?;
        let cctx = format!("{ctx}.counters");
        cells.push(BenchCell {
            id: need_str(c, "id", &ctx)?,
            algorithm: need_str(c, "algorithm", &ctx)?,
            mode: need_str(c, "mode", &ctx)?,
            threads: need_u64(c, "threads", &ctx)?,
            scale: need_str(c, "scale", &ctx)?,
            rows: need_u64(c, "rows", &ctx)?,
            cols: need_u64(c, "cols", &ctx)?,
            threshold: need_f64(c, "threshold", &ctx)?,
            rules: need_u64(c, "rules", &ctx)?,
            seconds,
            median_seconds: need_f64(c, "median_seconds", &ctx)?,
            mad_seconds: need_f64(c, "mad_seconds", &ctx)?,
            rows_per_sec: need_f64(c, "rows_per_sec", &ctx)?,
            deletions_per_sec: need_f64(c, "deletions_per_sec", &ctx)?,
            spill_bytes_per_sec: need_f64(c, "spill_bytes_per_sec", &ctx)?,
            counters: CounterFingerprint {
                rows_scanned: need_u64(counters, "rows_scanned", &cctx)?,
                candidates_admitted: need_u64(counters, "candidates_admitted", &cctx)?,
                candidates_deleted: need_u64(counters, "candidates_deleted", &cctx)?,
                misses_counted: need_u64(counters, "misses_counted", &cctx)?,
                rules_emitted: need_u64(counters, "rules_emitted", &cctx)?,
                spill_bytes: need_u64(counters, "spill_bytes", &cctx)?,
            },
        });
    }
    Ok(BenchSuite {
        schema,
        name: need_str(&root, "name", "record")?,
        scales,
        threads,
        warmup: need_u64(&root, "warmup", "record")?,
        repeats: need_u64(&root, "repeats", "record")?,
        cells,
    })
}

/// Loads and parses a record from disk.
pub fn load(path: &Path) -> Result<BenchSuite, BaselineError> {
    parse(&fs::read_to_string(path)?)
}

/// Writes a record to disk (trailing newline included).
pub fn save(suite: &BenchSuite, path: &Path) -> Result<(), BaselineError> {
    let mut text = to_json(suite);
    text.push('\n');
    fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_cell(id: &str, median: f64, mad: f64) -> BenchCell {
        let seconds = vec![median - mad, median, median + mad];
        BenchCell {
            id: id.into(),
            algorithm: "imp".into(),
            mode: "mem".into(),
            threads: 1,
            scale: "small".into(),
            rows: 100,
            cols: 20,
            threshold: 0.9,
            rules: 7,
            median_seconds: median,
            mad_seconds: mad,
            rows_per_sec: 200.0 / median,
            deletions_per_sec: 50.0 / median,
            spill_bytes_per_sec: 0.0,
            seconds,
            counters: CounterFingerprint {
                rows_scanned: 200,
                candidates_admitted: 57,
                candidates_deleted: 50,
                misses_counted: 90,
                rules_emitted: 7,
                spill_bytes: 0,
            },
        }
    }

    pub(crate) fn sample_suite() -> BenchSuite {
        BenchSuite {
            schema: BENCH_SCHEMA.into(),
            name: "sample".into(),
            scales: vec!["small".into()],
            threads: vec![1, 4],
            warmup: 1,
            repeats: 3,
            cells: vec![
                sample_cell("imp/mem/t1/small", 0.10, 0.004),
                sample_cell("imp/mem/t4/small", 0.04, 0.002),
            ],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let suite = sample_suite();
        let text = to_json(&suite);
        let back = parse(&text).expect("round trip parses");
        assert_eq!(back, suite);
    }

    #[test]
    fn rejects_wrong_schema() {
        let text = to_json(&sample_suite()).replace(BENCH_SCHEMA, "dmc.bench.v0");
        match parse(&text) {
            Err(BaselineError::SchemaMismatch { found }) => assert_eq!(found, "dmc.bench.v0"),
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_keys_and_bad_json() {
        let text = to_json(&sample_suite()).replace("\"median_seconds\"", "\"median_sec\"");
        assert!(matches!(parse(&text), Err(BaselineError::Shape(_))));
        assert!(matches!(parse("{nope"), Err(BaselineError::Json(_))));
    }

    #[test]
    fn save_and_load_round_trip() {
        let suite = sample_suite();
        let dir = std::env::temp_dir().join(format!("dmc-bench-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        save(&suite, &path).unwrap();
        assert_eq!(load(&path).unwrap(), suite);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
