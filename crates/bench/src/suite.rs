//! The `dmc-benchsuite` workload matrix and runner.
//!
//! A suite run mines a fixed matrix of cells — execution mode (in-memory
//! vs streamed) × algorithm (implication vs similarity) × worker count ×
//! dataset scale — on planted-rule datasets whose qualifying rule set is
//! known by construction. Every cell runs `warmup` discarded passes plus
//! `repeats` measured passes; the wall time of each pass is taken from the
//! driver's own [`RunReport::wall_seconds`] (not re-measured outside), so
//! the record and the observability layer cannot drift apart.
//!
//! The counters double as a correctness cross-check: every repeat's report
//! must satisfy [`RunReport::reconciles`], repeats of a cell must produce
//! identical counter fingerprints, and the work counters (admissions,
//! deletions, misses, emitted rules) must be invariant across thread
//! counts running the same engine: `threads == 1` dispatches the
//! sequential drivers, `threads > 1` the block-scheduler drivers, and the
//! scheduler folds DMC-sim blocks at block granularity, so its
//! `misses_counted` deterministically differs from the row-at-a-time
//! sequential count. Across the two engines everything except
//! `misses_counted` — admissions, deletions, emitted rules — must still
//! agree exactly. A timing record whose work counters moved is measuring
//! a different computation, not a faster one.
//!
//! The suite measures the miner as shipped: [`Miner`] resolves the
//! requested thread count through `dmc_core::effective_workers`, so on a
//! host with fewer cores than a cell's thread count the cell honestly
//! measures the widest feasible plan (down to the sequential driver on a
//! single core) rather than a deliberately oversubscribed one. The
//! engine-split invariants above still hold: every cell in a `threads`
//! group runs the same engine on a given host.
//!
//! Besides the driver matrix, every scale contributes an **engine cell
//! pair** measuring the persistent [`Engine`]: `engine/query/t1/*` (point
//! queries per second against a mined engine) and `engine/ingest/t1/*`
//! (rows per second through incremental [`Engine::ingest`], asserted
//! byte-identical to a from-scratch mine on every repeat), and a **shard
//! cell pair** measuring the column-sharded protocol: `shard/mine/t4/*`
//! (the full plan → worker → checksummed-merge pipeline) and
//! `shard/merge/t4/*` (the fingerprint-verified merge alone), each
//! asserting the union byte-identical to the unsharded mine, and a
//! **compact cell pair**: `compact/base/t1/*` (irredundant-base
//! construction over the mined rule set, reverses emitted so the base
//! genuinely shrinks) and `compact/expand/t1/*` (the inverse expansion,
//! asserted identical to the mined rules on every repeat).
//!
//! [`baseline`](crate::baseline) serializes the result under the
//! `dmc.bench.v1` schema and [`compare`](crate::compare) diffs two such
//! records with a noise-aware gate.

use crate::datasets::Scale;
use dmc_core::{Engine, MineConfig, Miner, RunReport, SparseMatrix};
use dmc_datagen::{planted_implications, PlantedConfig};
use dmc_metrics::ScanTally;
use std::convert::Infallible;
use std::time::Instant;

/// Which rule family a cell mines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// DMC-imp at the suite's `minconf`.
    Implication,
    /// DMC-sim at the suite's `minsim`.
    Similarity,
}

impl Algorithm {
    /// Short id segment (`imp` / `sim`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Algorithm::Implication => "imp",
            Algorithm::Similarity => "sim",
        }
    }
}

/// How a cell's rows reach the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// The whole matrix is resident; single counting pass per stage.
    InMemory,
    /// Rows stream through the two-pass out-of-core spill drivers.
    Streamed,
}

impl Mode {
    /// Short id segment (`mem` / `stream`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Mode::InMemory => "mem",
            Mode::Streamed => "stream",
        }
    }
}

/// Scale's lowercase name for ids and JSON.
#[must_use]
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Medium => "medium",
        Scale::Large => "large",
    }
}

/// Configuration of one suite run.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Record name (lands in the JSON `name` field).
    pub name: String,
    /// Dataset scales to cover.
    pub scales: Vec<Scale>,
    /// Worker counts to cover (1 runs the sequential drivers).
    pub threads: Vec<usize>,
    /// Discarded warm-up passes per cell.
    pub warmup: usize,
    /// Measured passes per cell.
    pub repeats: usize,
    /// Implication confidence threshold.
    pub minconf: f64,
    /// Similarity threshold.
    pub minsim: f64,
}

impl SuiteConfig {
    /// The full matrix: small + medium planted data, threads 1/2/4/8,
    /// 1 warm-up + 5 measured repeats per cell (32 driver cells plus an
    /// engine query/ingest pair, a shard mine/merge pair and a compact
    /// base/expand pair per scale, 44 total).
    #[must_use]
    pub fn full() -> Self {
        Self {
            name: "full".into(),
            scales: vec![Scale::Small, Scale::Medium],
            threads: vec![1, 2, 4, 8],
            warmup: 1,
            repeats: 5,
            minconf: 0.9,
            minsim: 0.75,
        }
    }

    /// The CI gate matrix: small planted data only, threads 1/4,
    /// 1 warm-up + 5 measured repeats per cell (8 driver cells plus the
    /// engine query/ingest, shard mine/merge and compact base/expand
    /// pairs, 14 total). The extra
    /// repeats over the minimum of 3 cost well under a second and buy a
    /// noticeably steadier median on shared runners.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            name: "quick".into(),
            scales: vec![Scale::Small],
            threads: vec![1, 4],
            warmup: 1,
            repeats: 5,
            minconf: 0.9,
            minsim: 0.75,
        }
    }
}

/// The planted-rule dataset a scale maps to: strongly planted implication
/// pairs over light background noise (see `dmc_datagen::planted`), sized
/// so a full suite stays in seconds per cell.
#[must_use]
pub fn planted_matrix(scale: Scale) -> SparseMatrix {
    let (rows, cols, pairs) = match scale {
        Scale::Small => (6000, 400, 40),
        Scale::Medium => (24000, 800, 80),
        Scale::Large => (96000, 1600, 160),
    };
    planted_implications(&PlantedConfig::new(
        rows,
        cols,
        pairs,
        0xBE7C + scale_tag(scale).len() as u64,
    ))
    .matrix
}

/// The counter fingerprint of a cell: every [`ScanTally`] field that must
/// be identical across repeats, plus `spill_bytes` (deterministic for a
/// fixed dataset). `rows_scanned` is kept for the record but excluded from
/// the thread-invariance comparison.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterFingerprint {
    pub rows_scanned: u64,
    pub candidates_admitted: u64,
    pub candidates_deleted: u64,
    pub misses_counted: u64,
    pub rules_emitted: u64,
    pub spill_bytes: u64,
}

impl CounterFingerprint {
    fn of(report: &RunReport) -> Self {
        let ScanTally {
            rows_scanned,
            candidates_admitted,
            candidates_deleted,
            misses_counted,
            rules_emitted,
        } = report.counters;
        Self {
            rows_scanned,
            candidates_admitted,
            candidates_deleted,
            misses_counted,
            rules_emitted,
            spill_bytes: report.spill_bytes,
        }
    }

    /// The fingerprint with the thread- and mode-dependent fields zeroed:
    /// `rows_scanned` depends on the engine's stage accounting and
    /// `spill_bytes` on the mode, while the work counters must not move
    /// between thread counts of the same engine.
    #[must_use]
    pub fn work_counters(&self) -> Self {
        Self {
            rows_scanned: 0,
            spill_bytes: 0,
            ..*self
        }
    }

    /// The counters that must agree across *engines* (sequential vs block
    /// scheduler): additionally zeroes `misses_counted`, which the
    /// scheduler tallies at block granularity for DMC-sim.
    #[must_use]
    pub fn rule_counters(&self) -> Self {
        Self {
            misses_counted: 0,
            ..self.work_counters()
        }
    }
}

/// One measured cell of the suite.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCell {
    /// Stable id, e.g. `imp/stream/t4/small`.
    pub id: String,
    /// `imp` or `sim`.
    pub algorithm: String,
    /// `mem` or `stream`.
    pub mode: String,
    /// Worker count the cell ran with.
    pub threads: u64,
    /// Dataset scale tag.
    pub scale: String,
    /// Dataset rows.
    pub rows: u64,
    /// Dataset columns.
    pub cols: u64,
    /// Threshold mined at.
    pub threshold: f64,
    /// Rules found (identical on every repeat).
    pub rules: u64,
    /// Measured wall times, in repeat order (seconds).
    pub seconds: Vec<f64>,
    /// Median of `seconds`.
    pub median_seconds: f64,
    /// Median absolute deviation of `seconds`.
    pub mad_seconds: f64,
    /// `counters.rows_scanned / median_seconds`.
    pub rows_per_sec: f64,
    /// `counters.candidates_deleted / median_seconds`.
    pub deletions_per_sec: f64,
    /// `spill_bytes / median_seconds` (zero for in-memory cells).
    pub spill_bytes_per_sec: f64,
    /// Counter fingerprint (identical on every repeat).
    pub counters: CounterFingerprint,
}

/// A complete suite record (serialized as `dmc.bench.v1`).
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSuite {
    /// Schema identifier; [`crate::baseline::BENCH_SCHEMA`] when produced
    /// by [`run_suite`].
    pub schema: String,
    /// Record name from the config.
    pub name: String,
    /// Scale tags covered.
    pub scales: Vec<String>,
    /// Worker counts covered.
    pub threads: Vec<u64>,
    /// Warm-up passes per cell.
    pub warmup: u64,
    /// Measured passes per cell.
    pub repeats: u64,
    /// All cells, in matrix order.
    pub cells: Vec<BenchCell>,
}

impl BenchSuite {
    /// The cell with the given id, if present.
    #[must_use]
    pub fn cell(&self, id: &str) -> Option<&BenchCell> {
        self.cells.iter().find(|c| c.id == id)
    }
}

/// Median of `values` (which need not be sorted). Zero for an empty slice.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation around [`median`].
#[must_use]
pub fn mad(values: &[f64]) -> f64 {
    let m = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&deviations)
}

/// Runs one pass of a cell and returns its run report.
///
/// # Panics
///
/// Panics if the report fails its reconciliation identities — a timing
/// measured against unreconciled counters is not evidence.
fn run_cell_once(
    matrix: &SparseMatrix,
    algorithm: Algorithm,
    mode: Mode,
    threads: usize,
    config: &SuiteConfig,
    id: &str,
) -> RunReport {
    let rows =
        || -> Vec<Result<Vec<u32>, Infallible>> { matrix.rows().map(|r| Ok(r.to_vec())).collect() };
    let report = match (algorithm, mode) {
        (Algorithm::Implication, Mode::InMemory) => {
            Miner::implications(config.minconf)
                .threads(threads)
                .mine(matrix)
                .expect("in-memory mines cannot fail")
                .report
        }
        (Algorithm::Implication, Mode::Streamed) => {
            Miner::implications(config.minconf)
                .threads(threads)
                .mine_streamed(rows(), matrix.n_cols())
                .expect("in-memory row replay cannot fail")
                .report
        }
        (Algorithm::Similarity, Mode::InMemory) => {
            Miner::similarities(config.minsim)
                .threads(threads)
                .mine(matrix)
                .expect("in-memory mines cannot fail")
                .report
        }
        (Algorithm::Similarity, Mode::Streamed) => {
            Miner::similarities(config.minsim)
                .threads(threads)
                .mine_streamed(rows(), matrix.n_cols())
                .expect("in-memory row replay cannot fail")
                .report
        }
    };
    assert!(
        report.reconciles(),
        "{id}: run report failed reconciliation"
    );
    report
}

/// Point queries per pass of the `engine/query` cell.
const QUERY_PASSES: u64 = 20_000;
/// Rows per [`Engine::ingest`] batch in the `engine/ingest` cell.
const INGEST_BATCH_ROWS: usize = 512;
/// Fraction of rows mined up front in the `engine/ingest` cell; the rest
/// arrive through ingest batches.
const INGEST_BASE_FRACTION: (usize, usize) = (3, 4);

/// Advances a splitmix-style LCG and returns a column id below `cols`.
fn next_column(state: &mut u64, cols: u64) -> u32 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*state >> 33) % cols) as u32
}

/// Identity and workload shape of a non-driver cell — everything about
/// it except the measurements.
struct CellSpec<'a> {
    family: &'a str,
    mode: &'a str,
    threads: u64,
    scale: Scale,
    matrix_shape: (u64, u64),
    threshold: f64,
    rules: u64,
}

/// Assembles a [`BenchCell`] from per-repeat seconds and the (repeat-
/// invariant) counter fingerprint, mirroring the driver cells' rate
/// derivations — for engine cells `rows_per_sec` is queries/sec or
/// ingested rows/sec, depending on what `rows_scanned` counts; for shard
/// cells it is shard-scans/sec (each worker re-scans every row).
fn family_cell(spec: CellSpec, seconds: Vec<f64>, fp: CounterFingerprint) -> BenchCell {
    let CellSpec {
        family,
        mode,
        threads,
        scale,
        matrix_shape,
        threshold,
        rules,
    } = spec;
    let median_seconds = median(&seconds);
    let mad_seconds = mad(&seconds);
    let rate = |work: u64| {
        if median_seconds > 0.0 {
            work as f64 / median_seconds
        } else {
            0.0
        }
    };
    BenchCell {
        id: format!("{family}/{mode}/t{threads}/{}", scale_tag(scale)),
        algorithm: family.into(),
        mode: mode.into(),
        threads,
        scale: scale_tag(scale).into(),
        rows: matrix_shape.0,
        cols: matrix_shape.1,
        threshold,
        rules,
        median_seconds,
        mad_seconds,
        rows_per_sec: rate(fp.rows_scanned),
        deletions_per_sec: rate(fp.candidates_deleted),
        spill_bytes_per_sec: 0.0,
        seconds,
        counters: fp,
    }
}

/// The `engine/query/t1/{scale}` cell: [`QUERY_PASSES`] deterministic
/// pseudo-random point queries against a mined engine. `rows_scanned`
/// counts queries, so `rows_per_sec` is queries per second;
/// `rules_emitted` counts qualifying answers (a repeat-invariance check
/// that the engine answered, not just returned).
fn engine_query_cell(matrix: &SparseMatrix, scale: Scale, config: &SuiteConfig) -> BenchCell {
    let id = format!("engine/query/t1/{}", scale_tag(scale));
    let mut engine = Engine::new(
        MineConfig::implications(config.minconf).expect("suite minconf is valid"),
        matrix.clone(),
    );
    engine.mine();
    let cols = matrix.n_cols() as u64;
    let pass = |engine: &Engine| {
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ cols;
        let mut qualifying = 0u64;
        let start = Instant::now();
        for _ in 0..QUERY_PASSES {
            let lhs = next_column(&mut state, cols);
            let rhs = next_column(&mut state, cols);
            let answer = engine.query(lhs, rhs).expect("generated ids are in range");
            qualifying += u64::from(answer.qualifies);
        }
        (start.elapsed().as_secs_f64(), qualifying)
    };
    for _ in 0..config.warmup {
        let _ = pass(&engine);
    }
    let mut seconds = Vec::with_capacity(config.repeats);
    let mut first_qualifying = None;
    for repeat in 0..config.repeats {
        let (secs, qualifying) = pass(&engine);
        match first_qualifying {
            None => first_qualifying = Some(qualifying),
            Some(q0) => assert_eq!(
                qualifying, q0,
                "{id}: qualifying answers drifted between repeats 0 and {repeat}"
            ),
        }
        seconds.push(secs);
    }
    let qualifying = first_qualifying.expect("repeats >= 1");
    let fp = CounterFingerprint {
        rows_scanned: QUERY_PASSES,
        rules_emitted: qualifying,
        ..CounterFingerprint::default()
    };
    family_cell(
        CellSpec {
            family: "engine",
            mode: "query",
            threads: 1,
            scale,
            matrix_shape: (matrix.n_rows() as u64, cols),
            threshold: config.minconf,
            rules: engine.rule_count() as u64,
        },
        seconds,
        fp,
    )
}

/// The `engine/ingest/t1/{scale}` cell: mine the first ¾ of the dataset
/// (untimed), then ingest the remaining quarter in
/// [`INGEST_BATCH_ROWS`]-row batches, re-deriving the rule set after
/// every batch. `rows_scanned` counts ingested rows, so `rows_per_sec`
/// is ingest rows per second. Every repeat asserts the incremental rule
/// set is byte-identical to a from-scratch mine of the full dataset.
fn engine_ingest_cell(matrix: &SparseMatrix, scale: Scale, config: &SuiteConfig) -> BenchCell {
    let id = format!("engine/ingest/t1/{}", scale_tag(scale));
    let rows: Vec<Vec<u32>> = matrix.rows().map(<[u32]>::to_vec).collect();
    let split = rows.len() * INGEST_BASE_FRACTION.0 / INGEST_BASE_FRACTION.1;
    let expected = Miner::implications(config.minconf)
        .mine(matrix)
        .expect("in-memory mines cannot fail")
        .rules;
    let pass = || {
        let base = SparseMatrix::from_rows(matrix.n_cols(), rows[..split].to_vec());
        let mut engine = Engine::new(
            MineConfig::implications(config.minconf).expect("suite minconf is valid"),
            base,
        );
        engine.mine();
        let start = Instant::now();
        for batch in rows[split..].chunks(INGEST_BATCH_ROWS) {
            engine
                .ingest(batch)
                .expect("planted rows are always in range");
        }
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            engine.implication_rules(),
            expected,
            "{id}: incremental ingest diverged from the from-scratch mine"
        );
        let stats = engine.ingest_stats();
        let fp = CounterFingerprint {
            rows_scanned: stats.rows_ingested,
            candidates_admitted: stats.rules_born,
            candidates_deleted: stats.rules_died,
            misses_counted: stats.pairs_bumped,
            rules_emitted: engine.rule_count() as u64,
            spill_bytes: 0,
        };
        (seconds, fp)
    };
    for _ in 0..config.warmup {
        let _ = pass();
    }
    let mut seconds = Vec::with_capacity(config.repeats);
    let mut first: Option<CounterFingerprint> = None;
    for repeat in 0..config.repeats {
        let (secs, fp) = pass();
        match &first {
            None => first = Some(fp),
            Some(fp0) => assert_eq!(
                fp, *fp0,
                "{id}: ingest counters drifted between repeats 0 and {repeat}"
            ),
        }
        seconds.push(secs);
    }
    let fp = first.expect("repeats >= 1");
    family_cell(
        CellSpec {
            family: "engine",
            mode: "ingest",
            threads: 1,
            scale,
            matrix_shape: (matrix.n_rows() as u64, matrix.n_cols() as u64),
            threshold: config.minconf,
            rules: fp.rules_emitted,
        },
        seconds,
        fp,
    )
}

/// Worker-shard count of the shard cell family.
const SHARD_WORKERS: usize = 4;

/// Warm-up + measured passes of one cell body, asserting the counter
/// fingerprint is repeat-invariant.
fn measure(
    config: &SuiteConfig,
    id: &str,
    mut pass: impl FnMut() -> (f64, CounterFingerprint),
) -> (Vec<f64>, CounterFingerprint) {
    for _ in 0..config.warmup {
        let _ = pass();
    }
    let mut seconds = Vec::with_capacity(config.repeats);
    let mut first: Option<CounterFingerprint> = None;
    for repeat in 0..config.repeats {
        let (secs, fp) = pass();
        match &first {
            None => first = Some(fp),
            Some(fp0) => assert_eq!(
                fp, *fp0,
                "{id}: counters drifted between repeats 0 and {repeat}"
            ),
        }
        seconds.push(secs);
    }
    (seconds, first.expect("repeats >= 1"))
}

/// The `shard/mine/t4/{scale}` and `shard/merge/t4/{scale}` cells:
/// the full column-sharded pipeline (plan → [`SHARD_WORKERS`] workers
/// writing checksummed spills → fingerprint-verified merge) and the
/// merge step alone over pre-written spills. Every repeat asserts the
/// merged rule set is byte-identical to an unsharded mine, so the cells
/// double as a continuous fidelity check on the shard protocol.
fn shard_cells(matrix: &SparseMatrix, scale: Scale, config: &SuiteConfig) -> Vec<BenchCell> {
    use dmc_core::shard::run_worker;
    use dmc_core::{merge_shards, plan_shards, shard_mine, RetryPolicy};
    use dmc_matrix::spill_io::StdFsIo;

    let dir = std::env::temp_dir().join(format!(
        "dmc-bench-shard-{}-{}",
        std::process::id(),
        scale_tag(scale)
    ));
    std::fs::create_dir_all(&dir).expect("bench shard temp dir");
    let cfg = MineConfig::implications(config.minconf).expect("suite minconf is valid");
    let retry = RetryPolicy::none();
    let shape = (matrix.n_rows() as u64, matrix.n_cols() as u64);
    let expected = Miner::implications(config.minconf)
        .mine(matrix)
        .expect("in-memory mines cannot fail")
        .rules;

    let mine_id = format!("shard/mine/t{SHARD_WORKERS}/{}", scale_tag(scale));
    let manifest = dir.join("mine.manifest");
    let (mine_seconds, mine_fp) = measure(config, &mine_id, || {
        let start = Instant::now();
        let merged = shard_mine(
            &StdFsIo,
            &manifest,
            retry,
            &cfg,
            matrix,
            SHARD_WORKERS,
            false,
        )
        .expect("bench shard mine");
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            merged.imp_rules, expected,
            "{mine_id}: merged rules diverged from the unsharded mine"
        );
        assert!(merged.report.reconciles(), "{mine_id}: report reconciles");
        (seconds, CounterFingerprint::of(&merged.report))
    });

    // Merge-only: the spills are written once, untimed, and kept across
    // passes (`keep_shards`), so each pass re-validates and re-unions.
    let merge_id = format!("shard/merge/t{SHARD_WORKERS}/{}", scale_tag(scale));
    let merge_manifest = dir.join("merge.manifest");
    let plan = plan_shards(matrix.n_cols(), SHARD_WORKERS).expect("suite shard plan");
    for index in 0..plan.len() {
        run_worker(&StdFsIo, &merge_manifest, retry, &cfg, matrix, &plan, index)
            .expect("bench shard worker");
    }
    let (merge_seconds, merge_fp) = measure(config, &merge_id, || {
        let start = Instant::now();
        let merged = merge_shards(&StdFsIo, &merge_manifest, plan.len(), retry, true)
            .expect("bench shard merge");
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            merged.imp_rules, expected,
            "{merge_id}: merged rules diverged from the unsharded mine"
        );
        (seconds, CounterFingerprint::of(&merged.report))
    });
    let _ = std::fs::remove_dir_all(&dir);

    let rules = expected.len() as u64;
    let spec = |mode| CellSpec {
        family: "shard",
        mode,
        threads: SHARD_WORKERS as u64,
        scale,
        matrix_shape: shape,
        threshold: config.minconf,
        rules,
    };
    vec![
        family_cell(spec("mine"), mine_seconds, mine_fp),
        family_cell(spec("merge"), merge_seconds, merge_fp),
    ]
}

/// The `compact/base/t1/{scale}` and `compact/expand/t1/{scale}` cells:
/// irredundant-base construction over the mined rule set and the inverse
/// expansion. The mine runs once, untimed, with reverse emission so the
/// base genuinely shrinks; every expand repeat asserts the rebuilt rule
/// set equals the mined one, making the pair a continuous fidelity check
/// on the compaction round trip. `rows_scanned` counts input rules and
/// `rules_emitted` output rules, so `rows_per_sec` is rules through the
/// stage per second.
fn compact_cells(matrix: &SparseMatrix, scale: Scale, config: &SuiteConfig) -> Vec<BenchCell> {
    use dmc_core::compact_implications;
    let shape = (matrix.n_rows() as u64, matrix.n_cols() as u64);
    let rules = Miner::implications(config.minconf)
        .reverse(true)
        .mine(matrix)
        .expect("in-memory mines cannot fail")
        .rules;

    let base_id = format!("compact/base/t1/{}", scale_tag(scale));
    let (base_seconds, base_fp) = measure(config, &base_id, || {
        let start = Instant::now();
        let base = compact_implications(&rules, config.minconf, None);
        let seconds = start.elapsed().as_secs_f64();
        let fp = CounterFingerprint {
            rows_scanned: base.rules_in() as u64,
            rules_emitted: base.rules_in_base() as u64,
            ..CounterFingerprint::default()
        };
        (seconds, fp)
    });

    let expand_id = format!("compact/expand/t1/{}", scale_tag(scale));
    let base = compact_implications(&rules, config.minconf, None);
    let (expand_seconds, expand_fp) = measure(config, &expand_id, || {
        let start = Instant::now();
        let (expanded, _) = base.expand();
        let seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            expanded, rules,
            "{expand_id}: expansion diverged from the mined rule set"
        );
        let fp = CounterFingerprint {
            rows_scanned: base.rules_in_base() as u64,
            rules_emitted: expanded.len() as u64,
            ..CounterFingerprint::default()
        };
        (seconds, fp)
    });

    let spec = |mode, rules| CellSpec {
        family: "compact",
        mode,
        threads: 1,
        scale,
        matrix_shape: shape,
        threshold: config.minconf,
        rules,
    };
    vec![
        family_cell(spec("base", base_fp.rules_emitted), base_seconds, base_fp),
        family_cell(
            spec("expand", expand_fp.rules_emitted),
            expand_seconds,
            expand_fp,
        ),
    ]
}

/// Runs the whole matrix and assembles the suite record.
///
/// `progress` receives one line per finished cell (pass `|_| {}` to run
/// silently).
///
/// # Panics
///
/// Panics when a correctness cross-check fails: a repeat's report does not
/// reconcile, repeats of a cell disagree on counters or rules, or work
/// counters drift across thread counts of the same (algorithm, mode,
/// scale) group.
#[must_use]
pub fn run_suite(config: &SuiteConfig, mut progress: impl FnMut(&str)) -> BenchSuite {
    assert!(config.repeats >= 1, "need at least one measured repeat");
    let mut cells = Vec::new();
    for &scale in &config.scales {
        let matrix = planted_matrix(scale);
        // (algorithm, mode, parallel-engine?) -> work-counter fingerprint
        // of the first thread count in that engine, checked in full
        // against every other thread count of the same engine and on the
        // rule counters against the other engine.
        let mut invariants: Vec<(Algorithm, Mode, bool, CounterFingerprint)> = Vec::new();
        for mode in [Mode::InMemory, Mode::Streamed] {
            for algorithm in [Algorithm::Implication, Algorithm::Similarity] {
                for &threads in &config.threads {
                    let id = format!(
                        "{}/{}/t{}/{}",
                        algorithm.tag(),
                        mode.tag(),
                        threads,
                        scale_tag(scale)
                    );
                    for _ in 0..config.warmup {
                        let _ = run_cell_once(&matrix, algorithm, mode, threads, config, &id);
                    }
                    let mut seconds = Vec::with_capacity(config.repeats);
                    let mut first: Option<(CounterFingerprint, u64, f64)> = None;
                    for repeat in 0..config.repeats {
                        let report = run_cell_once(&matrix, algorithm, mode, threads, config, &id);
                        let fp = CounterFingerprint::of(&report);
                        let rules = report.rules as u64;
                        match &first {
                            None => first = Some((fp, rules, report.threshold)),
                            Some((fp0, rules0, _)) => {
                                assert_eq!(
                                    fp, *fp0,
                                    "{id}: counters drifted between repeats 0 and {repeat}"
                                );
                                assert_eq!(
                                    rules, *rules0,
                                    "{id}: rule count drifted between repeats"
                                );
                            }
                        }
                        seconds.push(report.wall_seconds);
                    }
                    let (fp, rules, threshold) = first.expect("repeats >= 1");
                    let parallel = threads > 1;
                    match invariants
                        .iter()
                        .find(|(a, m, p, _)| *a == algorithm && *m == mode && *p == parallel)
                    {
                        None => {
                            if let Some((_, _, _, other)) =
                                invariants.iter().find(|(a, m, p, _)| {
                                    *a == algorithm && *m == mode && *p != parallel
                                })
                            {
                                assert_eq!(
                                    fp.rule_counters(),
                                    other.rule_counters(),
                                    "{id}: rule counters drifted between engines"
                                );
                            }
                            invariants.push((algorithm, mode, parallel, fp.work_counters()));
                        }
                        Some((_, _, _, expected)) => assert_eq!(
                            fp.work_counters(),
                            *expected,
                            "{id}: work counters are not thread-invariant"
                        ),
                    }
                    let median_seconds = median(&seconds);
                    let mad_seconds = mad(&seconds);
                    let rate = |work: u64| {
                        if median_seconds > 0.0 {
                            work as f64 / median_seconds
                        } else {
                            0.0
                        }
                    };
                    let cell = BenchCell {
                        id: id.clone(),
                        algorithm: algorithm.tag().into(),
                        mode: mode.tag().into(),
                        threads: threads as u64,
                        scale: scale_tag(scale).into(),
                        rows: matrix.n_rows() as u64,
                        cols: matrix.n_cols() as u64,
                        threshold,
                        rules,
                        median_seconds,
                        mad_seconds,
                        rows_per_sec: rate(fp.rows_scanned),
                        deletions_per_sec: rate(fp.candidates_deleted),
                        spill_bytes_per_sec: rate(fp.spill_bytes),
                        seconds,
                        counters: fp,
                    };
                    progress(&format!(
                        "{id}: median {:.4}s mad {:.4}s ({} rules)",
                        cell.median_seconds, cell.mad_seconds, cell.rules
                    ));
                    cells.push(cell);
                }
            }
        }
        // The engine cell family: persistent-engine point queries and
        // incremental ingest, always single-threaded (both paths hold
        // the engine exclusively, there is no worker fan-out to scale).
        let mut extra = vec![
            engine_query_cell(&matrix, scale, config),
            engine_ingest_cell(&matrix, scale, config),
        ];
        // The shard cell family: the multi-process protocol measured
        // in-process (plan → workers → checksummed merge), plus the merge
        // step alone.
        extra.extend(shard_cells(&matrix, scale, config));
        // The compact cell family: irredundant-base construction and the
        // identity-checked inverse expansion.
        extra.extend(compact_cells(&matrix, scale, config));
        for cell in extra {
            progress(&format!(
                "{}: median {:.4}s mad {:.4}s ({} rules)",
                cell.id, cell.median_seconds, cell.mad_seconds, cell.rules
            ));
            cells.push(cell);
        }
    }
    BenchSuite {
        schema: crate::baseline::BENCH_SCHEMA.into(),
        name: config.name.clone(),
        scales: config.scales.iter().map(|s| scale_tag(*s).into()).collect(),
        threads: config.threads.iter().map(|t| *t as u64).collect(),
        warmup: config.warmup as u64,
        repeats: config.repeats as u64,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_basics() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(mad(&[1.0, 1.0, 1.0]), 0.0);
        // median 3, deviations {2,1,0,1,2} -> mad 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
    }

    #[test]
    fn fingerprint_work_counters_ignore_rows_and_spill() {
        let a = CounterFingerprint {
            rows_scanned: 10,
            candidates_admitted: 5,
            candidates_deleted: 3,
            misses_counted: 7,
            rules_emitted: 2,
            spill_bytes: 100,
        };
        let b = CounterFingerprint {
            rows_scanned: 40,
            spill_bytes: 0,
            ..a
        };
        assert_ne!(a, b);
        assert_eq!(a.work_counters(), b.work_counters());
    }

    #[test]
    fn cell_ids_are_stable() {
        assert_eq!(Algorithm::Implication.tag(), "imp");
        assert_eq!(Mode::Streamed.tag(), "stream");
        assert_eq!(scale_tag(Scale::Medium), "medium");
    }
}
