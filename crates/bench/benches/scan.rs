//! Substrate benchmarks: matrix scanning, ordering, transforms.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmc_bench::datasets::{self, Scale};
use dmc_matrix::order::{bucketed_sparsest_first, exact_sparsest_first};
use dmc_matrix::transform::transpose;

fn bench_scan(c: &mut Criterion) {
    let m = datasets::wlog(Scale::Small);
    c.bench_function("scan/rows-touch-all", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for row in m.rows() {
                acc += row.len() as u64;
            }
            black_box(acc)
        });
    });
    c.bench_function("scan/column-ones", |b| {
        b.iter(|| black_box(m.column_ones()))
    });
}

fn bench_order(c: &mut Criterion) {
    let m = datasets::wlog(Scale::Small);
    c.bench_function("order/bucketed-sparsest-first", |b| {
        b.iter(|| black_box(bucketed_sparsest_first(&m)));
    });
    c.bench_function("order/exact-sparsest-first", |b| {
        b.iter(|| black_box(exact_sparsest_first(&m)));
    });
}

fn bench_transform(c: &mut Criterion) {
    let m = datasets::plink(Scale::Small).forward;
    c.bench_function("transform/transpose", |b| {
        b.iter(|| black_box(transpose(&m)))
    });
}

criterion_group!(benches, bench_scan, bench_order, bench_transform);
criterion_main!(benches);
