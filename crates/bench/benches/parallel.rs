//! Scaling sweep for the parallel drivers: threads 1/2/4/8 over the
//! same planted weblog data, in-memory and out-of-core.
//!
//! The streamed variants feed rows through the spill pipeline, so they
//! also measure the single-decode batched fan-out against the
//! sequential replay baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_bench::datasets::{self, Scale};
use dmc_core::{
    find_implications_parallel, find_implications_streamed_parallel, find_similarities_parallel,
    ImplicationConfig, SimilarityConfig, SparseMatrix,
};
use std::convert::Infallible;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn rows_of(
    m: &SparseMatrix,
) -> impl Iterator<Item = Result<Vec<dmc_core::ColumnId>, Infallible>> + '_ {
    (0..m.n_rows()).map(|r| Ok(m.row(r).to_vec()))
}

fn bench_imp_memory(c: &mut Criterion) {
    let m = datasets::wlogp(Scale::Small);
    let config = ImplicationConfig::new(0.9);
    let mut group = c.benchmark_group("parallel/imp-memory");
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(find_implications_parallel(&m, &config, t)));
        });
    }
    group.finish();
}

fn bench_sim_memory(c: &mut Criterion) {
    let m = datasets::wlogp(Scale::Small);
    let config = SimilarityConfig::new(0.8);
    let mut group = c.benchmark_group("parallel/sim-memory");
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(find_similarities_parallel(&m, &config, t)));
        });
    }
    group.finish();
}

fn bench_imp_streamed(c: &mut Criterion) {
    let m = datasets::wlogp(Scale::Small);
    let config = ImplicationConfig::new(0.9);
    let mut group = c.benchmark_group("parallel_streamed/imp");
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    find_implications_streamed_parallel(rows_of(&m), m.n_cols(), &config, t)
                        .expect("streamed parallel run"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_imp_memory,
    bench_sim_memory,
    bench_imp_streamed
);
criterion_main!(benches);
