//! Substrate micro-benchmarks: bitset kernels and spill-file replay.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmc_bitset::BitSet;
use dmc_matrix::spill::BucketSpill;

fn bench_bitset(c: &mut Criterion) {
    let a = BitSet::from_indices(4096, (0..4096).step_by(3));
    let b = BitSet::from_indices(4096, (0..4096).step_by(5));
    c.bench_function("bitset/and-not-count-4096", |bench| {
        bench.iter(|| black_box(a.and_not_count(&b)));
    });
    c.bench_function("bitset/is-subset-4096", |bench| {
        bench.iter(|| black_box(a.is_subset(&b)));
    });
    c.bench_function("bitset/ones-iterate-4096", |bench| {
        bench.iter(|| black_box(a.ones().sum::<usize>()));
    });
    c.bench_function("bitset/insert-1k", |bench| {
        bench.iter(|| {
            let mut s = BitSet::new(4096);
            for i in (0..4096).step_by(4) {
                s.insert(i);
            }
            black_box(s)
        });
    });
}

fn bench_spill(c: &mut Criterion) {
    let rows: Vec<Vec<u32>> = (0..2000u32)
        .map(|i| (0..(i % 23)).map(|k| k * 31 % 500).collect::<Vec<u32>>())
        .map(|mut r| {
            r.sort_unstable();
            r.dedup();
            r
        })
        .collect();
    c.bench_function("spill/push-2k-rows", |bench| {
        bench.iter(|| {
            let mut spill = BucketSpill::in_temp(500).unwrap();
            for row in &rows {
                spill.push_row(row).unwrap();
            }
            black_box(spill.rows())
        });
    });
    c.bench_function("spill/replay-2k-rows", |bench| {
        let mut spill = BucketSpill::in_temp(500).unwrap();
        for row in &rows {
            spill.push_row(row).unwrap();
        }
        bench.iter(|| {
            let total: usize = spill.replay().unwrap().map(|r| r.unwrap().len()).sum();
            black_box(total)
        });
    });
}

criterion_group!(benches, bench_bitset, bench_spill);
criterion_main!(benches);
