//! Generator throughput benchmarks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmc_datagen::{
    dictionary, link_graph, news, weblog, DictionaryConfig, LinkGraphConfig, NewsConfig,
    WeblogConfig,
};

fn bench_generators(c: &mut Criterion) {
    c.bench_function("datagen/weblog-5k", |b| {
        b.iter(|| black_box(weblog(&WeblogConfig::new(5000, 1000, 1))));
    });
    c.bench_function("datagen/linkgraph-2.5k", |b| {
        b.iter(|| black_box(link_graph(&LinkGraphConfig::new(2500, 2))));
    });
    c.bench_function("datagen/news-3k", |b| {
        b.iter(|| black_box(news(&NewsConfig::new(3000, 2000, 3))));
    });
    c.bench_function("datagen/dictionary-1.5k", |b| {
        b.iter(|| black_box(dictionary(&DictionaryConfig::new(1500, 900, 4))));
    });
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
