//! Baseline benchmarks on the NewsP comparison set (Fig 6(i),(j)).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmc_baselines::apriori::{apriori_implications, AprioriConfig};
use dmc_baselines::kmin::{kmin_implications, KMinConfig};
use dmc_baselines::minhash::{minhash_similarities, signatures, MinHashConfig};
use dmc_bench::datasets::{self, Scale};
use dmc_core::{find_implications, ImplicationConfig};

fn bench_comparison(c: &mut Criterion) {
    let m = datasets::newsp(Scale::Small);
    c.bench_function("baseline/dmc-imp-newsp-0.85", |b| {
        b.iter(|| black_box(find_implications(&m, &ImplicationConfig::new(0.85))));
    });
    c.bench_function("baseline/apriori-newsp-0.85", |b| {
        b.iter(|| {
            black_box(apriori_implications(
                &m,
                &AprioriConfig::new(1, u32::MAX),
                0.85,
            ))
        });
    });
    c.bench_function("baseline/kmin-newsp-0.85", |b| {
        b.iter(|| black_box(kmin_implications(&m, 0.85, &KMinConfig::new(32))));
    });
    c.bench_function("baseline/minhash-newsp-0.85", |b| {
        b.iter(|| {
            black_box(minhash_similarities(
                &m,
                0.85,
                &MinHashConfig::new(96).with_banding(24, 4),
            ))
        });
    });
}

fn bench_signatures(c: &mut Criterion) {
    let m = datasets::newsp(Scale::Small);
    c.bench_function("baseline/minhash-signatures-k64", |b| {
        b.iter(|| black_box(signatures(&m, 64, 1)));
    });
}

criterion_group!(benches, bench_comparison, bench_signatures);
criterion_main!(benches);
