//! DMC kernel benchmarks: the counting scan, the bitmap tail, both drivers.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmc_bench::datasets::{self, Scale};
use dmc_core::{
    find_implications, find_implications_parallel, find_similarities, ImplicationConfig,
    SimilarityConfig, SwitchPolicy,
};

fn bench_imp(c: &mut Criterion) {
    let m = datasets::wlog(Scale::Small);
    c.bench_function("dmc/imp-wlog-0.9", |b| {
        b.iter(|| black_box(find_implications(&m, &ImplicationConfig::new(0.9))));
    });
    c.bench_function("dmc/imp-wlog-1.0", |b| {
        b.iter(|| black_box(find_implications(&m, &ImplicationConfig::new(1.0))));
    });
}

fn bench_sim(c: &mut Criterion) {
    let m = datasets::dicd(Scale::Small);
    c.bench_function("dmc/sim-dicd-0.9", |b| {
        b.iter(|| black_box(find_similarities(&m, &SimilarityConfig::new(0.9))));
    });
}

fn bench_bitmap_tail(c: &mut Criterion) {
    let m = datasets::plink(Scale::Small).transposed;
    // Force an early switch so the tail phase dominates.
    let forced = ImplicationConfig::new(0.9).with_switch(SwitchPolicy::always_at(64));
    c.bench_function("dmc/imp-plinkT-forced-bitmap", |b| {
        b.iter(|| black_box(find_implications(&m, &forced)));
    });
}

fn bench_parallel(c: &mut Criterion) {
    let m = datasets::wlog(Scale::Small);
    for threads in [1, 2, 4] {
        c.bench_function(&format!("dmc/imp-wlog-0.9-par{threads}"), |b| {
            b.iter(|| {
                black_box(find_implications_parallel(
                    &m,
                    &ImplicationConfig::new(0.9),
                    threads,
                ))
            });
        });
    }
}

criterion_group!(
    benches,
    bench_imp,
    bench_sim,
    bench_bitmap_tail,
    bench_parallel
);
criterion_main!(benches);
