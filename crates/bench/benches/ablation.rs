//! Ablation benchmarks: each §4/§5 optimization toggled individually.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dmc_bench::datasets::{self, Scale};
use dmc_core::{
    find_implications, find_similarities, ImplicationConfig, RowOrder, SimilarityConfig,
    SwitchPolicy,
};

fn bench_row_order(c: &mut Criterion) {
    let m = datasets::wlog(Scale::Small);
    c.bench_function("ablation/imp-bucketed-order", |b| {
        b.iter(|| black_box(find_implications(&m, &ImplicationConfig::new(0.85))));
    });
    c.bench_function("ablation/imp-original-order", |b| {
        b.iter(|| {
            black_box(find_implications(
                &m,
                &ImplicationConfig::new(0.85).with_row_order(RowOrder::Original),
            ))
        });
    });
}

fn bench_hundred_stage(c: &mut Criterion) {
    let m = datasets::wlog(Scale::Small);
    c.bench_function("ablation/imp-with-100pct-stage", |b| {
        b.iter(|| black_box(find_implications(&m, &ImplicationConfig::new(0.9))));
    });
    c.bench_function("ablation/imp-without-100pct-stage", |b| {
        b.iter(|| {
            black_box(find_implications(
                &m,
                &ImplicationConfig::new(0.9).with_hundred_stage(false),
            ))
        });
    });
}

fn bench_max_hits(c: &mut Criterion) {
    let m = datasets::dicd(Scale::Small);
    c.bench_function("ablation/sim-with-max-hits", |b| {
        b.iter(|| black_box(find_similarities(&m, &SimilarityConfig::new(0.85))));
    });
    c.bench_function("ablation/sim-without-max-hits", |b| {
        b.iter(|| {
            black_box(find_similarities(
                &m,
                &SimilarityConfig::new(0.85).with_max_hits_pruning(false),
            ))
        });
    });
}

fn bench_switch(c: &mut Criterion) {
    let m = datasets::plink(Scale::Small).transposed;
    c.bench_function("ablation/imp-paper-switch", |b| {
        b.iter(|| black_box(find_implications(&m, &ImplicationConfig::new(0.8))));
    });
    c.bench_function("ablation/imp-never-switch", |b| {
        b.iter(|| {
            black_box(find_implications(
                &m,
                &ImplicationConfig::new(0.8).with_switch(SwitchPolicy::never()),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_row_order,
    bench_hundred_stage,
    bench_max_hits,
    bench_switch
);
criterion_main!(benches);
