//! Threshold sweeps (the Fig 6(a),(b) shape as micro-benchmarks).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dmc_bench::datasets::{self, Scale};
use dmc_core::{find_implications, find_similarities, ImplicationConfig, SimilarityConfig};

fn bench_imp_sweep(c: &mut Criterion) {
    let m = datasets::wlogp(Scale::Small);
    let mut group = c.benchmark_group("sweep/imp-wlogp");
    for thr in [1.0, 0.9, 0.8, 0.7] {
        group.bench_with_input(BenchmarkId::from_parameter(thr), &thr, |b, &thr| {
            b.iter(|| black_box(find_implications(&m, &ImplicationConfig::new(thr))));
        });
    }
    group.finish();
}

fn bench_sim_sweep(c: &mut Criterion) {
    let m = datasets::wlogp(Scale::Small);
    let mut group = c.benchmark_group("sweep/sim-wlogp");
    for thr in [1.0, 0.9, 0.8, 0.7] {
        group.bench_with_input(BenchmarkId::from_parameter(thr), &thr, |b, &thr| {
            b.iter(|| black_box(find_similarities(&m, &SimilarityConfig::new(thr))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_imp_sweep, bench_sim_sweep);
criterion_main!(benches);
