//! Subcommand implementations for the `dmc` binary.

use crate::args::{ArgError, Args};
use dmc_core::{
    find_implications, find_similarities, rule_groups, Engine, ImplicationConfig, MineConfig,
    Miner, RowOrder, RunReport, SimilarityConfig, SwitchPolicy,
};
use dmc_datagen::{
    dictionary, link_graph, news, weblog, DictionaryConfig, LinkGraphConfig, NewsConfig,
    WeblogConfig,
};
use dmc_matrix::io::{read_matrix, write_matrix, RowLines};
use dmc_matrix::stats::{column_density_histogram, matrix_stats, row_density_histogram};
use dmc_matrix::SparseMatrix;
use std::error::Error;
use std::fs::File;
use std::io::{BufWriter, Write as _};

type CmdResult = Result<(), Box<dyn Error>>;

fn load(args: &Args) -> Result<SparseMatrix, Box<dyn Error>> {
    let path = args
        .positional(0)
        .ok_or_else(|| ArgError::Required("<file>".into()))?;
    let matrix = if path == "-" {
        read_matrix(std::io::stdin().lock())?
    } else {
        read_matrix(File::open(path)?)?
    };
    Ok(matrix)
}

fn row_order(args: &Args) -> Result<RowOrder, Box<dyn Error>> {
    Ok(match args.get("order") {
        None | Some("bucketed") => RowOrder::BucketedSparsestFirst,
        Some("sorted") => RowOrder::ExactSparsestFirst,
        Some("original") => RowOrder::Original,
        Some(other) => return Err(Box::new(ArgError::BadValue("order".into(), other.into()))),
    })
}

/// `--threads N` with `N >= 1`; zero is a usage error, not a silent
/// clamp — the library clamps, but someone typing `--threads 0` asked
/// for something that does not exist.
fn worker_threads(args: &Args) -> Result<usize, Box<dyn Error>> {
    let threads: usize = args.get_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError::BadValue("threads".into(), "0".into())));
    }
    Ok(threads)
}

fn switch_policy(args: &Args) -> Result<SwitchPolicy, Box<dyn Error>> {
    let mut policy = SwitchPolicy::paper();
    policy.max_tail_rows = args.get_or("switch-rows", policy.max_tail_rows)?;
    policy.memory_limit_bytes = args.get_or("switch-bytes", policy.memory_limit_bytes)?;
    Ok(policy)
}

/// Writes the run report JSON to the `--metrics` destination (`-` is
/// stdout). No-op when the option is absent.
fn write_metrics(args: &Args, report: &RunReport) -> CmdResult {
    let Some(dest) = args.get("metrics") else {
        return Ok(());
    };
    let json = report.to_json();
    if dest == "-" {
        println!("{json}");
    } else {
        std::fs::write(dest, format!("{json}\n"))?;
        eprintln!("run report written to {dest}");
    }
    Ok(())
}

/// `dmc imp`: implication rules.
pub fn imp(args: &Args) -> CmdResult {
    let minconf: f64 = args.require("minconf")?;
    let miner = Miner::implications(minconf)
        .order(row_order(args)?)
        .switch(switch_policy(args)?)
        .reverse(args.flag("reverse"))
        .hundred_stage(!args.flag("no-hundred-stage"))
        .spill_retries(args.get_or("spill-retries", 3)?)
        .threads(worker_threads(args)?);

    if args.flag("stream") {
        // Out-of-core: one pass over the file plus spill-file replays;
        // the matrix is never materialized. Needs the column count up
        // front.
        let n_cols: usize = args.require("cols")?;
        let path = args
            .positional(0)
            .ok_or_else(|| ArgError::Required("<file>".into()))?;
        let reader = std::io::BufReader::new(File::open(path)?);
        let out = miner.mine_streamed(RowLines::new(reader), n_cols)?;
        return print_imp(args, &out, minconf, None);
    }

    let matrix = load(args)?;
    let out = miner.mine(&matrix)?;
    print_imp(args, &out, minconf, Some(&matrix))
}

fn print_imp(
    args: &Args,
    out: &dmc_core::ImplicationOutput,
    minconf: f64,
    matrix: Option<&SparseMatrix>,
) -> CmdResult {
    if let Some(path) = args.get("output") {
        let mut file = BufWriter::new(File::create(path)?);
        dmc_core::write_rules(&out.rules, &[], &mut file)?;
        file.flush()?;
    }
    let limit: usize = args.get_or("limit", usize::MAX)?;
    if !args.flag("quiet") {
        for rule in out.rules.iter().take(limit) {
            println!("{rule}");
        }
    }
    match matrix {
        Some(m) => eprintln!(
            "{} rules at minconf {minconf} ({} rows, {} cols); peak counter array {} entries",
            out.rules.len(),
            m.n_rows(),
            m.n_cols(),
            out.memory.peak_candidates()
        ),
        None => eprintln!(
            "{} rules at minconf {minconf} (streamed); peak counter array {} entries",
            out.rules.len(),
            out.memory.peak_candidates()
        ),
    }
    for (phase, time) in out.phases.phases() {
        eprintln!("  {phase:<12} {:.3}s", time.as_secs_f64());
    }
    print_workers(&out.workers);
    write_metrics(args, &out.report)
}

/// Per-worker lines (parallel drivers only; sequential runs leave this empty).
fn print_workers(workers: &[dmc_core::WorkerReport]) {
    for w in workers {
        let busy = w.phases.total().as_secs_f64();
        eprintln!(
            "  worker {:<3} {busy:.3}s busy, {} blocks claimed ({} stolen)",
            w.worker, w.blocks_processed, w.blocks_stolen
        );
    }
}

/// `dmc sim`: similarity rules.
pub fn sim(args: &Args) -> CmdResult {
    let minsim: f64 = args.require("minsim")?;
    let miner = Miner::similarities(minsim)
        .order(row_order(args)?)
        .switch(switch_policy(args)?)
        .max_hits_pruning(!args.flag("no-max-hits"))
        .hundred_stage(!args.flag("no-hundred-stage"))
        .spill_retries(args.get_or("spill-retries", 3)?)
        .threads(worker_threads(args)?);

    let out = if args.flag("stream") {
        let n_cols: usize = args.require("cols")?;
        let path = args
            .positional(0)
            .ok_or_else(|| ArgError::Required("<file>".into()))?;
        let reader = std::io::BufReader::new(File::open(path)?);
        miner.mine_streamed(RowLines::new(reader), n_cols)?
    } else {
        let matrix = load(args)?;
        miner.mine(&matrix)?
    };
    if let Some(path) = args.get("output") {
        let mut file = BufWriter::new(File::create(path)?);
        dmc_core::write_rules(&[], &out.rules, &mut file)?;
        file.flush()?;
    }
    let limit: usize = args.get_or("limit", usize::MAX)?;
    if !args.flag("quiet") {
        for rule in out.rules.iter().take(limit) {
            println!("{rule}");
        }
    }
    eprintln!(
        "{} pairs at minsim {minsim}; peak counter array {} entries",
        out.rules.len(),
        out.memory.peak_candidates()
    );
    print_workers(&out.workers);
    write_metrics(args, &out.report)
}

/// `dmc groups`: rule-graph clusters (§6.3).
pub fn groups(args: &Args) -> CmdResult {
    let matrix = load(args)?;
    let minconf: f64 = args.get_or("minconf", 1.0)?;
    let minsim: f64 = args.get_or("minsim", 1.0)?;
    let imps = find_implications(&matrix, &ImplicationConfig::new(minconf));
    let sims = find_similarities(&matrix, &SimilarityConfig::new(minsim));
    let clusters = rule_groups(matrix.n_cols(), &imps.rules, &sims.rules);
    for (i, cluster) in clusters.iter().enumerate() {
        let members: Vec<String> = cluster.iter().map(|c| format!("c{c}")).collect();
        println!("group {i}: {}", members.join(" "));
    }
    eprintln!(
        "{} groups from {} implication + {} similarity rules",
        clusters.len(),
        imps.rules.len(),
        sims.rules.len()
    );
    Ok(())
}

/// `dmc verify`: re-check a rules file against a matrix.
pub fn verify(args: &Args) -> CmdResult {
    let matrix = load(args)?;
    let rules_path: String = args.require("rules")?;
    let (imps, sims) = dmc_core::read_rules(File::open(&rules_path)?)?;
    let minconf: f64 = args.get_or("minconf", 1.0)?;
    let minsim: f64 = args.get_or("minsim", 1.0)?;
    let mut bad = 0usize;
    for (rule, check) in imps
        .iter()
        .zip(dmc_core::verify_implications(&matrix, &imps, minconf))
    {
        if check != dmc_core::RuleCheck::Valid {
            println!("FAIL {rule}: {check:?}");
            bad += 1;
        }
    }
    for (rule, check) in sims
        .iter()
        .zip(dmc_core::verify_similarities(&matrix, &sims, minsim))
    {
        if check != dmc_core::RuleCheck::Valid {
            println!("FAIL {rule}: {check:?}");
            bad += 1;
        }
    }
    eprintln!(
        "{} of {} rules verified",
        imps.len() + sims.len() - bad,
        imps.len() + sims.len()
    );
    if bad > 0 {
        return Err(format!("{bad} rules failed verification").into());
    }
    Ok(())
}

/// `dmc stats`: data-set statistics.
pub fn stats(args: &Args) -> CmdResult {
    let matrix = load(args)?;
    let s = matrix_stats(&matrix);
    println!("rows            {}", s.rows);
    println!("columns         {}", s.cols);
    println!("nonzero columns {}", s.nonzero_cols);
    println!("nnz             {}", s.nnz);
    println!("avg row density {:.2}", s.avg_row_density);
    println!("max row density {}", s.max_row_density);
    println!("max column ones {}", s.max_col_ones);
    println!("row-density histogram [2^i, 2^(i+1)):");
    for (b, count) in row_density_histogram(&matrix).iter().enumerate() {
        println!("  2^{b:<2} {count}");
    }
    println!("column-density histogram [2^i, 2^(i+1)):");
    for (b, count) in column_density_histogram(&matrix).iter().enumerate() {
        println!("  2^{b:<2} {count}");
    }
    Ok(())
}

/// `dmc serve`: mine once, then serve rule queries and row ingest over
/// TCP until a `shutdown` request (see `dmc-serve`'s protocol docs).
pub fn serve(args: &Args) -> CmdResult {
    let config = match (args.get("minconf"), args.get("minsim")) {
        (Some(c), None) => {
            let minconf: f64 = c
                .parse()
                .map_err(|_| ArgError::BadValue("minconf".into(), c.into()))?;
            MineConfig::implications(minconf)?
        }
        (None, Some(s)) => {
            let minsim: f64 = s
                .parse()
                .map_err(|_| ArgError::BadValue("minsim".into(), s.into()))?;
            MineConfig::similarities(minsim)?
        }
        _ => return Err(Box::new(ArgError::Required("minconf | --minsim".into()))),
    };
    let matrix = load(args)?;
    let engine = Engine::new(config, matrix).with_threads(worker_threads(args)?);
    let options = dmc_serve::DaemonOptions {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        metrics: args.get("metrics").map(str::to_string),
    };
    let stats = dmc_serve::run_daemon(engine, &options)?;
    eprintln!(
        "served {} requests over {} connections ({} errors)",
        stats.requests, stats.connections, stats.errors
    );
    Ok(())
}

/// `dmc gen`: synthetic data sets in the text format.
pub fn gen(args: &Args) -> CmdResult {
    let kind = args
        .positional(0)
        .ok_or_else(|| ArgError::Required("<kind>".into()))?;
    let rows: usize = args.get_or("rows", 10_000)?;
    let cols: usize = args.get_or("cols", 2_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let matrix = match kind {
        "weblog" => weblog(&WeblogConfig::new(rows, cols, seed)),
        "linkgraph" => link_graph(&LinkGraphConfig::new(rows, seed)).forward,
        "news" => news(&NewsConfig::new(rows, cols, seed)).matrix,
        "dictionary" => dictionary(&DictionaryConfig::new(cols, rows, seed)),
        other => return Err(Box::new(ArgError::BadValue("<kind>".into(), other.into()))),
    };
    match args.get("output") {
        Some(path) => {
            let mut file = BufWriter::new(File::create(path)?);
            write_matrix(&matrix, &mut file)?;
            file.flush()?;
            eprintln!(
                "wrote {} ({} rows, {} cols, {} nnz)",
                path,
                matrix.n_rows(),
                matrix.n_cols(),
                matrix.nnz()
            );
        }
        None => {
            let stdout = std::io::stdout();
            write_matrix(&matrix, stdout.lock())?;
        }
    }
    Ok(())
}
