//! Subcommand implementations for the `dmc` binary.

use crate::args::{ArgError, Args};
use dmc_core::{
    find_implications, find_similarities, rule_group_summaries, rule_groups, CompactedBase,
    CompactionConfig, Engine, ImplicationConfig, MineConfig, Miner, RowOrder, RunReport,
    SimilarityConfig, SwitchPolicy,
};
use dmc_datagen::{
    dictionary, link_graph, news, weblog, DictionaryConfig, LinkGraphConfig, NewsConfig,
    WeblogConfig,
};
use dmc_matrix::io::{read_matrix, write_matrix, RowLines};
use dmc_matrix::stats::{column_density_histogram, matrix_stats, row_density_histogram};
use dmc_matrix::SparseMatrix;
use std::error::Error;
use std::fs::File;
use std::io::{BufWriter, Write as _};

type CmdResult = Result<(), Box<dyn Error>>;

fn load(args: &Args) -> Result<SparseMatrix, Box<dyn Error>> {
    let path = args
        .positional(0)
        .ok_or_else(|| ArgError::Required("<file>".into()))?;
    let matrix = if path == "-" {
        read_matrix(std::io::stdin().lock())?
    } else {
        read_matrix(File::open(path)?)?
    };
    Ok(matrix)
}

fn row_order(args: &Args) -> Result<RowOrder, Box<dyn Error>> {
    Ok(match args.get("order") {
        None | Some("bucketed") => RowOrder::BucketedSparsestFirst,
        Some("sorted") => RowOrder::ExactSparsestFirst,
        Some("original") => RowOrder::Original,
        Some(other) => return Err(Box::new(ArgError::BadValue("order".into(), other.into()))),
    })
}

/// `--threads N` with `N >= 1`; zero is a usage error, not a silent
/// clamp — the library clamps, but someone typing `--threads 0` asked
/// for something that does not exist.
fn worker_threads(args: &Args) -> Result<usize, Box<dyn Error>> {
    let threads: usize = args.get_or("threads", 1)?;
    if threads == 0 {
        return Err(Box::new(ArgError::BadValue("threads".into(), "0".into())));
    }
    Ok(threads)
}

fn switch_policy(args: &Args) -> Result<SwitchPolicy, Box<dyn Error>> {
    let mut policy = SwitchPolicy::paper();
    policy.max_tail_rows = args.get_or("switch-rows", policy.max_tail_rows)?;
    policy.memory_limit_bytes = args.get_or("switch-bytes", policy.memory_limit_bytes)?;
    Ok(policy)
}

/// Writes the run report JSON to the `--metrics` destination (`-` is
/// stdout). No-op when the option is absent.
fn write_metrics(args: &Args, report: &RunReport) -> CmdResult {
    let Some(dest) = args.get("metrics") else {
        return Ok(());
    };
    let json = report.to_json();
    if dest == "-" {
        println!("{json}");
    } else {
        std::fs::write(dest, format!("{json}\n"))?;
        eprintln!("run report written to {dest}");
    }
    Ok(())
}

/// `dmc imp`: implication rules.
pub fn imp(args: &Args) -> CmdResult {
    let minconf: f64 = args.require("minconf")?;
    let miner = Miner::implications(minconf)
        .order(row_order(args)?)
        .switch(switch_policy(args)?)
        .reverse(args.flag("reverse"))
        .hundred_stage(!args.flag("no-hundred-stage"))
        .spill_retries(args.get_or("spill-retries", 3)?)
        .threads(worker_threads(args)?);

    if args.flag("stream") {
        // Out-of-core: one pass over the file plus spill-file replays;
        // the matrix is never materialized. Needs the column count up
        // front.
        let n_cols: usize = args.require("cols")?;
        let path = args
            .positional(0)
            .ok_or_else(|| ArgError::Required("<file>".into()))?;
        let reader = std::io::BufReader::new(File::open(path)?);
        let out = miner.mine_streamed(RowLines::new(reader), n_cols)?;
        return print_imp(args, &out, minconf, None);
    }

    let matrix = load(args)?;
    let out = miner.mine(&matrix)?;
    print_imp(args, &out, minconf, Some(&matrix))
}

fn print_imp(
    args: &Args,
    out: &dmc_core::ImplicationOutput,
    minconf: f64,
    matrix: Option<&SparseMatrix>,
) -> CmdResult {
    if let Some(path) = args.get("output") {
        let mut file = BufWriter::new(File::create(path)?);
        dmc_core::write_rules(&out.rules, &[], &mut file)?;
        file.flush()?;
    }
    let limit: usize = args.get_or("limit", usize::MAX)?;
    if !args.flag("quiet") {
        for rule in out.rules.iter().take(limit) {
            println!("{rule}");
        }
    }
    match matrix {
        Some(m) => eprintln!(
            "{} rules at minconf {minconf} ({} rows, {} cols); peak counter array {} entries",
            out.rules.len(),
            m.n_rows(),
            m.n_cols(),
            out.memory.peak_candidates()
        ),
        None => eprintln!(
            "{} rules at minconf {minconf} (streamed); peak counter array {} entries",
            out.rules.len(),
            out.memory.peak_candidates()
        ),
    }
    for (phase, time) in out.phases.phases() {
        eprintln!("  {phase:<12} {:.3}s", time.as_secs_f64());
    }
    print_workers(&out.workers);
    let mut report = out.report.clone();
    if args.flag("compact") || args.get("base").is_some() {
        let base = dmc_core::compact_implications(&out.rules, minconf, None);
        write_base(args, &base)?;
        report.compaction = Some(base.report());
    }
    write_metrics(args, &report)
}

/// Shared `--compact` / `--base FILE` tail of the mine commands: writes
/// the irredundant base as a rules file and reports the ratio.
fn write_base(args: &Args, base: &CompactedBase) -> CmdResult {
    if let Some(path) = args.get("base") {
        let imps: Vec<_> = base.implications.iter().map(|b| b.rule).collect();
        let sims: Vec<_> = base.similarities.iter().map(|b| b.rule).collect();
        let mut file = BufWriter::new(File::create(path)?);
        dmc_core::write_rules(&imps, &sims, &mut file)?;
        file.flush()?;
        eprintln!("base written to {path}");
    }
    eprintln!(
        "compacted base: {} of {} rules (ratio {:.3})",
        base.rules_in_base(),
        base.rules_in(),
        base.ratio()
    );
    Ok(())
}

/// Per-worker lines (parallel drivers only; sequential runs leave this empty).
fn print_workers(workers: &[dmc_core::WorkerReport]) {
    for w in workers {
        let busy = w.phases.total().as_secs_f64();
        eprintln!(
            "  worker {:<3} {busy:.3}s busy, {} blocks claimed ({} stolen)",
            w.worker, w.blocks_processed, w.blocks_stolen
        );
    }
}

/// `dmc sim`: similarity rules.
pub fn sim(args: &Args) -> CmdResult {
    let minsim: f64 = args.require("minsim")?;
    let miner = Miner::similarities(minsim)
        .order(row_order(args)?)
        .switch(switch_policy(args)?)
        .max_hits_pruning(!args.flag("no-max-hits"))
        .hundred_stage(!args.flag("no-hundred-stage"))
        .spill_retries(args.get_or("spill-retries", 3)?)
        .threads(worker_threads(args)?);

    let out = if args.flag("stream") {
        let n_cols: usize = args.require("cols")?;
        let path = args
            .positional(0)
            .ok_or_else(|| ArgError::Required("<file>".into()))?;
        let reader = std::io::BufReader::new(File::open(path)?);
        miner.mine_streamed(RowLines::new(reader), n_cols)?
    } else {
        let matrix = load(args)?;
        miner.mine(&matrix)?
    };
    if let Some(path) = args.get("output") {
        let mut file = BufWriter::new(File::create(path)?);
        dmc_core::write_rules(&[], &out.rules, &mut file)?;
        file.flush()?;
    }
    let limit: usize = args.get_or("limit", usize::MAX)?;
    if !args.flag("quiet") {
        for rule in out.rules.iter().take(limit) {
            println!("{rule}");
        }
    }
    eprintln!(
        "{} pairs at minsim {minsim}; peak counter array {} entries",
        out.rules.len(),
        out.memory.peak_candidates()
    );
    print_workers(&out.workers);
    let mut report = out.report.clone();
    if args.flag("compact") || args.get("base").is_some() {
        let base = dmc_core::compact_similarities(&out.rules, minsim);
        write_base(args, &base)?;
        report.compaction = Some(base.report());
    }
    write_metrics(args, &report)
}

/// `dmc compact`: shrink a rules file to its irredundant base, or
/// (`--expand`) rebuild the full implied rule set from a base file. The
/// round trip `compact` then `--expand` reproduces the original rules
/// file byte for byte.
pub fn compact(args: &Args) -> CmdResult {
    let path = args
        .positional(0)
        .ok_or_else(|| ArgError::Required("<rules-file>".into()))?;
    let (imps, sims) = if path == "-" {
        dmc_core::read_rules(std::io::stdin().lock())?
    } else {
        dmc_core::read_rules(File::open(path)?)?
    };
    // Each threshold is required exactly when rules of that kind are
    // present — compaction and expansion both reason about which implied
    // rules qualify at the mining threshold.
    let minconf: f64 = if imps.is_empty() {
        args.get_or("minconf", 1.0)?
    } else {
        args.require("minconf")?
    };
    let minsim: f64 = if sims.is_empty() {
        args.get_or("minsim", 1.0)?
    } else {
        args.require("minsim")?
    };

    if args.flag("expand") {
        let n_base = imps.len() + sims.len();
        let base =
            CompactedBase::from_base_rules(imps, sims, minconf, minsim, args.flag("reverse"));
        let (ei, es) = base.expand();
        write_rule_listing(args, &ei, &es)?;
        eprintln!(
            "expanded {n_base} base rules to {} rules",
            ei.len() + es.len()
        );
        return Ok(());
    }

    let base = dmc_core::compact(
        &imps,
        &sims,
        minconf,
        minsim,
        args.flag("reverse").then_some(true),
    );
    let config = CompactionConfig::default().with_min_boost(args.get_or("min-boost", 0.0)?);
    let config = match args.get("top") {
        Some(_) => config.with_top_k(args.require("top")?),
        None => config,
    };
    let (bi, bs) = base.select(&config);
    let imps: Vec<_> = bi.iter().map(|b| b.rule).collect();
    let sims: Vec<_> = bs.iter().map(|b| b.rule).collect();
    write_rule_listing(args, &imps, &sims)?;
    if !args.flag("quiet") && args.get("output") != Some("-") {
        let limit: usize = args.get_or("limit", usize::MAX)?;
        for b in bi.iter().take(limit) {
            println!("{} [boost {:.3}]", b.rule, b.boost);
        }
        for b in bs.iter().take(limit.saturating_sub(bi.len())) {
            println!("{} [boost {:.3}]", b.rule, b.boost);
        }
    }
    eprintln!(
        "compacted base: {} of {} rules (ratio {:.3}); {} selected",
        base.rules_in_base(),
        base.rules_in(),
        base.ratio(),
        imps.len() + sims.len()
    );
    Ok(())
}

/// Writes implication + similarity rules to `--output` in the rules-file
/// format (`-` is stdout; stdout suppresses the human listing).
fn write_rule_listing(
    args: &Args,
    imps: &[dmc_core::ImplicationRule],
    sims: &[dmc_core::SimilarityRule],
) -> CmdResult {
    let Some(path) = args.get("output") else {
        return Ok(());
    };
    if path == "-" {
        let stdout = std::io::stdout();
        dmc_core::write_rules(imps, sims, &mut stdout.lock())?;
    } else {
        let mut file = BufWriter::new(File::create(path)?);
        dmc_core::write_rules(imps, sims, &mut file)?;
        file.flush()?;
    }
    Ok(())
}

/// `dmc groups`: rule-graph clusters (§6.3).
pub fn groups(args: &Args) -> CmdResult {
    let matrix = load(args)?;
    let minconf: f64 = args.get_or("minconf", 1.0)?;
    let minsim: f64 = args.get_or("minsim", 1.0)?;
    let imps = find_implications(&matrix, &ImplicationConfig::new(minconf));
    let sims = find_similarities(&matrix, &SimilarityConfig::new(minsim));
    if args.flag("compact") {
        // Per-group compaction outcome: how much of each cluster the
        // irredundant base retains.
        let base = dmc_core::compact(&imps.rules, &sims.rules, minconf, minsim, None);
        let bi: Vec<_> = base.implications.iter().map(|b| b.rule).collect();
        let bs: Vec<_> = base.similarities.iter().map(|b| b.rule).collect();
        let summaries = rule_group_summaries(matrix.n_cols(), &imps.rules, &sims.rules, &bi, &bs);
        for (i, s) in summaries.iter().enumerate() {
            let members: Vec<String> = s.members.iter().map(|c| format!("c{c}")).collect();
            println!(
                "group {i}: {} ({} rules, {} in base)",
                members.join(" "),
                s.rules,
                s.base_rules
            );
        }
        eprintln!(
            "{} groups from {} rules ({} in base)",
            summaries.len(),
            base.rules_in(),
            base.rules_in_base()
        );
        return Ok(());
    }
    let clusters = rule_groups(matrix.n_cols(), &imps.rules, &sims.rules);
    for (i, cluster) in clusters.iter().enumerate() {
        let members: Vec<String> = cluster.iter().map(|c| format!("c{c}")).collect();
        println!("group {i}: {}", members.join(" "));
    }
    eprintln!(
        "{} groups from {} implication + {} similarity rules",
        clusters.len(),
        imps.rules.len(),
        sims.rules.len()
    );
    Ok(())
}

/// `dmc verify`: re-check a rules file against a matrix.
pub fn verify(args: &Args) -> CmdResult {
    let matrix = load(args)?;
    let rules_path: String = args.require("rules")?;
    let (imps, sims) = dmc_core::read_rules(File::open(&rules_path)?)?;
    let minconf: f64 = args.get_or("minconf", 1.0)?;
    let minsim: f64 = args.get_or("minsim", 1.0)?;
    let mut bad = 0usize;
    for (rule, check) in imps
        .iter()
        .zip(dmc_core::verify_implications(&matrix, &imps, minconf))
    {
        if check != dmc_core::RuleCheck::Valid {
            println!("FAIL {rule}: {check:?}");
            bad += 1;
        }
    }
    for (rule, check) in sims
        .iter()
        .zip(dmc_core::verify_similarities(&matrix, &sims, minsim))
    {
        if check != dmc_core::RuleCheck::Valid {
            println!("FAIL {rule}: {check:?}");
            bad += 1;
        }
    }
    eprintln!(
        "{} of {} rules verified",
        imps.len() + sims.len() - bad,
        imps.len() + sims.len()
    );
    if bad > 0 {
        return Err(format!("{bad} rules failed verification").into());
    }
    Ok(())
}

/// `dmc stats`: data-set statistics.
pub fn stats(args: &Args) -> CmdResult {
    let matrix = load(args)?;
    let s = matrix_stats(&matrix);
    println!("rows            {}", s.rows);
    println!("columns         {}", s.cols);
    println!("nonzero columns {}", s.nonzero_cols);
    println!("nnz             {}", s.nnz);
    println!("avg row density {:.2}", s.avg_row_density);
    println!("max row density {}", s.max_row_density);
    println!("max column ones {}", s.max_col_ones);
    println!("row-density histogram [2^i, 2^(i+1)):");
    for (b, count) in row_density_histogram(&matrix).iter().enumerate() {
        println!("  2^{b:<2} {count}");
    }
    println!("column-density histogram [2^i, 2^(i+1)):");
    for (b, count) in column_density_histogram(&matrix).iter().enumerate() {
        println!("  2^{b:<2} {count}");
    }
    Ok(())
}

/// `dmc serve`: mine once, then serve rule queries and row ingest over
/// TCP until a `shutdown` request (see `dmc-serve`'s protocol docs).
pub fn serve(args: &Args) -> CmdResult {
    let config = match (args.get("minconf"), args.get("minsim")) {
        (Some(c), None) => {
            let minconf: f64 = c
                .parse()
                .map_err(|_| ArgError::BadValue("minconf".into(), c.into()))?;
            MineConfig::implications(minconf)?
        }
        (None, Some(s)) => {
            let minsim: f64 = s
                .parse()
                .map_err(|_| ArgError::BadValue("minsim".into(), s.into()))?;
            MineConfig::similarities(minsim)?
        }
        _ => return Err(Box::new(ArgError::Required("minconf | --minsim".into()))),
    };
    let matrix = load(args)?;
    let engine = Engine::new(config, matrix).with_threads(worker_threads(args)?);
    let options = dmc_serve::DaemonOptions {
        addr: args.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        metrics: args.get("metrics").map(str::to_string),
        telemetry_addr: args.get("telemetry-addr").map(str::to_string),
    };
    let stats = dmc_serve::run_daemon(engine, &options)?;
    eprintln!(
        "served {} requests over {} connections ({} errors)",
        stats.requests, stats.connections, stats.errors
    );
    Ok(())
}

/// `dmc top`: one-shot view of a running daemon's telemetry — sends a
/// `metrics` request and renders the registry as a table.
pub fn top(args: &Args) -> CmdResult {
    use dmc_metrics::json::JsonValue;
    let addr: String = args.require("addr")?;
    let mut stream = std::net::TcpStream::connect(&addr)?;
    let v = dmc_serve::request(&mut stream, "{\"type\": \"metrics\"}")?;
    if v.get("ok") != Some(&JsonValue::Bool(true)) {
        let message = v
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("daemon refused the metrics request");
        return Err(message.to_string().into());
    }
    let m = v
        .get("metrics")
        .ok_or("malformed metrics response: no \"metrics\" payload")?;

    let hists = m.get("histograms");
    let hist_names: Vec<&str> = hists.map(JsonValue::keys).unwrap_or_default();
    if !hist_names.is_empty() {
        println!(
            "{:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "p50_us", "p90_us", "p99_us", "max_us"
        );
        for name in hist_names {
            let h = hists.and_then(|hs| hs.get(name));
            let field = |key: &str| {
                h.and_then(|h| h.get(key))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            };
            println!(
                "{name:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
                field("count"),
                field("p50_us"),
                field("p90_us"),
                field("p99_us"),
                field("max_us")
            );
        }
    }
    for (section, title) in [("counters", "counter"), ("gauges", "gauge")] {
        let Some(values) = m.get(section) else {
            continue;
        };
        let names = values.keys();
        if names.is_empty() {
            continue;
        }
        println!("{:<28} {:>10}", title, "value");
        for name in names {
            let value = values.get(name).and_then(JsonValue::as_f64).unwrap_or(0.0);
            println!("{name:<28} {value:>10}");
        }
    }
    Ok(())
}

/// Exactly one of `--minconf` / `--minsim`, folded with the shared
/// mining knobs into a [`MineConfig`] (the same shape the workers use).
fn shard_config(args: &Args) -> Result<MineConfig, Box<dyn Error>> {
    match (args.get("minconf"), args.get("minsim")) {
        (Some(c), None) => {
            let minconf: f64 = c
                .parse()
                .map_err(|_| ArgError::BadValue("minconf".into(), c.into()))?;
            MineConfig::implications(minconf)?; // range check with the typed error
            Ok(ImplicationConfig::new(minconf)
                .with_row_order(row_order(args)?)
                .with_switch(switch_policy(args)?)
                .with_reverse(args.flag("reverse"))
                .with_hundred_stage(!args.flag("no-hundred-stage"))
                .into())
        }
        (None, Some(s)) => {
            let minsim: f64 = s
                .parse()
                .map_err(|_| ArgError::BadValue("minsim".into(), s.into()))?;
            MineConfig::similarities(minsim)?;
            Ok(SimilarityConfig::new(minsim)
                .with_row_order(row_order(args)?)
                .with_switch(switch_policy(args)?)
                .with_max_hits_pruning(!args.flag("no-max-hits"))
                .with_hundred_stage(!args.flag("no-hundred-stage"))
                .into())
        }
        _ => Err(Box::new(ArgError::Required("minconf | --minsim".into()))),
    }
}

/// Parses a `--worker INDEX:LO-HI,LO-HI,...` spec into the worker's index
/// and the full shard plan. Malformed specs, an out-of-range index and
/// overlapping or duplicate ranges are usage errors (exit 2); gaps
/// against the matrix width can only be checked after the input loads.
fn parse_worker_spec(spec: &str) -> Result<(usize, Vec<(u32, u32)>), ArgError> {
    let bad = || ArgError::BadValue("worker".into(), spec.into());
    let (idx, ranges_str) = spec.split_once(':').ok_or_else(bad)?;
    let index: usize = idx.parse().map_err(|_| bad())?;
    let mut ranges = Vec::new();
    for part in ranges_str.split(',') {
        let (lo, hi) = part.split_once('-').ok_or_else(bad)?;
        let lo: u32 = lo.parse().map_err(|_| bad())?;
        let hi: u32 = hi.parse().map_err(|_| bad())?;
        if lo > hi {
            return Err(bad());
        }
        ranges.push((lo, hi));
    }
    if index >= ranges.len() {
        return Err(bad());
    }
    let mut sorted = ranges.clone();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[1].0 < w[0].1 || w[0] == w[1]) {
        return Err(bad());
    }
    Ok((index, ranges))
}

/// Option names a shard coordinator forwards verbatim to its workers so
/// every worker mines under the exact configuration of the parent.
const FORWARDED_VALUED: &[&str] = &[
    "minconf",
    "minsim",
    "order",
    "switch-rows",
    "switch-bytes",
    "spill-retries",
];
const FORWARDED_FLAGS: &[&str] = &["reverse", "no-hundred-stage", "no-max-hits"];

/// `dmc shard`: column-sharded multi-process mining.
///
/// Without `--worker` or `--merge` this is the coordinator: it plans the
/// column split, spawns one worker child process per shard (each re-runs
/// this binary with `--worker INDEX:PLAN`), then validates and merges the
/// shard spills into the consolidated manifest and the merged rule set —
/// byte-identical to an unsharded `dmc imp` / `dmc sim` run.
pub fn shard(args: &Args) -> CmdResult {
    let config = shard_config(args)?;
    let manifest: String = args.require("manifest")?;
    let retry = dmc_core::RetryPolicy::with_retries(args.get_or("spill-retries", 3)?);
    let io = dmc_matrix::spill_io::StdFsIo;

    // Worker mode: mine one shard of the plan and write its spill.
    if let Some(spec) = args.get("worker") {
        let (index, plan) = parse_worker_spec(spec)?;
        let matrix = load(args)?;
        let out = dmc_core::shard::run_worker(
            &io,
            std::path::Path::new(&manifest),
            retry,
            &config,
            &matrix,
            &plan,
            index,
        )?;
        let (lo, hi) = plan[index];
        if !args.flag("quiet") {
            eprintln!(
                "shard {index}: {} rules (columns {lo}..{hi})",
                out.rule_count()
            );
        }
        return Ok(());
    }

    let n_shards: usize = args.require("shards")?;
    if n_shards == 0 {
        return Err(Box::new(ArgError::BadValue("shards".into(), "0".into())));
    }
    if args.get("output") == Some(manifest.as_str()) {
        return Err(Box::new(ArgError::BadValue(
            "manifest".into(),
            format!("{manifest} (collides with --output)"),
        )));
    }

    let n_merge = if args.flag("merge") {
        // Merge-only: the shard spills already exist (e.g. written by
        // workers of an earlier invocation); just validate and merge.
        n_shards
    } else {
        let input = args
            .positional(0)
            .ok_or_else(|| ArgError::Required("<file>".into()))?
            .to_string();
        if input == "-" {
            // Workers each re-read the input, so it must be a real file.
            return Err(Box::new(ArgError::BadValue("<file>".into(), "-".into())));
        }
        let matrix = load(args)?;
        let plan = dmc_core::plan_shards(matrix.n_cols(), n_shards)?;
        drop(matrix);
        let ranges: Vec<String> = plan.iter().map(|(lo, hi)| format!("{lo}-{hi}")).collect();
        let ranges = ranges.join(",");
        let exe = std::env::current_exe()?;
        let mut children = Vec::with_capacity(plan.len());
        for index in 0..plan.len() {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("shard")
                .arg(&input)
                .arg("--manifest")
                .arg(&manifest)
                .arg("--worker")
                .arg(format!("{index}:{ranges}"))
                .arg("--quiet");
            for name in FORWARDED_VALUED {
                if let Some(v) = args.get(name) {
                    cmd.arg(format!("--{name}")).arg(v);
                }
            }
            for name in FORWARDED_FLAGS {
                if args.flag(name) {
                    cmd.arg(format!("--{name}"));
                }
            }
            children.push((index, cmd.spawn()?));
        }
        // Poll every child rather than blocking on each in turn: every
        // child is still awaited before judging any (a failure does not
        // leave the rest running unattended), and between polls the
        // coordinator reads the workers' advisory progress frames and
        // mirrors them into the process-wide telemetry registry.
        let _span = dmc_metrics::span!("shard.coordinate");
        let registry = dmc_metrics::telemetry::global();
        let workers_running = registry.gauge("shard.workers_running");
        let workers_done = registry.gauge("shard.workers_done");
        let rules_reported = registry.counter("shard.rules_reported");
        workers_running.set(children.len() as i64);
        let manifest_path = std::path::Path::new(&manifest);
        let mut failed = Vec::new();
        let mut pending = children;
        let mut rules_seen = 0u64;
        while !pending.is_empty() {
            let mut still_running = Vec::with_capacity(pending.len());
            for (index, mut child) in pending {
                match child.try_wait()? {
                    Some(status) => {
                        workers_running.add(-1);
                        workers_done.add(1);
                        if !status.success() {
                            failed.push((index, status));
                        }
                    }
                    None => still_running.push((index, child)),
                }
            }
            pending = still_running;
            // Progress frames are best-effort advisory files; a torn or
            // missing frame reads as None and simply skips this tick.
            let rules_now: u64 = (0..plan.len())
                .filter_map(|i| dmc_core::shard::read_progress(manifest_path, i))
                .map(|p| p.rules)
                .sum();
            if rules_now > rules_seen {
                rules_reported.add(rules_now - rules_seen);
                rules_seen = rules_now;
            }
            if !pending.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        }
        if let Some((index, status)) = failed.first() {
            return Err(format!("shard worker {index} failed with {status}").into());
        }
        plan.len()
    };

    let merged = dmc_core::merge_shards(
        &io,
        std::path::Path::new(&manifest),
        n_merge,
        retry,
        args.flag("keep-shards"),
    )?;
    if let Some(path) = args.get("output") {
        let mut file = BufWriter::new(File::create(path)?);
        dmc_core::write_rules(&merged.imp_rules, &merged.sim_rules, &mut file)?;
        file.flush()?;
    }
    let limit: usize = args.get_or("limit", usize::MAX)?;
    if !args.flag("quiet") {
        for rule in merged.imp_rules.iter().take(limit) {
            println!("{rule}");
        }
        for rule in merged.sim_rules.iter().take(limit) {
            println!("{rule}");
        }
    }
    eprintln!(
        "{} rules from {} shards at {} {} (manifest {})",
        merged.report.rules,
        n_merge,
        if merged.report.algorithm == "implication" {
            "minconf"
        } else {
            "minsim"
        },
        merged.report.threshold,
        manifest
    );
    write_metrics(args, &merged.report)
}

/// `dmc gen`: synthetic data sets in the text format.
pub fn gen(args: &Args) -> CmdResult {
    let kind = args
        .positional(0)
        .ok_or_else(|| ArgError::Required("<kind>".into()))?;
    let rows: usize = args.get_or("rows", 10_000)?;
    let cols: usize = args.get_or("cols", 2_000)?;
    let seed: u64 = args.get_or("seed", 1)?;
    let matrix = match kind {
        "weblog" => weblog(&WeblogConfig::new(rows, cols, seed)),
        "linkgraph" => link_graph(&LinkGraphConfig::new(rows, seed)).forward,
        "news" => news(&NewsConfig::new(rows, cols, seed)).matrix,
        "dictionary" => dictionary(&DictionaryConfig::new(cols, rows, seed)),
        other => return Err(Box::new(ArgError::BadValue("<kind>".into(), other.into()))),
    };
    match args.get("output") {
        Some(path) => {
            let mut file = BufWriter::new(File::create(path)?);
            write_matrix(&matrix, &mut file)?;
            file.flush()?;
            eprintln!(
                "wrote {} ({} rows, {} cols, {} nnz)",
                path,
                matrix.n_rows(),
                matrix.n_cols(),
                matrix.nnz()
            );
        }
        None => {
            let stdout = std::io::stdout();
            write_matrix(&matrix, stdout.lock())?;
        }
    }
    Ok(())
}
