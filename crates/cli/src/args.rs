//! Minimal argument parsing for the `dmc` binary.
//!
//! Hand-rolled (the sanctioned offline dependency set has no CLI parser):
//! positional arguments plus `--flag` / `--key value` options, collected
//! into an [`Args`] bag the subcommands query with typed accessors.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, options by name.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, Option<String>>,
}

/// Errors from parsing or typed access.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgError {
    /// An option needed a value but none followed.
    MissingValue(String),
    /// A value failed to parse; payload is (option, value).
    BadValue(String, String),
    /// A required option was absent.
    Required(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(opt) => write!(f, "option --{opt} needs a value"),
            ArgError::BadValue(opt, v) => write!(f, "option --{opt}: invalid value {v:?}"),
            ArgError::Required(opt) => write!(f, "option --{opt} is required"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that take a value; everything else `--x` is a flag.
const VALUED: &[&str] = &[
    "minconf",
    "minsim",
    "order",
    "threads",
    "output",
    "rows",
    "cols",
    "seed",
    "min-support",
    "max-support",
    "switch-rows",
    "switch-bytes",
    "spill-retries",
    "limit",
    "scale",
    "rules",
    "metrics",
    "addr",
    "shards",
    "worker",
    "manifest",
    "min-boost",
    "top",
    "base",
    "telemetry-addr",
];

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingValue`] when a valued option ends the
    /// argument list.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if VALUED.contains(&name) {
                    match iter.next() {
                        Some(value) => {
                            args.options.insert(name.to_string(), Some(value));
                        }
                        None => return Err(ArgError::MissingValue(name.to_string())),
                    }
                } else {
                    args.options.insert(name.to_string(), None);
                }
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// Positional argument `i`.
    #[must_use]
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// `true` when `--name` was given (with or without a value).
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// String value of `--name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).and_then(|v| v.as_deref())
    }

    /// Parsed value of `--name`, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(name.to_string(), v.to_string())),
        }
    }

    /// Parsed value of a required `--name`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Required`] when absent, [`ArgError::BadValue`]
    /// when unparsable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        match self.get(name) {
            None => Err(ArgError::Required(name.to_string())),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError::BadValue(name.to_string(), v.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["input.txt", "--reverse", "--minconf", "0.9"]);
        assert_eq!(a.positional(0), Some("input.txt"));
        assert_eq!(a.positional(1), None);
        assert!(a.flag("reverse"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("minconf"), Some("0.9"));
    }

    #[test]
    fn typed_access() {
        let a = parse(&["--minconf", "0.85", "--threads", "4"]);
        assert_eq!(a.get_or("minconf", 1.0).unwrap(), 0.85);
        assert_eq!(a.get_or("threads", 1usize).unwrap(), 4);
        assert_eq!(a.get_or("rows", 10usize).unwrap(), 10, "default applies");
        assert_eq!(a.require::<f64>("minconf").unwrap(), 0.85);
    }

    #[test]
    fn error_cases() {
        let err = Args::parse(vec!["--minconf".to_string()]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("minconf".into()));

        let a = parse(&["--minconf", "high"]);
        assert!(matches!(
            a.get_or("minconf", 1.0),
            Err(ArgError::BadValue(_, _))
        ));
        assert!(matches!(
            a.require::<f64>("minsim"),
            Err(ArgError::Required(_))
        ));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ArgError::Required("minsim".into()).to_string(),
            "option --minsim is required"
        );
        assert!(ArgError::BadValue("x".into(), "y".into())
            .to_string()
            .contains("invalid"));
    }
}
