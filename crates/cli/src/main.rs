//! `dmc` — mine implication and similarity rules from transaction files.
//!
//! ```text
//! dmc imp <file> --minconf 0.9 [--order bucketed|sorted|original]
//!                [--reverse] [--threads N] [--limit N] [--quiet]
//! dmc sim <file> --minsim 0.8 [--order …] [--threads N] [--limit N] [--quiet]
//! dmc groups <file> --minconf 0.9 --minsim 0.9
//! dmc stats <file>
//! dmc gen <weblog|linkgraph|news|dictionary> --rows N --cols N
//!         [--seed N] [--output file]
//! ```
//!
//! Files use the line-oriented transaction format of `dmc_matrix::io`
//! (one row per line, space-separated column ids; `-` reads stdin).

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
usage: dmc <command> [args]
commands:
  imp <file> --minconf X   mine implication rules (file '-' = stdin)
      [--order bucketed|sorted|original] [--reverse] [--threads N]
      [--switch-rows N --switch-bytes N] [--limit N] [--quiet]
      [--metrics FILE|-]   write the JSON run report ('-' = stdout)
      [--stream --cols N]  out-of-core: spill to disk, never materialize
                           (--threads N fans the replay out to N workers)
      [--spill-retries N]  transient spill-fault retry cap (default 3)
      [--compact] [--base FILE]
                           also compute the irredundant rule base: report
                           the compaction ratio (and the report's
                           'compaction' section), write the base to FILE
  sim <file> --minsim X    mine similarity rules
      [--order ...] [--no-max-hits] [--threads N] [--limit N] [--quiet]
      [--metrics FILE|-] [--stream --cols N] [--spill-retries N]
      [--compact] [--base FILE]
  compact <rules-file> --minconf X | --minsim X
                           shrink a rules file to its irredundant base
                           (confidence boost per kept rule); '-' = stdin
      [--min-boost X] [--top N] [--output FILE|-] [--limit N] [--quiet]
      [--expand]           inverse: rebuild the full implied rule set
                           from a base file ([--reverse] if the original
                           mine emitted reverse directions)
  groups <file> --minconf X --minsim X
                           cluster columns connected by rules
      [--compact]          annotate each group with its base rule count
  verify <file> --rules R  re-check a rules file against the data
      [--minconf X] [--minsim X]
  stats <file>             print data-set statistics
  gen <kind> --rows N --cols N [--seed N] [--output file]
                           generate a synthetic data set
                           (weblog | linkgraph | news | dictionary)
  serve <file> --minconf X | --minsim X
                           mine once, then serve rule queries and row
                           ingest over length-framed JSON TCP
      [--threads N] [--addr HOST:PORT] [--metrics FILE|-]
                           (default addr 127.0.0.1:0; the chosen port is
                           printed as 'listening on HOST:PORT')
      [--telemetry-addr HOST:PORT]
                           also serve live telemetry in Prometheus text
                           format over plain HTTP ('telemetry on
                           HOST:PORT' is printed before the listening
                           line)
  top --addr HOST:PORT     one-shot telemetry view of a running daemon:
                           per-request-type latency histograms
                           (count/p50/p90/p99/max) plus counters and
                           gauges
  shard <file> --minconf X | --minsim X --shards N --manifest M
                           column-sharded multi-process mine: split the
                           columns into N LHS shards, mine each in a
                           worker child process, then verify checksums
                           and counter fingerprints and merge — output
                           is byte-identical to the unsharded mine
      [--output FILE] [--metrics FILE|-] [--keep-shards]
      [--order ...] [--reverse] [--limit N] [--quiet]
      [--worker I:LO-HI,...]  internal: mine one shard of the plan
      [--merge]               merge existing shard spills only";

fn main() -> ExitCode {
    let mut raw = std::env::args().skip(1);
    let Some(command) = raw.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let args = match Args::parse(raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("dmc: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "imp" => commands::imp(&args),
        "sim" => commands::sim(&args),
        "compact" => commands::compact(&args),
        "groups" => commands::groups(&args),
        "verify" => commands::verify(&args),
        "stats" => commands::stats(&args),
        "gen" => commands::gen(&args),
        "serve" => commands::serve(&args),
        "top" => commands::top(&args),
        "shard" => commands::shard(&args),
        _ => {
            eprintln!("dmc: unknown command {command:?}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // Usage errors (bad or missing arguments) exit 2 with the usage
        // text; runtime failures (IO, bad data) exit 1.
        Err(e) if e.is::<args::ArgError>() => {
            eprintln!("dmc: {e}\n{USAGE}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("dmc: {e}");
            ExitCode::FAILURE
        }
    }
}
