//! End-to-end tests of the `dmc` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_dmc");

fn run(args: &[&str], stdin: Option<&str>) -> (String, String, bool) {
    let mut cmd = Command::new(BIN);
    // Lift the host-core cap on worker resolution so `--threads N` spawns
    // exactly N workers in these tests even on a single-core CI box.
    cmd.env("DMC_SCHED_OVERSUBSCRIBE", "1");
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("spawn dmc");
    if let Some(input) = stdin {
        // The child may exit before reading stdin (usage errors); a broken
        // pipe here is fine.
        let _ = child.stdin.as_mut().unwrap().write_all(input.as_bytes());
    }
    let out = child.wait_with_output().expect("wait dmc");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// The Figure 1 matrix in the text format.
const FIG1: &str = "# cols 3\n1 2\n0 1 2\n0\n1\n";

#[test]
fn imp_from_stdin() {
    let (stdout, stderr, ok) = run(&["imp", "-", "--minconf", "1.0"], Some(FIG1));
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "c2 => c1 (conf 2/2 = 1.000)");
    assert!(stderr.contains("1 rules"));
}

#[test]
fn sim_from_stdin() {
    let input = "# cols 3\n0 1\n0 1 2\n0 1\n";
    let (stdout, _, ok) = run(&["sim", "-", "--minsim", "1.0"], Some(input));
    assert!(ok);
    assert_eq!(stdout.trim(), "c0 ~ c1 (sim 3/3 = 1.000)");
}

#[test]
fn quiet_and_limit() {
    let (stdout, stderr, ok) = run(&["imp", "-", "--minconf", "0.5", "--quiet"], Some(FIG1));
    assert!(ok);
    assert!(stdout.is_empty(), "quiet suppresses rules: {stdout}");
    assert!(stderr.contains("rules at minconf"));
}

#[test]
fn stats_reports_shape() {
    let (stdout, _, ok) = run(&["stats", "-"], Some(FIG1));
    assert!(ok);
    assert!(stdout.contains("rows            4"));
    assert!(stdout.contains("columns         3"));
    assert!(stdout.contains("nnz             7"));
}

#[test]
fn groups_clusters_rules() {
    let input = "# cols 4\n0 1\n0 1\n2 3\n2 3\n";
    let (stdout, _, ok) = run(
        &["groups", "-", "--minconf", "1.0", "--minsim", "1.0"],
        Some(input),
    );
    assert!(ok);
    assert!(stdout.contains("group 0: c0 c1"), "{stdout}");
    assert!(stdout.contains("group 1: c2 c3"), "{stdout}");
}

#[test]
fn gen_roundtrips_through_stats() {
    let (matrix_text, _, ok) = run(
        &[
            "gen", "news", "--rows", "200", "--cols", "300", "--seed", "5",
        ],
        None,
    );
    assert!(ok);
    let (stats, _, ok) = run(&["stats", "-"], Some(&matrix_text));
    assert!(ok);
    assert!(stats.contains("rows            200"), "{stats}");
    assert!(stats.contains("columns         300"));
}

#[test]
fn parallel_flag_matches_sequential() {
    let input = "# cols 4\n0 1 2\n0 1\n1 2 3\n0 1 2\n";
    let (seq, _, _) = run(&["imp", "-", "--minconf", "0.6"], Some(input));
    let (par, _, _) = run(
        &["imp", "-", "--minconf", "0.6", "--threads", "3"],
        Some(input),
    );
    assert_eq!(seq, par);
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = run(&["imp", "-"], Some(FIG1));
    assert!(!ok, "missing --minconf must fail");
    assert!(stderr.contains("minconf"));

    let (_, stderr, ok) = run(&["frobnicate"], None);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = run(
        &["imp", "-", "--minconf", "0.9", "--order", "zigzag"],
        Some(FIG1),
    );
    assert!(!ok);
    assert!(stderr.contains("order"));
}

#[test]
fn reverse_flag_adds_reverse_rules() {
    let input = "# cols 2\n0 1\n0 1\n";
    let (fwd, _, _) = run(&["imp", "-", "--minconf", "1.0"], Some(input));
    assert_eq!(fwd.lines().count(), 1);
    let (both, _, _) = run(&["imp", "-", "--minconf", "1.0", "--reverse"], Some(input));
    assert_eq!(both.lines().count(), 2);
}

#[test]
fn streamed_mode_matches_in_memory() {
    let dir = std::env::temp_dir().join("dmc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream-input.txt");
    std::fs::write(&path, "# cols 4\n0 1 2\n0 1\n1 2 3\n0 1 2\n0 1\n").unwrap();
    let p = path.to_str().unwrap();
    let (in_mem, _, ok1) = run(&["imp", p, "--minconf", "0.6"], None);
    let (streamed, stderr, ok2) = run(
        &["imp", p, "--minconf", "0.6", "--stream", "--cols", "4"],
        None,
    );
    assert!(ok1 && ok2, "{stderr}");
    assert_eq!(in_mem, streamed);
    assert!(stderr.contains("streamed"));

    let (sim_mem, _, _) = run(&["sim", p, "--minsim", "0.5"], None);
    let (sim_str, _, _) = run(
        &["sim", p, "--minsim", "0.5", "--stream", "--cols", "4"],
        None,
    );
    assert_eq!(sim_mem, sim_str);
}

#[test]
fn streamed_parallel_matches_streamed_sequential() {
    let dir = std::env::temp_dir().join("dmc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream-parallel-input.txt");
    std::fs::write(
        &path,
        "# cols 5\n0 1 2\n0 1\n1 2 3\n0 1 2\n0 1 4\n2 3 4\n0 1\n",
    )
    .unwrap();
    let p = path.to_str().unwrap();

    let (seq, _, ok1) = run(
        &["imp", p, "--minconf", "0.6", "--stream", "--cols", "5"],
        None,
    );
    for threads in ["1", "2", "4"] {
        let (par, stderr, ok2) = run(
            &[
                "imp",
                p,
                "--minconf",
                "0.6",
                "--stream",
                "--cols",
                "5",
                "--threads",
                threads,
            ],
            None,
        );
        assert!(ok1 && ok2, "{stderr}");
        assert_eq!(seq, par, "threads={threads}");
        if threads != "1" {
            assert!(stderr.contains("worker"), "{stderr}");
        }
    }

    let (sim_seq, _, _) = run(
        &["sim", p, "--minsim", "0.4", "--stream", "--cols", "5"],
        None,
    );
    let (sim_par, _, _) = run(
        &[
            "sim",
            p,
            "--minsim",
            "0.4",
            "--stream",
            "--cols",
            "5",
            "--threads",
            "3",
        ],
        None,
    );
    assert_eq!(sim_seq, sim_par);
}

/// Like [`run`], but returns the raw exit code (usage errors exit 2,
/// runtime failures exit 1).
fn run_code(args: &[&str], stdin: Option<&str>) -> (String, Option<i32>) {
    let mut cmd = Command::new(BIN);
    cmd.env("DMC_SCHED_OVERSUBSCRIBE", "1");
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    if stdin.is_some() {
        cmd.stdin(Stdio::piped());
    }
    let mut child = cmd.spawn().expect("spawn dmc");
    if let Some(input) = stdin {
        let _ = child.stdin.as_mut().unwrap().write_all(input.as_bytes());
    }
    let out = child.wait_with_output().expect("wait dmc");
    (
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn zero_threads_is_a_usage_error() {
    for cmd in [
        vec!["imp", "-", "--minconf", "0.9", "--threads", "0"],
        vec!["sim", "-", "--minsim", "0.8", "--threads", "0"],
    ] {
        let (stderr, code) = run_code(&cmd, Some(FIG1));
        assert_eq!(code, Some(2), "usage error exit code: {stderr}");
        assert!(stderr.contains("threads"), "{stderr}");
        assert!(stderr.contains("usage:"), "usage text shown: {stderr}");
    }
}

#[test]
fn streamed_mode_requires_cols() {
    let dir = std::env::temp_dir().join("dmc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream-nocols.txt");
    std::fs::write(&path, "0 1\n").unwrap();
    let (_, stderr, ok) = run(
        &[
            "imp",
            path.to_str().unwrap(),
            "--minconf",
            "0.9",
            "--stream",
        ],
        None,
    );
    assert!(!ok);
    assert!(stderr.contains("cols"));
}

#[test]
fn metrics_to_stdout_emits_reconciling_json() {
    let input = "# cols 4\n0 1 2\n0 1\n1 2 3\n0 1 2\n0 1\n";
    let (stdout, stderr, ok) = run(
        &["imp", "-", "--minconf", "0.6", "--quiet", "--metrics", "-"],
        Some(input),
    );
    assert!(ok, "{stderr}");
    let json = dmc_metrics::json::JsonValue::parse(&stdout).expect("stdout is one JSON report");
    assert_eq!(
        json.get("schema").and_then(|v| v.as_str()),
        Some(dmc_metrics::RUN_REPORT_SCHEMA)
    );
    assert_eq!(
        json.get("algorithm").and_then(|v| v.as_str()),
        Some("implication")
    );
    let counters = json.get("counters").expect("counters object");
    let c = |k: &str| counters.get(k).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(
        c("candidates_admitted"),
        c("candidates_deleted") + c("rules_emitted"),
        "counters reconcile"
    );
}

#[test]
fn metrics_file_written_for_streamed_parallel_sim() {
    let dir = std::env::temp_dir().join("dmc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("metrics-input.txt");
    std::fs::write(&data, "# cols 4\n0 1 2\n0 1\n1 2 3\n0 1 2\n0 1\n").unwrap();
    let metrics = dir.join("metrics-report.json");
    let (_, stderr, ok) = run(
        &[
            "sim",
            data.to_str().unwrap(),
            "--minsim",
            "0.4",
            "--stream",
            "--cols",
            "4",
            "--threads",
            "4",
            "--quiet",
            "--metrics",
            metrics.to_str().unwrap(),
        ],
        None,
    );
    assert!(ok, "{stderr}");
    assert!(stderr.contains("run report written"), "{stderr}");
    let text = std::fs::read_to_string(&metrics).unwrap();
    let json = dmc_metrics::json::JsonValue::parse(&text).expect("file is valid JSON");
    assert_eq!(
        json.get("algorithm").and_then(|v| v.as_str()),
        Some("similarity")
    );
    assert_eq!(json.get("mode").and_then(|v| v.as_str()), Some("streamed"));
    assert_eq!(json.get("threads").and_then(|v| v.as_u64()), Some(4));
    let workers = json.get("workers").and_then(|v| v.as_array()).unwrap();
    assert_eq!(workers.len(), 4);
    assert!(
        json.get("spill_bytes").and_then(|v| v.as_u64()).unwrap() > 0,
        "streamed runs record spill bytes"
    );
}

#[test]
fn verify_roundtrip_through_rules_file() {
    let dir = std::env::temp_dir().join("dmc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("verify-input.txt");
    std::fs::write(&data, "# cols 3\n0 1\n0 1 2\n0 1\n2\n").unwrap();
    let rules = dir.join("verify-rules.txt");
    let d = data.to_str().unwrap();
    let r = rules.to_str().unwrap();

    let (_, _, ok) = run(
        &["imp", d, "--minconf", "0.6", "--output", r, "--quiet"],
        None,
    );
    assert!(ok);
    let (_, stderr, ok) = run(&["verify", d, "--rules", r, "--minconf", "0.6"], None);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verified"), "{stderr}");

    // Tampered rules file fails verification.
    let text = std::fs::read_to_string(&rules).unwrap();
    let tampered = text.replace("imp 0", "imp 2");
    std::fs::write(&rules, tampered).unwrap();
    let (stdout, _, ok) = run(&["verify", d, "--rules", r, "--minconf", "0.6"], None);
    assert!(!ok);
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn shard_matches_unsharded_through_real_child_processes() {
    let dir = std::env::temp_dir().join("dmc-cli-shard-happy");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.txt");
    let (_, stderr, ok) = run(
        &[
            "gen",
            "weblog",
            "--rows",
            "400",
            "--cols",
            "60",
            "--seed",
            "7",
            "--output",
            data.to_str().unwrap(),
        ],
        None,
    );
    assert!(ok, "{stderr}");
    let d = data.to_str().unwrap();

    for (cmd, opt, threshold) in [("imp", "--minconf", "0.8"), ("sim", "--minsim", "0.4")] {
        let unsharded = dir.join(format!("{cmd}-unsharded.rules"));
        let (_, stderr, ok) = run(
            &[
                cmd,
                d,
                opt,
                threshold,
                "--output",
                unsharded.to_str().unwrap(),
                "--quiet",
            ],
            None,
        );
        assert!(ok, "{stderr}");

        let sharded = dir.join(format!("{cmd}-sharded.rules"));
        let manifest = dir.join(format!("{cmd}.manifest"));
        let metrics = dir.join(format!("{cmd}-report.json"));
        let (_, stderr, ok) = run(
            &[
                "shard",
                d,
                opt,
                threshold,
                "--shards",
                "4",
                "--manifest",
                manifest.to_str().unwrap(),
                "--output",
                sharded.to_str().unwrap(),
                "--metrics",
                metrics.to_str().unwrap(),
                "--quiet",
            ],
            None,
        );
        assert!(ok, "{stderr}");
        assert_eq!(
            std::fs::read(&unsharded).unwrap(),
            std::fs::read(&sharded).unwrap(),
            "{cmd}: merged rules byte-identical to the unsharded mine"
        );
        assert!(manifest.exists(), "consolidated manifest written");
        for i in 0..4 {
            let mut spill = manifest.clone().into_os_string();
            spill.push(format!(".shard{i}"));
            assert!(
                !std::path::Path::new(&spill).exists(),
                "{cmd}: shard spill {i} removed after merge"
            );
        }

        let json = dmc_metrics::json::JsonValue::parse(&std::fs::read_to_string(&metrics).unwrap())
            .expect("report is valid JSON");
        assert_eq!(json.get("mode").and_then(|v| v.as_str()), Some("sharded"));
        assert_eq!(json.get("threads").and_then(|v| v.as_u64()), Some(4));
        let shard = json.get("shard").expect("shard section");
        assert_eq!(shard.get("n_shards").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(
            shard
                .get("shards")
                .and_then(|v| v.as_array())
                .unwrap()
                .len(),
            4
        );
    }
}

#[test]
fn shard_usage_errors_exit_2() {
    let cases: &[&[&str]] = &[
        // zero shards
        &[
            "shard",
            "x.txt",
            "--minconf",
            "0.9",
            "--shards",
            "0",
            "--manifest",
            "m",
        ],
        // overlapping worker ranges
        &[
            "shard",
            "x.txt",
            "--minconf",
            "0.9",
            "--manifest",
            "m",
            "--worker",
            "0:0-10,5-20",
        ],
        // duplicate worker ranges
        &[
            "shard",
            "x.txt",
            "--minconf",
            "0.9",
            "--manifest",
            "m",
            "--worker",
            "1:0-10,0-10",
        ],
        // worker index out of range
        &[
            "shard",
            "x.txt",
            "--minconf",
            "0.9",
            "--manifest",
            "m",
            "--worker",
            "2:0-10,10-20",
        ],
        // manifest collides with the rule output
        &[
            "shard",
            "x.txt",
            "--minconf",
            "0.9",
            "--shards",
            "2",
            "--manifest",
            "same",
            "--output",
            "same",
        ],
        // neither --minconf nor --minsim
        &["shard", "x.txt", "--shards", "2", "--manifest", "m"],
        // both thresholds at once
        &[
            "shard",
            "x.txt",
            "--minconf",
            "0.9",
            "--minsim",
            "0.9",
            "--shards",
            "2",
            "--manifest",
            "m",
        ],
        // stdin cannot be re-read by worker children
        &[
            "shard",
            "-",
            "--minconf",
            "0.9",
            "--shards",
            "2",
            "--manifest",
            "m",
        ],
    ];
    for case in cases {
        let (stderr, code) = run_code(case, None);
        assert_eq!(code, Some(2), "{case:?}: {stderr}");
        assert!(stderr.contains("usage:"), "{case:?}: {stderr}");
    }
}

#[test]
fn worker_killed_mid_write_is_detected_by_merge() {
    let dir = std::env::temp_dir().join("dmc-cli-shard-killed");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let data = dir.join("data.txt");
    let (_, _, ok) = run(
        &[
            "gen",
            "weblog",
            "--rows",
            "300",
            "--cols",
            "30",
            "--seed",
            "3",
            "--output",
            data.to_str().unwrap(),
        ],
        None,
    );
    assert!(ok);
    let d = data.to_str().unwrap();
    let manifest = dir.join("m");
    let mf = manifest.to_str().unwrap();

    // Run the three workers by hand (what the coordinator would spawn).
    for index in 0..3 {
        let spec = format!("{index}:0-10,10-20,20-30");
        let (_, stderr, ok) = run(
            &[
                "shard",
                d,
                "--minconf",
                "0.8",
                "--manifest",
                mf,
                "--worker",
                &spec,
            ],
            None,
        );
        assert!(ok, "worker {index}: {stderr}");
        assert!(stderr.contains(&format!("shard {index}:")), "{stderr}");
    }

    // A worker killed mid-write leaves a truncated spill; the merge-only
    // coordinator must reject it (runtime error: exit 1) and must not
    // write a manifest.
    let mut spill = manifest.clone().into_os_string();
    spill.push(".shard1");
    let len = std::fs::metadata(&spill).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&spill)
        .unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let (stderr, code) = run_code(
        &[
            "shard",
            d,
            "--minconf",
            "0.8",
            "--shards",
            "3",
            "--manifest",
            mf,
            "--merge",
        ],
        None,
    );
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("shard 1 corrupt"), "{stderr}");
    assert!(!manifest.exists(), "failed merge leaves no manifest");

    // Re-running the lost worker repairs the set; the merge then succeeds
    // and matches the unsharded mine.
    let (_, _, ok) = run(
        &[
            "shard",
            d,
            "--minconf",
            "0.8",
            "--manifest",
            mf,
            "--worker",
            "1:0-10,10-20,20-30",
            "--quiet",
        ],
        None,
    );
    assert!(ok);
    let merged = dir.join("merged.rules");
    let (_, stderr, ok) = run(
        &[
            "shard",
            d,
            "--minconf",
            "0.8",
            "--shards",
            "3",
            "--manifest",
            mf,
            "--merge",
            "--output",
            merged.to_str().unwrap(),
            "--quiet",
        ],
        None,
    );
    assert!(ok, "{stderr}");
    let unsharded = dir.join("unsharded.rules");
    let (_, _, ok) = run(
        &[
            "imp",
            d,
            "--minconf",
            "0.8",
            "--output",
            unsharded.to_str().unwrap(),
            "--quiet",
        ],
        None,
    );
    assert!(ok);
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        std::fs::read(&unsharded).unwrap()
    );
}
