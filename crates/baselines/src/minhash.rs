//! Min-Hash [7, 8] — the sketch baseline for similarity rules (§3.2).
//!
//! Each of `k` independent hash functions assigns every row a pseudo-random
//! value; a column's signature component is the minimum value over its
//! rows. For any pair, `Pr[component matches] = Sim(c_i, c_j)`, so the
//! fraction of matching components estimates the Jaccard similarity. All
//! `k` components are filled in a single data scan.
//!
//! Candidate generation is either all-pairs signature comparison or LSH
//! banding \[10\] (`b` bands of `r` rows, `b·r = k`): columns whose band
//! hashes collide in at least one band become candidates — drastically
//! fewer comparisons at high thresholds.
//!
//! Like the paper's Min-Hash, the sketch alone yields false positives *and*
//! false negatives; [`MinHashConfig::verify`] re-checks candidates exactly
//! (removing false positives — false negatives remain, and the test suite
//! measures them against the oracle).

use dmc_core::fxhash::FxHashMap;
use dmc_core::threshold::sim_qualifies;
use dmc_core::SimilarityRule;
use dmc_matrix::{canonical_less, ColumnId, RowId, SparseMatrix};

/// Configuration for [`minhash_similarities`].
#[derive(Clone, Debug)]
pub struct MinHashConfig {
    /// Number of hash functions (signature length).
    pub k: usize,
    /// RNG seed for the hash family.
    pub seed: u64,
    /// Candidate cut-off on the estimated similarity; defaults to the query
    /// threshold minus a slack that trades candidate volume against false
    /// negatives.
    pub candidate_slack: f64,
    /// Verify candidates against the matrix (exact counts; removes false
    /// positives).
    pub verify: bool,
    /// LSH banding `(bands, rows_per_band)`; `None` compares all pairs.
    /// `bands * rows_per_band` must not exceed `k`.
    pub banding: Option<(usize, usize)>,
}

impl MinHashConfig {
    /// A reasonable default: 128 hash functions, verification on,
    /// all-pairs comparison, 0.05 slack.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            seed: 0x00c0_ffee,
            candidate_slack: 0.05,
            verify: true,
            banding: None,
        }
    }

    /// Builder-style: use LSH banding.
    ///
    /// # Panics
    ///
    /// Panics if `bands * rows_per_band > k`.
    #[must_use]
    pub fn with_banding(mut self, bands: usize, rows_per_band: usize) -> Self {
        assert!(
            bands * rows_per_band <= self.k,
            "banding exceeds signature length"
        );
        self.banding = Some((bands, rows_per_band));
        self
    }

    /// Builder-style: toggle exact verification.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }
}

/// Output of [`minhash_similarities`].
#[derive(Debug)]
pub struct MinHashOutput {
    /// Qualifying rules (exact counts when verified; estimated counts
    /// otherwise — `hits` is then the re-scaled estimate).
    pub rules: Vec<SimilarityRule>,
    /// Candidate pairs examined after sketch filtering.
    pub candidates: usize,
    /// Whether rules carry exact verified counts.
    pub verified: bool,
}

/// SplitMix64 — a small, well-distributed stateless mixer for row hashing.
#[inline]
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-column Min-Hash signatures, one scan over the matrix.
///
/// Returns a `n_cols × k` row-major array; components of all-zero columns
/// stay at `u64::MAX`.
#[must_use]
pub fn signatures(matrix: &SparseMatrix, k: usize, seed: u64) -> Vec<u64> {
    let m = matrix.n_cols();
    let mut sig = vec![u64::MAX; m * k];
    for (r, row) in matrix.rows().enumerate() {
        if row.is_empty() {
            continue;
        }
        // h_l(r): one mix per (row, hash function).
        for l in 0..k {
            let h = splitmix64(seed ^ ((l as u64) << 40) ^ (r as u64));
            for &c in row {
                let slot = &mut sig[c as usize * k + l];
                if h < *slot {
                    *slot = h;
                }
            }
        }
    }
    sig
}

/// Fraction of matching signature components.
#[inline]
#[must_use]
pub fn estimate_similarity(sig: &[u64], k: usize, a: ColumnId, b: ColumnId) -> f64 {
    let sa = &sig[a as usize * k..a as usize * k + k];
    let sb = &sig[b as usize * k..b as usize * k + k];
    let matches = sa.iter().zip(sb).filter(|(x, y)| x == y).count();
    matches as f64 / k as f64
}

/// Mines similarity rules with Min-Hash at threshold `minsim`.
#[must_use]
pub fn minhash_similarities(
    matrix: &SparseMatrix,
    minsim: f64,
    config: &MinHashConfig,
) -> MinHashOutput {
    let k = config.k;
    let sig = signatures(matrix, k, config.seed);
    let ones = matrix.column_ones();
    let cutoff = (minsim - config.candidate_slack).max(0.0);

    let candidate_pairs: Vec<(ColumnId, ColumnId)> = match config.banding {
        None => all_pairs_candidates(&sig, k, &ones, cutoff),
        Some((bands, rows_per_band)) => banded_candidates(&sig, k, &ones, bands, rows_per_band),
    };
    let candidates = candidate_pairs.len();

    let column_rows = if config.verify {
        Some(matrix.column_rows())
    } else {
        None
    };

    let mut rules = Vec::new();
    for (a, b) in candidate_pairs {
        let (oa, ob) = (ones[a as usize], ones[b as usize]);
        if let Some(cols) = &column_rows {
            let hits = intersection_size(&cols[a as usize], &cols[b as usize]);
            if sim_qualifies(u64::from(hits), u64::from(oa), u64::from(ob), minsim) {
                let (x, y, ox, oy) = orient(a, oa, b, ob);
                rules.push(SimilarityRule {
                    a: x,
                    b: y,
                    hits,
                    a_ones: ox,
                    b_ones: oy,
                });
            }
        } else {
            let est = estimate_similarity(&sig, k, a, b);
            if est >= minsim {
                // Back out an estimated hit count from sim = h/(oa+ob−h).
                let est_hits = ((est * f64::from(oa + ob)) / (1.0 + est)).round() as u32;
                let est_hits = est_hits.min(oa.min(ob));
                let (x, y, ox, oy) = orient(a, oa, b, ob);
                rules.push(SimilarityRule {
                    a: x,
                    b: y,
                    hits: est_hits,
                    a_ones: ox,
                    b_ones: oy,
                });
            }
        }
    }
    rules.sort_unstable();
    rules.dedup();
    MinHashOutput {
        rules,
        candidates,
        verified: config.verify,
    }
}

#[inline]
fn orient(a: ColumnId, oa: u32, b: ColumnId, ob: u32) -> (ColumnId, ColumnId, u32, u32) {
    if canonical_less(a, oa, b, ob) {
        (a, b, oa, ob)
    } else {
        (b, a, ob, oa)
    }
}

fn all_pairs_candidates(
    sig: &[u64],
    k: usize,
    ones: &[u32],
    cutoff: f64,
) -> Vec<(ColumnId, ColumnId)> {
    let nonzero: Vec<ColumnId> = ones
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o > 0)
        .map(|(c, _)| c as ColumnId)
        .collect();
    let mut pairs = Vec::new();
    for (i, &a) in nonzero.iter().enumerate() {
        for &b in &nonzero[i + 1..] {
            if estimate_similarity(sig, k, a, b) >= cutoff {
                pairs.push((a, b));
            }
        }
    }
    pairs
}

fn banded_candidates(
    sig: &[u64],
    k: usize,
    ones: &[u32],
    bands: usize,
    rows_per_band: usize,
) -> Vec<(ColumnId, ColumnId)> {
    let mut pairs: Vec<(ColumnId, ColumnId)> = Vec::new();
    for band in 0..bands {
        let start = band * rows_per_band;
        let mut buckets: FxHashMap<u64, Vec<ColumnId>> = FxHashMap::default();
        for (c, &o) in ones.iter().enumerate() {
            if o == 0 {
                continue;
            }
            let slice = &sig[c * k + start..c * k + start + rows_per_band];
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &v in slice {
                h = splitmix64(h ^ v);
            }
            buckets.entry(h).or_default().push(c as ColumnId);
        }
        for bucket in buckets.values() {
            for (i, &a) in bucket.iter().enumerate() {
                for &b in &bucket[i + 1..] {
                    pairs.push((a.min(b), a.max(b)));
                }
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// Size of the intersection of two sorted row lists.
#[must_use]
pub fn intersection_size(a: &[RowId], b: &[RowId]) -> u32 {
    let mut count = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    /// Identical columns always collide on every component.
    #[test]
    fn identical_columns_match_perfectly() {
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1, 2], vec![0, 1]]);
        let sig = signatures(&m, 64, 42);
        assert_eq!(estimate_similarity(&sig, 64, 0, 1), 1.0);
        assert!(estimate_similarity(&sig, 64, 0, 2) < 1.0);
    }

    #[test]
    fn estimator_concentrates_near_true_similarity() {
        // Two columns sharing 3 of 4 rows: sim = 0.6 (hits 3, union 5).
        let rows: Vec<Vec<ColumnId>> = vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![0], vec![1]];
        let m = SparseMatrix::from_rows(2, rows);
        let sig = signatures(&m, 512, 7);
        let est = estimate_similarity(&sig, 512, 0, 1);
        assert!((est - 0.6).abs() < 0.12, "est={est}");
    }

    #[test]
    fn verified_output_has_no_false_positives() {
        let m = random_matrix(60, 25, 0.2, 99);
        let out = minhash_similarities(&m, 0.5, &MinHashConfig::new(128));
        let exact = oracle::exact_similarities(&m, 0.5);
        for rule in &out.rules {
            assert!(exact.contains(rule), "false positive: {rule}");
        }
    }

    #[test]
    fn high_k_recovers_all_rules_on_small_data() {
        let m = random_matrix(40, 15, 0.3, 3);
        let mut cfg = MinHashConfig::new(512);
        cfg.candidate_slack = 0.2;
        let out = minhash_similarities(&m, 0.6, &cfg);
        let exact = oracle::exact_similarities(&m, 0.6);
        assert_eq!(
            out.rules, exact,
            "512 hashes with wide slack finds everything here"
        );
    }

    #[test]
    fn banding_agrees_with_all_pairs_for_identical_columns() {
        let m = SparseMatrix::from_rows(
            4,
            vec![vec![0, 1, 2], vec![0, 1], vec![0, 1, 3], vec![2, 3]],
        );
        let banded = minhash_similarities(&m, 1.0, &MinHashConfig::new(64).with_banding(16, 4));
        let plain = minhash_similarities(&m, 1.0, &MinHashConfig::new(64));
        assert_eq!(banded.rules, plain.rules);
        assert_eq!(banded.rules.len(), 1); // c0 ~ c1
    }

    #[test]
    fn unverified_mode_reports_estimates() {
        let m = SparseMatrix::from_rows(2, vec![vec![0, 1], vec![0, 1], vec![0]]);
        let out = minhash_similarities(&m, 0.5, &MinHashConfig::new(256).with_verify(false));
        assert!(!out.verified);
        // sim(0,1) = 2/3; the estimated rule must be present with hits near 2.
        assert_eq!(out.rules.len(), 1);
        assert!(out.rules[0].hits >= 1 && out.rules[0].hits <= 3);
    }

    #[test]
    fn intersection_size_merge() {
        assert_eq!(intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(intersection_size(&[], &[1]), 0);
        assert_eq!(intersection_size(&[4], &[4]), 1);
    }

    /// Deterministic pseudo-random matrix for tests.
    fn random_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> SparseMatrix {
        let mut data = Vec::with_capacity(rows);
        let mut state = seed;
        for r in 0..rows {
            let mut row = Vec::new();
            for c in 0..cols {
                state = splitmix64(state ^ ((r * cols + c) as u64));
                if (state as f64 / u64::MAX as f64) < density {
                    row.push(c as ColumnId);
                }
            }
            data.push(row);
        }
        SparseMatrix::from_rows(cols, data)
    }
}
