//! K-Min — bottom-k sketches estimating containment for implication rules.
//!
//! The paper's Fig 6(i) compares DMC-imp against "K-Min, a variant of
//! Min-Hash which can extract implication rules instead of similarity
//! rules", noting it "could not extract complete sets of true rules" and is
//! plotted at ≤10% false negatives. This module implements the standard
//! construction behind that variant (Cohen's size-estimation framework
//! \[7\]):
//!
//! * every row gets one pseudo-random hash value;
//! * each column keeps the **k smallest** hash values of its rows (its
//!   bottom-k sketch);
//! * for a pair, the bottom-k sketch of the *union* is the k smallest of
//!   the merged sketches, and the fraction of those also present in both
//!   sketches estimates the Jaccard similarity `J`;
//! * containment (= confidence) follows as
//!   `|A ∩ B| / |A| = J · (|A| + |B|) / ((1 + J) · |A|)` using the exact
//!   column counts from the pre-scan.
//!
//! Candidates with estimated confidence above `minconf − slack` are then
//! optionally verified exactly. Without verification the output can have
//! false positives and negatives, like the paper's K-Min.

use dmc_core::threshold::conf_qualifies;
use dmc_core::ImplicationRule;
use dmc_matrix::{canonical_less, ColumnId, SparseMatrix};

use crate::minhash::{intersection_size, splitmix64};

/// Configuration for [`kmin_implications`].
#[derive(Clone, Debug)]
pub struct KMinConfig {
    /// Sketch size (number of smallest hash values kept per column).
    pub k: usize,
    /// RNG seed for row hashing.
    pub seed: u64,
    /// Candidate cut-off slack below `minconf`.
    pub candidate_slack: f64,
    /// Verify candidates exactly (removes false positives).
    pub verify: bool,
}

impl KMinConfig {
    /// Defaults: verification on, 0.05 slack.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            seed: 0x0dd_ba11,
            candidate_slack: 0.05,
            verify: true,
        }
    }

    /// Builder-style: toggle exact verification.
    #[must_use]
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }
}

/// Output of [`kmin_implications`].
#[derive(Debug)]
pub struct KMinOutput {
    pub rules: Vec<ImplicationRule>,
    /// Candidate pairs examined after sketch filtering.
    pub candidates: usize,
    pub verified: bool,
}

/// A column's bottom-k sketch: the k smallest row hashes, sorted ascending.
#[derive(Clone, Debug, Default)]
pub struct BottomK {
    values: Vec<u64>,
}

impl BottomK {
    /// Inserts a hash, keeping only the k smallest.
    pub fn insert(&mut self, k: usize, h: u64) {
        match self.values.binary_search(&h) {
            Ok(_) => {} // duplicate hash (same row cannot repeat per column)
            Err(pos) => {
                if pos < k {
                    self.values.insert(pos, h);
                    self.values.truncate(k);
                }
            }
        }
    }

    /// Sorted sketch values.
    #[must_use]
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// Builds all column sketches in one scan.
#[must_use]
pub fn sketches(matrix: &SparseMatrix, k: usize, seed: u64) -> Vec<BottomK> {
    let mut sketches = vec![BottomK::default(); matrix.n_cols()];
    for (r, row) in matrix.rows().enumerate() {
        let h = splitmix64(seed ^ (r as u64));
        for &c in row {
            sketches[c as usize].insert(k, h);
        }
    }
    sketches
}

/// Estimates the Jaccard similarity of two columns from their sketches.
#[must_use]
pub fn estimate_jaccard(a: &BottomK, b: &BottomK, k: usize) -> f64 {
    // Bottom-k of the union = k smallest of the merged sketches; count how
    // many of them live in both sketches.
    let (av, bv) = (a.values(), b.values());
    if av.is_empty() && bv.is_empty() {
        return 0.0;
    }
    let mut i = 0;
    let mut j = 0;
    let mut taken = 0;
    let mut in_both = 0;
    while taken < k && (i < av.len() || j < bv.len()) {
        let next_a = av.get(i).copied();
        let next_b = bv.get(j).copied();
        match (next_a, next_b) {
            (Some(x), Some(y)) if x == y => {
                in_both += 1;
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => i += 1,
            (Some(_), Some(_)) | (None, Some(_)) => j += 1,
            (Some(_), None) => i += 1,
            (None, None) => break,
        }
        taken += 1;
    }
    if taken == 0 {
        0.0
    } else {
        f64::from(in_both) / taken as f64
    }
}

/// Estimated confidence `|A ∩ B| / |A|` from a Jaccard estimate and exact
/// column counts.
#[must_use]
pub fn containment_from_jaccard(jaccard: f64, ones_a: u32, ones_b: u32) -> f64 {
    if ones_a == 0 {
        return 0.0;
    }
    let inter = jaccard * f64::from(ones_a + ones_b) / (1.0 + jaccard);
    (inter / f64::from(ones_a)).min(1.0)
}

/// Mines implication rules with bottom-k sketches at threshold `minconf`.
#[must_use]
pub fn kmin_implications(matrix: &SparseMatrix, minconf: f64, config: &KMinConfig) -> KMinOutput {
    let ones = matrix.column_ones();
    let sk = sketches(matrix, config.k, config.seed);
    let cutoff = (minconf - config.candidate_slack).max(0.0);

    let nonzero: Vec<ColumnId> = ones
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o > 0)
        .map(|(c, _)| c as ColumnId)
        .collect();

    let mut candidate_pairs = Vec::new();
    for (i, &a) in nonzero.iter().enumerate() {
        for &b in &nonzero[i + 1..] {
            // Canonical orientation: confidence is judged from the smaller
            // column.
            let (lhs, rhs) = if canonical_less(a, ones[a as usize], b, ones[b as usize]) {
                (a, b)
            } else {
                (b, a)
            };
            let j = estimate_jaccard(&sk[lhs as usize], &sk[rhs as usize], config.k);
            let est = containment_from_jaccard(j, ones[lhs as usize], ones[rhs as usize]);
            if est >= cutoff {
                candidate_pairs.push((lhs, rhs, est));
            }
        }
    }
    let candidates = candidate_pairs.len();

    let column_rows = if config.verify {
        Some(matrix.column_rows())
    } else {
        None
    };
    let mut rules = Vec::new();
    for (lhs, rhs, est) in candidate_pairs {
        let (ol, or_) = (ones[lhs as usize], ones[rhs as usize]);
        if let Some(cols) = &column_rows {
            let hits = intersection_size(&cols[lhs as usize], &cols[rhs as usize]);
            if conf_qualifies(u64::from(hits), u64::from(ol), minconf) {
                rules.push(ImplicationRule {
                    lhs,
                    rhs,
                    hits,
                    lhs_ones: ol,
                    rhs_ones: or_,
                });
            }
        } else if est >= minconf {
            let est_hits = ((est * f64::from(ol)).round() as u32).min(ol);
            rules.push(ImplicationRule {
                lhs,
                rhs,
                hits: est_hits,
                lhs_ones: ol,
                rhs_ones: or_,
            });
        }
    }
    rules.sort_unstable();
    rules.dedup();
    KMinOutput {
        rules,
        candidates,
        verified: config.verify,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    #[test]
    fn bottom_k_keeps_smallest() {
        let mut s = BottomK::default();
        for h in [50, 10, 40, 30, 20, 60] {
            s.insert(3, h);
        }
        assert_eq!(s.values(), &[10, 20, 30]);
        s.insert(3, 5);
        assert_eq!(s.values(), &[5, 10, 20]);
        s.insert(3, 100);
        assert_eq!(s.values(), &[5, 10, 20]);
    }

    #[test]
    fn duplicate_hash_is_ignored() {
        let mut s = BottomK::default();
        s.insert(4, 7);
        s.insert(4, 7);
        assert_eq!(s.values(), &[7]);
    }

    #[test]
    fn identical_columns_estimate_full_jaccard() {
        let m = SparseMatrix::from_rows(2, vec![vec![0, 1]; 10]);
        let sk = sketches(&m, 8, 1);
        assert_eq!(estimate_jaccard(&sk[0], &sk[1], 8), 1.0);
    }

    #[test]
    fn disjoint_columns_estimate_zero() {
        let rows: Vec<Vec<ColumnId>> = (0..10).map(|r| vec![(r % 2) as ColumnId]).collect();
        let m = SparseMatrix::from_rows(2, rows);
        let sk = sketches(&m, 8, 1);
        assert_eq!(estimate_jaccard(&sk[0], &sk[1], 8), 0.0);
    }

    #[test]
    fn containment_algebra() {
        // J = 1/3 with |A| = 2, |B| = 2 -> intersection 1 -> conf 0.5.
        let c = containment_from_jaccard(1.0 / 3.0, 2, 2);
        assert!((c - 0.5).abs() < 1e-9);
        assert_eq!(containment_from_jaccard(0.5, 0, 5), 0.0);
        assert!(containment_from_jaccard(1.0, 4, 8) <= 1.0);
    }

    #[test]
    fn verified_output_has_no_false_positives() {
        let m = crate::test_util::random_matrix(80, 30, 0.15, 21);
        let out = kmin_implications(&m, 0.8, &KMinConfig::new(16));
        let exact = oracle::exact_implications(&m, 0.8, false);
        for rule in &out.rules {
            assert!(exact.contains(rule), "false positive: {rule}");
        }
    }

    #[test]
    fn large_sketch_recovers_everything_on_small_data() {
        let m = crate::test_util::random_matrix(50, 20, 0.25, 5);
        // k larger than any column: sketches are exact row sets.
        let mut cfg = KMinConfig::new(64);
        cfg.candidate_slack = 0.3;
        let out = kmin_implications(&m, 0.75, &cfg);
        assert_eq!(out.rules, oracle::exact_implications(&m, 0.75, false));
    }

    #[test]
    fn unverified_mode_estimates() {
        let m = SparseMatrix::from_rows(2, vec![vec![0, 1], vec![0, 1], vec![1]]);
        let out = kmin_implications(&m, 0.9, &KMinConfig::new(8).with_verify(false));
        assert!(!out.verified);
        // S_0 ⊂ S_1 with conf 1.0: must be found (k covers all rows).
        assert_eq!(out.rules.len(), 1);
        assert_eq!((out.rules[0].lhs, out.rules[0].rhs), (0, 1));
    }
}
