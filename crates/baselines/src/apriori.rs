//! A-priori [1, 2] — the support-pruning baseline (§3.1).
//!
//! The paper's comparison (Fig 6(i),(j)) runs pair-level a-priori on the
//! support-pruned `NewsP` matrix: count singleton frequencies, keep columns
//! inside the support window, then hold one counter per surviving pair —
//! `f(f−1)/2` counters, the memory blow-up §3.1 complains about — and read
//! rules off the pair counts.
//!
//! Two extensions beyond the paper's scope live here too:
//!
//! * **DHP filtering** \[14\]: a hashed pair-bucket count from the first pass
//!   prunes pairs whose bucket total already falls below the support
//!   threshold.
//! * **k-itemset mining + rule generation** — the classic full a-priori
//!   (the paper's future-work §7 notes DMC cannot do this).

use dmc_core::fxhash::{FxHashMap, FxHashSet};
use dmc_core::threshold::{conf_qualifies, sim_qualifies};
use dmc_core::{ImplicationRule, SimilarityRule};
use dmc_matrix::{canonical_less, ColumnId, SparseMatrix};

/// Configuration for the pair-level miner.
#[derive(Clone, Debug)]
pub struct AprioriConfig {
    /// Minimum singleton support (absolute row count).
    pub min_support: u32,
    /// Maximum singleton support (the `NewsP` upper window); `u32::MAX`
    /// disables it.
    pub max_support: u32,
    /// Minimum pair support for a rule; the paper's comparison mines every
    /// qualifying confidence rule among frequent columns, so this defaults
    /// to 1.
    pub min_pair_support: u32,
    /// DHP: number of hash buckets for pair filtering; `None` disables.
    pub dhp_buckets: Option<usize>,
}

impl AprioriConfig {
    /// A configuration with the given singleton support window.
    #[must_use]
    pub fn new(min_support: u32, max_support: u32) -> Self {
        Self {
            min_support,
            max_support,
            min_pair_support: 1,
            dhp_buckets: None,
        }
    }

    /// Builder-style: enable DHP filtering with `buckets` buckets.
    #[must_use]
    pub fn with_dhp(mut self, buckets: usize) -> Self {
        self.dhp_buckets = Some(buckets);
        self
    }
}

/// Output of the pair miners, with the counter-array size the paper's
/// memory argument is about.
#[derive(Debug)]
pub struct AprioriPairOutput<R> {
    pub rules: Vec<R>,
    /// Columns surviving the support window.
    pub frequent_columns: usize,
    /// Pair counters actually allocated.
    pub pair_counters: usize,
}

#[inline]
fn dhp_bucket(a: ColumnId, b: ColumnId, buckets: usize) -> usize {
    // Cheap mix; only bucket balance matters.
    let x = (u64::from(a) << 32) | u64::from(b);
    (x.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17) as usize % buckets
}

/// Shared pair-counting state of the two pair miners.
struct PairCounts {
    ones: Vec<u32>,
    hits: FxHashMap<(ColumnId, ColumnId), u32>,
    frequent_columns: usize,
}

fn count_pairs(matrix: &SparseMatrix, config: &AprioriConfig) -> PairCounts {
    let ones = matrix.column_ones();
    let frequent: Vec<bool> = ones
        .iter()
        .map(|&o| o >= config.min_support && o <= config.max_support)
        .collect();

    // Optional DHP pre-pass: bucketed pair counts.
    let dhp: Option<Vec<u32>> = config.dhp_buckets.map(|buckets| {
        let mut counts = vec![0u32; buckets];
        for row in matrix.rows() {
            for (i, &a) in row.iter().enumerate() {
                if !frequent[a as usize] {
                    continue;
                }
                for &b in &row[i + 1..] {
                    if frequent[b as usize] {
                        counts[dhp_bucket(a, b, buckets)] += 1;
                    }
                }
            }
        }
        counts
    });
    let pair_passes_dhp = |a: ColumnId, b: ColumnId| -> bool {
        match (&dhp, config.dhp_buckets) {
            (Some(counts), Some(buckets)) => {
                counts[dhp_bucket(a, b, buckets)] >= config.min_pair_support
            }
            _ => true,
        }
    };

    let mut hits: FxHashMap<(ColumnId, ColumnId), u32> = FxHashMap::default();
    for row in matrix.rows() {
        for (i, &a) in row.iter().enumerate() {
            if !frequent[a as usize] {
                continue;
            }
            for &b in &row[i + 1..] {
                if frequent[b as usize] && pair_passes_dhp(a, b) {
                    *hits.entry((a, b)).or_insert(0) += 1;
                }
            }
        }
    }
    let frequent_columns = frequent.iter().filter(|&&f| f).count();
    PairCounts {
        ones,
        hits,
        frequent_columns,
    }
}

/// Pair-level a-priori for implication rules: support-prune columns, count
/// all surviving pairs, emit rules with confidence ≥ `minconf` in the
/// canonical direction.
#[must_use]
pub fn apriori_implications(
    matrix: &SparseMatrix,
    config: &AprioriConfig,
    minconf: f64,
) -> AprioriPairOutput<ImplicationRule> {
    let counts = count_pairs(matrix, config);
    let (ones, frequent_columns) = (counts.ones, counts.frequent_columns);
    let mut rules = Vec::new();
    let pair_counters = counts.hits.len();
    for ((a, b), h) in counts.hits {
        if h < config.min_pair_support {
            continue;
        }
        let (oa, ob) = (ones[a as usize], ones[b as usize]);
        let (lhs, rhs, ol, or_) = if canonical_less(a, oa, b, ob) {
            (a, b, oa, ob)
        } else {
            (b, a, ob, oa)
        };
        if conf_qualifies(u64::from(h), u64::from(ol), minconf) {
            rules.push(ImplicationRule {
                lhs,
                rhs,
                hits: h,
                lhs_ones: ol,
                rhs_ones: or_,
            });
        }
    }
    rules.sort_unstable();
    AprioriPairOutput {
        rules,
        frequent_columns,
        pair_counters,
    }
}

/// Pair-level a-priori for similarity rules.
#[must_use]
pub fn apriori_similarities(
    matrix: &SparseMatrix,
    config: &AprioriConfig,
    minsim: f64,
) -> AprioriPairOutput<SimilarityRule> {
    let counts = count_pairs(matrix, config);
    let (ones, frequent_columns) = (counts.ones, counts.frequent_columns);
    let mut rules = Vec::new();
    let pair_counters = counts.hits.len();
    for ((a, b), h) in counts.hits {
        if h < config.min_pair_support {
            continue;
        }
        let (oa, ob) = (ones[a as usize], ones[b as usize]);
        if sim_qualifies(u64::from(h), u64::from(oa), u64::from(ob), minsim) {
            let (x, y, ox, oy) = if canonical_less(a, oa, b, ob) {
                (a, b, oa, ob)
            } else {
                (b, a, ob, oa)
            };
            rules.push(SimilarityRule {
                a: x,
                b: y,
                hits: h,
                a_ones: ox,
                b_ones: oy,
            });
        }
    }
    rules.sort_unstable();
    AprioriPairOutput {
        rules,
        frequent_columns,
        pair_counters,
    }
}

/// A frequent itemset with its support count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Itemset {
    /// Sorted item (column) ids.
    pub items: Vec<ColumnId>,
    pub support: u32,
}

/// Full a-priori: all frequent itemsets with support ≥ `min_support`, level
/// by level, up to `max_len` items (0 = unlimited).
#[must_use]
pub fn frequent_itemsets(matrix: &SparseMatrix, min_support: u32, max_len: usize) -> Vec<Itemset> {
    let ones = matrix.column_ones();
    let mut result: Vec<Itemset> = Vec::new();

    // L1.
    let mut level: Vec<Vec<ColumnId>> = ones
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o >= min_support)
        .map(|(c, _)| vec![c as ColumnId])
        .collect();
    for set in &level {
        result.push(Itemset {
            items: set.clone(),
            support: ones[set[0] as usize],
        });
    }

    let mut k = 2;
    while !level.is_empty() && (max_len == 0 || k <= max_len) {
        // Candidate generation: join L_{k-1} with itself on the first k-2
        // items, then prune candidates with an infrequent subset.
        let prev: FxHashSet<&[ColumnId]> = level.iter().map(Vec::as_slice).collect();
        let mut candidates: Vec<Vec<ColumnId>> = Vec::new();
        for i in 0..level.len() {
            for j in i + 1..level.len() {
                let (a, b) = (&level[i], &level[j]);
                if a[..k - 2] != b[..k - 2] {
                    continue;
                }
                let mut cand = a.clone();
                let last = b[k - 2];
                if last <= *cand.last().unwrap() {
                    continue;
                }
                cand.push(last);
                if all_subsets_frequent(&cand, &prev) {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Count candidates by scanning rows.
        let mut counts: FxHashMap<&[ColumnId], u32> = FxHashMap::default();
        for cand in &candidates {
            counts.insert(cand.as_slice(), 0);
        }
        for row in matrix.rows() {
            if row.len() < k {
                continue;
            }
            for cand in &candidates {
                if is_subset_sorted(cand, row) {
                    *counts.get_mut(cand.as_slice()).unwrap() += 1;
                }
            }
        }
        let mut next_level = Vec::new();
        for cand in &candidates {
            let support = counts[cand.as_slice()];
            if support >= min_support {
                result.push(Itemset {
                    items: cand.clone(),
                    support,
                });
                next_level.push(cand.clone());
            }
        }
        level = next_level;
        k += 1;
    }
    result.sort_by(|a, b| a.items.cmp(&b.items));
    result
}

fn all_subsets_frequent(cand: &[ColumnId], prev: &FxHashSet<&[ColumnId]>) -> bool {
    let mut sub = Vec::with_capacity(cand.len() - 1);
    for skip in 0..cand.len() {
        sub.clear();
        sub.extend(
            cand.iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &c)| c),
        );
        if !prev.contains(sub.as_slice()) {
            return false;
        }
    }
    true
}

#[inline]
fn is_subset_sorted(needle: &[ColumnId], haystack: &[ColumnId]) -> bool {
    let mut hi = 0;
    for &n in needle {
        while hi < haystack.len() && haystack[hi] < n {
            hi += 1;
        }
        if hi >= haystack.len() || haystack[hi] != n {
            return false;
        }
        hi += 1;
    }
    true
}

/// A multi-item association rule `antecedent ⇒ consequent`.
#[derive(Clone, Debug, PartialEq)]
pub struct ItemsetRule {
    pub antecedent: Vec<ColumnId>,
    pub consequent: Vec<ColumnId>,
    pub support: u32,
    pub confidence: f64,
}

/// Classic rule generation from frequent itemsets: for every itemset and
/// every non-empty proper antecedent subset, emit the rule when its
/// confidence meets `minconf`.
#[must_use]
pub fn rules_from_itemsets(itemsets: &[Itemset], minconf: f64) -> Vec<ItemsetRule> {
    let support: FxHashMap<&[ColumnId], u32> = itemsets
        .iter()
        .map(|s| (s.items.as_slice(), s.support))
        .collect();
    let mut rules = Vec::new();
    for set in itemsets.iter().filter(|s| s.items.len() >= 2) {
        let n = set.items.len();
        // 2^n antecedent subsets; a >20-item set would be astronomically
        // supported anyway and its subset rules are already emitted.
        if n > 20 {
            continue;
        }
        // Enumerate non-empty proper subsets by bitmask.
        for mask in 1u32..(1 << n) - 1 {
            let antecedent: Vec<ColumnId> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| set.items[i])
                .collect();
            let Some(&ante_support) = support.get(antecedent.as_slice()) else {
                continue;
            };
            let confidence = f64::from(set.support) / f64::from(ante_support);
            if conf_qualifies(u64::from(set.support), u64::from(ante_support), minconf) {
                let consequent: Vec<ColumnId> = (0..n)
                    .filter(|&i| mask & (1 << i) == 0)
                    .map(|i| set.items[i])
                    .collect();
                rules.push(ItemsetRule {
                    antecedent,
                    consequent,
                    support: set.support,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| (&a.antecedent, &a.consequent).cmp(&(&b.antecedent, &b.consequent)));
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn market() -> SparseMatrix {
        // A small basket data set: {bread=0, milk=1, butter=2, beer=3}.
        SparseMatrix::from_rows(
            4,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 1, 2],
                vec![0, 3],
                vec![1, 2],
                vec![0, 1, 2],
            ],
        )
    }

    #[test]
    fn pair_rules_match_oracle_when_unpruned() {
        let m = market();
        let cfg = AprioriConfig::new(1, u32::MAX);
        for &minconf in &[1.0, 0.8, 0.5] {
            let out = apriori_implications(&m, &cfg, minconf);
            let expected = oracle::exact_implications(&m, minconf, false);
            assert_eq!(out.rules, expected, "minconf={minconf}");
        }
    }

    #[test]
    fn similarity_rules_match_oracle_when_unpruned() {
        let m = market();
        let cfg = AprioriConfig::new(1, u32::MAX);
        for &minsim in &[1.0, 0.6, 0.4] {
            let out = apriori_similarities(&m, &cfg, minsim);
            assert_eq!(
                out.rules,
                oracle::exact_similarities(&m, minsim),
                "minsim={minsim}"
            );
        }
    }

    #[test]
    fn support_window_prunes_columns() {
        let m = market();
        // ones: bread 5, milk 5, butter 4, beer 1.
        let out = apriori_implications(&m, &AprioriConfig::new(2, u32::MAX), 0.5);
        assert_eq!(out.frequent_columns, 3, "beer is infrequent");
        assert!(out.rules.iter().all(|r| r.lhs != 3 && r.rhs != 3));
        let windowed = apriori_implications(&m, &AprioriConfig::new(2, 4), 0.5);
        assert_eq!(windowed.frequent_columns, 1, "only butter inside [2, 4]");
        assert!(windowed.rules.is_empty());
    }

    #[test]
    fn dhp_filter_preserves_frequent_pairs() {
        let m = market();
        let minconf = 0.6;
        let plain = apriori_implications(&m, &AprioriConfig::new(2, u32::MAX), minconf);
        for buckets in [1, 2, 7, 64] {
            let cfg = AprioriConfig::new(2, u32::MAX).with_dhp(buckets);
            let dhp = apriori_implications(&m, &cfg, minconf);
            assert_eq!(dhp.rules, plain.rules, "buckets={buckets}");
            assert!(dhp.pair_counters <= plain.pair_counters + 1);
        }
    }

    #[test]
    fn dhp_with_real_pair_support_reduces_counters() {
        let m = market();
        let mut cfg = AprioriConfig::new(2, u32::MAX).with_dhp(256);
        cfg.min_pair_support = 3;
        let out = apriori_implications(&m, &cfg, 0.5);
        let mut unfiltered = AprioriConfig::new(2, u32::MAX);
        unfiltered.min_pair_support = 3;
        let plain = apriori_implications(&m, &unfiltered, 0.5);
        assert_eq!(out.rules, plain.rules);
        assert!(out.pair_counters <= plain.pair_counters);
    }

    #[test]
    fn frequent_itemsets_classic_example() {
        let m = market();
        let sets = frequent_itemsets(&m, 3, 0);
        let as_tuples: Vec<(Vec<ColumnId>, u32)> =
            sets.iter().map(|s| (s.items.clone(), s.support)).collect();
        assert_eq!(
            as_tuples,
            vec![
                (vec![0], 5),
                (vec![0, 1], 4),
                (vec![0, 1, 2], 3),
                (vec![0, 2], 3),
                (vec![1], 5),
                (vec![1, 2], 4),
                (vec![2], 4),
            ]
        );
    }

    #[test]
    fn itemset_supports_are_antimonotone() {
        let m = market();
        let sets = frequent_itemsets(&m, 1, 0);
        let support: FxHashMap<&[ColumnId], u32> = sets
            .iter()
            .map(|s| (s.items.as_slice(), s.support))
            .collect();
        for set in &sets {
            if set.items.len() >= 2 {
                for skip in 0..set.items.len() {
                    let sub: Vec<ColumnId> = set
                        .items
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &c)| c)
                        .collect();
                    assert!(support[sub.as_slice()] >= set.support);
                }
            }
        }
    }

    #[test]
    fn multi_item_rules() {
        let m = market();
        let sets = frequent_itemsets(&m, 3, 0);
        let rules = rules_from_itemsets(&sets, 0.75);
        // {bread, milk} => {butter}: support 3, antecedent support 4 -> 0.75.
        assert!(rules.iter().any(|r| {
            r.antecedent == vec![0, 1]
                && r.consequent == vec![2]
                && (r.confidence - 0.75).abs() < 1e-9
        }));
        // Every emitted rule meets the threshold.
        assert!(rules.iter().all(|r| r.confidence >= 0.75 - 1e-9));
        // Pair rules from itemsets agree with the pair miner.
        let pair_rules: Vec<_> = rules
            .iter()
            .filter(|r| r.antecedent.len() == 1 && r.consequent.len() == 1)
            .collect();
        assert!(!pair_rules.is_empty());
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let m = market();
        let sets = frequent_itemsets(&m, 1, 2);
        assert!(sets.iter().all(|s| s.items.len() <= 2));
    }

    #[test]
    fn empty_matrix_yields_nothing() {
        let m = SparseMatrix::from_rows(3, vec![]);
        assert!(
            apriori_implications(&m, &AprioriConfig::new(1, u32::MAX), 0.5)
                .rules
                .is_empty()
        );
        assert!(frequent_itemsets(&m, 1, 0).is_empty());
    }
}
