//! Brute-force exact rule mining — the test oracle.
//!
//! Counts every pair's co-occurrences by enumerating the pairs of each row
//! (`O(Σ density²)` time, one hash map of pair counters). Fine for test and
//! bench-calibration sizes, hopeless at the paper's scale — which is the
//! point of DMC.

use dmc_core::fxhash::FxHashMap;
use dmc_core::threshold::{conf_qualifies, sim_qualifies};
use dmc_core::{ImplicationRule, SimilarityRule};
use dmc_matrix::{canonical_less, ColumnId, SparseMatrix};

/// Co-occurrence counts for every pair that appears together at least once,
/// keyed by canonically ordered `(a, b)`.
#[must_use]
pub fn pair_hits(matrix: &SparseMatrix) -> FxHashMap<(ColumnId, ColumnId), u32> {
    let ones = matrix.column_ones();
    let mut hits: FxHashMap<(ColumnId, ColumnId), u32> = FxHashMap::default();
    for row in matrix.rows() {
        for (i, &a) in row.iter().enumerate() {
            for &b in &row[i + 1..] {
                let key = if canonical_less(a, ones[a as usize], b, ones[b as usize]) {
                    (a, b)
                } else {
                    (b, a)
                };
                *hits.entry(key).or_insert(0) += 1;
            }
        }
    }
    hits
}

/// All implication rules with confidence ≥ `minconf`, in the paper's
/// canonical direction; with `emit_reverse`, qualifying reverse directions
/// too. Sorted.
#[must_use]
pub fn exact_implications(
    matrix: &SparseMatrix,
    minconf: f64,
    emit_reverse: bool,
) -> Vec<ImplicationRule> {
    let ones = matrix.column_ones();
    let mut rules = Vec::new();
    for ((a, b), h) in pair_hits(matrix) {
        let (oa, ob) = (ones[a as usize], ones[b as usize]);
        if conf_qualifies(u64::from(h), u64::from(oa), minconf) {
            rules.push(ImplicationRule {
                lhs: a,
                rhs: b,
                hits: h,
                lhs_ones: oa,
                rhs_ones: ob,
            });
        }
        if emit_reverse && conf_qualifies(u64::from(h), u64::from(ob), minconf) {
            rules.push(ImplicationRule {
                lhs: b,
                rhs: a,
                hits: h,
                lhs_ones: ob,
                rhs_ones: oa,
            });
        }
    }
    rules.sort_unstable();
    rules
}

/// All similarity rules with Jaccard ≥ `minsim`, canonical order, sorted.
#[must_use]
pub fn exact_similarities(matrix: &SparseMatrix, minsim: f64) -> Vec<SimilarityRule> {
    let ones = matrix.column_ones();
    let mut rules = Vec::new();
    for ((a, b), h) in pair_hits(matrix) {
        let (oa, ob) = (ones[a as usize], ones[b as usize]);
        if sim_qualifies(u64::from(h), u64::from(oa), u64::from(ob), minsim) {
            rules.push(SimilarityRule {
                a,
                b,
                hits: h,
                a_ones: oa,
                b_ones: ob,
            });
        }
    }
    rules.sort_unstable();
    rules
}

/// Exact co-occurrence count of one pair (for spot verification).
#[must_use]
pub fn exact_pair_hits(matrix: &SparseMatrix, a: ColumnId, b: ColumnId) -> u32 {
    let mut hits = 0;
    for row in matrix.rows() {
        if row.binary_search(&a).is_ok() && row.binary_search(&b).is_ok() {
            hits += 1;
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    #[test]
    fn fig2_oracle_matches_paper_rules() {
        let rules = exact_implications(&fig2(), 0.8, false);
        let pairs: Vec<(ColumnId, ColumnId)> = rules.iter().map(|r| (r.lhs, r.rhs)).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 4)]);
    }

    #[test]
    fn pair_hits_counts_cooccurrences() {
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1, 2], vec![1, 2]]);
        let hits = pair_hits(&m);
        // ones: [2, 3, 2] -> canonical keys: (0,1), (0,2), (2,1).
        assert_eq!(hits[&(0, 1)], 2);
        assert_eq!(hits[&(2, 1)], 2);
        assert_eq!(hits[&(0, 2)], 1);
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn exact_pair_hits_spot_check() {
        let m = fig2();
        assert_eq!(exact_pair_hits(&m, 0, 1), 4);
        assert_eq!(exact_pair_hits(&m, 2, 4), 4);
        assert_eq!(exact_pair_hits(&m, 0, 4), 3);
    }

    #[test]
    fn reverse_rules_require_their_own_confidence() {
        // S_0 = {0}, S_1 = {0, 1}.
        let m = SparseMatrix::from_rows(2, vec![vec![0, 1], vec![1]]);
        let fwd = exact_implications(&m, 0.9, false);
        assert_eq!(fwd.len(), 1);
        let both = exact_implications(&m, 0.9, true);
        assert_eq!(both.len(), 1, "reverse at 0.5 conf does not qualify");
        let loose = exact_implications(&m, 0.5, true);
        assert_eq!(loose.len(), 2);
    }

    #[test]
    fn similarity_oracle_basics() {
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1], vec![0, 2]]);
        // sim(0,1) = 2/3; sim(0,2) = 1/3; sim(1,2) = 0.
        let at_060 = exact_similarities(&m, 0.6);
        assert_eq!(at_060.len(), 1);
        assert_eq!((at_060[0].a, at_060[0].b), (1, 0));
        let at_030 = exact_similarities(&m, 0.3);
        assert_eq!(at_030.len(), 2);
    }
}
