//! Baseline algorithms the DMC paper compares against (§3, §6.2 / Fig
//! 6(i),(j)), plus the exact oracle the test suite validates everything
//! with.
//!
//! * [`oracle`] — brute-force exact rule mining. Slow but unarguable;
//!   every miner in the workspace is property-tested against it.
//! * [`apriori`] — support-pruned pair rules (the paper's comparison
//!   target), optional DHP hash filtering \[14\], and, beyond the paper's
//!   pair scope, full k-itemset mining with multi-antecedent rule
//!   generation.
//! * [`minhash`] — Min-Hash signatures [7, 8] with all-pairs comparison or
//!   LSH banding \[10\], with optional exact verification of candidates.
//! * [`kmin`] — the K-Min variant (bottom-k sketches) estimating
//!   containment/confidence for implication rules; like the paper's K-Min
//!   it can produce false negatives, which the harness measures.

pub mod apriori;
pub mod kmin;
pub mod minhash;
pub mod oracle;

#[cfg(test)]
pub(crate) mod test_util {
    use crate::minhash::splitmix64;
    use dmc_matrix::{ColumnId, SparseMatrix};

    /// Deterministic pseudo-random matrix for in-crate tests.
    pub fn random_matrix(rows: usize, cols: usize, density: f64, seed: u64) -> SparseMatrix {
        let mut data = Vec::with_capacity(rows);
        let mut state = seed;
        for r in 0..rows {
            let mut row = Vec::new();
            for c in 0..cols {
                state = splitmix64(state ^ ((r * cols + c) as u64));
                if (state as f64 / u64::MAX as f64) < density {
                    row.push(c as ColumnId);
                }
            }
            data.push(row);
        }
        SparseMatrix::from_rows(cols, data)
    }
}
