//! The persistent mining [`Engine`]: mine once, then serve queries and
//! ingest row batches without re-mining from scratch.
//!
//! Every other entry point in this crate is a batch run that throws its
//! scan state away. The engine keeps it: the loaded [`SparseMatrix`], the
//! per-column row postings (`S_c` as sorted adjacency lists, so
//! `ones(c) = |S_c|` is always current), the live candidate set — one
//! exact hit counter per pair in the current rule set — and the last
//! [`RunReport`].
//!
//! # Why incremental ingest is exact (monotonicity argument)
//!
//! Under row *appends*, `ones(c)` only grows and a pair's `hits` only
//! grows. Confidence in the canonical direction is
//! `hits / min(ones_i, ones_j)` and Jaccard similarity is
//! `hits / (ones_i + ones_j − hits)`; appending a batch changes a pair's
//! score in exactly two ways:
//!
//! * rows where the pair **co-occurs** increment `hits` (score can rise),
//! * rows touching only one side increment one `ones` (score can only
//!   fall).
//!
//! So a pair **not** in the current rule set can newly qualify only if it
//! co-occurs in the appended batch — otherwise its score moved
//! monotonically down. The engine therefore (a) bumps the exact counters
//! of tracked pairs that co-occur in the batch, (b) recounts from the
//! postings — a sorted-list intersection, no row rescan — every
//! *untracked* pair that co-occurs in the batch and admits it if it now
//! qualifies, and (c) re-derives the rule set from the tracked counters,
//! pruning pairs whose budget is now exceeded. Pruning revives nothing:
//! a pruned pair is simply untracked again, and can only re-enter through
//! a fresh batch co-occurrence and exact recount (step b), never through
//! stale state. The result is byte-identical to a from-scratch mine over
//! the concatenated rows (property-tested in `tests/tests/engine_ingest.rs`).
//!
//! Rule direction is *not* monotone — an append can flip which side of a
//! pair has fewer ones — so the canonical direction is re-derived from
//! the current `ones` at every derivation, never cached.
//!
//! # Example
//!
//! ```
//! use dmc_core::{Engine, MineConfig, SparseMatrix};
//!
//! let m = SparseMatrix::from_rows(3, vec![
//!     vec![1, 2], vec![0, 1, 2], vec![0], vec![1],
//! ]);
//! let mut engine = Engine::new(MineConfig::implications(1.0).unwrap(), m);
//! engine.mine();
//! assert_eq!(engine.implication_rules().len(), 1); // c2 => c1
//!
//! let report = engine.ingest(&[vec![1, 2], vec![2]]).unwrap();
//! assert_eq!(report.rows, 2);
//! let answer = engine.query(2, 1).unwrap();
//! assert_eq!((answer.hits, answer.lhs_ones), (3, 4));
//! ```

use crate::compact::{CompactedBase, CompactionConfig};
use crate::config::{ImplicationConfig, SimilarityConfig};
use crate::error::{ConfigError, MineError};
use crate::fxhash::FxHashMap;
use crate::imp::{find_implications, ImplicationOutput};
use crate::parallel::{find_implications_parallel, find_similarities_parallel};
use crate::rules::{ImplicationRule, SimilarityRule};
use crate::sim::{find_similarities, SimilarityOutput};
use crate::threshold::{conf_qualifies, sim_qualifies};
use dmc_matrix::{canonical_less, ColumnId, RowId, SparseMatrix};
use dmc_metrics::{IngestStats, RunReport};
use std::time::Instant;

/// Which mine an [`Engine`] runs, unifying the two config types.
#[derive(Clone, Debug)]
pub enum MineConfig {
    /// DMC-imp with this configuration.
    Implication(ImplicationConfig),
    /// DMC-sim with this configuration.
    Similarity(SimilarityConfig),
}

impl MineConfig {
    /// An implication mine at `minconf`, with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `0 < minconf <= 1` — the typed
    /// replacement for the `Miner::implications` panic.
    pub fn implications(minconf: f64) -> Result<Self, ConfigError> {
        if !(minconf > 0.0 && minconf <= 1.0) {
            return Err(ConfigError {
                name: "minconf",
                value: minconf,
            });
        }
        Ok(Self::Implication(ImplicationConfig::new(minconf)))
    }

    /// A similarity mine at `minsim`, with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] unless `0 < minsim <= 1`.
    pub fn similarities(minsim: f64) -> Result<Self, ConfigError> {
        if !(minsim > 0.0 && minsim <= 1.0) {
            return Err(ConfigError {
                name: "minsim",
                value: minsim,
            });
        }
        Ok(Self::Similarity(SimilarityConfig::new(minsim)))
    }

    /// The configured threshold (`minconf` or `minsim`).
    #[must_use]
    pub fn threshold(&self) -> f64 {
        match self {
            MineConfig::Implication(c) => c.minconf,
            MineConfig::Similarity(c) => c.minsim,
        }
    }

    /// `"implication"` or `"similarity"` (matches the run-report field).
    #[must_use]
    pub fn algorithm(&self) -> &'static str {
        match self {
            MineConfig::Implication(_) => "implication",
            MineConfig::Similarity(_) => "similarity",
        }
    }

    /// Whether the configuration emits reverse implication rules
    /// (always `false` for similarity — those are symmetric).
    #[must_use]
    pub fn emit_reverse(&self) -> bool {
        match self {
            MineConfig::Implication(c) => c.emit_reverse,
            MineConfig::Similarity(_) => false,
        }
    }
}

impl From<ImplicationConfig> for MineConfig {
    fn from(c: ImplicationConfig) -> Self {
        MineConfig::Implication(c)
    }
}

impl From<SimilarityConfig> for MineConfig {
    fn from(c: SimilarityConfig) -> Self {
        MineConfig::Similarity(c)
    }
}

/// What one [`Engine::ingest`] call did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IngestReport {
    /// Rows appended by this call.
    pub rows: usize,
    /// Tracked pairs whose hit counter was bumped by a batch co-occurrence.
    pub pairs_bumped: u64,
    /// Untracked batch-co-occurring pairs recounted from the postings.
    pub pairs_recounted: u64,
    /// Recounted pairs that qualified and entered the rule set.
    pub rules_born: u64,
    /// Previously tracked pairs pruned because their budget is now exceeded.
    pub rules_died: u64,
    /// Rules in the set after re-derivation.
    pub rules: usize,
    /// Wall clock of the ingest, in seconds.
    pub wall_seconds: f64,
}

/// Answer to a point [`Engine::query`] — exact counts from the postings,
/// no row rescan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuleAnswer {
    pub lhs: ColumnId,
    pub rhs: ColumnId,
    /// Rows where both columns are 1.
    pub hits: u32,
    /// `|S_lhs|`.
    pub lhs_ones: u32,
    /// `|S_rhs|`.
    pub rhs_ones: u32,
    /// `hits / lhs_ones` in the queried direction (0 for an empty LHS).
    pub confidence: f64,
    /// Jaccard `hits / |S_lhs ∪ S_rhs|` (0 for an empty union).
    pub similarity: f64,
    /// Whether the queried direction meets the engine's threshold, via
    /// the same boundary predicates the miners use.
    pub qualifies: bool,
}

/// Pairs are tracked keyed by id order; the canonical *rule* direction is
/// re-derived from the current ones at every derivation.
#[inline]
fn pair_key(a: ColumnId, b: ColumnId) -> (ColumnId, ColumnId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Size of the sorted-list intersection (both inputs strictly increasing).
fn intersect_len(a: &[RowId], b: &[RowId]) -> u32 {
    let (mut i, mut j, mut n) = (0, 0, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// A persistent mining engine; see the [module docs](self).
#[derive(Debug)]
pub struct Engine {
    config: MineConfig,
    threads: usize,
    matrix: SparseMatrix,
    /// `S_c` per column, ascending row ids; `ones(c) = postings[c].len()`.
    postings: Vec<Vec<RowId>>,
    /// Exact hit counters for every pair in the current rule set.
    tracked: FxHashMap<(ColumnId, ColumnId), u32>,
    imp_rules: Vec<ImplicationRule>,
    sim_rules: Vec<SimilarityRule>,
    report: Option<RunReport>,
    ingest_stats: IngestStats,
    mined: bool,
    /// Serving-side compaction filters; `Some` turns on the compaction
    /// stage (base maintenance + report section).
    compaction: Option<CompactionConfig>,
    /// Irredundant base of the current rule set, refreshed after every
    /// mine and ingest when compaction is configured.
    base: Option<CompactedBase>,
}

impl Engine {
    /// Wraps a loaded matrix; call [`Engine::mine`] (or let the first
    /// [`Engine::ingest`] trigger it) before querying rules.
    #[must_use]
    pub fn new(config: MineConfig, matrix: SparseMatrix) -> Self {
        let postings = matrix.column_rows();
        Self {
            config,
            threads: 1,
            matrix,
            postings,
            tracked: FxHashMap::default(),
            imp_rules: Vec::new(),
            sim_rules: Vec::new(),
            report: None,
            ingest_stats: IngestStats::default(),
            mined: false,
            compaction: None,
            base: None,
        }
    }

    /// Builder-style worker count for [`Engine::mine`], resolved through
    /// [`effective_workers`](crate::effective_workers) like the facade.
    /// Ingest and queries are always single-threaded.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Builder-style compaction stage: the engine maintains an
    /// irredundant [`CompactedBase`] of the rule set (refreshed on every
    /// mine and ingest), serves rule queries from it filtered by
    /// `config`, and attaches the v7 `compaction` report section.
    #[must_use]
    pub fn with_compaction(mut self, config: CompactionConfig) -> Self {
        self.compaction = Some(config);
        self
    }

    /// The serving-side compaction filters, when compaction is on.
    #[must_use]
    pub fn compaction(&self) -> Option<&CompactionConfig> {
        self.compaction.as_ref()
    }

    /// The irredundant base of the current rule set (`None` until the
    /// first mine, or when compaction is off).
    #[must_use]
    pub fn compacted_base(&self) -> Option<&CompactedBase> {
        self.base.as_ref()
    }

    /// Expands the irredundant base back into the full rule set — the
    /// serve layer's expansion query. For engines without a configured
    /// compaction stage the base is computed on the fly; either way the
    /// result is byte-identical to the engine's current rules.
    #[must_use]
    pub fn expand_rules(&self) -> (Vec<ImplicationRule>, Vec<SimilarityRule>) {
        match &self.base {
            Some(base) => base.expand(),
            None => self.compact_current().expand(),
        }
    }

    fn compact_current(&self) -> CompactedBase {
        let (minconf, minsim) = match &self.config {
            MineConfig::Implication(c) => (c.minconf, 1.0),
            MineConfig::Similarity(c) => (1.0, c.minsim),
        };
        crate::compact::compact(
            &self.imp_rules,
            &self.sim_rules,
            minconf,
            minsim,
            Some(self.config.emit_reverse()),
        )
    }

    fn refresh_base(&mut self) {
        if self.compaction.is_some() {
            self.base = Some(self.compact_current());
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &MineConfig {
        &self.config
    }

    /// The owned matrix (base rows plus everything ingested).
    #[must_use]
    pub fn matrix(&self) -> &SparseMatrix {
        &self.matrix
    }

    /// Current `ones(c)`, or `None` for an out-of-range id.
    #[must_use]
    pub fn ones(&self, c: ColumnId) -> Option<u32> {
        self.postings.get(c as usize).map(|p| p.len() as u32)
    }

    /// Implication rules of the current set (empty for similarity engines
    /// and before the first mine).
    #[must_use]
    pub fn implication_rules(&self) -> &[ImplicationRule] {
        &self.imp_rules
    }

    /// Similarity rules of the current set (empty for implication engines
    /// and before the first mine).
    #[must_use]
    pub fn similarity_rules(&self) -> &[SimilarityRule] {
        &self.sim_rules
    }

    /// Rules in the current set.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.imp_rules.len() + self.sim_rules.len()
    }

    /// The last full mine's report, if one ran.
    #[must_use]
    pub fn report(&self) -> Option<&RunReport> {
        self.report.as_ref()
    }

    /// Cumulative ingest counters since construction.
    #[must_use]
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest_stats
    }

    /// The last mine's report with the cumulative `ingest` section — and,
    /// when compaction is on, the `compaction` section — attached: the
    /// `dmc.run_report.v7` shape a serving layer reports.
    #[must_use]
    pub fn report_with_ingest(&self) -> Option<RunReport> {
        let mut report = self.report.clone()?;
        if self.ingest_stats.batches > 0 {
            report.ingest = Some(self.ingest_stats);
        }
        if let Some(base) = &self.base {
            report.compaction = Some(base.report());
        }
        Some(report)
    }

    /// Mines the owned matrix from scratch, (re)building the tracked
    /// candidate set, and returns the run report.
    ///
    /// Dispatches exactly like [`Miner`](crate::Miner): the requested
    /// thread count resolves through
    /// [`effective_workers`](crate::effective_workers), `<= 1` running
    /// the sequential drivers. Rules are bit-identical either way.
    pub fn mine(&mut self) -> &RunReport {
        let _span = dmc_metrics::span!("engine.mine");
        dmc_metrics::telemetry::global()
            .counter("engine.mines")
            .inc();
        match &self.config {
            MineConfig::Implication(cfg) => {
                let out = dispatch_implications(&self.matrix, cfg, self.threads);
                self.tracked = out
                    .rules
                    .iter()
                    .map(|r| (pair_key(r.lhs, r.rhs), r.hits))
                    .collect();
                self.imp_rules = out.rules;
                self.report = Some(out.report);
            }
            MineConfig::Similarity(cfg) => {
                let out = dispatch_similarities(&self.matrix, cfg, self.threads);
                self.tracked = out
                    .rules
                    .iter()
                    .map(|r| (pair_key(r.a, r.b), r.hits))
                    .collect();
                self.sim_rules = out.rules;
                self.report = Some(out.report);
            }
        }
        self.mined = true;
        self.refresh_base();
        self.report.as_ref().expect("mine stores a report")
    }

    /// Appends a row batch and incrementally re-derives the rule set
    /// (see the [module docs](self) for why this is exact). The first
    /// ingest on an un-mined engine runs [`Engine::mine`] first, so the
    /// tracked-candidate invariant always holds.
    ///
    /// # Errors
    ///
    /// Returns [`MineError::ColumnOutOfRange`] — with the would-be global
    /// row index — and leaves the engine untouched if any id is
    /// `>= n_cols()`.
    pub fn ingest(&mut self, rows: &[Vec<ColumnId>]) -> Result<IngestReport, MineError> {
        let _span = dmc_metrics::span!("engine.ingest");
        let start = Instant::now();
        let n_cols = self.matrix.n_cols();
        for (k, row) in rows.iter().enumerate() {
            if let Some(&id) = row.iter().find(|&&id| id as usize >= n_cols) {
                return Err(MineError::ColumnOutOfRange {
                    row: self.matrix.n_rows() + k,
                    id,
                });
            }
        }
        if !self.mined {
            self.mine();
        }

        let mut report = IngestReport {
            rows: rows.len(),
            ..IngestReport::default()
        };
        let mut recount: Vec<(ColumnId, ColumnId)> = Vec::new();
        for row in rows {
            let mut cols = row.clone();
            cols.sort_unstable();
            cols.dedup();
            let row_id = self.matrix.n_rows() as RowId;
            self.matrix.append_sorted_row(&cols);
            for &c in &cols {
                self.postings[c as usize].push(row_id);
            }
            for (i, &a) in cols.iter().enumerate() {
                for &b in &cols[i + 1..] {
                    match self.tracked.get_mut(&(a, b)) {
                        Some(hits) => {
                            *hits += 1;
                            report.pairs_bumped += 1;
                        }
                        None => recount.push((a, b)),
                    }
                }
            }
        }
        // An untracked pair can appear in several batch rows; recount it
        // once (the intersection below already covers the whole batch).
        recount.sort_unstable();
        recount.dedup();
        for (a, b) in recount {
            report.pairs_recounted += 1;
            let hits = intersect_len(&self.postings[a as usize], &self.postings[b as usize]);
            if self.pair_qualifies(a, b, hits) {
                self.tracked.insert((a, b), hits);
                report.rules_born += 1;
            }
        }
        report.rules_died = self.derive_rules();
        report.rules = self.rule_count();
        report.wall_seconds = start.elapsed().as_secs_f64();

        let registry = dmc_metrics::telemetry::global();
        registry.counter("engine.ingest_batches").inc();
        registry
            .counter("engine.ingest_rows")
            .add(report.rows as u64);
        registry
            .histogram("engine.ingest")
            .record_us(start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);

        self.ingest_stats.batches += 1;
        self.ingest_stats.rows_ingested += report.rows as u64;
        self.ingest_stats.pairs_bumped += report.pairs_bumped;
        self.ingest_stats.pairs_recounted += report.pairs_recounted;
        self.ingest_stats.rules_born += report.rules_born;
        self.ingest_stats.rules_died += report.rules_died;
        Ok(report)
    }

    /// Exact confidence/similarity for one directed pair, from the
    /// postings (no row rescan). `None` when either id is out of range.
    #[must_use]
    pub fn query(&self, lhs: ColumnId, rhs: ColumnId) -> Option<RuleAnswer> {
        let _span = dmc_metrics::span!("engine.query");
        dmc_metrics::telemetry::global()
            .counter("engine.queries")
            .inc();
        let pl = self.postings.get(lhs as usize)?;
        let pr = self.postings.get(rhs as usize)?;
        let hits = intersect_len(pl, pr);
        let (lhs_ones, rhs_ones) = (pl.len() as u32, pr.len() as u32);
        let confidence = if lhs_ones == 0 {
            0.0
        } else {
            f64::from(hits) / f64::from(lhs_ones)
        };
        let union = lhs_ones + rhs_ones - hits;
        let similarity = if union == 0 {
            0.0
        } else {
            f64::from(hits) / f64::from(union)
        };
        let qualifies = match &self.config {
            MineConfig::Implication(c) => {
                conf_qualifies(u64::from(hits), u64::from(lhs_ones), c.minconf)
            }
            MineConfig::Similarity(c) => sim_qualifies(
                u64::from(hits),
                u64::from(lhs_ones),
                u64::from(rhs_ones),
                c.minsim,
            ),
        };
        Some(RuleAnswer {
            lhs,
            rhs,
            hits,
            lhs_ones,
            rhs_ones,
            confidence,
            similarity,
            qualifies,
        })
    }

    /// Does the pair qualify in its canonical direction under the current
    /// ones? Uses the exact boundary predicates of [`crate::threshold`].
    fn pair_qualifies(&self, a: ColumnId, b: ColumnId, hits: u32) -> bool {
        let (ones_a, ones_b) = (
            self.postings[a as usize].len() as u32,
            self.postings[b as usize].len() as u32,
        );
        match &self.config {
            MineConfig::Implication(c) => {
                let lhs_ones = if canonical_less(a, ones_a, b, ones_b) {
                    ones_a
                } else {
                    ones_b
                };
                conf_qualifies(u64::from(hits), u64::from(lhs_ones), c.minconf)
            }
            MineConfig::Similarity(c) => sim_qualifies(
                u64::from(hits),
                u64::from(ones_a),
                u64::from(ones_b),
                c.minsim,
            ),
        }
    }

    /// Rebuilds the rule vectors from the tracked counters, pruning pairs
    /// that no longer qualify. Returns how many pairs were pruned.
    fn derive_rules(&mut self) -> u64 {
        let mut died = 0u64;
        match &self.config {
            MineConfig::Implication(cfg) => {
                let mut rules = Vec::with_capacity(self.tracked.len());
                let postings = &self.postings;
                self.tracked.retain(|&(a, b), hits| {
                    let (ones_a, ones_b) = (
                        postings[a as usize].len() as u32,
                        postings[b as usize].len() as u32,
                    );
                    // Canonical direction from the *current* ones: appends
                    // can flip which side is sparser.
                    let (lhs, rhs, lhs_ones, rhs_ones) = if canonical_less(a, ones_a, b, ones_b) {
                        (a, b, ones_a, ones_b)
                    } else {
                        (b, a, ones_b, ones_a)
                    };
                    let keep = conf_qualifies(u64::from(*hits), u64::from(lhs_ones), cfg.minconf);
                    if keep {
                        let rule = ImplicationRule {
                            lhs,
                            rhs,
                            hits: *hits,
                            lhs_ones,
                            rhs_ones,
                        };
                        rules.push(rule);
                        // conf(lhs ⇒ rhs) >= conf(rhs ⇒ lhs), so checking
                        // the reverse alone matches the driver's filter.
                        if cfg.emit_reverse
                            && conf_qualifies(u64::from(*hits), u64::from(rhs_ones), cfg.minconf)
                        {
                            rules.push(rule.reversed());
                        }
                    } else {
                        died += 1;
                    }
                    keep
                });
                rules.sort_unstable();
                rules.dedup();
                self.imp_rules = rules;
            }
            MineConfig::Similarity(cfg) => {
                let mut rules = Vec::with_capacity(self.tracked.len());
                let postings = &self.postings;
                self.tracked.retain(|&(i, j), hits| {
                    let (ones_i, ones_j) = (
                        postings[i as usize].len() as u32,
                        postings[j as usize].len() as u32,
                    );
                    let keep = sim_qualifies(
                        u64::from(*hits),
                        u64::from(ones_i),
                        u64::from(ones_j),
                        cfg.minsim,
                    );
                    if keep {
                        let (a, b, a_ones, b_ones) = if canonical_less(i, ones_i, j, ones_j) {
                            (i, j, ones_i, ones_j)
                        } else {
                            (j, i, ones_j, ones_i)
                        };
                        rules.push(SimilarityRule {
                            a,
                            b,
                            hits: *hits,
                            a_ones,
                            b_ones,
                        });
                    } else {
                        died += 1;
                    }
                    keep
                });
                rules.sort_unstable();
                rules.dedup();
                self.sim_rules = rules;
            }
        }
        self.refresh_base();
        died
    }
}

/// One dispatch path for in-memory implication mines, shared by
/// [`Engine::mine`] and the [`Miner`](crate::Miner) facade.
pub(crate) fn dispatch_implications(
    matrix: &SparseMatrix,
    config: &ImplicationConfig,
    threads: usize,
) -> ImplicationOutput {
    let workers = crate::fanout::effective_workers(threads);
    if workers <= 1 {
        find_implications(matrix, config)
    } else {
        find_implications_parallel(matrix, config, workers)
    }
}

/// One dispatch path for in-memory similarity mines, shared by
/// [`Engine::mine`] and the [`Miner`](crate::Miner) facade.
pub(crate) fn dispatch_similarities(
    matrix: &SparseMatrix,
    config: &SimilarityConfig,
    threads: usize,
) -> SimilarityOutput {
    let workers = crate::fanout::effective_workers(threads);
    if workers <= 1 {
        find_similarities(matrix, config)
    } else {
        find_similarities_parallel(matrix, config, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_matrix::MatrixBuilder;

    fn fig2_rows() -> Vec<Vec<ColumnId>> {
        vec![
            vec![1, 5],
            vec![2, 3, 4],
            vec![2, 4],
            vec![0, 1, 2, 5],
            vec![0, 1, 2, 3, 4],
            vec![0, 1, 3, 5],
            vec![0, 2, 3, 4, 5],
            vec![3, 5],
            vec![0, 1, 4],
        ]
    }

    fn matrix_of(rows: &[Vec<ColumnId>]) -> SparseMatrix {
        let mut b = MatrixBuilder::new(6);
        for row in rows {
            b.push_row(row.clone());
        }
        b.finish()
    }

    fn from_scratch_imp(rows: &[Vec<ColumnId>], minconf: f64) -> Vec<ImplicationRule> {
        find_implications(&matrix_of(rows), &ImplicationConfig::new(minconf)).rules
    }

    #[test]
    fn config_constructors_validate() {
        assert!(MineConfig::implications(0.9).is_ok());
        assert!(MineConfig::similarities(1.0).is_ok());
        let err = MineConfig::implications(0.0).unwrap_err();
        assert_eq!(err.name, "minconf");
        let err = MineConfig::similarities(1.5).unwrap_err();
        assert_eq!(err.to_string(), "minsim must be in (0, 1], got 1.5");
        assert!(MineConfig::implications(f64::NAN).is_err());
    }

    #[test]
    fn mine_matches_the_batch_drivers() {
        let rows = fig2_rows();
        let mut engine = Engine::new(MineConfig::implications(0.8).unwrap(), matrix_of(&rows));
        engine.mine();
        assert_eq!(engine.implication_rules(), from_scratch_imp(&rows, 0.8));
        assert_eq!(engine.report().unwrap().algorithm, "implication");

        let expected = find_similarities(&matrix_of(&rows), &SimilarityConfig::new(0.4)).rules;
        let mut engine = Engine::new(MineConfig::similarities(0.4).unwrap(), matrix_of(&rows));
        engine.mine();
        assert_eq!(engine.similarity_rules(), expected);
    }

    #[test]
    fn ingest_is_byte_identical_to_from_scratch() {
        let all = fig2_rows();
        for minconf in [0.5, 0.8, 1.0] {
            for split in [1, 4, 7] {
                let (base, batch) = all.split_at(split);
                let mut engine =
                    Engine::new(MineConfig::implications(minconf).unwrap(), matrix_of(base));
                engine.mine();
                let report = engine.ingest(batch).unwrap();
                assert_eq!(report.rows, batch.len());
                assert_eq!(
                    engine.implication_rules(),
                    from_scratch_imp(&all, minconf),
                    "minconf {minconf} split {split}"
                );
                assert_eq!(report.rules, engine.rule_count());
            }
        }
    }

    #[test]
    fn ingest_row_by_row_matches_too() {
        let all = fig2_rows();
        let mut engine = Engine::new(MineConfig::similarities(0.4).unwrap(), matrix_of(&all[..2]));
        engine.mine();
        for row in &all[2..] {
            engine.ingest(std::slice::from_ref(row)).unwrap();
        }
        let expected = find_similarities(&matrix_of(&all), &SimilarityConfig::new(0.4)).rules;
        assert_eq!(engine.similarity_rules(), expected);
        assert_eq!(engine.ingest_stats().batches, 7);
        assert_eq!(engine.ingest_stats().rows_ingested, 7);
    }

    #[test]
    fn ingest_with_emit_reverse_matches() {
        let all = fig2_rows();
        let cfg = ImplicationConfig::new(0.6).with_reverse(true);
        let expected = find_implications(&matrix_of(&all), &cfg).rules;
        let mut engine = Engine::new(cfg.into(), matrix_of(&all[..5]));
        engine.mine();
        engine.ingest(&all[5..]).unwrap();
        assert_eq!(engine.implication_rules(), expected);
    }

    #[test]
    fn first_ingest_mines_implicitly() {
        let all = fig2_rows();
        let mut engine = Engine::new(MineConfig::implications(0.8).unwrap(), matrix_of(&all[..6]));
        engine.ingest(&all[6..]).unwrap();
        assert_eq!(engine.implication_rules(), from_scratch_imp(&all, 0.8));
    }

    #[test]
    fn ingest_rejects_out_of_range_ids_atomically() {
        let all = fig2_rows();
        let mut engine = Engine::new(MineConfig::implications(0.8).unwrap(), matrix_of(&all));
        engine.mine();
        let before_rows = engine.matrix().n_rows();
        let err = engine.ingest(&[vec![1], vec![2, 6]]).unwrap_err();
        match err {
            MineError::ColumnOutOfRange { row, id } => {
                assert_eq!(row, before_rows + 1);
                assert_eq!(id, 6);
            }
            other => panic!("expected ColumnOutOfRange, got {other:?}"),
        }
        assert_eq!(engine.matrix().n_rows(), before_rows, "nothing appended");
    }

    #[test]
    fn query_answers_from_postings() {
        let all = fig2_rows();
        let mut engine = Engine::new(MineConfig::implications(0.8).unwrap(), matrix_of(&all));
        engine.mine();
        // c5 occurs in rows {0,3,5,6,7} (5 ones); c3 in {1,4,5,6,7} (5 ones);
        // they co-occur in rows {5,6,7}.
        let a = engine.query(5, 3).unwrap();
        assert_eq!((a.hits, a.lhs_ones, a.rhs_ones), (3, 5, 5));
        assert!((a.confidence - 0.6).abs() < 1e-12);
        assert!((a.similarity - 3.0 / 7.0).abs() < 1e-12);
        assert!(!a.qualifies);
        assert!(engine.query(0, 6).is_none(), "out of range is None");
        assert_eq!(engine.ones(5), Some(5));
        assert_eq!(engine.ones(6), None);
    }

    #[test]
    fn report_with_ingest_attaches_the_v5_section() {
        let all = fig2_rows();
        let mut engine = Engine::new(MineConfig::implications(0.8).unwrap(), matrix_of(&all[..7]));
        assert!(engine.report_with_ingest().is_none(), "no mine yet");
        engine.mine();
        assert!(
            engine.report_with_ingest().unwrap().ingest.is_none(),
            "no ingest yet"
        );
        engine.ingest(&all[7..]).unwrap();
        let ingest = engine.report_with_ingest().unwrap().ingest.unwrap();
        assert_eq!(ingest.batches, 1);
        assert_eq!(ingest.rows_ingested, 2);
    }

    #[test]
    fn compaction_engine_maintains_base_and_report_section() {
        let all = fig2_rows();
        let mut engine = Engine::new(MineConfig::implications(0.6).unwrap(), matrix_of(&all[..5]))
            .with_compaction(CompactionConfig::default());
        assert!(engine.compacted_base().is_none(), "no base before mine");
        engine.mine();

        let base = engine.compacted_base().expect("base after mine");
        assert!(base.rules_in_base() <= engine.rule_count());
        let (expanded, _) = engine.expand_rules();
        assert_eq!(expanded, engine.implication_rules());

        let report = engine.report_with_ingest().unwrap();
        let section = report.compaction.expect("compaction section attached");
        assert_eq!(section.rules_in as usize, engine.rule_count());
        assert!(report.reconciles());

        // Ingest refreshes the base: expansion still matches exactly.
        engine.ingest(&all[5..]).unwrap();
        let (expanded, _) = engine.expand_rules();
        assert_eq!(expanded, engine.implication_rules());
        let section = engine.report_with_ingest().unwrap().compaction.unwrap();
        assert_eq!(section.rules_in as usize, engine.rule_count());
    }

    #[test]
    fn expand_rules_without_compaction_matches_rules() {
        let all = fig2_rows();
        let mut engine = Engine::new(
            MineConfig::Implication(ImplicationConfig::new(0.6).with_reverse(true)),
            matrix_of(&all),
        );
        engine.mine();
        assert!(engine.compacted_base().is_none());
        let (expanded, _) = engine.expand_rules();
        assert_eq!(expanded, engine.implication_rules());
        assert!(
            engine.report_with_ingest().unwrap().compaction.is_none(),
            "no section without a compaction stage"
        );
    }

    #[test]
    fn intersect_len_basics() {
        assert_eq!(intersect_len(&[], &[]), 0);
        assert_eq!(intersect_len(&[1, 3, 5], &[2, 4]), 0);
        assert_eq!(intersect_len(&[1, 3, 5, 9], &[3, 5, 6, 9]), 3);
    }
}
