//! Column-sharded multi-process mining (`dmc shard`).
//!
//! Every DMC rule has exactly one *canonical owner*: the LHS column of an
//! implication (sparser column, ties by id) or the `a` column of a
//! similarity pair. Splitting the column range `[0, n_cols)` into
//! contiguous shards therefore partitions the rule set exactly — each
//! worker mines with an LHS mask restricted to its range (see
//! `find_implications_masked` / `find_similarities_masked`: masked
//! columns still serve as RHS partners, so every unmasked column's
//! candidate evolution is byte-identical to the unsharded run), and the
//! merged union of the per-shard outputs equals the single-process rule
//! set byte for byte. Reverse implication rules are computed inside the
//! owner shard from the forward rule, so they partition too.
//!
//! # Shard file protocol
//!
//! Each worker writes one shard file (`<manifest>.shard<i>`) of
//! checksummed frames ([`dmc_matrix::framed`]): frame 0 is the shard
//! header — its own manifest entry — and the remaining frames carry rule
//! batches of [`RULE_BYTES`]-byte records. Two integrity layers guard the
//! hand-off:
//!
//! * every frame carries a CRC32, so torn writes and flipped bytes
//!   surface as [`ShardError::Corrupt`], and
//! * the header's trailing **counter fingerprint** is a CRC32 over the
//!   header bytes (fingerprint field excluded) and every rule record, so
//!   a shard whose frames are individually valid but whose payload was
//!   swapped or tampered with fails [`ShardError::FingerprintMismatch`].
//!
//! [`merge_shards`] validates both layers plus the header identities
//! (dense shard indices, consistent algorithm/threshold/dimensions,
//! ranges tiling the column space exactly), writes the consolidated
//! manifest — the validated header frames, in shard order — to the
//! manifest path, and reconciles the per-shard reports into one
//! `dmc.run_report.v8` report whose `shard` section carries every
//! entry. A failed merge removes the partial manifest; a successful one
//! removes the per-shard spills unless asked to keep them.
//!
//! # Progress frames
//!
//! The shard protocol above is the *correctness* hand-off; alongside it
//! runs an advisory *telemetry* hand-off. Each worker writes a tiny
//! progress file (`<manifest>.shard<i>.progress`) at its phase
//! transitions — `mining` when it starts, `writing` once the rules are
//! mined, `done` when its spill is on disk — via [`write_progress`].
//! Writes are best-effort (a failed progress write never fails the
//! worker) and atomic-enough for the purpose: the coordinator polls the
//! files with [`read_progress`] while it waits on the children and
//! mirrors what it sees into the process-wide telemetry registry
//! (`shard.workers_running` / `shard.workers_done` gauges and the
//! `shard.rules_reported` counter). A torn or missing read degrades to
//! "no update", never to a wrong merge. The files are removed with the
//! spills once the merge completes.

use crate::engine::MineConfig;
use crate::imp::find_implications_masked;
use crate::rules::{ImplicationRule, SimilarityRule};
use crate::sim::find_similarities_masked;
use dmc_matrix::framed::{FrameReader, FrameWriter, FramedError};
use dmc_matrix::spill_io::{crc32, RetryPolicy, SpillIo};
use dmc_matrix::SparseMatrix;
use dmc_metrics::{RunReport, ScanTally, ShardReport, ShardSummary, StageReport};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Magic bytes opening every shard header frame.
pub const SHARD_MAGIC: &[u8; 8] = b"DMCSHRD1";

/// Encoded size of one rule record: five `u32` little-endian words
/// (`lhs, rhs, hits, lhs_ones, rhs_ones` for implications;
/// `a, b, hits, a_ones, b_ones` for similarities).
pub const RULE_BYTES: usize = 20;

/// Rules per rule-batch frame.
const RULES_PER_FRAME: usize = 512;

/// Fixed size of the header frame payload, fingerprint included.
pub const HEADER_BYTES: usize = 280;

const ALGO_IMPLICATION: u8 = 0;
const ALGO_SIMILARITY: u8 = 1;

const FLAG_HUNDRED: u8 = 1;
const FLAG_SUB: u8 = 1 << 1;
const FLAG_SWITCH: u8 = 1 << 2;

/// A typed sharding failure: bad configuration, backend I/O, or one of
/// the merge-time integrity checks.
#[derive(Debug)]
pub enum ShardError {
    /// Invalid shard configuration (zero shards, bad worker spec, …).
    Config(String),
    /// The I/O backend failed permanently.
    Io {
        /// What the operation was doing.
        context: &'static str,
        /// The underlying error, kind preserved.
        error: io::Error,
    },
    /// A shard file the plan promised does not exist.
    MissingShard {
        /// Shard index.
        index: usize,
        /// Path the merge looked for.
        path: PathBuf,
    },
    /// A shard file failed frame-level or structural decoding.
    Corrupt {
        /// Shard index.
        shard: usize,
        /// Which guard tripped.
        detail: String,
    },
    /// A shard header disagrees with the plan or with its peers.
    HeaderMismatch {
        /// Shard index.
        shard: usize,
        /// What disagreed.
        detail: String,
    },
    /// The recomputed counter fingerprint disagrees with the header.
    FingerprintMismatch {
        /// Shard index.
        shard: usize,
        /// Fingerprint stored in the header.
        expected: u32,
        /// Fingerprint recomputed from the decoded bytes.
        actual: u32,
    },
    /// The header's rule count disagrees with the decoded rule frames.
    RuleCountMismatch {
        /// Shard index.
        shard: usize,
        /// Rules the header promised.
        expected: u64,
        /// Rules the frames carried.
        actual: u64,
    },
    /// The shard column ranges do not tile `[0, n_cols)` exactly.
    BadRanges {
        /// Which tiling rule broke (gap, overlap, duplicate, bounds).
        detail: String,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Config(detail) => write!(f, "shard config: {detail}"),
            ShardError::Io { context, error } => write!(f, "shard io ({context}): {error}"),
            ShardError::MissingShard { index, path } => {
                write!(f, "shard {index} missing: {}", path.display())
            }
            ShardError::Corrupt { shard, detail } => {
                write!(f, "shard {shard} corrupt: {detail}")
            }
            ShardError::HeaderMismatch { shard, detail } => {
                write!(f, "shard {shard} header mismatch: {detail}")
            }
            ShardError::FingerprintMismatch {
                shard,
                expected,
                actual,
            } => write!(
                f,
                "shard {shard} fingerprint mismatch: header {expected:#010x}, \
                 recomputed {actual:#010x}"
            ),
            ShardError::RuleCountMismatch {
                shard,
                expected,
                actual,
            } => write!(
                f,
                "shard {shard} rule count mismatch: header promised {expected}, \
                 frames carried {actual}"
            ),
            ShardError::BadRanges { detail } => write!(f, "shard ranges: {detail}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<FramedError> for ShardError {
    fn from(e: FramedError) -> Self {
        match e {
            FramedError::Io { context, error } => ShardError::Io { context, error },
            FramedError::Corrupt { frame, reason } => ShardError::Corrupt {
                shard: usize::MAX,
                detail: format!("frame {frame}: {reason}"),
            },
        }
    }
}

/// Tags a framed error with the shard it came from.
fn framed_err(shard: usize, e: FramedError) -> ShardError {
    match ShardError::from(e) {
        ShardError::Corrupt { detail, .. } => ShardError::Corrupt { shard, detail },
        other => other,
    }
}

/// Splits `[0, n_cols)` into at most `n_shards` contiguous, balanced
/// ranges (fewer when there are fewer columns than shards; exactly one
/// empty range for an empty matrix, so the plan is never empty).
///
/// # Errors
///
/// [`ShardError::Config`] when `n_shards` is zero.
pub fn plan_shards(n_cols: usize, n_shards: usize) -> Result<Vec<(u32, u32)>, ShardError> {
    if n_shards == 0 {
        return Err(ShardError::Config(
            "shard count must be at least 1".to_string(),
        ));
    }
    if n_cols == 0 {
        return Ok(vec![(0, 0)]);
    }
    let n = n_shards.min(n_cols);
    let base = n_cols / n;
    let extra = n_cols % n;
    let mut ranges = Vec::with_capacity(n);
    let mut lo = 0usize;
    for i in 0..n {
        let width = base + usize::from(i < extra);
        ranges.push((lo as u32, (lo + width) as u32));
        lo += width;
    }
    Ok(ranges)
}

/// Checks that `ranges` (in shard order) tile `[0, n_cols)` exactly:
/// ascending, first at 0, last at `n_cols`, no gap, overlap or duplicate.
///
/// # Errors
///
/// [`ShardError::BadRanges`] naming the broken rule.
pub fn validate_ranges(ranges: &[(u32, u32)], n_cols: u32) -> Result<(), ShardError> {
    if ranges.is_empty() {
        return Err(ShardError::BadRanges {
            detail: "no shard ranges".to_string(),
        });
    }
    let mut sorted = ranges.to_vec();
    sorted.sort_unstable();
    for &(lo, hi) in &sorted {
        if lo > hi || (lo == hi && n_cols > 0) {
            return Err(ShardError::BadRanges {
                detail: format!("empty or inverted range {lo}..{hi}"),
            });
        }
    }
    if sorted[0].0 != 0 {
        return Err(ShardError::BadRanges {
            detail: format!("first range starts at {}, not 0", sorted[0].0),
        });
    }
    let last = sorted[sorted.len() - 1].1;
    if last != n_cols {
        return Err(ShardError::BadRanges {
            detail: format!("last range ends at {last}, not {n_cols}"),
        });
    }
    for w in sorted.windows(2) {
        if w[0].1 != w[1].0 {
            let detail = if w[0].1 > w[1].0 {
                format!("ranges {:?} and {:?} overlap", w[0], w[1])
            } else {
                format!("gap between ranges {:?} and {:?}", w[0], w[1])
            };
            return Err(ShardError::BadRanges { detail });
        }
    }
    Ok(())
}

/// Path of shard `index`'s spill next to the manifest:
/// `<manifest>.shard<index>`.
#[must_use]
pub fn shard_path(manifest: &Path, index: usize) -> PathBuf {
    let mut name = manifest.as_os_str().to_os_string();
    name.push(format!(".shard{index}"));
    PathBuf::from(name)
}

/// Path of shard `index`'s advisory progress file:
/// `<manifest>.shard<index>.progress`.
#[must_use]
pub fn progress_path(manifest: &Path, index: usize) -> PathBuf {
    let mut name = shard_path(manifest, index).into_os_string();
    name.push(".progress");
    PathBuf::from(name)
}

/// A worker's advisory progress frame: which phase it is in and how many
/// rules it has reported so far.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardProgress {
    /// `"mining"`, `"writing"` or `"done"`.
    pub phase: &'static str,
    /// Rules the worker has mined (zero until the mine finishes).
    pub rules: u64,
}

/// Best-effort progress write: `<phase> <rules>\n` to the shard's
/// progress file. Failures are swallowed — progress frames are telemetry,
/// never part of the correctness hand-off.
pub fn write_progress(manifest: &Path, index: usize, phase: &'static str, rules: u64) {
    let _ = std::fs::write(progress_path(manifest, index), format!("{phase} {rules}\n"));
}

/// Reads shard `index`'s progress frame, if one exists and parses. A
/// missing, torn or malformed file reads as `None` (no update), matching
/// the best-effort write side.
#[must_use]
pub fn read_progress(manifest: &Path, index: usize) -> Option<ShardProgress> {
    let text = std::fs::read_to_string(progress_path(manifest, index)).ok()?;
    let mut words = text.split_whitespace();
    let phase = match words.next()? {
        "mining" => "mining",
        "writing" => "writing",
        "done" => "done",
        _ => return None,
    };
    let rules = words.next()?.parse().ok()?;
    Some(ShardProgress { phase, rules })
}

/// Removes shard `index`'s progress file, ignoring errors (it may never
/// have been written).
pub fn remove_progress(manifest: &Path, index: usize) {
    let _ = std::fs::remove_file(progress_path(manifest, index));
}

/// One worker's mined shard: the rules it owns plus its run report.
#[derive(Debug)]
pub struct ShardOutput {
    /// Implication rules owned by the shard (empty for similarity runs).
    pub imp_rules: Vec<ImplicationRule>,
    /// Similarity rules owned by the shard (empty for implication runs).
    pub sim_rules: Vec<SimilarityRule>,
    /// The masked driver's run report.
    pub report: RunReport,
}

impl ShardOutput {
    /// Rules the shard owns, either kind.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.imp_rules.len() + self.sim_rules.len()
    }
}

/// Mines the LHS columns in `[lo, hi)` of `matrix` under `config`.
///
/// The mask restricts only *ownership* — masked columns still act as RHS
/// partners — so the returned rules are exactly the unsharded rules whose
/// canonical owner lies in the range, with identical counts.
#[must_use]
pub fn mine_shard(config: &MineConfig, matrix: &SparseMatrix, lo: u32, hi: u32) -> ShardOutput {
    let mask: Vec<bool> = (0..matrix.n_cols())
        .map(|c| (c as u32) >= lo && (c as u32) < hi)
        .collect();
    match config {
        MineConfig::Implication(cfg) => {
            let out = find_implications_masked(matrix, cfg, Some(&mask));
            ShardOutput {
                imp_rules: out.rules,
                sim_rules: Vec::new(),
                report: out.report,
            }
        }
        MineConfig::Similarity(cfg) => {
            let out = find_similarities_masked(matrix, cfg, Some(&mask));
            ShardOutput {
                imp_rules: Vec::new(),
                sim_rules: out.rules,
                report: out.report,
            }
        }
    }
}

/// Decoded shard header — one manifest entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardHeader {
    /// `"implication"` or `"similarity"`.
    pub algorithm: &'static str,
    /// Whether the worker appended reverse implication rules.
    pub emit_reverse: bool,
    /// Shards in the plan this file belongs to.
    pub n_shards: u32,
    /// This shard's index.
    pub index: u32,
    /// First owned LHS column (inclusive).
    pub col_lo: u32,
    /// One past the last owned LHS column.
    pub col_hi: u32,
    /// Rows of the input matrix.
    pub n_rows: u64,
    /// Columns of the input matrix.
    pub n_cols: u64,
    /// Mining threshold (`minconf` / `minsim`).
    pub threshold: f64,
    /// Rules in the shard file (reverse rules included).
    pub rule_count: u64,
    /// Reverse implication rules among them.
    pub reverse_rules: u64,
    /// Row position of the shard's DMC-bitmap switch, if it fired.
    pub switch_at: Option<u64>,
    /// Peak candidate count of the shard's counter arrays.
    pub peak_candidates: u64,
    /// Peak counter-array footprint in bytes.
    pub peak_counter_bytes: u64,
    /// Seconds in `pre-scan`, `100% rules`, `<100% rules`, `bitmap tail`.
    pub phase_seconds: [f64; 4],
    /// Run-level event counters of the shard's scans.
    pub counters: ScanTally,
    /// The 100%-rule stage, when the worker ran it.
    pub hundred: Option<StageReport>,
    /// The sub-100% stage, when the worker ran it.
    pub sub: Option<StageReport>,
    /// Counter fingerprint (CRC32 over header-sans-fingerprint + rules).
    pub fingerprint: u32,
}

/// The four phase names a shard header records, in header order.
const PHASE_NAMES: [&str; 4] = ["pre-scan", "100% rules", "<100% rules", "bitmap tail"];

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_tally(buf: &mut Vec<u8>, t: &ScanTally) {
    put_u64(buf, t.rows_scanned);
    put_u64(buf, t.candidates_admitted);
    put_u64(buf, t.candidates_deleted);
    put_u64(buf, t.misses_counted);
    put_u64(buf, t.rules_emitted);
}

fn put_stage(buf: &mut Vec<u8>, s: Option<&StageReport>) {
    let stage = s.copied().unwrap_or_default();
    put_tally(buf, &stage.tally);
    put_u64(buf, stage.rules_kept);
    put_u64(buf, stage.peak_candidates as u64);
}

/// Little-endian cursor over a header payload; every read is
/// bounds-checked so a short or padded payload fails decoding instead of
/// panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn tally(&mut self) -> Option<ScanTally> {
        Some(ScanTally {
            rows_scanned: self.u64()?,
            candidates_admitted: self.u64()?,
            candidates_deleted: self.u64()?,
            misses_counted: self.u64()?,
            rules_emitted: self.u64()?,
        })
    }

    fn stage(&mut self) -> Option<StageReport> {
        Some(StageReport {
            tally: self.tally()?,
            rules_kept: self.u64()?,
            peak_candidates: self.u64()? as usize,
        })
    }
}

/// Encodes the header payload (fingerprint field zeroed; the caller
/// patches the real fingerprint into the trailing four bytes).
fn encode_header(
    out: &ShardOutput,
    emit_reverse: bool,
    n_shards: usize,
    index: usize,
    lo: u32,
    hi: u32,
) -> Vec<u8> {
    let report = &out.report;
    let algorithm = if report.algorithm == "similarity" {
        ALGO_SIMILARITY
    } else {
        ALGO_IMPLICATION
    };
    let mut flags = 0u8;
    if report.hundred.is_some() {
        flags |= FLAG_HUNDRED;
    }
    if report.sub.is_some() {
        flags |= FLAG_SUB;
    }
    if report.bitmap_switch_at.is_some() {
        flags |= FLAG_SWITCH;
    }
    let mut buf = Vec::with_capacity(HEADER_BYTES);
    buf.extend_from_slice(SHARD_MAGIC);
    buf.push(algorithm);
    buf.push(u8::from(emit_reverse));
    buf.push(flags);
    buf.push(0); // pad
    put_u32(&mut buf, n_shards as u32);
    put_u32(&mut buf, index as u32);
    put_u32(&mut buf, lo);
    put_u32(&mut buf, hi);
    put_u64(&mut buf, report.rows as u64);
    put_u64(&mut buf, report.cols as u64);
    put_f64(&mut buf, report.threshold);
    put_u64(&mut buf, out.rule_count() as u64);
    put_u64(&mut buf, report.reverse_rules);
    put_u64(&mut buf, report.bitmap_switch_at.unwrap_or(0) as u64);
    put_u64(&mut buf, report.peak_candidates as u64);
    put_u64(&mut buf, report.peak_counter_bytes as u64);
    for name in PHASE_NAMES {
        put_f64(&mut buf, report.phase_seconds(name));
    }
    put_tally(&mut buf, &report.counters);
    put_stage(&mut buf, report.hundred.as_ref());
    put_stage(&mut buf, report.sub.as_ref());
    put_u32(&mut buf, 0); // fingerprint, patched by the caller
    debug_assert_eq!(buf.len(), HEADER_BYTES);
    buf
}

/// Decodes a header payload. `shard` is only used to tag errors.
fn decode_header(shard: usize, payload: &[u8]) -> Result<ShardHeader, ShardError> {
    let corrupt = |detail: &str| ShardError::Corrupt {
        shard,
        detail: detail.to_string(),
    };
    if payload.len() != HEADER_BYTES {
        return Err(corrupt(&format!(
            "header payload is {} bytes, expected {HEADER_BYTES}",
            payload.len()
        )));
    }
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let magic = c.take(8).expect("length checked");
    if magic != SHARD_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let algorithm = match c.u8().expect("length checked") {
        ALGO_IMPLICATION => "implication",
        ALGO_SIMILARITY => "similarity",
        other => return Err(corrupt(&format!("unknown algorithm tag {other}"))),
    };
    let emit_reverse = c.u8().expect("length checked") != 0;
    let flags = c.u8().expect("length checked");
    let _pad = c.u8();
    let mut decode = || -> Option<ShardHeader> {
        Some(ShardHeader {
            algorithm,
            emit_reverse,
            n_shards: c.u32()?,
            index: c.u32()?,
            col_lo: c.u32()?,
            col_hi: c.u32()?,
            n_rows: c.u64()?,
            n_cols: c.u64()?,
            threshold: c.f64()?,
            rule_count: c.u64()?,
            reverse_rules: c.u64()?,
            switch_at: {
                let at = c.u64()?;
                (flags & FLAG_SWITCH != 0).then_some(at)
            },
            peak_candidates: c.u64()?,
            peak_counter_bytes: c.u64()?,
            phase_seconds: [c.f64()?, c.f64()?, c.f64()?, c.f64()?],
            counters: c.tally()?,
            hundred: {
                let s = c.stage()?;
                (flags & FLAG_HUNDRED != 0).then_some(s)
            },
            sub: {
                let s = c.stage()?;
                (flags & FLAG_SUB != 0).then_some(s)
            },
            fingerprint: c.u32()?,
        })
    };
    decode().ok_or_else(|| corrupt("short header payload"))
}

fn encode_imp_rule(buf: &mut Vec<u8>, r: &ImplicationRule) {
    for v in [r.lhs, r.rhs, r.hits, r.lhs_ones, r.rhs_ones] {
        put_u32(buf, v);
    }
}

fn encode_sim_rule(buf: &mut Vec<u8>, r: &SimilarityRule) {
    for v in [r.a, r.b, r.hits, r.a_ones, r.b_ones] {
        put_u32(buf, v);
    }
}

/// Counter fingerprint: CRC32 over the header payload with its trailing
/// fingerprint field excluded, followed by every rule record in emitted
/// order.
#[must_use]
fn fingerprint_of(header_sans_fp: &[u8], rule_bytes: &[u8]) -> u32 {
    let mut data = Vec::with_capacity(header_sans_fp.len() + rule_bytes.len());
    data.extend_from_slice(header_sans_fp);
    data.extend_from_slice(rule_bytes);
    crc32(&data)
}

/// Mines shard `index` of `plan` and writes its spill to
/// `shard_path(manifest, index)` through `io`.
///
/// Returns the in-memory [`ShardOutput`] so single-process callers (and
/// the fidelity tests) can inspect what went to disk.
///
/// # Errors
///
/// [`ShardError::Config`] for an out-of-range index or a plan that does
/// not tile the matrix's columns; [`ShardError::Io`] when writing fails.
pub fn run_worker(
    io: &dyn SpillIo,
    manifest: &Path,
    retry: RetryPolicy,
    config: &MineConfig,
    matrix: &SparseMatrix,
    plan: &[(u32, u32)],
    index: usize,
) -> Result<ShardOutput, ShardError> {
    let _span = dmc_metrics::span!("shard.worker");
    let Some(&(lo, hi)) = plan.get(index) else {
        return Err(ShardError::Config(format!(
            "worker index {index} out of range for a {}-shard plan",
            plan.len()
        )));
    };
    validate_ranges(plan, matrix.n_cols() as u32)?;
    write_progress(manifest, index, "mining", 0);
    let out = mine_shard(config, matrix, lo, hi);
    write_progress(manifest, index, "writing", out.rule_count() as u64);
    let emit_reverse = match config {
        MineConfig::Implication(cfg) => cfg.emit_reverse,
        MineConfig::Similarity(_) => false,
    };
    write_shard(
        io,
        &shard_path(manifest, index),
        retry,
        &out,
        emit_reverse,
        plan,
        index,
    )?;
    write_progress(manifest, index, "done", out.rule_count() as u64);
    Ok(out)
}

/// Writes one mined shard as a framed spill: header frame, then rule
/// batches. `emit_reverse` records the run's *configured* setting (not
/// whether any reverse rule qualified) so the merge's consistency check
/// compares configurations, not data-dependent outcomes.
///
/// # Errors
///
/// [`ShardError::Io`] when the backend fails permanently.
pub fn write_shard(
    io: &dyn SpillIo,
    path: &Path,
    retry: RetryPolicy,
    out: &ShardOutput,
    emit_reverse: bool,
    plan: &[(u32, u32)],
    index: usize,
) -> Result<(), ShardError> {
    let (lo, hi) = plan[index];
    let mut header = encode_header(out, emit_reverse, plan.len(), index, lo, hi);

    let mut rule_bytes = Vec::with_capacity(out.rule_count() * RULE_BYTES);
    for r in &out.imp_rules {
        encode_imp_rule(&mut rule_bytes, r);
    }
    for r in &out.sim_rules {
        encode_sim_rule(&mut rule_bytes, r);
    }
    let fp = fingerprint_of(&header[..HEADER_BYTES - 4], &rule_bytes);
    header[HEADER_BYTES - 4..].copy_from_slice(&fp.to_le_bytes());

    let mut writer = FrameWriter::create(io, path, retry)?;
    writer.write_frame(&header)?;
    for chunk in rule_bytes.chunks(RULES_PER_FRAME * RULE_BYTES) {
        writer.write_frame(chunk)?;
    }
    writer.finish()?;
    Ok(())
}

/// One decoded shard file: its header (manifest entry), the raw header
/// payload (for the consolidated manifest), and its rules.
#[derive(Debug)]
pub struct ShardFile {
    /// The decoded, fingerprint-verified header.
    pub header: ShardHeader,
    /// The raw header frame payload, byte-exact.
    pub header_payload: Vec<u8>,
    /// Implication rules (implication shards).
    pub imp_rules: Vec<ImplicationRule>,
    /// Similarity rules (similarity shards).
    pub sim_rules: Vec<SimilarityRule>,
}

/// Reads and fully validates one shard file: frame checksums, header
/// structure, rule count, counter fingerprint.
///
/// # Errors
///
/// [`ShardError::Io`] (kind preserved — `NotFound` means the file is
/// missing), [`ShardError::Corrupt`], [`ShardError::RuleCountMismatch`],
/// [`ShardError::FingerprintMismatch`].
pub fn read_shard(
    io: &dyn SpillIo,
    path: &Path,
    retry: RetryPolicy,
    shard: usize,
) -> Result<ShardFile, ShardError> {
    let mut reader = FrameReader::open(io, path, retry).map_err(|e| framed_err(shard, e))?;
    let header_payload = reader
        .next_frame()
        .map_err(|e| framed_err(shard, e))?
        .ok_or_else(|| ShardError::Corrupt {
            shard,
            detail: "empty shard file (no header frame)".to_string(),
        })?;
    let header = decode_header(shard, &header_payload)?;

    let mut rule_bytes = Vec::new();
    while let Some(frame) = reader.next_frame().map_err(|e| framed_err(shard, e))? {
        if frame.len() % RULE_BYTES != 0 {
            return Err(ShardError::Corrupt {
                shard,
                detail: format!(
                    "rule frame of {} bytes is not a multiple of {RULE_BYTES}",
                    frame.len()
                ),
            });
        }
        rule_bytes.extend_from_slice(&frame);
    }
    let actual = (rule_bytes.len() / RULE_BYTES) as u64;
    if actual != header.rule_count {
        return Err(ShardError::RuleCountMismatch {
            shard,
            expected: header.rule_count,
            actual,
        });
    }
    let fp = fingerprint_of(&header_payload[..HEADER_BYTES - 4], &rule_bytes);
    if fp != header.fingerprint {
        return Err(ShardError::FingerprintMismatch {
            shard,
            expected: header.fingerprint,
            actual: fp,
        });
    }

    let mut imp_rules = Vec::new();
    let mut sim_rules = Vec::new();
    for rec in rule_bytes.chunks_exact(RULE_BYTES) {
        let mut c = Cursor { buf: rec, pos: 0 };
        let w = [
            c.u32().expect("20 bytes"),
            c.u32().expect("20 bytes"),
            c.u32().expect("20 bytes"),
            c.u32().expect("20 bytes"),
            c.u32().expect("20 bytes"),
        ];
        if header.algorithm == "implication" {
            imp_rules.push(ImplicationRule {
                lhs: w[0],
                rhs: w[1],
                hits: w[2],
                lhs_ones: w[3],
                rhs_ones: w[4],
            });
        } else {
            sim_rules.push(SimilarityRule {
                a: w[0],
                b: w[1],
                hits: w[2],
                a_ones: w[3],
                b_ones: w[4],
            });
        }
    }
    Ok(ShardFile {
        header,
        header_payload,
        imp_rules,
        sim_rules,
    })
}

/// The validated union of a shard merge.
#[derive(Debug)]
pub struct MergedOutput {
    /// Merged implication rules, sorted and deduplicated.
    pub imp_rules: Vec<ImplicationRule>,
    /// Merged similarity rules, sorted and deduplicated.
    pub sim_rules: Vec<SimilarityRule>,
    /// The reconciled `dmc.run_report.v8` report with its `shard` section.
    pub report: RunReport,
}

/// Removes `paths` through `io` on drop unless defused — the merge's
/// no-partial-output guard.
struct RemoveOnDrop<'a> {
    io: &'a dyn SpillIo,
    paths: Vec<PathBuf>,
    keep: bool,
}

impl Drop for RemoveOnDrop<'_> {
    fn drop(&mut self) {
        if !self.keep {
            for p in &self.paths {
                let _ = self.io.remove(p);
            }
        }
    }
}

/// Merges the `n_shards` shard spills next to `manifest` into one rule
/// set, writing the consolidated manifest (the validated header frames,
/// in shard order) to `manifest` itself.
///
/// Every integrity layer is checked before anything is unioned: frame
/// checksums, header structure and cross-shard consistency, rule counts,
/// counter fingerprints, and the range tiling. On any failure the partial
/// manifest is removed — a failed merge leaves no output. On success the
/// per-shard spills are removed unless `keep_shards` is set.
///
/// # Errors
///
/// Every [`ShardError`] variant except `Config`.
pub fn merge_shards(
    io: &dyn SpillIo,
    manifest: &Path,
    n_shards: usize,
    retry: RetryPolicy,
    keep_shards: bool,
) -> Result<MergedOutput, ShardError> {
    let _span = dmc_metrics::span!("shard.merge");
    if n_shards == 0 {
        return Err(ShardError::Config("cannot merge zero shards".to_string()));
    }
    let mut shards = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let path = shard_path(manifest, i);
        match read_shard(io, &path, retry, i) {
            Ok(file) => shards.push(file),
            Err(ShardError::Io { error, .. }) if error.kind() == io::ErrorKind::NotFound => {
                return Err(ShardError::MissingShard { index: i, path })
            }
            Err(e) => return Err(e),
        }
    }

    // Header identities: every shard agrees with shard 0 on the run shape
    // and carries its own dense index.
    let first = &shards[0].header;
    for (i, file) in shards.iter().enumerate() {
        let h = &file.header;
        let mismatch = |detail: String| ShardError::HeaderMismatch { shard: i, detail };
        if h.index as usize != i {
            return Err(mismatch(format!("header claims index {}", h.index)));
        }
        if h.n_shards as usize != n_shards {
            return Err(mismatch(format!(
                "header claims {} shards, merging {n_shards}",
                h.n_shards
            )));
        }
        if h.algorithm != first.algorithm {
            return Err(mismatch(format!(
                "algorithm {} vs {}",
                h.algorithm, first.algorithm
            )));
        }
        if h.emit_reverse != first.emit_reverse
            || h.n_rows != first.n_rows
            || h.n_cols != first.n_cols
            || h.threshold.to_bits() != first.threshold.to_bits()
        {
            return Err(mismatch("run parameters disagree with shard 0".to_string()));
        }
    }
    let ranges: Vec<(u32, u32)> = shards
        .iter()
        .map(|f| (f.header.col_lo, f.header.col_hi))
        .collect();
    validate_ranges(&ranges, first.n_cols as u32)?;

    // All checks passed: write the consolidated manifest, then union.
    let guard_paths = vec![manifest.to_path_buf()];
    let mut guard = RemoveOnDrop {
        io,
        paths: guard_paths,
        keep: false,
    };
    let mut writer = FrameWriter::create(io, manifest, retry)?;
    for file in &shards {
        writer.write_frame(&file.header_payload)?;
    }
    writer.finish()?;

    let mut imp_rules = Vec::new();
    let mut sim_rules = Vec::new();
    for file in &mut shards {
        imp_rules.append(&mut file.imp_rules);
        sim_rules.append(&mut file.sim_rules);
    }
    // Canonical ownership makes the shard outputs disjoint, so this is
    // exactly the unsharded driver's final sort (dedup removes nothing).
    imp_rules.sort_unstable();
    imp_rules.dedup();
    sim_rules.sort_unstable();
    sim_rules.dedup();

    let report = merged_report(&shards, imp_rules.len() + sim_rules.len());
    guard.keep = true;
    drop(guard);
    if !keep_shards {
        for i in 0..n_shards {
            let path = shard_path(manifest, i);
            io.remove(&path).map_err(|error| ShardError::Io {
                context: "remove merged shard spill",
                error,
            })?;
        }
    }
    // Progress files are advisory and never merge inputs: drop them
    // unconditionally now that the hand-off is complete.
    for i in 0..n_shards {
        remove_progress(manifest, i);
    }
    Ok(MergedOutput {
        imp_rules,
        sim_rules,
        report,
    })
}

/// Reconciles the per-shard headers into one merged v6 report.
fn merged_report(shards: &[ShardFile], rules: usize) -> RunReport {
    let first = &shards[0].header;
    let mut counters = ScanTally::new();
    let mut hundred: Option<StageReport> = None;
    let mut sub: Option<StageReport> = None;
    let mut reverse_rules = 0u64;
    let mut phase_seconds = [0.0f64; 4];
    let mut wall_seconds = 0.0f64;
    let mut peak_candidates = 0usize;
    let mut peak_counter_bytes = 0usize;
    let mut any_switch = false;
    let mut entries = Vec::with_capacity(shards.len());
    for file in shards {
        let h = &file.header;
        counters.merge(&h.counters);
        reverse_rules += h.reverse_rules;
        for (acc, s) in phase_seconds.iter_mut().zip(h.phase_seconds) {
            *acc += s;
        }
        wall_seconds += h.phase_seconds.iter().sum::<f64>();
        peak_candidates = peak_candidates.max(h.peak_candidates as usize);
        peak_counter_bytes = peak_counter_bytes.max(h.peak_counter_bytes as usize);
        any_switch |= h.switch_at.is_some();
        if let Some(s) = &h.hundred {
            let acc = hundred.get_or_insert_with(StageReport::default);
            acc.tally.merge(&s.tally);
            acc.rules_kept += s.rules_kept;
            acc.peak_candidates = acc.peak_candidates.max(s.peak_candidates);
        }
        if let Some(s) = &h.sub {
            let acc = sub.get_or_insert_with(StageReport::default);
            acc.tally.merge(&s.tally);
            acc.rules_kept += s.rules_kept;
            acc.peak_candidates = acc.peak_candidates.max(s.peak_candidates);
        }
        entries.push(ShardSummary {
            index: h.index as usize,
            col_lo: h.col_lo,
            col_hi: h.col_hi,
            rules: h.rule_count,
            fingerprint: h.fingerprint,
            counters: h.counters,
        });
    }
    let mut phases: Vec<(&'static str, f64)> = Vec::new();
    phases.push((PHASE_NAMES[0], phase_seconds[0]));
    if hundred.is_some() {
        phases.push((PHASE_NAMES[1], phase_seconds[1]));
    }
    if sub.is_some() {
        phases.push((PHASE_NAMES[2], phase_seconds[2]));
    }
    if any_switch {
        phases.push((PHASE_NAMES[3], phase_seconds[3]));
    }
    RunReport {
        algorithm: if first.algorithm == "similarity" {
            "similarity"
        } else {
            "implication"
        },
        mode: "sharded",
        threads: shards.len(),
        rows: first.n_rows as usize,
        cols: first.n_cols as usize,
        threshold: first.threshold,
        rules,
        counters,
        hundred,
        sub,
        reverse_rules,
        phases,
        wall_seconds,
        peak_candidates,
        peak_counter_bytes,
        bitmap_switch_at: None,
        spill_bytes: 0,
        io: None,
        workers: Vec::new(),
        serve: None,
        ingest: None,
        shard: Some(ShardReport {
            n_shards: shards.len(),
            shards: entries,
        }),
        compaction: None,
        telemetry: None,
    }
}

/// Single-process convenience: plans, mines every shard in this process,
/// writes the spills, and merges — the same code path the multi-process
/// CLI drives, minus the `fork`.
///
/// # Errors
///
/// Any [`ShardError`].
pub fn shard_mine(
    io: &dyn SpillIo,
    manifest: &Path,
    retry: RetryPolicy,
    config: &MineConfig,
    matrix: &SparseMatrix,
    n_shards: usize,
    keep_shards: bool,
) -> Result<MergedOutput, ShardError> {
    let plan = plan_shards(matrix.n_cols(), n_shards)?;
    for index in 0..plan.len() {
        run_worker(io, manifest, retry, config, matrix, &plan, index)?;
    }
    merge_shards(io, manifest, plan.len(), retry, keep_shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImplicationConfig;
    use dmc_matrix::spill_io::StdFsIo;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "dmc-shard-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    #[test]
    fn plan_is_balanced_and_tiles() {
        assert!(plan_shards(10, 0).is_err());
        for (cols, shards) in [(10, 3), (7, 7), (5, 9), (1, 1), (400, 16)] {
            let plan = plan_shards(cols, shards).unwrap();
            assert!(plan.len() <= shards);
            validate_ranges(&plan, cols as u32).unwrap();
            let widths: Vec<u32> = plan.iter().map(|(lo, hi)| hi - lo).collect();
            let (min, max) = (*widths.iter().min().unwrap(), *widths.iter().max().unwrap());
            assert!(max - min <= 1, "balanced: {widths:?}");
        }
        let empty = plan_shards(0, 4).unwrap();
        assert_eq!(empty, vec![(0, 0)]);
        validate_ranges(&empty, 0).unwrap();
    }

    #[test]
    fn validate_ranges_catches_gap_overlap_duplicate() {
        validate_ranges(&[(0, 3), (3, 6)], 6).unwrap();
        assert!(matches!(
            validate_ranges(&[(0, 2), (3, 6)], 6),
            Err(ShardError::BadRanges { .. })
        ));
        assert!(matches!(
            validate_ranges(&[(0, 4), (3, 6)], 6),
            Err(ShardError::BadRanges { .. })
        ));
        assert!(matches!(
            validate_ranges(&[(0, 3), (0, 3), (3, 6)], 6),
            Err(ShardError::BadRanges { .. })
        ));
        assert!(matches!(
            validate_ranges(&[(0, 3), (3, 5)], 6),
            Err(ShardError::BadRanges { .. })
        ));
        assert!(matches!(
            validate_ranges(&[(1, 6)], 6),
            Err(ShardError::BadRanges { .. })
        ));
        assert!(matches!(
            validate_ranges(&[], 6),
            Err(ShardError::BadRanges { .. })
        ));
    }

    #[test]
    fn header_round_trips_through_encode_decode() {
        let m = fig2();
        let config = MineConfig::implications(0.8).unwrap();
        let out = mine_shard(&config, &m, 0, 3);
        let mut header = encode_header(&out, false, 2, 0, 0, 3);
        let mut rule_bytes = Vec::new();
        for r in &out.imp_rules {
            encode_imp_rule(&mut rule_bytes, r);
        }
        let fp = fingerprint_of(&header[..HEADER_BYTES - 4], &rule_bytes);
        header[HEADER_BYTES - 4..].copy_from_slice(&fp.to_le_bytes());

        let h = decode_header(0, &header).unwrap();
        assert_eq!(h.algorithm, "implication");
        assert_eq!((h.index, h.n_shards), (0, 2));
        assert_eq!((h.col_lo, h.col_hi), (0, 3));
        assert_eq!(h.n_rows, 9);
        assert_eq!(h.n_cols, 6);
        assert_eq!(h.threshold, 0.8);
        assert_eq!(h.rule_count, out.rule_count() as u64);
        assert_eq!(h.counters, out.report.counters);
        assert_eq!(h.hundred, out.report.hundred);
        assert_eq!(h.sub, out.report.sub);
        assert_eq!(h.fingerprint, fp);
    }

    #[test]
    fn shard_mine_matches_unsharded_for_both_algorithms() {
        let m = fig2();
        let dir = TempDir::new("roundtrip");
        for n_shards in [1usize, 2, 3, 6] {
            let config = MineConfig::implications(0.8).unwrap();
            let merged = shard_mine(
                &StdFsIo,
                &dir.path(&format!("imp{n_shards}.manifest")),
                RetryPolicy::none(),
                &config,
                &m,
                n_shards,
                false,
            )
            .unwrap();
            let single = crate::find_implications(&m, &ImplicationConfig::new(0.8));
            assert_eq!(merged.imp_rules, single.rules, "{n_shards} shards");
            assert!(merged.report.reconciles(), "{n_shards} shards");

            let config = MineConfig::similarities(0.4).unwrap();
            let merged = shard_mine(
                &StdFsIo,
                &dir.path(&format!("sim{n_shards}.manifest")),
                RetryPolicy::none(),
                &config,
                &m,
                n_shards,
                false,
            )
            .unwrap();
            let single = crate::find_similarities(&m, &crate::SimilarityConfig::new(0.4));
            assert_eq!(merged.sim_rules, single.rules, "{n_shards} shards");
            assert!(merged.report.reconciles(), "{n_shards} shards");
        }
    }

    #[test]
    fn merge_cleans_up_and_writes_manifest() {
        let m = fig2();
        let dir = TempDir::new("cleanup");
        let manifest = dir.path("m.manifest");
        let config = MineConfig::implications(0.8).unwrap();
        shard_mine(
            &StdFsIo,
            &manifest,
            RetryPolicy::none(),
            &config,
            &m,
            2,
            false,
        )
        .unwrap();
        assert!(manifest.exists(), "consolidated manifest written");
        assert!(!shard_path(&manifest, 0).exists(), "shard spills removed");
        assert!(!shard_path(&manifest, 1).exists());

        // keep_shards leaves the spills in place.
        let manifest2 = dir.path("m2.manifest");
        shard_mine(
            &StdFsIo,
            &manifest2,
            RetryPolicy::none(),
            &config,
            &m,
            2,
            true,
        )
        .unwrap();
        assert!(shard_path(&manifest2, 0).exists());
        assert!(shard_path(&manifest2, 1).exists());
    }

    #[test]
    fn progress_frames_round_trip_and_tolerate_garbage() {
        let dir = TempDir::new("progress");
        let manifest = dir.path("m.manifest");
        assert_eq!(read_progress(&manifest, 0), None, "missing file reads None");

        write_progress(&manifest, 0, "mining", 0);
        assert_eq!(
            read_progress(&manifest, 0),
            Some(ShardProgress {
                phase: "mining",
                rules: 0
            })
        );
        write_progress(&manifest, 0, "done", 42);
        assert_eq!(
            read_progress(&manifest, 0),
            Some(ShardProgress {
                phase: "done",
                rules: 42
            })
        );

        std::fs::write(progress_path(&manifest, 0), "exploded ???").unwrap();
        assert_eq!(read_progress(&manifest, 0), None, "garbage reads None");

        remove_progress(&manifest, 0);
        assert!(!progress_path(&manifest, 0).exists());
        remove_progress(&manifest, 0); // idempotent
    }

    #[test]
    fn merge_removes_progress_files() {
        let m = fig2();
        let dir = TempDir::new("progress-cleanup");
        let manifest = dir.path("m.manifest");
        let config = MineConfig::implications(0.8).unwrap();
        shard_mine(
            &StdFsIo,
            &manifest,
            RetryPolicy::none(),
            &config,
            &m,
            2,
            false,
        )
        .unwrap();
        assert!(!progress_path(&manifest, 0).exists());
        assert!(!progress_path(&manifest, 1).exists());
    }

    #[test]
    fn missing_shard_is_typed() {
        let m = fig2();
        let dir = TempDir::new("missing");
        let manifest = dir.path("m.manifest");
        let config = MineConfig::implications(0.8).unwrap();
        let plan = plan_shards(m.n_cols(), 3).unwrap();
        for index in [0, 2] {
            run_worker(
                &StdFsIo,
                &manifest,
                RetryPolicy::none(),
                &config,
                &m,
                &plan,
                index,
            )
            .unwrap();
        }
        match merge_shards(&StdFsIo, &manifest, 3, RetryPolicy::none(), false) {
            Err(ShardError::MissingShard { index: 1, .. }) => {}
            other => panic!("expected MissingShard, got {other:?}"),
        }
        assert!(!manifest.exists(), "failed merge leaves no manifest");
    }
}
