//! Dynamic Miss-Counting (DMC) algorithms.
//!
//! This crate implements the contribution of *"Dynamic Miss-Counting
//! Algorithms: Finding Implication and Similarity Rules with Confidence
//! Pruning"* (Fujiwara, Ullman, Motwani — ICDE 2000): mining **all**
//! implication rules `c_i ⇒ c_j` with confidence ≥ *minconf* and all
//! similarity rules `c_i ≃ c_j` with Jaccard similarity ≥ *minsim* from a
//! 0/1 matrix, **without support pruning** and without the false
//! positives/negatives of sketch-based methods.
//!
//! # The idea
//!
//! For a rule `c_i ⇒ c_j`, every row where `c_i` is 1 but `c_j` is 0 is a
//! **miss**. The rule holds iff the number of misses is at most
//! `maxmis(c_i) = floor((1 − minconf) · ones(c_i))`. DMC therefore counts
//! misses rather than hits: a candidate pair is deleted the moment its miss
//! counter exceeds the budget, and no new candidate is admitted for a column
//! once the column has been seen more than `maxmis` times (any unseen
//! partner has already missed too often). With high thresholds the budgets
//! are small and candidate lists stay tiny — *confidence pruning*.
//!
//! # Entry points
//!
//! The [`Miner`] facade is the front door for one-shot mines: pick
//! implications or similarities, set the knobs builder-style, then `mine`
//! (in-memory) or `mine_streamed` (out-of-core); a thread count above one
//! dispatches to the parallel drivers. Both return the unified
//! [`MineError`].
//!
//! ```
//! use dmc_core::{Miner, SparseMatrix};
//!
//! // Figure 1 of the paper.
//! let m = SparseMatrix::from_rows(3, vec![
//!     vec![1, 2], vec![0, 1, 2], vec![0], vec![1],
//! ]);
//! let out = Miner::implications(1.0).mine(&m).unwrap();
//! let rules: Vec<String> = out.rules.iter().map(ToString::to_string).collect();
//! // Only c3 => c2 survives at 100% confidence (0-indexed: 2 => 1).
//! assert_eq!(rules, vec!["c2 => c1 (conf 2/2 = 1.000)"]);
//! ```
//!
//! For long-lived use — serving rule queries, appending rows without
//! re-mining from scratch — construct an [`Engine`] from a [`MineConfig`]
//! instead. The engine owns the matrix and per-candidate counters across
//! calls: [`Engine::mine`] runs the batch drivers, [`Engine::ingest`]
//! folds appended rows in incrementally (bit-identical to a from-scratch
//! mine; see the [`engine`](Engine) docs for the monotonicity argument),
//! and [`Engine::query`] answers point lookups from column postings. The
//! `dmc-serve` crate wraps an engine in a TCP daemon.
//!
//! The underlying free functions remain available:
//!
//! * [`find_implications`] — DMC-imp (Algorithm 4.2): two scans, 100%-rule
//!   fast path, bucketed sparsest-first row order, automatic switch to the
//!   low-memory DMC-bitmap tail phase.
//! * [`find_similarities`] — DMC-sim (Algorithm 5.1): adds column-density
//!   and maximum-hits pruning.
//! * `find_*_parallel`, `find_*_streamed`, `find_*_streamed_parallel` —
//!   the same mines over a work-assisting block scheduler and/or
//!   disk-spilled row streams.
//!
//! # Observability
//!
//! Every driver attaches a [`RunReport`] to its output: typed scan
//! counters (rows scanned, candidates admitted/deleted, misses counted,
//! rules emitted), per-stage breakdowns, phase timings, memory peaks, the
//! bitmap-switch position and spill bytes, all in one schema
//! (`dmc.run_report.v7`) across the eight drivers. `RunReport::to_json`
//! serializes it; the `dmc` CLI exposes that as `--metrics`. The
//! [`MinedOutput`] trait gives generic code one surface over both output
//! types.
//!
//! # Fidelity notes
//!
//! Threshold boundaries are evaluated through the shared predicates in
//! [`threshold`] (a rule with confidence exactly `minconf` qualifies, with a
//! small epsilon guarding against `f64` artifacts such as
//! `0.1 * 10 > 1`). Three off-by-one issues in the paper's pruning bounds
//! are resolved to their exact forms — see `DESIGN.md` and the `threshold`
//! module docs.

mod base;
mod bitmap;
mod candidates;
pub mod compact;
mod config;
mod engine;
mod error;
mod fanout;
pub mod fxhash;
pub mod groups;
mod hundred;
mod imp;
mod miner;
mod output;
mod parallel;
mod rules;
pub mod rules_io;
pub mod shard;
mod sim;
pub mod stream;
mod stream_parallel;
pub mod threshold;
pub mod validate;

pub use base::{BaseOutcome, BaseScan};
pub use compact::{
    compact, compact_implications, compact_similarities, BoostedImplication, BoostedSimilarity,
    CompactedBase, CompactionConfig, BOOST_HIST_EDGES,
};
pub use config::{ImplicationConfig, SimilarityConfig, SwitchPolicy, DEFAULT_BLOCK_ROWS};
pub use engine::{Engine, IngestReport, MineConfig, RuleAnswer};
pub use error::{ConfigError, MineError};
pub use fanout::effective_workers;
pub use groups::{rule_closure, rule_group_summaries, rule_groups, DisjointSets, GroupSummary};
pub use imp::{find_implications, ImplicationOutput};
pub use miner::{ImplicationMiner, Miner, SimilarityMiner};
pub use output::MinedOutput;
pub use parallel::{find_implications_parallel, find_similarities_parallel};
pub use rules::{ImplicationRule, SimilarityRule};
pub use rules_io::{read_rules, write_rules, RuleParseError};
pub use shard::{
    merge_shards, mine_shard, plan_shards, shard_mine, shard_path, MergedOutput, ShardError,
    ShardOutput,
};
pub use sim::{find_similarities, SimilarityOutput};
pub use stream::{find_implications_streamed, find_similarities_streamed, StreamError};
pub use stream_parallel::{
    find_implications_streamed_parallel, find_similarities_streamed_parallel,
};
pub use validate::{verify_implications, verify_similarities, RuleCheck};

// Re-exports so downstream users need only this crate for common flows.
pub use dmc_matrix::spill_io::{RetryPolicy, SpillSettings};
pub use dmc_matrix::{order::RowOrder, ColumnId, SparseMatrix};
pub use dmc_metrics::{
    CompactionReport, IngestStats, IoReport, RunReport, ScanTally, ServeStats, StageReport,
    WorkerReport, WorkerSummary, RUN_REPORT_SCHEMA,
};
