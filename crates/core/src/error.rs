//! Unified error types for the mining entry points.
//!
//! Historically the in-memory `run` path was infallible while the
//! streamed path returned [`StreamError`], so generic callers had to
//! special-case the two. [`MineError`] folds both — plus the typed
//! threshold validation of the [`Engine`](crate::Engine) path — into one
//! enum: in-memory mines simply never produce the stream-only variants.
//! The old `run`/`run_streamed` signatures survive as `#[deprecated]`
//! wrappers on [`Miner`](crate::Miner).

use crate::stream::StreamError;
use dmc_matrix::ColumnId;
use std::convert::Infallible;
use std::fmt;
use std::io;

/// A mining threshold outside its domain.
///
/// Produced by the typed constructors ([`MineConfig::implications`]
/// (crate::MineConfig::implications) and friends); the legacy
/// `Miner::implications` / `Miner::similarities` wrappers keep their
/// documented panic for compatibility.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfigError {
    /// Which knob was out of range (`"minconf"` or `"minsim"`).
    pub name: &'static str,
    /// The rejected value.
    pub value: f64,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} must be in (0, 1], got {}", self.name, self.value)
    }
}

impl std::error::Error for ConfigError {}

/// One error enum across every mining path.
///
/// The generic `E` is the row-source error of streamed mines and defaults
/// to [`Infallible`] for in-memory mines, where only
/// [`MineError::Config`] and [`MineError::ColumnOutOfRange`] can occur.
#[derive(Debug)]
pub enum MineError<E = Infallible> {
    /// A threshold failed validation (engine path only; the builder
    /// facade panics instead).
    Config(ConfigError),
    /// The caller's row source failed (streamed mines).
    Source(E),
    /// Spill-file IO failed after any transient-fault retries (streamed
    /// mines).
    Io {
        /// What the spill was doing when it failed.
        context: &'static str,
        /// The underlying error, kind intact.
        error: io::Error,
    },
    /// A spill frame failed its integrity checks (streamed mines).
    CorruptSpill {
        /// 0-based index of the offending frame in replay order.
        frame: u64,
        /// Which guard tripped (e.g. "checksum mismatch").
        reason: &'static str,
    },
    /// A row contained an id `>= n_cols`; payload is (row index, id).
    ColumnOutOfRange { row: usize, id: ColumnId },
}

impl<E> From<ConfigError> for MineError<E> {
    fn from(e: ConfigError) -> Self {
        MineError::Config(e)
    }
}

impl<E> From<StreamError<E>> for MineError<E> {
    fn from(e: StreamError<E>) -> Self {
        match e {
            StreamError::Source(e) => MineError::Source(e),
            StreamError::Io { context, error } => MineError::Io { context, error },
            StreamError::CorruptSpill { frame, reason } => {
                MineError::CorruptSpill { frame, reason }
            }
            StreamError::ColumnOutOfRange { row, id } => MineError::ColumnOutOfRange { row, id },
        }
    }
}

impl<E: fmt::Display> fmt::Display for MineError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::Config(e) => write!(f, "{e}"),
            MineError::Source(e) => write!(f, "row source error: {e}"),
            MineError::Io { context, error } => {
                write!(f, "spill io error ({context}): {error}")
            }
            MineError::CorruptSpill { frame, reason } => {
                write!(f, "corrupt spill frame {frame}: {reason}")
            }
            MineError::ColumnOutOfRange { row, id } => {
                write!(f, "row {row}: column id {id} out of range")
            }
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for MineError<E> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_display_matches_the_legacy_panic_message() {
        let e = ConfigError {
            name: "minconf",
            value: 0.0,
        };
        assert_eq!(e.to_string(), "minconf must be in (0, 1], got 0");
        let e = ConfigError {
            name: "minsim",
            value: 1.5,
        };
        assert_eq!(e.to_string(), "minsim must be in (0, 1], got 1.5");
    }

    #[test]
    fn stream_errors_convert_variant_for_variant() {
        let cases: Vec<(StreamError<String>, &str)> = vec![
            (StreamError::Source("boom".into()), "row source error: boom"),
            (
                StreamError::Io {
                    context: "spill io",
                    error: io::Error::other("disk"),
                },
                "spill io error (spill io): disk",
            ),
            (
                StreamError::CorruptSpill {
                    frame: 7,
                    reason: "checksum mismatch",
                },
                "corrupt spill frame 7: checksum mismatch",
            ),
            (
                StreamError::ColumnOutOfRange { row: 3, id: 99 },
                "row 3: column id 99 out of range",
            ),
        ];
        for (err, text) in cases {
            let mined: MineError<String> = err.into();
            assert_eq!(mined.to_string(), text);
        }
        let mined: MineError<String> = ConfigError {
            name: "minconf",
            value: 2.0,
        }
        .into();
        assert!(matches!(mined, MineError::Config(_)));
    }
}
