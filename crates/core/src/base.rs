//! DMC-base (Algorithm 3.1): the miss-counting scan for implication rules.
//!
//! [`BaseScan`] holds the full second-scan state — per-column 1-counts from
//! the pre-scan, running `cnt` counters, miss budgets and candidate lists —
//! and processes one row at a time. The driver in [`crate::imp`] feeds it
//! rows in the configured order and may hand the remainder of the scan to
//! the DMC-bitmap tail phase ([`crate::bitmap`]).
//!
//! The three cases of Algorithm 3.1 step 3(a) map to:
//!
//! * `cnt = 0` — create the candidate list from the row (`create_list`),
//! * `0 < cnt ≤ maxmis` — the *open* merge: new candidates may still be
//!   admitted with their miss counter initialized to `cnt` (`merge_open`),
//! * `cnt > maxmis` — the *closed* update: only miss increments and
//!   deletions (`update_closed`).
//!
//! One deliberate deviation: a candidate whose miss counter exceeds the
//! budget is deleted immediately in *every* case (the paper spells the
//! deletion out only in the closed case). This changes no output — an
//! over-budget candidate can never qualify — and keeps the "every stored
//! candidate is still viable" invariant, which lets column completion emit
//! its whole list as rules without re-checking.

use crate::candidates::{ColumnLists, ImpCandidate};
use crate::rules::ImplicationRule;
use crate::threshold::max_misses_conf;
use dmc_bitset::BitMatrix;
use dmc_matrix::{canonical_less, ColumnId};
use dmc_metrics::{CounterMemory, ScanTally};

/// What a [`BaseScan`] did with a processed row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseOutcome {
    /// The row was counted normally.
    Counted,
}

/// The DMC-base scan state for implication rules.
pub struct BaseScan {
    minconf: f64,
    pub(crate) ones: Vec<u32>,
    pub(crate) maxmis: Vec<u32>,
    pub(crate) cnt: Vec<u32>,
    pub(crate) lists: ColumnLists<ImpCandidate>,
    /// Column participates in this scan (Algorithm 4.2 step 3 removal).
    pub(crate) active: Vec<bool>,
    /// Optional additional LHS restriction (columns outside it still serve
    /// as RHS candidates) — used by [`BaseScan::apply_block`] to replay a
    /// block only for the columns whose lists were open at block start.
    pub(crate) lhs_mask: Option<Vec<bool>>,
    /// Column has completed (all its 1s seen) and its rules were emitted.
    pub(crate) done: Vec<bool>,
    release_completed: bool,
    pub(crate) rules: Vec<ImplicationRule>,
    pub(crate) mem: CounterMemory,
    pub(crate) tally: ScanTally,
    scratch: Vec<ImpCandidate>,
}

impl BaseScan {
    /// Prepares a scan over an `n_cols`-column matrix at `minconf`.
    ///
    /// `active` restricts which columns participate (as LHS *and* RHS);
    /// `None` means all. `ones` must come from the pre-scan of the same
    /// data.
    #[must_use]
    pub fn new(
        n_cols: usize,
        minconf: f64,
        ones: Vec<u32>,
        active: Option<Vec<bool>>,
        release_completed: bool,
        record_history: bool,
    ) -> Self {
        let m = n_cols;
        assert_eq!(ones.len(), m, "ones vector must cover every column");
        let maxmis: Vec<u32> = ones
            .iter()
            .map(|&o| max_misses_conf(u64::from(o), minconf) as u32)
            .collect();
        let active = active.unwrap_or_else(|| vec![true; m]);
        assert_eq!(active.len(), m, "active mask must cover every column");
        Self {
            minconf,
            ones,
            maxmis,
            cnt: vec![0; m],
            lists: ColumnLists::new(m),
            active,
            lhs_mask: None,
            done: vec![false; m],
            release_completed,
            rules: Vec::new(),
            mem: if record_history {
                CounterMemory::with_history(4096)
            } else {
                CounterMemory::new()
            },
            tally: ScanTally::new(),
            scratch: Vec::new(),
        }
    }

    /// The configured minimum confidence.
    #[must_use]
    pub fn minconf(&self) -> f64 {
        self.minconf
    }

    /// Memory accounting of the counter array.
    #[must_use]
    pub fn memory(&self) -> &CounterMemory {
        &self.mem
    }

    /// Event counters of this scan so far.
    #[must_use]
    pub fn tally(&self) -> ScanTally {
        self.tally
    }

    /// Rules emitted so far.
    #[must_use]
    pub fn rules(&self) -> &[ImplicationRule] {
        &self.rules
    }

    /// Consumes the scan, returning the emitted rules and the memory
    /// tracker.
    #[must_use]
    pub fn into_parts(self) -> (Vec<ImplicationRule>, CounterMemory) {
        (self.rules, self.mem)
    }

    #[inline]
    fn is_lhs(&self, j: ColumnId) -> bool {
        self.active[j as usize]
            && !self.done[j as usize]
            && self.lhs_mask.as_ref().is_none_or(|m| m[j as usize])
    }

    /// `true` when the bitmap tail phase still owes this column its rules.
    #[inline]
    pub(crate) fn needs_finish(&self, j: ColumnId) -> bool {
        self.is_lhs(j)
    }

    /// `true` when column `k` is a valid candidate RHS for LHS `j`.
    #[inline]
    fn admissible(&self, j: ColumnId, k: ColumnId) -> bool {
        k != j
            && self.active[k as usize]
            && canonical_less(j, self.ones[j as usize], k, self.ones[k as usize])
    }

    /// Processes one row (Algorithm 3.1 step 3).
    pub fn process_row(&mut self, row: &[ColumnId]) -> BaseOutcome {
        self.tally.row();
        // Step 3(a): update candidate lists of every active column in the
        // row. Per-column updates are independent because `cnt` is only
        // advanced in step 3(b).
        for &j in row {
            if !self.is_lhs(j) {
                continue;
            }
            let cnt_j = self.cnt[j as usize];
            let maxmis_j = self.maxmis[j as usize];
            if cnt_j == 0 {
                self.create_list(j, row);
            } else if cnt_j <= maxmis_j {
                self.merge_open(j, row, cnt_j, maxmis_j);
            } else {
                self.update_closed(j, row, maxmis_j);
            }
        }
        // Step 3(b): advance counters and emit completed columns.
        for &j in row {
            if !self.is_lhs(j) {
                continue;
            }
            self.cnt[j as usize] += 1;
            if self.cnt[j as usize] == self.ones[j as usize] {
                self.complete_column(j);
            }
        }
        BaseOutcome::Counted
    }

    /// Records the per-row memory history sample.
    pub fn sample_memory(&mut self, rows_scanned: usize) {
        self.mem.sample(rows_scanned);
    }

    /// Applies one scheduler block: `rows` are the block's rows in scan
    /// order and `bm` their pre-aggregated per-column bitmaps (bit `t` of
    /// column `c` ⇔ `c ∈ rows[t]`).
    ///
    /// Columns whose lists are still *open* (`cnt ≤ maxmis`) at block start
    /// replay the rows through [`BaseScan::process_row`] — exact sequential
    /// semantics, since admissions depend on row contents. Columns already
    /// *closed* only ever increment or delete, so their per-candidate block
    /// misses are folded word-batched from `bm` instead (`u64` popcounts
    /// over `lhs & !rhs`). The resulting state — lists, counters, rules and
    /// tallies — is identical to processing the rows one by one.
    pub(crate) fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &BitMatrix) {
        let m = self.ones.len();
        let saved = self.lhs_mask.take();
        let open: Vec<bool> = (0..m)
            .map(|ji| {
                self.active[ji]
                    && !self.done[ji]
                    && saved.as_ref().is_none_or(|s| s[ji])
                    && self.cnt[ji] <= self.maxmis[ji]
            })
            .collect();
        self.lhs_mask = Some(open);
        for row in rows {
            self.process_row(row);
        }
        let open = std::mem::replace(&mut self.lhs_mask, saved).expect("mask was just installed");
        for (ji, &is_open) in open.iter().enumerate() {
            let j = ji as ColumnId;
            if is_open || !self.is_lhs(j) {
                continue;
            }
            let block_ones = bm.count_ones(j) as u32;
            if block_ones == 0 {
                continue;
            }
            self.fold_closed(j, block_ones, bm);
        }
    }

    /// Folds one block into a closed column: word-batched miss counting
    /// against every surviving candidate, then the counter advance and
    /// (possibly) completion that the masked replay skipped.
    fn fold_closed(&mut self, j: ColumnId, block_ones: u32, bm: &BitMatrix) {
        let ji = j as usize;
        let maxmis_j = self.maxmis[ji];
        if let Some(mut list) = self.lists.take(j) {
            let before = list.len();
            let mut write = 0;
            for read in 0..list.len() {
                let mut c = list[read];
                let block_miss = bm.miss_count(j, c.col) as u32;
                if block_miss > 0 {
                    // The sequential scan stops counting a candidate's
                    // misses at the one that deletes it.
                    let applied = block_miss.min(maxmis_j + 1 - c.miss);
                    c.miss += applied;
                    self.tally.miss(applied as usize);
                    if c.miss > maxmis_j {
                        self.tally.delete(1);
                        continue;
                    }
                }
                list[write] = c;
                write += 1;
            }
            list.truncate(write);
            self.mem.remove_candidates(before - write);
            if list.is_empty() {
                self.mem.remove_list();
            } else {
                self.lists.put_back(j, list);
            }
        }
        self.cnt[ji] += block_ones;
        if self.cnt[ji] == self.ones[ji] {
            self.complete_column(j);
        }
    }

    fn create_list(&mut self, j: ColumnId, row: &[ColumnId]) {
        let list: Vec<ImpCandidate> = row
            .iter()
            .filter(|&&k| self.admissible(j, k))
            .map(|&k| ImpCandidate { col: k, miss: 0 })
            .collect();
        self.tally.admit(list.len());
        self.lists.install(j, list, &mut self.mem);
    }

    /// The open merge: row-only columns are admitted with `miss = cnt_j`
    /// (they missed every earlier occurrence of `j`); list-only candidates
    /// take a miss.
    fn merge_open(&mut self, j: ColumnId, row: &[ColumnId], cnt_j: u32, maxmis_j: u32) {
        let Some(mut list) = self.lists.take(j) else {
            // An open column always has a list (created at its first row and
            // only released once closed or complete); recover by recreating.
            debug_assert!(false, "open merge on column c{j} without a list");
            self.lists.install(j, Vec::new(), &mut self.mem);
            self.merge_open_into_empty(j, row, cnt_j);
            return;
        };
        let before = list.len();
        self.scratch.clear();
        let mut li = 0;
        let mut ri = 0;
        loop {
            let list_col = list.get(li).map(|c| c.col);
            let row_col = row.get(ri).copied();
            match (list_col, row_col) {
                (Some(lc), Some(rc)) if lc == rc => {
                    // Hit: candidate unchanged.
                    self.scratch.push(list[li]);
                    li += 1;
                    ri += 1;
                }
                (Some(lc), Some(rc)) if lc < rc => {
                    // List-only: a miss.
                    let mut c = list[li];
                    c.miss += 1;
                    self.tally.miss(1);
                    if c.miss <= maxmis_j {
                        self.scratch.push(c);
                    } else {
                        self.tally.delete(1);
                    }
                    li += 1;
                }
                (Some(_), None) => {
                    let mut c = list[li];
                    c.miss += 1;
                    self.tally.miss(1);
                    if c.miss <= maxmis_j {
                        self.scratch.push(c);
                    } else {
                        self.tally.delete(1);
                    }
                    li += 1;
                }
                (_, Some(rc)) => {
                    // Row-only: admit with the misses already accumulated
                    // before this column's list could know about it.
                    if self.admissible(j, rc) {
                        self.tally.admit(1);
                        self.scratch.push(ImpCandidate {
                            col: rc,
                            miss: cnt_j,
                        });
                    }
                    ri += 1;
                }
                (None, None) => break,
            }
        }
        std::mem::swap(&mut list, &mut self.scratch);
        let after = list.len();
        if after > before {
            self.mem.add_candidates(after - before);
        } else {
            self.mem.remove_candidates(before - after);
        }
        self.lists.put_back(j, list);
    }

    fn merge_open_into_empty(&mut self, j: ColumnId, row: &[ColumnId], cnt_j: u32) {
        let additions: Vec<ImpCandidate> = row
            .iter()
            .filter(|&&k| self.admissible(j, k))
            .map(|&k| ImpCandidate {
                col: k,
                miss: cnt_j,
            })
            .collect();
        if additions.is_empty() {
            return;
        }
        self.tally.admit(additions.len());
        self.mem.add_candidates(additions.len());
        let list = self.lists.get_mut(j).expect("list was just installed");
        list.extend(additions);
    }

    /// The closed update: in-place miss increments and deletions only.
    fn update_closed(&mut self, j: ColumnId, row: &[ColumnId], maxmis_j: u32) {
        let Some(mut list) = self.lists.take(j) else {
            return;
        };
        let before = list.len();
        let mut write = 0;
        let mut ri = 0;
        for read in 0..list.len() {
            let mut c = list[read];
            while ri < row.len() && row[ri] < c.col {
                ri += 1;
            }
            let hit = ri < row.len() && row[ri] == c.col;
            if !hit {
                c.miss += 1;
                self.tally.miss(1);
                if c.miss > maxmis_j {
                    self.tally.delete(1);
                    continue; // deleted
                }
            }
            list[write] = c;
            write += 1;
        }
        list.truncate(write);
        self.mem.remove_candidates(before - write);
        if list.is_empty() {
            // No admissions are possible anymore; drop the empty list.
            self.mem.remove_list();
        } else {
            self.lists.put_back(j, list);
        }
    }

    /// Column `j` has all its 1s counted: every remaining candidate is a
    /// rule (the immediate-deletion invariant guarantees `miss ≤ maxmis`).
    fn complete_column(&mut self, j: ColumnId) {
        self.done[j as usize] = true;
        let ones_j = self.ones[j as usize];
        if self.release_completed {
            if let Some(list) = self.lists.release(j, &mut self.mem) {
                self.emit_rules(j, ones_j, list.iter());
            }
        } else if let Some(list) = self.lists.take(j) {
            self.emit_rules(j, ones_j, list.iter());
            self.lists.put_back(j, list);
        }
    }

    fn emit_rules<'a>(
        &mut self,
        j: ColumnId,
        ones_j: u32,
        list: impl Iterator<Item = &'a ImpCandidate>,
    ) {
        for c in list {
            debug_assert!(c.miss <= self.maxmis[j as usize]);
            self.tally.emit(1);
            self.rules.push(ImplicationRule {
                lhs: j,
                rhs: c.col,
                hits: ones_j - c.miss,
                lhs_ones: ones_j,
                rhs_ones: self.ones[c.col as usize],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_matrix::SparseMatrix;

    fn run(matrix: &SparseMatrix, minconf: f64) -> Vec<ImplicationRule> {
        let mut scan = BaseScan::new(
            matrix.n_cols(),
            minconf,
            matrix.column_ones(),
            None,
            true,
            false,
        );
        for row in matrix.rows() {
            scan.process_row(row);
        }
        let (mut rules, _) = scan.into_parts();
        rules.sort();
        rules
    }

    /// Figure 1 / Example 1.2: at 100% confidence only c3 => c2 survives
    /// (0-indexed: c2 => c1). The matrix is reconstructed from the
    /// example's walk: r3 must contain c1 alone (it kills c1 => c2 and
    /// c1 => c3), and a final c2-only row breaks c2 => c3.
    #[test]
    fn example_1_2_hundred_percent() {
        let m = SparseMatrix::from_rows(3, vec![vec![1, 2], vec![0, 1, 2], vec![0], vec![1]]);
        let rules = run(&m, 1.0);
        assert_eq!(rules.len(), 1);
        assert_eq!((rules[0].lhs, rules[0].rhs), (2, 1));
        assert_eq!(rules[0].hits, 2);
        assert_eq!(rules[0].confidence(), 1.0);
    }

    /// Figure 2 / Example 3.1: at 80% confidence the rules are c1 => c2 and
    /// c3 => c5 (0-indexed: 0 => 1 and 2 => 4).
    #[test]
    fn example_3_1_eighty_percent() {
        let m = fig2();
        let rules = run(&m, 0.8);
        let pairs: Vec<(ColumnId, ColumnId)> = rules.iter().map(|r| (r.lhs, r.rhs)).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 4)]);
        // c1 => c2: one miss (r7), so 4 hits out of 5.
        assert_eq!(rules[0].hits, 4);
        assert_eq!(rules[1].hits, 4);
    }

    /// The Example 3.1 mid-scan trace: candidate lists after r4.
    #[test]
    fn example_3_1_state_after_r4() {
        let m = fig2();
        let mut scan = BaseScan::new(m.n_cols(), 0.8, m.column_ones(), None, true, false);
        for r in 0..4 {
            scan.process_row(m.row(r));
        }
        // Fig 2(c): c1 -> {c2, c3, c6}, c2 -> {c3, c6}, c3 -> {c5}, c4 -> {c5}.
        // (c5 and c6 own empty lists — the paper draws no entry for them.)
        let lists: Vec<(ColumnId, Vec<(ColumnId, u32)>)> = scan
            .lists
            .iter()
            .filter(|(_, l)| !l.is_empty())
            .map(|(c, l)| (c, l.iter().map(|x| (x.col, x.miss)).collect()))
            .collect();
        assert_eq!(
            lists,
            vec![
                (0, vec![(1, 0), (2, 0), (5, 0)]),
                (1, vec![(2, 1), (5, 0)]),
                (2, vec![(4, 1)]),
                (3, vec![(4, 0)]),
            ]
        );
        assert_eq!(&scan.cnt, &[1, 2, 3, 1, 2, 2]);
    }

    /// §4.1: the total candidate count history in original row order is
    /// (1,4,4,7,9,7,7,6,2), measured with lists retained at completion.
    #[test]
    fn fig2_candidate_history_original_order() {
        let m = fig2();
        let mut scan = BaseScan::new(m.n_cols(), 0.8, m.column_ones(), None, false, false);
        let mut history = Vec::new();
        for row in m.rows() {
            scan.process_row(row);
            history.push(scan.lists.total_candidates());
        }
        assert_eq!(history, vec![1, 4, 4, 7, 9, 7, 7, 6, 2]);
    }

    /// §4.1 sparsest-first: the paper lists (1,2,3,5,6,8,5,2,2) for the
    /// order (r1,r3,r8,r2,r5,r4,r6,r9,r7). The reconstructed matrix's true
    /// density-sorted order is (r1,r3,r8,r2,r9,r4,r6,r5,r7) — the paper
    /// swaps r5/r9 — and yields (1,2,3,5,8,8,5,2,2): entry 5 differs from
    /// the paper's 6, every other entry and the final rules match (see
    /// DESIGN.md). The §4.1 point stands: the peak drops from 9 to 8.
    #[test]
    fn fig2_candidate_history_sparsest_order() {
        let m = fig2();
        let mut scan = BaseScan::new(m.n_cols(), 0.8, m.column_ones(), None, false, false);
        let mut history = Vec::new();
        for &r in &[0usize, 2, 7, 1, 8, 3, 5, 4, 6] {
            scan.process_row(m.row(r));
            history.push(scan.lists.total_candidates());
        }
        assert_eq!(history, vec![1, 2, 3, 5, 8, 8, 5, 2, 2]);
        let (mut rules, _) = scan.into_parts();
        rules.sort();
        let pairs: Vec<(ColumnId, ColumnId)> = rules.iter().map(|r| (r.lhs, r.rhs)).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 4)]);
    }

    #[test]
    fn rule_output_is_order_invariant() {
        let m = fig2();
        let forward = run(&m, 0.8);
        let mut scan = BaseScan::new(m.n_cols(), 0.8, m.column_ones(), None, true, false);
        for r in (0..m.n_rows()).rev() {
            scan.process_row(m.row(r));
        }
        let (mut rules, _) = scan.into_parts();
        rules.sort();
        assert_eq!(rules, forward);
    }

    #[test]
    fn release_toggle_does_not_change_rules() {
        let m = fig2();
        for release in [true, false] {
            let mut scan = BaseScan::new(m.n_cols(), 0.8, m.column_ones(), None, release, false);
            for row in m.rows() {
                scan.process_row(row);
            }
            let (mut rules, _) = scan.into_parts();
            rules.sort();
            assert_eq!(rules, run(&m, 0.8), "release={release}");
        }
    }

    #[test]
    fn inactive_columns_are_ignored() {
        let m = fig2();
        let mut active = vec![true; 6];
        active[1] = false; // drop c2
        let mut scan = BaseScan::new(m.n_cols(), 0.8, m.column_ones(), Some(active), true, false);
        for row in m.rows() {
            scan.process_row(row);
        }
        let (rules, _) = scan.into_parts();
        let pairs: Vec<(ColumnId, ColumnId)> = rules.iter().map(|r| (r.lhs, r.rhs)).collect();
        assert_eq!(
            pairs,
            vec![(2, 4)],
            "rules touching c1 (0-indexed col 1) vanish"
        );
    }

    #[test]
    fn memory_accounting_matches_list_contents() {
        let m = fig2();
        let mut scan = BaseScan::new(m.n_cols(), 0.8, m.column_ones(), None, false, false);
        for row in m.rows() {
            scan.process_row(row);
            assert_eq!(
                scan.memory().current_candidates(),
                scan.lists.total_candidates(),
                "tracker and lists agree after every row"
            );
        }
        assert_eq!(scan.memory().peak_candidates(), 9);
    }

    #[test]
    fn empty_matrix_yields_no_rules() {
        let m = SparseMatrix::from_rows(4, vec![]);
        assert!(run(&m, 0.9).is_empty());
    }

    /// Block application is state-identical to row-by-row processing —
    /// rules, tallies and counters — at every block size and threshold.
    #[test]
    fn apply_block_matches_row_by_row() {
        let m = fig2();
        for &minconf in &[1.0, 0.8, 0.5] {
            let mut seq = BaseScan::new(m.n_cols(), minconf, m.column_ones(), None, true, false);
            for row in m.rows() {
                seq.process_row(row);
            }
            let rows: Vec<Vec<ColumnId>> = m.rows().map(<[ColumnId]>::to_vec).collect();
            for block in 1..=m.n_rows() {
                let mut blk =
                    BaseScan::new(m.n_cols(), minconf, m.column_ones(), None, true, false);
                for chunk in rows.chunks(block) {
                    let mut bm = BitMatrix::new(chunk.len());
                    for (t, row) in chunk.iter().enumerate() {
                        for &c in row {
                            bm.set(c, t);
                        }
                    }
                    blk.apply_block(chunk, &bm);
                }
                let mut expected = seq.rules.clone();
                expected.sort();
                let mut got = blk.rules.clone();
                got.sort();
                assert_eq!(got, expected, "minconf={minconf} block={block}");
                assert_eq!(blk.tally(), seq.tally(), "minconf={minconf} block={block}");
                assert_eq!(blk.cnt, seq.cnt, "minconf={minconf} block={block}");
            }
        }
    }

    #[test]
    fn duplicate_columns_pair_at_full_confidence() {
        // Columns 0 and 1 are identical; 2 is different.
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1, 2], vec![0, 1]]);
        let rules = run(&m, 1.0);
        let pairs: Vec<(ColumnId, ColumnId)> = rules.iter().map(|r| (r.lhs, r.rhs)).collect();
        // ones: [3,3,1]. Canonical: c2 (1 one) < c0 < c1.
        // c2 => c0 and c2 => c1 hold (1/1); c0 => c1 holds (3/3).
        assert_eq!(pairs, vec![(0, 1), (2, 0), (2, 1)]);
    }

    /// Figure 2 of the paper (see dmc-matrix's order module and DESIGN.md
    /// for the reconstruction).
    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }
}
