//! A fast, non-cryptographic hasher for hot integer-keyed maps.
//!
//! DMC's bitmap Phase 2 and several baselines hash millions of `u32` column
//! ids. `std`'s default SipHash is collision-resistant but slow for short
//! integer keys (Rust perf-book, "Hashing"); the sanctioned offline crate
//! set has no `rustc-hash`, so this module implements the same
//! multiply-rotate FxHash scheme used by rustc, with tests.
//!
//! Not HashDoS-resistant — keys here are internal column/row ids, never
//! attacker-controlled.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc FxHash algorithm: for each word, rotate-left, xor, multiply by
/// a fixed odd constant.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let hashes: Vec<u64> = (0u32..1000).map(|k| hash_of(&k)).collect();
        let unique: FxHashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(
            unique.len(),
            1000,
            "no collisions on small consecutive keys"
        );
    }

    #[test]
    fn byte_stream_tail_handling() {
        // 9 bytes exercises the chunk + remainder path.
        let a = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]);
        let b = hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a, b);
    }

    #[test]
    fn map_and_set_work() {
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        for k in 0..100 {
            map.insert(k, k * 2);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map[&7], 14);

        let set: FxHashSet<u32> = (0..50).collect();
        assert!(set.contains(&49));
        assert!(!set.contains(&50));
    }

    #[test]
    fn spread_across_low_bits() {
        // HashMap uses the low bits of the hash; consecutive keys must not
        // all collide there.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for k in 0u32..256 {
            low_bits.insert(hash_of(&k) & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "got {} distinct low bytes",
            low_bits.len()
        );
    }
}
