//! DMC-imp (Algorithm 4.2): the full implication-rule pipeline.
//!
//! 1. Pre-scan: per-column 1-counts (and, implicitly, the §4.1 density
//!    buckets through the configured [`RowOrder`]).
//! 2. Exact stage: 100%-confidence rules via the simplified scan (§4.3).
//! 3. Remove columns that can only carry exact rules
//!    (`maxmis(c) = 0`; the corrected Algorithm 4.2 step 3 bound).
//! 4. Sub-100% stage: DMC-base over the surviving columns, switching to
//!    DMC-bitmap per the configured [`SwitchPolicy`].
//!
//! Both counting stages scan rows in the configured order and monitor the
//! counter-array footprint; the driver collects phase timings, peak memory
//! and (optionally) the Fig-3 memory history into [`ImplicationOutput`].

use crate::base::BaseScan;
use crate::bitmap::finish_with_bitmaps;
use crate::config::ImplicationConfig;
use crate::hundred::{HundredMode, HundredScan};
use crate::rules::ImplicationRule;
use crate::threshold::{conf_qualifies, only_exact_rules_conf};
use dmc_matrix::{ColumnId, RowId, SparseMatrix};
use dmc_metrics::{
    CounterMemory, PhaseReport, PhaseTimer, ReportBuilder, RunReport, StageReport, WorkerReport,
};

/// Result of [`find_implications`].
#[derive(Debug)]
pub struct ImplicationOutput {
    /// All qualifying rules, sorted by `(lhs, rhs)`.
    pub rules: Vec<ImplicationRule>,
    /// Phase breakdown: `pre-scan`, `100% rules`, `<100% rules`,
    /// `bitmap tail`.
    pub phases: PhaseReport,
    /// Counter-array accounting across all stages (peak = max over stages).
    pub memory: CounterMemory,
    /// Whether the sub-100% stage switched to DMC-bitmap, and after how
    /// many scanned rows. Parallel drivers report one global position at
    /// any thread count, aligned to a block boundary of the scheduler.
    pub bitmap_switch_at: Option<usize>,
    /// Per-worker phase times, credited tally shares and block-scheduling
    /// counters. Empty for the sequential drivers; one entry per worker
    /// for the parallel drivers.
    pub workers: Vec<WorkerReport>,
    /// The machine-readable run report (same schema across all drivers).
    pub report: RunReport,
}

impl ImplicationOutput {
    /// Convenience: `(lhs, rhs)` pairs of the rules.
    #[must_use]
    pub fn pairs(&self) -> Vec<(ColumnId, ColumnId)> {
        self.rules.iter().map(|r| (r.lhs, r.rhs)).collect()
    }

    /// The `k` rules with the highest confidence (ties by more hits, then
    /// canonical order).
    ///
    /// Thin wrapper kept for backward compatibility; prefer
    /// [`MinedOutput::top`](crate::MinedOutput::top), which works across
    /// both output types.
    #[must_use]
    pub fn top_by_confidence(&self, k: usize) -> Vec<&ImplicationRule> {
        crate::MinedOutput::top(self, k)
    }

    /// All rules whose LHS is `col`, in canonical order.
    #[must_use]
    pub fn for_lhs(&self, col: ColumnId) -> Vec<&ImplicationRule> {
        self.rules.iter().filter(|r| r.lhs == col).collect()
    }
}

/// Mines all implication rules of `matrix` at `config.minconf`.
///
/// Returns every rule `c_i ⇒ c_j` with confidence ≥ *minconf* in the
/// paper's canonical direction (`|S_i| < |S_j|`, ties by id), plus reverse
/// directions when [`ImplicationConfig::emit_reverse`] is set. Exact — no
/// false positives or negatives.
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::implications(minconf).mine(&matrix)`); this free function
/// remains for backward compatibility.
#[must_use]
pub fn find_implications(matrix: &SparseMatrix, config: &ImplicationConfig) -> ImplicationOutput {
    find_implications_masked(matrix, config, None)
}

/// [`find_implications`] restricted to the LHS columns selected by
/// `lhs_mask` (`None` = all). Masked columns still serve as RHS partners,
/// still appear in tail bitmaps, and their pre-scan counts are unchanged,
/// so each unmasked column's candidate evolution is byte-identical to the
/// unsharded run — the shard workers rely on this to make the merged
/// union exact (DESIGN.md §13).
#[must_use]
pub(crate) fn find_implications_masked(
    matrix: &SparseMatrix,
    config: &ImplicationConfig,
    lhs_mask: Option<&[bool]>,
) -> ImplicationOutput {
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let mut memory = if config.record_memory_history {
        CounterMemory::with_history(4096)
    } else {
        CounterMemory::new()
    };

    // Step 1: pre-scan.
    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };

    let mut rules = Vec::new();
    let mut bitmap_switch_at = None;
    let mut report = ReportBuilder::new("implication", "in-memory", 0, config.minconf);
    report.dims(matrix.n_rows(), matrix.n_cols());

    // Step 2: exact rules through the simplified scan.
    if config.hundred_stage || config.minconf >= 1.0 {
        let _g = timer.enter("100% rules");
        let hundred = run_hundred(
            matrix,
            &order,
            &config.switch,
            ones.clone(),
            config.record_memory_history,
            lhs_mask,
        );
        let tally = hundred.tally();
        let (imp, _, mem) = hundred.into_parts();
        report.hundred_stage(StageReport::new(
            tally,
            imp.len() as u64,
            mem.peak_candidates(),
        ));
        rules.extend(imp);
        memory.absorb_peak(&mem);
    }

    // Steps 3–4: sub-100% rules over columns that can tolerate misses.
    if config.minconf < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_conf(u64::from(o), config.minconf))
                    .collect(),
            )
        } else {
            None
        };
        let mut scan = BaseScan::new(
            matrix.n_cols(),
            config.minconf,
            ones,
            active,
            config.release_completed,
            config.record_memory_history,
        );
        scan.lhs_mask = lhs_mask.map(<[bool]>::to_vec);
        {
            let _g = timer.enter("<100% rules");
            bitmap_switch_at = scan_rows(matrix, &order, &config.switch, &mut scan);
        }
        if let Some(pos) = bitmap_switch_at {
            let _g = timer.enter("bitmap tail");
            let tail: Vec<&[ColumnId]> = order[pos..]
                .iter()
                .map(|&r| matrix.row(r as usize))
                .collect();
            finish_with_bitmaps(&mut scan, &tail);
        }
        let tally = scan.tally();
        let (stage_rules, mem) = scan.into_parts();
        // The exact stage already emitted every 0-miss rule (over all
        // columns); keep only rules with at least one miss to avoid
        // duplicates. Without the exact stage this scan is the sole source.
        let before = rules.len();
        if config.hundred_stage {
            rules.extend(stage_rules.into_iter().filter(|r| r.misses() > 0));
        } else {
            rules.extend(stage_rules);
        }
        report.sub_stage(StageReport::new(
            tally,
            (rules.len() - before) as u64,
            mem.peak_candidates(),
        ));
        memory.absorb_peak(&mem);
    }

    if config.emit_reverse {
        let reversed: Vec<ImplicationRule> = rules
            .iter()
            .filter(|r| conf_qualifies(u64::from(r.hits), u64::from(r.rhs_ones), config.minconf))
            .map(|r| r.reversed())
            .collect();
        report.reverse_rules(reversed.len() as u64);
        rules.extend(reversed);
    }

    rules.sort_unstable();
    rules.dedup();
    let phases = timer.report();
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    ImplicationOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers: Vec::new(),
        report,
    }
}

/// Runs the exact-rule scan over `order`, honoring the switch policy.
fn run_hundred(
    matrix: &SparseMatrix,
    order: &[RowId],
    switch: &crate::config::SwitchPolicy,
    ones: Vec<u32>,
    record_history: bool,
    lhs_mask: Option<&[bool]>,
) -> HundredScan {
    let mut scan = HundredScan::with_history(
        matrix.n_cols(),
        HundredMode::Implication,
        ones,
        record_history,
    );
    if let Some(mask) = lhs_mask {
        scan.set_lhs_mask(mask.to_vec());
    }
    for (pos, &r) in order.iter().enumerate() {
        let remaining = order.len() - pos;
        if switch.should_switch(remaining, scan.memory().current_bytes()) {
            let tail: Vec<&[ColumnId]> = order[pos..]
                .iter()
                .map(|&r| matrix.row(r as usize))
                .collect();
            scan.finish_with_bitmaps(&tail);
            return scan;
        }
        scan.process_row(matrix.row(r as usize));
        scan.sample_memory(pos + 1);
    }
    scan.finish_with_bitmaps(&[]);
    scan
}

/// Feeds rows to a [`BaseScan`] in `order`, stopping where the switch
/// policy fires. Returns the switch position, if any; the caller runs the
/// bitmap tail from there.
fn scan_rows(
    matrix: &SparseMatrix,
    order: &[RowId],
    switch: &crate::config::SwitchPolicy,
    scan: &mut BaseScan,
) -> Option<usize> {
    for (pos, &r) in order.iter().enumerate() {
        let remaining = order.len() - pos;
        if switch.should_switch(remaining, scan.memory().current_bytes()) {
            return Some(pos);
        }
        scan.process_row(matrix.row(r as usize));
        scan.sample_memory(pos + 1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchPolicy;
    use dmc_matrix::order::RowOrder;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    #[test]
    fn fig2_at_80_percent() {
        let out = find_implications(&fig2(), &ImplicationConfig::new(0.8));
        assert_eq!(out.pairs(), vec![(0, 1), (2, 4)]);
        assert!(out.phases.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn hundred_stage_toggle_is_equivalent() {
        let m = fig2();
        for &minconf in &[1.0, 0.9, 0.8, 0.6, 0.35] {
            let with = find_implications(&m, &ImplicationConfig::new(minconf));
            let without = find_implications(
                &m,
                &ImplicationConfig::new(minconf).with_hundred_stage(false),
            );
            assert_eq!(with.rules, without.rules, "minconf={minconf}");
        }
    }

    #[test]
    fn row_orders_are_equivalent() {
        let m = fig2();
        let base = find_implications(&m, &ImplicationConfig::new(0.8));
        for order in [
            RowOrder::Original,
            RowOrder::ExactSparsestFirst,
            RowOrder::Custom((0..9).rev().collect()),
        ] {
            let out = find_implications(
                &m,
                &ImplicationConfig::new(0.8).with_row_order(order.clone()),
            );
            assert_eq!(out.rules, base.rules, "order={order:?}");
        }
    }

    #[test]
    fn forced_bitmap_switch_is_equivalent() {
        let m = fig2();
        for tail in 1..=9 {
            let cfg = ImplicationConfig::new(0.8).with_switch(SwitchPolicy::always_at(tail));
            let out = find_implications(&m, &cfg);
            assert_eq!(out.pairs(), vec![(0, 1), (2, 4)], "tail={tail}");
            assert_eq!(out.bitmap_switch_at, Some(9 - tail));
            assert!(out.phases.phase("bitmap tail") > std::time::Duration::ZERO);
        }
    }

    #[test]
    fn no_switch_under_never_policy() {
        let m = fig2();
        let out = find_implications(
            &m,
            &ImplicationConfig::new(0.8).with_switch(SwitchPolicy::never()),
        );
        assert_eq!(out.bitmap_switch_at, None);
    }

    #[test]
    fn reverse_emission_adds_qualifying_reverses() {
        // Columns 0 and 1 identical => both directions at 100%.
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1], vec![2]]);
        let fwd = find_implications(&m, &ImplicationConfig::new(1.0));
        assert_eq!(fwd.pairs(), vec![(0, 1)]);
        let both = find_implications(&m, &ImplicationConfig::new(1.0).with_reverse(true));
        assert_eq!(both.pairs(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn reverse_emission_respects_threshold() {
        // S_0 = {0}, S_1 = {0, 1}: 0 => 1 holds at 1.0; 1 => 0 at 0.5.
        let m = SparseMatrix::from_rows(2, vec![vec![0, 1], vec![1]]);
        let out = find_implications(&m, &ImplicationConfig::new(0.8).with_reverse(true));
        assert_eq!(out.pairs(), vec![(0, 1)]);
        let loose = find_implications(&m, &ImplicationConfig::new(0.5).with_reverse(true));
        assert_eq!(loose.pairs(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn memory_history_is_recorded_when_requested() {
        let m = fig2();
        let mut cfg = ImplicationConfig::new(0.8)
            .with_row_order(RowOrder::Original)
            .with_hundred_stage(false); // a single scan records one history
        cfg.record_memory_history = true;
        cfg.release_completed = false;
        let out = find_implications(&m, &cfg);
        let hist = out.memory.history();
        assert_eq!(hist.len(), 9, "one sample per row");
        let candidates: Vec<usize> = hist.iter().map(|s| s.candidates).collect();
        assert_eq!(candidates, vec![1, 4, 4, 7, 9, 7, 7, 6, 2], "§4.1 history");
    }

    #[test]
    fn empty_and_degenerate_matrices() {
        let empty = SparseMatrix::from_rows(0, vec![]);
        assert!(find_implications(&empty, &ImplicationConfig::new(0.9))
            .rules
            .is_empty());

        let single = SparseMatrix::from_rows(3, vec![vec![0, 1, 2]]);
        let out = find_implications(&single, &ImplicationConfig::new(1.0));
        assert_eq!(out.pairs(), vec![(0, 1), (0, 2), (1, 2)]);

        let no_rows = SparseMatrix::from_rows(5, vec![]);
        assert!(find_implications(&no_rows, &ImplicationConfig::new(0.5))
            .rules
            .is_empty());
    }

    #[test]
    fn all_ones_matrix_yields_all_pairs() {
        let m = SparseMatrix::from_rows(4, vec![vec![0, 1, 2, 3]; 3]);
        let out = find_implications(&m, &ImplicationConfig::new(1.0));
        assert_eq!(out.rules.len(), 6);
        assert!(out.rules.iter().all(|r| r.confidence() == 1.0));
    }
}

#[cfg(test)]
mod output_tests {
    use super::*;
    use dmc_matrix::SparseMatrix;

    #[test]
    fn top_and_lhs_queries() {
        // c0 ⊂ c2 (conf 1.0), c1 => c2 at 2/3.
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1, 2], vec![1, 2], vec![0, 1, 2], vec![1]]);
        let out = find_implications(&m, &ImplicationConfig::new(0.6));
        let top = out.top_by_confidence(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].confidence(), 1.0);
        let from_zero = out.for_lhs(0);
        assert!(from_zero.iter().all(|r| r.lhs == 0));
        assert!(!from_zero.is_empty());
        assert_eq!(out.top_by_confidence(100).len(), out.rules.len());
    }
}
