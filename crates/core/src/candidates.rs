//! Candidate-list storage shared by the DMC scans.
//!
//! Every LHS column `c_j` that is still viable owns a list of candidate RHS
//! columns, each with its miss counter (Fig 2(b) of the paper). Lists are
//! kept sorted by candidate column id so the per-row update is a merge with
//! the row's sorted column slice.

use dmc_matrix::ColumnId;
use dmc_metrics::CounterMemory;

/// A candidate entry of the implication scan: the RHS column and the misses
/// of the LHS against it so far.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImpCandidate {
    pub col: ColumnId,
    pub miss: u32,
}

/// A candidate entry of the similarity scan. Unlike confidence, the miss
/// budget depends on *both* column sizes, so it is computed at admission and
/// stored per pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimCandidate {
    pub col: ColumnId,
    pub miss: u32,
    /// Largest tolerable miss count for this pair
    /// ([`crate::threshold::max_misses_sim`]).
    pub budget: u32,
}

/// Per-column candidate lists with [`CounterMemory`] accounting.
///
/// `None` means the column either has not been seen yet or has had its list
/// released (completion or emptiness); the scans distinguish those through
/// their own `cnt`/`done` state.
#[derive(Debug)]
pub struct ColumnLists<T> {
    lists: Vec<Option<Vec<T>>>,
}

impl<T> ColumnLists<T> {
    /// One empty slot per column.
    #[must_use]
    pub fn new(n_cols: usize) -> Self {
        let mut lists = Vec::with_capacity(n_cols);
        lists.resize_with(n_cols, || None);
        Self { lists }
    }

    /// The list of `col`, if it exists.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    #[must_use]
    pub fn get(&self, col: ColumnId) -> Option<&Vec<T>> {
        self.lists[col as usize].as_ref()
    }

    /// Mutable access to the list of `col`, if it exists.
    #[inline]
    pub fn get_mut(&mut self, col: ColumnId) -> Option<&mut Vec<T>> {
        self.lists[col as usize].as_mut()
    }

    /// Installs a freshly created list for `col`, recording its footprint.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the column already has a list.
    pub fn install(&mut self, col: ColumnId, list: Vec<T>, mem: &mut CounterMemory) {
        debug_assert!(
            self.lists[col as usize].is_none(),
            "column c{col} already has a list"
        );
        mem.add_list();
        mem.add_candidates(list.len());
        self.lists[col as usize] = Some(list);
    }

    /// Removes and returns the list of `col`, updating the accounting.
    pub fn release(&mut self, col: ColumnId, mem: &mut CounterMemory) -> Option<Vec<T>> {
        let list = self.lists[col as usize].take();
        if let Some(list) = &list {
            mem.remove_candidates(list.len());
            mem.remove_list();
        }
        list
    }

    /// Takes the list out for in-place modification; pair with
    /// [`ColumnLists::put_back`]. Accounting is the caller's duty via the
    /// returned length delta.
    #[inline]
    pub fn take(&mut self, col: ColumnId) -> Option<Vec<T>> {
        self.lists[col as usize].take()
    }

    /// Restores a list taken with [`ColumnLists::take`].
    #[inline]
    pub fn put_back(&mut self, col: ColumnId, list: Vec<T>) {
        self.lists[col as usize] = Some(list);
    }

    /// Iterates `(column, list)` pairs for columns that own a list.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &Vec<T>)> {
        self.lists
            .iter()
            .enumerate()
            .filter_map(|(c, l)| l.as_ref().map(|l| (c as ColumnId, l)))
    }

    /// Total live candidate entries (for accounting cross-checks).
    #[cfg_attr(not(test), allow(dead_code))]
    #[must_use]
    pub fn total_candidates(&self) -> usize {
        self.lists.iter().flatten().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_release_roundtrip_with_accounting() {
        let mut mem = CounterMemory::new();
        let mut lists: ColumnLists<ImpCandidate> = ColumnLists::new(4);
        lists.install(
            2,
            vec![
                ImpCandidate { col: 3, miss: 0 },
                ImpCandidate { col: 1, miss: 1 },
            ],
            &mut mem,
        );
        assert_eq!(mem.current_candidates(), 2);
        assert_eq!(lists.total_candidates(), 2);
        assert!(lists.get(2).is_some());
        assert!(lists.get(0).is_none());

        let freed = lists.release(2, &mut mem).unwrap();
        assert_eq!(freed.len(), 2);
        assert_eq!(mem.current_candidates(), 0);
        assert!(lists.get(2).is_none());
        assert!(
            lists.release(2, &mut mem).is_none(),
            "double release is a no-op"
        );
    }

    #[test]
    fn take_and_put_back() {
        let mut mem = CounterMemory::new();
        let mut lists: ColumnLists<SimCandidate> = ColumnLists::new(2);
        lists.install(
            0,
            vec![SimCandidate {
                col: 1,
                miss: 0,
                budget: 2,
            }],
            &mut mem,
        );
        let mut taken = lists.take(0).unwrap();
        assert!(lists.get(0).is_none());
        taken[0].miss += 1;
        lists.put_back(0, taken);
        assert_eq!(lists.get(0).unwrap()[0].miss, 1);
    }

    #[test]
    fn iter_skips_absent() {
        let mut mem = CounterMemory::new();
        let mut lists: ColumnLists<ImpCandidate> = ColumnLists::new(5);
        lists.install(1, vec![], &mut mem);
        lists.install(4, vec![ImpCandidate { col: 0, miss: 0 }], &mut mem);
        let cols: Vec<ColumnId> = lists.iter().map(|(c, _)| c).collect();
        assert_eq!(cols, vec![1, 4]);
    }
}
