//! Text serialization of rule sets.
//!
//! A stable, line-oriented interchange format so mined rules can be piped
//! between tools, diffed, and re-loaded without re-scanning the data:
//!
//! ```text
//! imp <lhs> <rhs> <hits> <lhs_ones> <rhs_ones>
//! sim <a> <b> <hits> <a_ones> <b_ones>
//! ```
//!
//! Lines starting with `#` are comments; blank lines are skipped.

use crate::rules::{ImplicationRule, SimilarityRule};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors while parsing a rules file.
#[derive(Debug)]
pub enum RuleParseError {
    Io(io::Error),
    /// Line did not match the format; payload is (line number, content).
    BadLine {
        line: usize,
        content: String,
    },
}

impl std::fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuleParseError::Io(e) => write!(f, "io error: {e}"),
            RuleParseError::BadLine { line, content } => {
                write!(f, "line {line}: malformed rule {content:?}")
            }
        }
    }
}

impl std::error::Error for RuleParseError {}

impl From<io::Error> for RuleParseError {
    fn from(e: io::Error) -> Self {
        RuleParseError::Io(e)
    }
}

/// Writes implication and similarity rules in the text format.
///
/// # Errors
///
/// Propagates IO errors from `writer`.
pub fn write_rules<W: Write>(
    implications: &[ImplicationRule],
    similarities: &[SimilarityRule],
    mut writer: W,
) -> io::Result<()> {
    writeln!(
        writer,
        "# dmc rules: {} imp, {} sim",
        implications.len(),
        similarities.len()
    )?;
    for r in implications {
        writeln!(
            writer,
            "imp {} {} {} {} {}",
            r.lhs, r.rhs, r.hits, r.lhs_ones, r.rhs_ones
        )?;
    }
    for r in similarities {
        writeln!(
            writer,
            "sim {} {} {} {} {}",
            r.a, r.b, r.hits, r.a_ones, r.b_ones
        )?;
    }
    Ok(())
}

/// Reads a rules file back into rule vectors.
///
/// # Errors
///
/// Returns [`RuleParseError`] on IO failure or malformed lines.
pub fn read_rules<R: Read>(
    reader: R,
) -> Result<(Vec<ImplicationRule>, Vec<SimilarityRule>), RuleParseError> {
    let reader = BufReader::new(reader);
    let mut imps = Vec::new();
    let mut sims = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = || RuleParseError::BadLine {
            line: line_no,
            content: trimmed.to_string(),
        };
        let mut parts = trimmed.split_whitespace();
        let kind = parts.next().ok_or_else(bad)?;
        let mut next = || -> Result<u32, RuleParseError> {
            parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())
        };
        let (x, y, hits, ox, oy) = (next()?, next()?, next()?, next()?, next()?);
        match kind {
            "imp" => imps.push(ImplicationRule {
                lhs: x,
                rhs: y,
                hits,
                lhs_ones: ox,
                rhs_ones: oy,
            }),
            "sim" => sims.push(SimilarityRule {
                a: x,
                b: y,
                hits,
                a_ones: ox,
                b_ones: oy,
            }),
            _ => return Err(bad()),
        }
    }
    Ok((imps, sims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Vec<ImplicationRule>, Vec<SimilarityRule>) {
        (
            vec![
                ImplicationRule {
                    lhs: 0,
                    rhs: 1,
                    hits: 9,
                    lhs_ones: 10,
                    rhs_ones: 20,
                },
                ImplicationRule {
                    lhs: 5,
                    rhs: 2,
                    hits: 3,
                    lhs_ones: 3,
                    rhs_ones: 7,
                },
            ],
            vec![SimilarityRule {
                a: 1,
                b: 4,
                hits: 6,
                a_ones: 7,
                b_ones: 8,
            }],
        )
    }

    #[test]
    fn roundtrip() {
        let (imps, sims) = sample();
        let mut buf = Vec::new();
        write_rules(&imps, &sims, &mut buf).unwrap();
        let (back_imps, back_sims) = read_rules(&buf[..]).unwrap();
        assert_eq!(back_imps, imps);
        assert_eq!(back_sims, sims);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nimp 1 2 3 4 5\n# trailing\n";
        let (imps, sims) = read_rules(text.as_bytes()).unwrap();
        assert_eq!(imps.len(), 1);
        assert!(sims.is_empty());
        assert_eq!(imps[0].lhs, 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in ["imp 1 2 3 4", "foo 1 2 3 4 5", "imp 1 2 x 4 5", "imp"] {
            let err = read_rules(bad.as_bytes()).unwrap_err();
            assert!(
                matches!(err, RuleParseError::BadLine { line: 1, .. }),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn empty_input_is_empty_rule_sets() {
        let (imps, sims) = read_rules("".as_bytes()).unwrap();
        assert!(imps.is_empty() && sims.is_empty());
    }

    #[test]
    fn error_display() {
        let err = read_rules("garbage line here\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
