//! Rule grouping (§6.3 and the paper's future-work item 1).
//!
//! DMC mines pairwise rules only, but §6.3 shows that *grouping* related
//! rules recovers multi-attribute structure: the Fig-7 Polgar cluster is
//! "all rules related to keyword Polgar and its successors, recursively".
//! This module provides both operations the paper uses:
//!
//! * [`rule_closure`] — the recursive successor expansion from a seed
//!   column (exactly the Fig-7 selection), and
//! * [`rule_groups`] — connected components of the whole rule graph
//!   (union-find), turning a flat rule list into topic-like clusters.

use crate::rules::{ImplicationRule, SimilarityRule};
use dmc_matrix::ColumnId;

/// Union-find over column ids with path halving and union by size.
#[derive(Debug)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSets {
    /// `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: ColumnId) -> ColumnId {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: ColumnId, b: ColumnId) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: ColumnId, b: ColumnId) -> bool {
        self.find(a) == self.find(b)
    }
}

/// All rules reachable from `seed` by following rule successors
/// recursively (§6.3's "selecting all rules related to keyword *Polgar*
/// and its successors"). Rules are returned in the order discovered by the
/// expansion, deduplicated. Indexed by LHS, so the cost is proportional to
/// the closure, not to the whole rule set.
#[must_use]
pub fn rule_closure(rules: &[ImplicationRule], seed: ColumnId) -> Vec<ImplicationRule> {
    let mut by_lhs: crate::fxhash::FxHashMap<ColumnId, Vec<&ImplicationRule>> =
        crate::fxhash::FxHashMap::default();
    for rule in rules {
        by_lhs.entry(rule.lhs).or_default().push(rule);
    }
    let mut frontier = vec![seed];
    let mut seen_cols: crate::fxhash::FxHashSet<ColumnId> = std::iter::once(seed).collect();
    let mut emitted: crate::fxhash::FxHashSet<(ColumnId, ColumnId)> =
        crate::fxhash::FxHashSet::default();
    let mut out: Vec<ImplicationRule> = Vec::new();
    while let Some(lhs) = frontier.pop() {
        let Some(successors) = by_lhs.get(&lhs) else {
            continue;
        };
        for &rule in successors {
            if emitted.insert((rule.lhs, rule.rhs)) {
                out.push(*rule);
            }
            if seen_cols.insert(rule.rhs) {
                frontier.push(rule.rhs);
            }
        }
    }
    out
}

/// Groups columns into clusters connected by implication rules (either
/// direction) or similarity rules. Returns the clusters with ≥ 2 members,
/// each sorted, ordered by their smallest member.
#[must_use]
pub fn rule_groups(
    n_cols: usize,
    implications: &[ImplicationRule],
    similarities: &[SimilarityRule],
) -> Vec<Vec<ColumnId>> {
    let mut sets = DisjointSets::new(n_cols);
    for r in implications {
        sets.union(r.lhs, r.rhs);
    }
    for r in similarities {
        sets.union(r.a, r.b);
    }
    let mut by_root: std::collections::BTreeMap<ColumnId, Vec<ColumnId>> =
        std::collections::BTreeMap::new();
    for c in 0..n_cols as ColumnId {
        let root = sets.find(c);
        by_root.entry(root).or_default().push(c);
    }
    let mut groups: Vec<Vec<ColumnId>> = by_root.into_values().filter(|g| g.len() >= 2).collect();
    groups.sort_by_key(|g| g[0]);
    groups
}

/// One rule group annotated with its compaction outcome: how many of the
/// group's rules the irredundant base keeps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSummary {
    /// The group's columns, ascending.
    pub members: Vec<ColumnId>,
    /// Rules of the full set whose columns fall in this group.
    pub rules: usize,
    /// Rules of the compacted base in this group (≤ `rules`).
    pub base_rules: usize,
}

/// [`rule_groups`] extended with per-group compaction counts.
///
/// Compaction preserves connectivity — every dropped rule is implied by a
/// path of base rules over the same columns — so the groups of
/// `(base_implications, base_similarities)` are exactly the groups of the
/// full rule set, and each group's `base_rules` counts how much of it the
/// base retains.
#[must_use]
pub fn rule_group_summaries(
    n_cols: usize,
    implications: &[ImplicationRule],
    similarities: &[SimilarityRule],
    base_implications: &[ImplicationRule],
    base_similarities: &[SimilarityRule],
) -> Vec<GroupSummary> {
    let groups = rule_groups(n_cols, implications, similarities);
    let mut group_of: crate::fxhash::FxHashMap<ColumnId, usize> =
        crate::fxhash::FxHashMap::default();
    for (i, group) in groups.iter().enumerate() {
        for &c in group {
            group_of.insert(c, i);
        }
    }
    let mut rules = vec![0usize; groups.len()];
    let mut base_rules = vec![0usize; groups.len()];
    let tally = |counts: &mut Vec<usize>, cols: &[(ColumnId, ColumnId)]| {
        for &(a, b) in cols {
            let g = group_of[&a];
            debug_assert_eq!(g, group_of[&b], "a rule never crosses groups");
            counts[g] += 1;
        }
    };
    let imp_cols: Vec<(ColumnId, ColumnId)> = implications.iter().map(|r| (r.lhs, r.rhs)).collect();
    let sim_cols: Vec<(ColumnId, ColumnId)> = similarities.iter().map(|r| (r.a, r.b)).collect();
    tally(&mut rules, &imp_cols);
    tally(&mut rules, &sim_cols);
    let base_imp: Vec<(ColumnId, ColumnId)> =
        base_implications.iter().map(|r| (r.lhs, r.rhs)).collect();
    let base_sim: Vec<(ColumnId, ColumnId)> =
        base_similarities.iter().map(|r| (r.a, r.b)).collect();
    tally(&mut base_rules, &base_imp);
    tally(&mut base_rules, &base_sim);
    groups
        .into_iter()
        .zip(rules)
        .zip(base_rules)
        .map(|((members, rules), base_rules)| GroupSummary {
            members,
            rules,
            base_rules,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(lhs: ColumnId, rhs: ColumnId) -> ImplicationRule {
        ImplicationRule {
            lhs,
            rhs,
            hits: 9,
            lhs_ones: 10,
            rhs_ones: 20,
        }
    }

    #[test]
    fn disjoint_sets_basics() {
        let mut ds = DisjointSets::new(5);
        assert!(!ds.connected(0, 1));
        assert!(ds.union(0, 1));
        assert!(!ds.union(1, 0), "already merged");
        assert!(ds.connected(0, 1));
        ds.union(2, 3);
        assert!(!ds.connected(1, 2));
        ds.union(0, 3);
        assert!(ds.connected(1, 2));
        assert!(!ds.connected(4, 0));
    }

    #[test]
    fn closure_follows_successors_transitively() {
        let rules = vec![rule(0, 1), rule(1, 2), rule(2, 3), rule(5, 6), rule(3, 0)];
        let closure = rule_closure(&rules, 0);
        let pairs: Vec<(u32, u32)> = closure.iter().map(|r| (r.lhs, r.rhs)).collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(2, 3)));
        assert!(pairs.contains(&(3, 0)), "cycles are handled");
        assert!(!pairs.contains(&(5, 6)), "unrelated component excluded");
        assert_eq!(closure.len(), 4);
    }

    #[test]
    fn closure_of_unknown_seed_is_empty() {
        let rules = vec![rule(0, 1)];
        assert!(rule_closure(&rules, 9).is_empty());
    }

    #[test]
    fn groups_merge_imp_and_sim_edges() {
        let imps = vec![rule(0, 1), rule(2, 3)];
        let sims = vec![SimilarityRule {
            a: 1,
            b: 2,
            hits: 5,
            a_ones: 5,
            b_ones: 5,
        }];
        let groups = rule_groups(6, &imps, &sims);
        assert_eq!(groups, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn singletons_are_dropped() {
        let groups = rule_groups(4, &[rule(2, 3)], &[]);
        assert_eq!(groups, vec![vec![2, 3]]);
    }

    #[test]
    fn groups_are_deterministically_ordered() {
        let imps = vec![rule(4, 5), rule(0, 1)];
        let groups = rule_groups(6, &imps, &[]);
        assert_eq!(groups, vec![vec![0, 1], vec![4, 5]]);
    }

    #[test]
    fn summaries_count_full_and_base_rules_per_group() {
        // Group {0, 1, 2}: containment chain compacts 3 rules to 2.
        // Group {4, 5}: one sub-100% rule, kept verbatim.
        let chain = |lhs, rhs, lo, ro| ImplicationRule {
            lhs,
            rhs,
            hits: lo,
            lhs_ones: lo,
            rhs_ones: ro,
        };
        let imps = vec![
            chain(0, 1, 10, 20),
            chain(0, 2, 10, 40),
            chain(1, 2, 20, 40),
            rule(4, 5),
        ];
        let base = crate::compact::compact_implications(&imps, 0.9, None);
        let base_rules: Vec<ImplicationRule> = base.implications.iter().map(|b| b.rule).collect();
        let summaries = rule_group_summaries(6, &imps, &[], &base_rules, &[]);
        assert_eq!(
            summaries,
            vec![
                GroupSummary {
                    members: vec![0, 1, 2],
                    rules: 3,
                    base_rules: 2,
                },
                GroupSummary {
                    members: vec![4, 5],
                    rules: 1,
                    base_rules: 1,
                },
            ]
        );
    }

    #[test]
    fn compaction_preserves_group_connectivity() {
        // The base must induce the same groups as the full rule set.
        let chain = |lhs, rhs, lo, ro| ImplicationRule {
            lhs,
            rhs,
            hits: lo,
            lhs_ones: lo,
            rhs_ones: ro,
        };
        let imps = vec![
            chain(0, 1, 10, 20),
            chain(0, 2, 10, 40),
            chain(1, 2, 20, 40),
            rule(2, 3),
        ];
        let base = crate::compact::compact_implications(&imps, 0.9, None);
        let base_rules: Vec<ImplicationRule> = base.implications.iter().map(|b| b.rule).collect();
        assert_eq!(
            rule_groups(5, &imps, &[]),
            rule_groups(5, &base_rules, &[]),
            "groups of the base equal groups of the full set"
        );
    }
}
