//! Batched single-decode row fan-out: the engine behind the parallel
//! drivers.
//!
//! One **reader** thread produces the row stream exactly once per pass —
//! decoding spill buckets for the out-of-core drivers, or traversing the
//! in-memory matrix in scan order — and packs rows into [`RowBatch`]es of
//! [`BATCH_ROWS`] rows. Each batch is reference-counted and broadcast over
//! a bounded channel ([`CHANNEL_BATCHES`] batches deep) to every **worker**
//! thread. Workers own disjoint round-robin LHS-column partitions
//! (`set_lhs_mask`) of the same scan type, so the union of their rule sets
//! is exactly the sequential rule set; a deterministic merge-and-sort in
//! the drivers makes the output bit-identical to the sequential drivers.
//!
//! Each worker applies the §4.2 bitmap-switch policy to its *own* counter
//! array at the global row position: once `should_switch` fires it stops
//! counting, buffers the remaining rows of the stream as its tail, and
//! finishes with bitmaps — mirroring the sequential
//! `stream::replay_with_switch` exactly. Workers may therefore switch at
//! different positions (their counter arrays are smaller and grow at
//! different rates); switch-point invariance of the scans keeps the merged
//! rules identical regardless.
//!
//! On a reader error (row source failure, spill IO) the reader drops the
//! channels; workers drain and finish, their partial results are discarded,
//! and the error propagates to the caller.

use crate::base::BaseScan;
use crate::config::{ImplicationConfig, SimilarityConfig, SwitchPolicy};
use crate::hundred::{HundredMode, HundredScan};
use crate::imp::ImplicationOutput;
use crate::rules::ImplicationRule;
use crate::sim::{SimScan, SimilarityOutput};
use crate::stream::{io_report, ReplayHandler};
use crate::threshold::{conf_qualifies, only_exact_rules_conf, only_exact_rules_sim};
use dmc_matrix::spill_io::SpillIoStats;
use dmc_matrix::ColumnId;
use dmc_metrics::{
    CounterMemory, PhaseTimer, ReportBuilder, ScanTally, StageReport, WorkerReport, WorkerSummary,
};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

/// Rows per broadcast batch: large enough to amortize channel traffic,
/// small enough that the bounded queue holds only a few MB even for dense
/// rows.
pub(crate) const BATCH_ROWS: usize = 1024;

/// Bound (in batches) of each worker's channel: caps reader run-ahead so a
/// slow worker applies backpressure instead of queueing the whole stream.
pub(crate) const CHANNEL_BATCHES: usize = 4;

/// A contiguous run of decoded rows, shared read-only by all workers.
pub(crate) struct RowBatch {
    /// Global scan position of `rows[0]`.
    pub start: usize,
    pub rows: Vec<Vec<ColumnId>>,
}

/// The round-robin LHS partition of worker `w` among `threads` workers.
pub(crate) fn round_robin_mask(n_cols: usize, threads: usize, w: usize) -> Vec<bool> {
    (0..n_cols).map(|c| c % threads == w).collect()
}

/// Drains one worker's batch stream into its scan, applying the switch
/// policy at global row positions, and finishes with the buffered tail.
/// Returns the switch position (if any) and the worker's phase timings.
fn run_worker<H: ReplayHandler>(
    rx: &Receiver<Arc<RowBatch>>,
    total_rows: usize,
    switch: SwitchPolicy,
    stage: &'static str,
    handler: &mut H,
) -> (Option<usize>, PhaseTimer) {
    let mut timer = PhaseTimer::new();
    let mut switch_at: Option<usize> = None;
    let mut tail_rows: Vec<Vec<ColumnId>> = Vec::new();
    while let Ok(batch) = rx.recv() {
        let start = Instant::now();
        for (i, row) in batch.rows.iter().enumerate() {
            if switch_at.is_none() {
                let remaining = total_rows - (batch.start + i);
                if switch.should_switch(remaining, handler.counter_bytes()) {
                    switch_at = Some(batch.start + i);
                }
            }
            if switch_at.is_some() {
                tail_rows.push(row.clone());
            } else {
                handler.row(row);
            }
        }
        timer.record(stage, start.elapsed());
    }
    let start = Instant::now();
    let tail: Vec<&[ColumnId]> = tail_rows.iter().map(Vec::as_slice).collect();
    handler.tail(&tail);
    timer.record("bitmap tail", start.elapsed());
    (switch_at, timer)
}

fn send_batch(txs: &[SyncSender<Arc<RowBatch>>], start: usize, rows: Vec<Vec<ColumnId>>) -> usize {
    let end = start + rows.len();
    let batch = Arc::new(RowBatch { start, rows });
    for tx in txs {
        // A send only fails if the worker died (panic unwinding); the
        // join below surfaces that.
        let _ = tx.send(Arc::clone(&batch));
    }
    end
}

/// Runs one counting stage: a reader thread decodes `rows` once into
/// batches broadcast to one worker per handler. Returns each handler with
/// its switch position and phase timings, in handler order.
pub(crate) fn fan_out<H, I, E>(
    handlers: Vec<H>,
    total_rows: usize,
    switch: SwitchPolicy,
    stage: &'static str,
    rows: I,
) -> Result<Vec<(H, Option<usize>, PhaseTimer)>, E>
where
    H: ReplayHandler + Send,
    I: Iterator<Item = Result<Vec<ColumnId>, E>> + Send,
    E: Send,
{
    assert!(!handlers.is_empty(), "need at least one worker");
    std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(handlers.len());
        let mut workers = Vec::with_capacity(handlers.len());
        for mut handler in handlers {
            let (tx, rx) = sync_channel::<Arc<RowBatch>>(CHANNEL_BATCHES);
            txs.push(tx);
            workers.push(scope.spawn(move || {
                let (switch_at, timer) = run_worker(&rx, total_rows, switch, stage, &mut handler);
                (handler, switch_at, timer)
            }));
        }
        let reader = scope.spawn(move || -> Result<(), E> {
            let mut next = 0usize;
            let mut buf: Vec<Vec<ColumnId>> = Vec::with_capacity(BATCH_ROWS);
            for row in rows {
                buf.push(row?);
                if buf.len() == BATCH_ROWS {
                    let full = std::mem::replace(&mut buf, Vec::with_capacity(BATCH_ROWS));
                    next = send_batch(&txs, next, full);
                }
            }
            if !buf.is_empty() {
                send_batch(&txs, next, buf);
            }
            Ok(())
        });
        let read = reader.join().expect("reader thread panicked");
        let results: Vec<(H, Option<usize>, PhaseTimer)> = workers
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        read.map(|()| results)
    })
}

/// Accumulates per-worker metrics across the stages of a staged pipeline.
struct WorkerAccumulators {
    timers: Vec<PhaseTimer>,
    memories: Vec<CounterMemory>,
    tallies: Vec<ScanTally>,
    switches: Vec<Option<usize>>,
}

impl WorkerAccumulators {
    fn new(threads: usize) -> Self {
        Self {
            timers: (0..threads).map(|_| PhaseTimer::new()).collect(),
            memories: (0..threads).map(|_| CounterMemory::new()).collect(),
            tallies: vec![ScanTally::new(); threads],
            switches: vec![None; threads],
        }
    }

    fn absorb_stage(
        &mut self,
        w: usize,
        timer: &PhaseTimer,
        mem: &CounterMemory,
        tally: ScanTally,
    ) {
        for &(name, d) in timer.report().phases() {
            self.timers[w].record(name, d);
        }
        self.memories[w].absorb_peak(mem);
        self.tallies[w].merge(&tally);
    }

    fn finish(self, memory: &mut CounterMemory) -> (Vec<WorkerReport>, Option<usize>) {
        let Self {
            timers,
            memories,
            tallies,
            switches,
        } = self;
        let threads = timers.len();
        let mut reports = Vec::with_capacity(threads);
        for (w, (timer, mem)) in timers.into_iter().zip(memories).enumerate() {
            memory.absorb_peak(&mem);
            reports.push(WorkerReport {
                worker: w,
                phases: timer.report(),
                memory: mem,
                tally: tallies[w],
                switch_at: switches[w],
            });
        }
        // With a single worker the run is sequential in all but plumbing:
        // its switch position *is* the run's switch position. With more
        // workers there is no single position.
        let switch_at = if threads == 1 { switches[0] } else { None };
        (reports, switch_at)
    }
}

/// Run-level facts a pipeline cannot observe itself: how many workers to
/// fan out to, how the rows reached it, and what it cost to stage them.
/// They flow straight into the [`RunReport`].
pub(crate) struct RunContext {
    pub threads: usize,
    /// `"in-memory"` or `"streamed"` — the report's `mode` field.
    pub mode: &'static str,
    /// Encoded spill size in bytes; zero for in-memory runs.
    pub spill_bytes: u64,
    /// Spill I/O counters to snapshot into the report's `io` section
    /// once the pipeline finishes; `None` for in-memory runs.
    pub stats: Option<Arc<SpillIoStats>>,
    /// When the driver entry point started, so the report's
    /// `wall_seconds` covers the pre-scan the caller ran before handing
    /// over to the pipeline.
    pub started: std::time::Instant,
}

/// The staged parallel DMC-imp pipeline (Algorithm 4.2 over
/// `ctx.threads` LHS partitions): 100%-rule stage, step-3 column
/// removal, sub-100% stage, reverse emission, deterministic merge.
/// `make_rows` is called once per stage and must yield the same row
/// stream each time; the stream is decoded exactly once per stage.
pub(crate) fn parallel_imp_pipeline<E, F, I>(
    n_cols: usize,
    ones: &[u32],
    total_rows: usize,
    config: &ImplicationConfig,
    ctx: RunContext,
    mut timer: PhaseTimer,
    mut make_rows: F,
) -> Result<ImplicationOutput, E>
where
    F: FnMut() -> Result<I, E>,
    I: Iterator<Item = Result<Vec<ColumnId>, E>> + Send,
    E: Send,
{
    let RunContext {
        threads,
        mode,
        spill_bytes,
        stats,
        started,
    } = ctx;
    assert!(threads > 0, "need at least one worker");
    let mut rules = Vec::new();
    let mut acc = WorkerAccumulators::new(threads);
    let mut report = ReportBuilder::new("implication", mode, threads, config.minconf);
    report.dims(total_rows, n_cols).spill_bytes(spill_bytes);

    // Stage 1: exact rules through the simplified scan (§4.3).
    if config.hundred_stage || config.minconf >= 1.0 {
        let _g = timer.enter("100% rules");
        let handlers: Vec<HundredScan> = (0..threads)
            .map(|w| {
                let mut scan = HundredScan::new(n_cols, HundredMode::Implication, ones.to_vec());
                scan.set_lhs_mask(round_robin_mask(n_cols, threads, w));
                scan
            })
            .collect();
        let results = fan_out(
            handlers,
            total_rows,
            config.switch,
            "100% rules",
            make_rows()?,
        )?;
        let mut stage_tally = ScanTally::new();
        let mut stage_peak = 0;
        let before = rules.len();
        for (w, (scan, _, stage_timer)) in results.into_iter().enumerate() {
            let tally = scan.tally();
            let (imp, _, mem) = scan.into_parts();
            rules.extend(imp);
            stage_tally.merge(&tally);
            stage_peak = stage_peak.max(mem.peak_candidates());
            acc.absorb_stage(w, &stage_timer, &mem, tally);
        }
        report.hundred_stage(StageReport::new(
            stage_tally,
            (rules.len() - before) as u64,
            stage_peak,
        ));
    }

    // Stage 2: sub-100% rules over columns that can tolerate misses
    // (Algorithm 4.2 step 3 removes the rest).
    if config.minconf < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_conf(u64::from(o), config.minconf))
                    .collect(),
            )
        } else {
            None
        };
        let _g = timer.enter("<100% rules");
        let handlers: Vec<BaseScan> = (0..threads)
            .map(|w| {
                let mut scan = BaseScan::new(
                    n_cols,
                    config.minconf,
                    ones.to_vec(),
                    active.clone(),
                    config.release_completed,
                    false,
                );
                scan.set_lhs_mask(round_robin_mask(n_cols, threads, w));
                scan
            })
            .collect();
        let results = fan_out(
            handlers,
            total_rows,
            config.switch,
            "<100% rules",
            make_rows()?,
        )?;
        let mut stage_tally = ScanTally::new();
        let mut stage_peak = 0;
        let before = rules.len();
        for (w, (scan, switch_at, stage_timer)) in results.into_iter().enumerate() {
            let tally = scan.tally();
            let (stage_rules, mem) = scan.into_parts();
            if config.hundred_stage {
                rules.extend(stage_rules.into_iter().filter(|r| r.misses() > 0));
            } else {
                rules.extend(stage_rules);
            }
            stage_tally.merge(&tally);
            stage_peak = stage_peak.max(mem.peak_candidates());
            acc.switches[w] = switch_at;
            acc.absorb_stage(w, &stage_timer, &mem, tally);
        }
        report.sub_stage(StageReport::new(
            stage_tally,
            (rules.len() - before) as u64,
            stage_peak,
        ));
    }

    if config.emit_reverse {
        let reversed: Vec<ImplicationRule> = rules
            .iter()
            .filter(|r| conf_qualifies(u64::from(r.hits), u64::from(r.rhs_ones), config.minconf))
            .map(|r| r.reversed())
            .collect();
        report.reverse_rules(reversed.len() as u64);
        rules.extend(reversed);
    }
    rules.sort_unstable();
    rules.dedup();

    let mut memory = CounterMemory::new();
    let (workers, bitmap_switch_at) = acc.finish(&mut memory);
    for worker in &workers {
        report.push_worker(WorkerSummary::from(worker));
    }
    let phases = timer.report();
    if let Some(stats) = &stats {
        report.io_counters(io_report(stats.snapshot()));
    }
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    Ok(ImplicationOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers,
        report,
    })
}

/// The staged parallel DMC-sim pipeline (Algorithm 5.1 over
/// `ctx.threads` partitions of the smaller-column pair side); see
/// [`parallel_imp_pipeline`].
pub(crate) fn parallel_sim_pipeline<E, F, I>(
    n_cols: usize,
    ones: &[u32],
    total_rows: usize,
    config: &SimilarityConfig,
    ctx: RunContext,
    mut timer: PhaseTimer,
    mut make_rows: F,
) -> Result<SimilarityOutput, E>
where
    F: FnMut() -> Result<I, E>,
    I: Iterator<Item = Result<Vec<ColumnId>, E>> + Send,
    E: Send,
{
    let RunContext {
        threads,
        mode,
        spill_bytes,
        stats,
        started,
    } = ctx;
    assert!(threads > 0, "need at least one worker");
    let mut rules = Vec::new();
    let mut acc = WorkerAccumulators::new(threads);
    let mut report = ReportBuilder::new("similarity", mode, threads, config.minsim);
    report.dims(total_rows, n_cols).spill_bytes(spill_bytes);

    // Stage 1: identical (100%-similar) columns.
    if config.hundred_stage || config.minsim >= 1.0 {
        let _g = timer.enter("100% rules");
        let handlers: Vec<HundredScan> = (0..threads)
            .map(|w| {
                let mut scan = HundredScan::new(n_cols, HundredMode::Identical, ones.to_vec());
                scan.set_lhs_mask(round_robin_mask(n_cols, threads, w));
                scan
            })
            .collect();
        let results = fan_out(
            handlers,
            total_rows,
            config.switch,
            "100% rules",
            make_rows()?,
        )?;
        let mut stage_tally = ScanTally::new();
        let mut stage_peak = 0;
        let before = rules.len();
        for (w, (scan, _, stage_timer)) in results.into_iter().enumerate() {
            let tally = scan.tally();
            let (_, sims, mem) = scan.into_parts();
            rules.extend(sims);
            stage_tally.merge(&tally);
            stage_peak = stage_peak.max(mem.peak_candidates());
            acc.absorb_stage(w, &stage_timer, &mem, tally);
        }
        report.hundred_stage(StageReport::new(
            stage_tally,
            (rules.len() - before) as u64,
            stage_peak,
        ));
    }

    // Stage 2: sub-100% pairs over columns that can reach minsim with at
    // least one disagreement.
    if config.minsim < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_sim(u64::from(o), config.minsim))
                    .collect(),
            )
        } else {
            None
        };
        let _g = timer.enter("<100% rules");
        let handlers: Vec<SimScan> = (0..threads)
            .map(|w| {
                let mut scan = SimScan::new(n_cols, config, ones.to_vec(), active.clone());
                scan.set_lhs_mask(round_robin_mask(n_cols, threads, w));
                scan
            })
            .collect();
        let results = fan_out(
            handlers,
            total_rows,
            config.switch,
            "<100% rules",
            make_rows()?,
        )?;
        let mut stage_tally = ScanTally::new();
        let mut stage_peak = 0;
        let before = rules.len();
        for (w, (scan, switch_at, stage_timer)) in results.into_iter().enumerate() {
            let tally = scan.tally();
            let (stage_rules, mem) = scan.into_parts();
            if config.hundred_stage {
                rules.extend(stage_rules.into_iter().filter(|r| r.hits < r.union()));
            } else {
                rules.extend(stage_rules);
            }
            stage_tally.merge(&tally);
            stage_peak = stage_peak.max(mem.peak_candidates());
            acc.switches[w] = switch_at;
            acc.absorb_stage(w, &stage_timer, &mem, tally);
        }
        report.sub_stage(StageReport::new(
            stage_tally,
            (rules.len() - before) as u64,
            stage_peak,
        ));
    }

    rules.sort_unstable();
    rules.dedup();

    let mut memory = CounterMemory::new();
    let (workers, bitmap_switch_at) = acc.finish(&mut memory);
    for worker in &workers {
        report.push_worker(WorkerSummary::from(worker));
    }
    let phases = timer.report();
    if let Some(stats) = &stats {
        report.io_counters(io_report(stats.snapshot()));
    }
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    Ok(SimilarityOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_masks_partition_all_columns() {
        for threads in 1..=5 {
            let masks: Vec<Vec<bool>> = (0..threads)
                .map(|w| round_robin_mask(13, threads, w))
                .collect();
            for c in 0..13 {
                let owners = masks.iter().filter(|m| m[c]).count();
                assert_eq!(owners, 1, "column {c} must have exactly one owner");
            }
        }
    }

    /// A handler that records what it saw, to pin down fan-out mechanics
    /// independent of the scans.
    #[derive(Debug)]
    struct Recorder {
        rows: Vec<Vec<ColumnId>>,
        tail: Vec<Vec<ColumnId>>,
        bytes: usize,
    }

    impl ReplayHandler for Recorder {
        fn counter_bytes(&self) -> usize {
            self.bytes
        }
        fn row(&mut self, row: &[ColumnId]) {
            self.rows.push(row.to_vec());
        }
        fn tail(&mut self, tail: &[&[ColumnId]]) {
            self.tail = tail.iter().map(|r| r.to_vec()).collect();
        }
    }

    #[test]
    fn every_worker_sees_every_row_in_order() {
        let rows: Vec<Vec<ColumnId>> = (0..3000u32).map(|i| vec![i % 7]).collect();
        let source = rows.clone();
        let handlers: Vec<Recorder> = (0..3)
            .map(|_| Recorder {
                rows: Vec::new(),
                tail: Vec::new(),
                bytes: 0,
            })
            .collect();
        let results = fan_out::<_, _, std::convert::Infallible>(
            handlers,
            rows.len(),
            SwitchPolicy::never(),
            "test",
            source.into_iter().map(Ok),
        )
        .unwrap();
        assert_eq!(results.len(), 3);
        for (rec, switch_at, _) in results {
            assert_eq!(rec.rows, rows);
            assert!(rec.tail.is_empty());
            assert_eq!(switch_at, None);
        }
    }

    #[test]
    fn switch_buffers_remaining_rows_as_tail() {
        let rows: Vec<Vec<ColumnId>> = (0..100u32).map(|i| vec![i]).collect();
        let handlers = vec![Recorder {
            rows: Vec::new(),
            tail: Vec::new(),
            bytes: 1,
        }];
        let results = fan_out::<_, _, std::convert::Infallible>(
            handlers,
            rows.len(),
            SwitchPolicy::always_at(40),
            "test",
            rows.clone().into_iter().map(Ok),
        )
        .unwrap();
        let (rec, switch_at, timer) = &results[0];
        assert_eq!(*switch_at, Some(60), "switch fires at 40 remaining");
        assert_eq!(rec.rows, rows[..60].to_vec());
        assert_eq!(rec.tail, rows[60..].to_vec());
        assert!(timer.report().phase("bitmap tail") >= std::time::Duration::ZERO);
    }

    #[test]
    fn reader_error_propagates() {
        #[derive(Debug, PartialEq)]
        struct Boom;
        let rows: Vec<Result<Vec<ColumnId>, Boom>> =
            vec![Ok(vec![0]), Ok(vec![1]), Err(Boom), Ok(vec![2])];
        let handlers = vec![Recorder {
            rows: Vec::new(),
            tail: Vec::new(),
            bytes: 0,
        }];
        let err =
            fan_out(handlers, 4, SwitchPolicy::never(), "test", rows.into_iter()).unwrap_err();
        assert_eq!(err, Boom);
    }
}
