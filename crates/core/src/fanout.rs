//! Work-assisting block scheduler: the engine behind the parallel drivers.
//!
//! The previous engine broadcast every row to every worker, each running
//! its own scan over a round-robin LHS-column partition — the counting
//! work was done `threads`× and the channel fan-out dominated small runs,
//! making 4 threads *slower* than 1. This engine inverts the design:
//! there is **one scan per stage**, and what is parallelized is block
//! *aggregation*.
//!
//! One **reader** (the calling thread) produces the row stream exactly
//! once per stage — decoding spill buckets for the out-of-core drivers, or
//! traversing the in-memory matrix in scan order — and chops it into
//! fixed-size blocks of `block_rows` rows (config `block_rows`, overridden
//! by the `DMC_BLOCK_ROWS` environment variable), placed into a bounded
//! ring of slots. Each slot carries an atomic per-block state machine:
//!
//! ```text
//! EMPTY ─reader→ READY ─worker→ CLAIMED ─worker→ AGGREGATED ─fold→ EMPTY
//! ```
//!
//! **Workers** claim blocks from a shared cursor (no static partition: an
//! idle worker simply takes the next block, "stealing" it from the worker
//! that would have owned it round-robin — reported as `blocks_stolen`). A
//! claimed block is *aggregated*: the worker builds a per-block
//! [`BitMatrix`] (one bitmap per column over the block's rows) without
//! touching the scan. Aggregated blocks are then *folded* into the shared
//! scan strictly in global block order by whichever worker gets the fold
//! mutex (`try_lock`: work assisting, not a dedicated thread):
//! [`ReplayHandler::apply_block`] replays the rows for columns whose
//! candidate lists are still forming and folds everything else with
//! word-batched `popcount(lhs & !rhs)` over the block bitmaps. Because
//! blocks fold in order, the scan passes through exactly the sequential
//! scan's state at every block boundary — the rule set is byte-identical
//! to the sequential drivers at any thread count and any claim order (see
//! DESIGN.md §11 for the full argument).
//!
//! The §4.2 bitmap-switch policy is evaluated at block boundaries inside
//! the fold, so the switch position is a multiple of `block_rows`,
//! identical at every thread count, and reported as the run's
//! `bitmap_switch_at` (workers no longer switch independently). Once the
//! switch fires, remaining blocks are buffered as the tail and the stage
//! finishes with bitmaps, mirroring `stream::replay_with_switch`.
//!
//! Per-block tally deltas are credited to the claiming worker and the
//! tail/finish delta to the folding worker, so worker tallies still sum
//! to the run counters.
//!
//! On a reader error (row source failure, spill IO) the scheduler is
//! marked failed; workers drain out, partial results are discarded, and
//! the error propagates to the caller.
//!
//! Because the rules are identical at any worker count, the worker count
//! itself is purely an execution decision — [`Miner`](crate::Miner)
//! resolves requested thread counts through [`effective_workers`], which
//! caps them at the host's available parallelism (workers beyond that
//! cannot overlap and only add overhead; on a single-core host a parallel
//! request degrades all the way to the sequential drivers). Setting
//! `DMC_SCHED_OVERSUBSCRIBE` to a non-empty value lifts the cap, which
//! the scheduler-stress CI job uses to force threads > cores. The free
//! `find_*_parallel` functions bypass the resolver and spawn exactly what
//! they are told.

use crate::base::BaseScan;
use crate::config::{ImplicationConfig, SimilarityConfig, SwitchPolicy};
use crate::hundred::{HundredMode, HundredScan};
use crate::imp::ImplicationOutput;
use crate::rules::ImplicationRule;
use crate::sim::{SimScan, SimilarityOutput};
use crate::stream::{io_report, ReplayHandler};
use crate::threshold::{conf_qualifies, only_exact_rules_conf, only_exact_rules_sim};
use dmc_bitset::BitMatrix;
use dmc_matrix::spill_io::SpillIoStats;
use dmc_matrix::ColumnId;
use dmc_metrics::{
    CounterMemory, PhaseTimer, ReportBuilder, ScanTally, StageReport, WorkerReport, WorkerSummary,
};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Slot states of the per-block state machine.
const SLOT_EMPTY: u8 = 0;
const SLOT_READY: u8 = 1;
const SLOT_CLAIMED: u8 = 2;
const SLOT_AGGREGATED: u8 = 3;

/// Bound on condvar waits: the claim and slot-recycle paths also make
/// opportunistic progress (assisting the fold), so they wake periodically
/// instead of relying solely on notifications.
const WAIT_TICK: Duration = Duration::from_millis(1);

/// Resolves the effective block size from an optional `DMC_BLOCK_ROWS`
/// value and the configured fallback, clamping to at least 1.
fn block_rows_from(env: Option<&str>, configured: usize) -> usize {
    env.and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(configured)
        .max(1)
}

/// The effective block size: the `DMC_BLOCK_ROWS` environment variable
/// when set to a positive integer, else the config's `block_rows`.
pub(crate) fn effective_block_rows(configured: usize) -> usize {
    let env = std::env::var("DMC_BLOCK_ROWS").ok();
    block_rows_from(env.as_deref(), configured)
}

/// Resolves the worker count from the requested thread count, the host
/// core count, and an optional `DMC_SCHED_OVERSUBSCRIBE` value (any
/// non-empty value lifts the core cap).
fn workers_from(oversubscribe: Option<&str>, requested: usize, cores: usize) -> usize {
    let requested = requested.max(1);
    match oversubscribe {
        Some(v) if !v.is_empty() => requested,
        _ => requested.min(cores.max(1)),
    }
}

/// The worker count [`Miner`](crate::Miner) actually spawns for a
/// requested thread count: `requested` capped at the host's available
/// parallelism. Workers in excess of cores cannot overlap, so they only
/// add scheduling overhead — and since the emitted rules are bit-identical
/// at any worker count, the cap is purely an execution decision. When the
/// cap resolves to 1, the miner runs the sequential drivers outright.
///
/// Setting the `DMC_SCHED_OVERSUBSCRIBE` environment variable to any
/// non-empty value lifts the cap; the scheduler-stress CI job uses this to
/// force threads > cores. The free `find_*_parallel` driver functions do
/// not consult this resolver: they spawn exactly the worker count they are
/// given.
#[must_use]
pub fn effective_workers(requested: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let env = std::env::var("DMC_SCHED_OVERSUBSCRIBE").ok();
    workers_from(env.as_deref(), requested, cores)
}

/// What one slot of the block ring currently holds.
enum SlotData {
    Empty,
    /// Decoded rows, ready to aggregate.
    Rows(Vec<Vec<ColumnId>>),
    /// Aggregated block waiting for its in-order fold.
    Agg {
        rows: Vec<Vec<ColumnId>>,
        bm: BitMatrix,
        claimer: usize,
    },
}

struct Slot {
    state: AtomicU8,
    data: Mutex<SlotData>,
}

/// Reader/claim coordination (guarded by `Scheduler::cursor`).
struct Cursor {
    /// Blocks made READY so far; block `b` lives in slot `b % slots`.
    filled: usize,
    /// Next block index a worker will claim.
    next_claim: usize,
    /// The reader has published the last block (`filled` is final).
    done_reading: bool,
    /// The reader failed; workers bail out and results are discarded.
    failed: bool,
}

/// The in-order fold over aggregated blocks (guarded by `Scheduler::fold`).
struct FoldState<H> {
    handler: H,
    /// Next block index to fold; blocks fold strictly in this order.
    next_fold: usize,
    /// Global row position of the fold frontier (= rows folded so far).
    row_pos: usize,
    /// Block-aligned §4.2 switch position, once the policy fires.
    switch_at: Option<usize>,
    /// Rows buffered after the switch, finished via `ReplayHandler::tail`.
    tail: Vec<Vec<ColumnId>>,
    /// Per-worker tally credit: each block's delta goes to its claimer.
    credits: Vec<ScanTally>,
    finished: bool,
}

struct Scheduler<H> {
    slots: Vec<Slot>,
    cursor: Mutex<Cursor>,
    /// Workers wait here for READY blocks / end of stream.
    work_ready: Condvar,
    /// The reader waits here for a slot to recycle.
    slot_free: Condvar,
    fold: Mutex<FoldState<H>>,
    total_rows: usize,
    switch: SwitchPolicy,
    threads: usize,
}

/// Field-wise difference of two tally snapshots (`after` minus `before`).
fn tally_delta(before: &ScanTally, after: &ScanTally) -> ScanTally {
    ScanTally {
        rows_scanned: after.rows_scanned - before.rows_scanned,
        candidates_admitted: after.candidates_admitted - before.candidates_admitted,
        candidates_deleted: after.candidates_deleted - before.candidates_deleted,
        misses_counted: after.misses_counted - before.misses_counted,
        rules_emitted: after.rules_emitted - before.rules_emitted,
    }
}

impl<H: ReplayHandler> Scheduler<H> {
    fn new(handler: H, threads: usize, total_rows: usize, switch: SwitchPolicy) -> Self {
        let n_slots = threads * 2 + 2;
        Self {
            slots: (0..n_slots)
                .map(|_| Slot {
                    state: AtomicU8::new(SLOT_EMPTY),
                    data: Mutex::new(SlotData::Empty),
                })
                .collect(),
            cursor: Mutex::new(Cursor {
                filled: 0,
                next_claim: 0,
                done_reading: false,
                failed: false,
            }),
            work_ready: Condvar::new(),
            slot_free: Condvar::new(),
            fold: Mutex::new(FoldState {
                handler,
                next_fold: 0,
                row_pos: 0,
                switch_at: None,
                tail: Vec::new(),
                credits: vec![ScanTally::new(); threads],
                finished: false,
            }),
            total_rows,
            switch,
            threads,
        }
    }

    /// Publishes one block of rows: waits for its ring slot to recycle,
    /// stores the rows, and marks the slot READY.
    fn publish_block(&self, rows: Vec<Vec<ColumnId>>) {
        let mut cur = self.cursor.lock().expect("scheduler lock poisoned");
        let slot = &self.slots[cur.filled % self.slots.len()];
        while slot.state.load(Ordering::Acquire) != SLOT_EMPTY {
            // Timed wait: the fold notifies on recycle, but not under this
            // lock, so a notification can race past the check above.
            let (c, _) = self
                .slot_free
                .wait_timeout(cur, WAIT_TICK)
                .expect("scheduler lock poisoned");
            cur = c;
        }
        *slot.data.lock().expect("slot lock poisoned") = SlotData::Rows(rows);
        slot.state.store(SLOT_READY, Ordering::Release);
        cur.filled += 1;
        self.work_ready.notify_all();
    }

    /// Marks the end of the row stream (or a reader failure) and wakes
    /// everyone.
    fn finish_reading(&self, failed: bool) {
        let mut cur = self.cursor.lock().expect("scheduler lock poisoned");
        cur.done_reading = true;
        cur.failed |= failed;
        self.work_ready.notify_all();
    }

    /// Claims the next unclaimed block, assisting the fold while the ring
    /// has nothing to claim. Returns `None` when the stage is over (or
    /// the reader failed).
    fn claim(&self, me: usize, timer: &mut PhaseTimer, stage: &'static str) -> Option<usize> {
        loop {
            {
                let mut cur = self.cursor.lock().expect("scheduler lock poisoned");
                loop {
                    if cur.failed {
                        return None;
                    }
                    if cur.next_claim < cur.filled {
                        let b = cur.next_claim;
                        cur.next_claim += 1;
                        return Some(b);
                    }
                    if cur.done_reading {
                        return None;
                    }
                    let (c, timeout) = self
                        .work_ready
                        .wait_timeout(cur, WAIT_TICK)
                        .expect("scheduler lock poisoned");
                    cur = c;
                    if timeout.timed_out() {
                        break;
                    }
                }
            }
            // Nothing to claim right now: assist the fold so aggregated
            // blocks keep recycling even while every worker is idle.
            self.assist(me, timer, stage);
        }
    }

    /// Opportunistic fold pass: drain if the fold is free, and keep
    /// re-checking the frontier after releasing. A worker whose block
    /// aggregated while we held the lock got a failed `try_lock`; without
    /// the re-check that block would sit until a timed tick fires.
    fn assist(&self, me: usize, timer: &mut PhaseTimer, stage: &'static str) {
        loop {
            let Ok(mut fold) = self.fold.try_lock() else {
                return;
            };
            self.drain(&mut fold, me, timer, stage);
            if fold.finished {
                return;
            }
            let frontier = &self.slots[fold.next_fold % self.slots.len()];
            drop(fold);
            if frontier.state.load(Ordering::Acquire) != SLOT_AGGREGATED {
                return;
            }
        }
    }

    /// Folds every consecutive aggregated block at the fold frontier into
    /// the scan, then finishes the stage (tail + bitmaps) once all blocks
    /// are published. The caller holds the fold mutex.
    fn drain(
        &self,
        fold: &mut FoldState<H>,
        me: usize,
        timer: &mut PhaseTimer,
        stage: &'static str,
    ) {
        if fold.finished {
            return;
        }
        let start = Instant::now();
        loop {
            let slot = &self.slots[fold.next_fold % self.slots.len()];
            if slot.state.load(Ordering::Acquire) != SLOT_AGGREGATED {
                break;
            }
            let data = std::mem::replace(
                &mut *slot.data.lock().expect("slot lock poisoned"),
                SlotData::Empty,
            );
            slot.state.store(SLOT_EMPTY, Ordering::Release);
            // Notify under the cursor lock: the reader checks slot state
            // while holding it, so an unlocked notify could slip between
            // its check and its wait and cost a full timed tick.
            drop(self.cursor.lock().expect("scheduler lock poisoned"));
            self.slot_free.notify_all();
            let SlotData::Agg { rows, bm, claimer } = data else {
                unreachable!("aggregated slot must hold an aggregate")
            };
            if fold.switch_at.is_none()
                && self
                    .switch
                    .should_switch(self.total_rows - fold.row_pos, fold.handler.counter_bytes())
            {
                fold.switch_at = Some(fold.row_pos);
            }
            fold.row_pos += rows.len();
            if fold.switch_at.is_some() {
                fold.tail.extend(rows);
            } else {
                let before = fold.handler.tally();
                fold.handler.apply_block(&rows, &bm);
                let delta = tally_delta(&before, &fold.handler.tally());
                fold.credits[claimer].merge(&delta);
            }
            fold.next_fold += 1;
        }
        timer.record(stage, start.elapsed());
        // All blocks published? Then whoever holds the fold finishes the
        // stage: an empty tail when the switch never fired, the buffered
        // rows when it did.
        let all_published = {
            let cur = self.cursor.lock().expect("scheduler lock poisoned");
            cur.done_reading && !cur.failed && fold.next_fold == cur.filled
        };
        if all_published {
            let start = Instant::now();
            let before = fold.handler.tally();
            let tail: Vec<&[ColumnId]> = fold.tail.iter().map(Vec::as_slice).collect();
            fold.handler.tail(&tail);
            let delta = tally_delta(&before, &fold.handler.tally());
            fold.credits[me].merge(&delta);
            fold.finished = true;
            timer.record("bitmap tail", start.elapsed());
        }
    }
}

/// One worker's scheduling outcome for one stage.
struct WorkerStats {
    timer: PhaseTimer,
    blocks_processed: u64,
    blocks_stolen: u64,
}

/// The worker loop: claim → aggregate → publish → assist the fold.
fn run_worker<H: ReplayHandler>(
    sched: &Scheduler<H>,
    me: usize,
    stage: &'static str,
) -> WorkerStats {
    let mut timer = PhaseTimer::new();
    let mut blocks_processed = 0u64;
    let mut blocks_stolen = 0u64;
    while let Some(b) = sched.claim(me, &mut timer, stage) {
        let _span = dmc_metrics::span!("mine.block");
        let start = Instant::now();
        let slot = &sched.slots[b % sched.slots.len()];
        let rows = match std::mem::replace(
            &mut *slot.data.lock().expect("slot lock poisoned"),
            SlotData::Empty,
        ) {
            SlotData::Rows(rows) => rows,
            _ => unreachable!("claimed slot must hold rows"),
        };
        slot.state.store(SLOT_CLAIMED, Ordering::Release);
        let mut bm = BitMatrix::new(rows.len());
        for (i, row) in rows.iter().enumerate() {
            for &c in row {
                bm.set(c, i);
            }
        }
        *slot.data.lock().expect("slot lock poisoned") = SlotData::Agg {
            rows,
            bm,
            claimer: me,
        };
        slot.state.store(SLOT_AGGREGATED, Ordering::Release);
        blocks_processed += 1;
        if b % sched.threads != me {
            blocks_stolen += 1;
        }
        timer.record(stage, start.elapsed());
        sched.assist(me, &mut timer, stage);
    }
    // Final drain: the last block's claimer may have lost the fold race
    // mid-stream; a blocking pass here guarantees the fold completes (and
    // covers the zero-block stage, where it just runs the empty tail).
    {
        let mut fold = sched.fold.lock().expect("fold lock poisoned");
        sched.drain(&mut fold, me, &mut timer, stage);
    }
    // Every worker reports the stage phase, even if it claimed no blocks.
    timer.record(stage, Duration::ZERO);
    WorkerStats {
        timer,
        blocks_processed,
        blocks_stolen,
    }
}

/// One stage's outcome: the finished scan, the (block-aligned) switch
/// position, and per-worker scheduling stats in worker order.
pub(crate) struct StageRun<H> {
    pub handler: H,
    pub switch_at: Option<usize>,
    pub workers: Vec<StageWorker>,
}

pub(crate) struct StageWorker {
    pub timer: PhaseTimer,
    pub tally: ScanTally,
    pub blocks_processed: u64,
    pub blocks_stolen: u64,
}

/// Runs one counting stage through the block scheduler: the calling
/// thread reads and blocks the row stream while `threads` workers
/// aggregate and fold. `threads` and `block_rows` are clamped to 1.
pub(crate) fn run_stage<H, I, E>(
    handler: H,
    threads: usize,
    block_rows: usize,
    total_rows: usize,
    switch: SwitchPolicy,
    stage: &'static str,
    rows: I,
) -> Result<StageRun<H>, E>
where
    H: ReplayHandler + Send,
    I: Iterator<Item = Result<Vec<ColumnId>, E>> + Send,
    E: Send,
{
    let threads = threads.max(1);
    let block_rows = block_rows.max(1);
    let sched = Scheduler::new(handler, threads, total_rows, switch);
    let stats = std::thread::scope(|scope| {
        let sched = &sched;
        let workers: Vec<_> = (0..threads)
            .map(|me| scope.spawn(move || run_worker(sched, me, stage)))
            .collect();
        let read = (|| -> Result<(), E> {
            let mut buf: Vec<Vec<ColumnId>> = Vec::with_capacity(block_rows);
            for row in rows {
                match row {
                    Ok(row) => buf.push(row),
                    Err(e) => {
                        sched.finish_reading(true);
                        return Err(e);
                    }
                }
                if buf.len() == block_rows {
                    let full = std::mem::replace(&mut buf, Vec::with_capacity(block_rows));
                    sched.publish_block(full);
                }
            }
            if !buf.is_empty() {
                sched.publish_block(buf);
            }
            sched.finish_reading(false);
            Ok(())
        })();
        let stats: Vec<WorkerStats> = workers
            .into_iter()
            .map(|w| w.join().expect("worker thread panicked"))
            .collect();
        read.map(|()| stats)
    })?;
    let fold = sched.fold.into_inner().expect("fold lock poisoned");
    debug_assert!(fold.finished, "stage fold must complete");
    let workers: Vec<StageWorker> = stats
        .into_iter()
        .zip(fold.credits)
        .map(|(s, tally)| StageWorker {
            timer: s.timer,
            tally,
            blocks_processed: s.blocks_processed,
            blocks_stolen: s.blocks_stolen,
        })
        .collect();
    // Credit the stage's scheduling totals to the process-wide registry in
    // one bulk add per counter — the hot claim/aggregate loop itself never
    // touches shared telemetry state.
    let registry = dmc_metrics::telemetry::global();
    registry
        .counter("mine.blocks_claimed")
        .add(workers.iter().map(|w| w.blocks_processed).sum());
    registry
        .counter("mine.blocks_stolen")
        .add(workers.iter().map(|w| w.blocks_stolen).sum());
    Ok(StageRun {
        handler: fold.handler,
        switch_at: fold.switch_at,
        workers,
    })
}

/// Accumulates per-worker metrics across the stages of a staged pipeline.
struct WorkerAccumulators {
    timers: Vec<PhaseTimer>,
    tallies: Vec<ScanTally>,
    blocks_processed: Vec<u64>,
    blocks_stolen: Vec<u64>,
}

impl WorkerAccumulators {
    fn new(threads: usize) -> Self {
        Self {
            timers: (0..threads).map(|_| PhaseTimer::new()).collect(),
            tallies: vec![ScanTally::new(); threads],
            blocks_processed: vec![0; threads],
            blocks_stolen: vec![0; threads],
        }
    }

    fn absorb_stage(&mut self, workers: &[StageWorker]) {
        for (w, stage) in workers.iter().enumerate() {
            for &(name, d) in stage.timer.report().phases() {
                self.timers[w].record(name, d);
            }
            self.tallies[w].merge(&stage.tally);
            self.blocks_processed[w] += stage.blocks_processed;
            self.blocks_stolen[w] += stage.blocks_stolen;
        }
    }

    fn finish(self) -> Vec<WorkerReport> {
        let Self {
            timers,
            tallies,
            blocks_processed,
            blocks_stolen,
        } = self;
        timers
            .into_iter()
            .enumerate()
            .map(|(w, timer)| WorkerReport {
                worker: w,
                phases: timer.report(),
                // The scheduler shares one counter array across workers;
                // its peak is reported at the run level.
                memory: CounterMemory::new(),
                tally: tallies[w],
                switch_at: None,
                blocks_processed: blocks_processed[w],
                blocks_stolen: blocks_stolen[w],
            })
            .collect()
    }
}

/// Run-level facts a pipeline cannot observe itself: how many workers to
/// fan out to, how the rows reached it, and what it cost to stage them.
/// They flow straight into the `RunReport`.
pub(crate) struct RunContext {
    pub threads: usize,
    /// `"in-memory"` or `"streamed"` — the report's `mode` field.
    pub mode: &'static str,
    /// Encoded spill size in bytes; zero for in-memory runs.
    pub spill_bytes: u64,
    /// Spill I/O counters to snapshot into the report's `io` section
    /// once the pipeline finishes; `None` for in-memory runs.
    pub stats: Option<Arc<SpillIoStats>>,
    /// When the driver entry point started, so the report's
    /// `wall_seconds` covers the pre-scan the caller ran before handing
    /// over to the pipeline.
    pub started: std::time::Instant,
}

/// The staged parallel DMC-imp pipeline over the block scheduler:
/// 100%-rule stage, step-3 column removal, sub-100% stage, reverse
/// emission, deterministic sort. `make_rows` is called once per stage and
/// must yield the same row stream each time; the stream is decoded
/// exactly once per stage. `ctx.threads` is clamped to 1.
pub(crate) fn parallel_imp_pipeline<E, F, I>(
    n_cols: usize,
    ones: &[u32],
    total_rows: usize,
    config: &ImplicationConfig,
    ctx: RunContext,
    mut timer: PhaseTimer,
    mut make_rows: F,
) -> Result<ImplicationOutput, E>
where
    F: FnMut() -> Result<I, E>,
    I: Iterator<Item = Result<Vec<ColumnId>, E>> + Send,
    E: Send,
{
    let RunContext {
        threads,
        mode,
        spill_bytes,
        stats,
        started,
    } = ctx;
    let threads = threads.max(1);
    let block_rows = effective_block_rows(config.block_rows);
    let mut rules = Vec::new();
    let mut acc = WorkerAccumulators::new(threads);
    let mut memory = CounterMemory::new();
    let mut bitmap_switch_at = None;
    let mut report = ReportBuilder::new("implication", mode, threads, config.minconf);
    report.dims(total_rows, n_cols).spill_bytes(spill_bytes);

    // Stage 1: exact rules through the simplified scan (§4.3).
    if config.hundred_stage || config.minconf >= 1.0 {
        let _span = dmc_metrics::span!("mine.stage.hundred");
        let _g = timer.enter("100% rules");
        let scan = HundredScan::new(n_cols, HundredMode::Implication, ones.to_vec());
        let run = run_stage(
            scan,
            threads,
            block_rows,
            total_rows,
            config.switch,
            "100% rules",
            make_rows()?,
        )?;
        acc.absorb_stage(&run.workers);
        let tally = run.handler.tally();
        let (imp, _, mem) = run.handler.into_parts();
        report.hundred_stage(StageReport::new(
            tally,
            imp.len() as u64,
            mem.peak_candidates(),
        ));
        rules.extend(imp);
        memory.absorb_peak(&mem);
    }

    // Stage 2: sub-100% rules over columns that can tolerate misses
    // (Algorithm 4.2 step 3 removes the rest).
    if config.minconf < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_conf(u64::from(o), config.minconf))
                    .collect(),
            )
        } else {
            None
        };
        let _span = dmc_metrics::span!("mine.stage.sub");
        let _g = timer.enter("<100% rules");
        let scan = BaseScan::new(
            n_cols,
            config.minconf,
            ones.to_vec(),
            active,
            config.release_completed,
            false,
        );
        let run = run_stage(
            scan,
            threads,
            block_rows,
            total_rows,
            config.switch,
            "<100% rules",
            make_rows()?,
        )?;
        acc.absorb_stage(&run.workers);
        bitmap_switch_at = run.switch_at;
        let tally = run.handler.tally();
        let (stage_rules, mem) = run.handler.into_parts();
        let before = rules.len();
        if config.hundred_stage {
            rules.extend(stage_rules.into_iter().filter(|r| r.misses() > 0));
        } else {
            rules.extend(stage_rules);
        }
        report.sub_stage(StageReport::new(
            tally,
            (rules.len() - before) as u64,
            mem.peak_candidates(),
        ));
        memory.absorb_peak(&mem);
    }

    if config.emit_reverse {
        let reversed: Vec<ImplicationRule> = rules
            .iter()
            .filter(|r| conf_qualifies(u64::from(r.hits), u64::from(r.rhs_ones), config.minconf))
            .map(|r| r.reversed())
            .collect();
        report.reverse_rules(reversed.len() as u64);
        rules.extend(reversed);
    }
    rules.sort_unstable();
    rules.dedup();

    let workers = acc.finish();
    for worker in &workers {
        report.push_worker(WorkerSummary::from(worker));
    }
    let phases = timer.report();
    if let Some(stats) = &stats {
        report.io_counters(io_report(stats.snapshot()));
    }
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    Ok(ImplicationOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers,
        report,
    })
}

/// The staged parallel DMC-sim pipeline over the block scheduler; see
/// [`parallel_imp_pipeline`].
pub(crate) fn parallel_sim_pipeline<E, F, I>(
    n_cols: usize,
    ones: &[u32],
    total_rows: usize,
    config: &SimilarityConfig,
    ctx: RunContext,
    mut timer: PhaseTimer,
    mut make_rows: F,
) -> Result<SimilarityOutput, E>
where
    F: FnMut() -> Result<I, E>,
    I: Iterator<Item = Result<Vec<ColumnId>, E>> + Send,
    E: Send,
{
    let RunContext {
        threads,
        mode,
        spill_bytes,
        stats,
        started,
    } = ctx;
    let threads = threads.max(1);
    let block_rows = effective_block_rows(config.block_rows);
    let mut rules = Vec::new();
    let mut acc = WorkerAccumulators::new(threads);
    let mut memory = CounterMemory::new();
    let mut bitmap_switch_at = None;
    let mut report = ReportBuilder::new("similarity", mode, threads, config.minsim);
    report.dims(total_rows, n_cols).spill_bytes(spill_bytes);

    // Stage 1: identical (100%-similar) columns.
    if config.hundred_stage || config.minsim >= 1.0 {
        let _span = dmc_metrics::span!("mine.stage.hundred");
        let _g = timer.enter("100% rules");
        let scan = HundredScan::new(n_cols, HundredMode::Identical, ones.to_vec());
        let run = run_stage(
            scan,
            threads,
            block_rows,
            total_rows,
            config.switch,
            "100% rules",
            make_rows()?,
        )?;
        acc.absorb_stage(&run.workers);
        let tally = run.handler.tally();
        let (_, sims, mem) = run.handler.into_parts();
        report.hundred_stage(StageReport::new(
            tally,
            sims.len() as u64,
            mem.peak_candidates(),
        ));
        rules.extend(sims);
        memory.absorb_peak(&mem);
    }

    // Stage 2: sub-100% pairs over columns that can reach minsim with at
    // least one disagreement.
    if config.minsim < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_sim(u64::from(o), config.minsim))
                    .collect(),
            )
        } else {
            None
        };
        let _span = dmc_metrics::span!("mine.stage.sub");
        let _g = timer.enter("<100% rules");
        let scan = SimScan::new(n_cols, config, ones.to_vec(), active);
        let run = run_stage(
            scan,
            threads,
            block_rows,
            total_rows,
            config.switch,
            "<100% rules",
            make_rows()?,
        )?;
        acc.absorb_stage(&run.workers);
        bitmap_switch_at = run.switch_at;
        let tally = run.handler.tally();
        let (stage_rules, mem) = run.handler.into_parts();
        let before = rules.len();
        if config.hundred_stage {
            rules.extend(stage_rules.into_iter().filter(|r| r.hits < r.union()));
        } else {
            rules.extend(stage_rules);
        }
        report.sub_stage(StageReport::new(
            tally,
            (rules.len() - before) as u64,
            mem.peak_candidates(),
        ));
        memory.absorb_peak(&mem);
    }

    rules.sort_unstable();
    rules.dedup();

    let workers = acc.finish();
    for worker in &workers {
        report.push_worker(WorkerSummary::from(worker));
    }
    let phases = timer.report();
    if let Some(stats) = &stats {
        report.io_counters(io_report(stats.snapshot()));
    }
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    Ok(SimilarityOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rows_resolution() {
        assert_eq!(block_rows_from(None, 512), 512);
        assert_eq!(block_rows_from(None, 0), 1, "configured 0 clamps to 1");
        assert_eq!(block_rows_from(Some("7"), 512), 7);
        assert_eq!(block_rows_from(Some("0"), 512), 512, "env 0 is ignored");
        assert_eq!(block_rows_from(Some("junk"), 512), 512);
    }

    #[test]
    fn worker_resolution_caps_at_cores_unless_oversubscribed() {
        assert_eq!(workers_from(None, 4, 16), 4, "enough cores: as requested");
        assert_eq!(
            workers_from(None, 4, 1),
            1,
            "single core: no oversubscription"
        );
        assert_eq!(workers_from(None, 8, 2), 2);
        assert_eq!(workers_from(None, 0, 1), 1, "requested 0 clamps to 1");
        assert_eq!(workers_from(None, 4, 0), 1, "unknown core count acts as 1");
        assert_eq!(
            workers_from(Some("1"), 4, 1),
            4,
            "oversubscribe lifts the cap"
        );
        assert_eq!(workers_from(Some(""), 4, 1), 1, "empty value does not");
        assert_eq!(workers_from(Some("1"), 0, 1), 1, "but still clamps 0 to 1");
    }

    /// A handler that records what it saw, to pin down scheduler
    /// mechanics independent of the scans.
    #[derive(Debug)]
    struct Recorder {
        rows: Vec<Vec<ColumnId>>,
        tail: Vec<Vec<ColumnId>>,
        bytes: usize,
        tally: ScanTally,
    }

    impl Recorder {
        fn new(bytes: usize) -> Self {
            Self {
                rows: Vec::new(),
                tail: Vec::new(),
                bytes,
                tally: ScanTally::new(),
            }
        }
    }

    impl ReplayHandler for Recorder {
        fn counter_bytes(&self) -> usize {
            self.bytes
        }
        fn row(&mut self, row: &[ColumnId]) {
            self.rows.push(row.to_vec());
            self.tally.row();
        }
        fn tail(&mut self, tail: &[&[ColumnId]]) {
            self.tail = tail.iter().map(|r| r.to_vec()).collect();
        }
        fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &BitMatrix) {
            assert_eq!(bm.width(), rows.len(), "bitmaps cover the block rows");
            for row in rows {
                self.row(row);
            }
        }
        fn tally(&self) -> ScanTally {
            self.tally
        }
    }

    fn run_recorder(
        rows: Vec<Vec<ColumnId>>,
        threads: usize,
        block_rows: usize,
        switch: SwitchPolicy,
        bytes: usize,
    ) -> StageRun<Recorder> {
        let total = rows.len();
        run_stage::<_, _, std::convert::Infallible>(
            Recorder::new(bytes),
            threads,
            block_rows,
            total,
            switch,
            "test",
            rows.into_iter().map(Ok),
        )
        .unwrap()
    }

    #[test]
    fn folds_every_row_once_in_order() {
        let rows: Vec<Vec<ColumnId>> = (0..3000u32).map(|i| vec![i % 7]).collect();
        for threads in [1, 3] {
            for block_rows in [1, 7, 512, 5000] {
                let run = run_recorder(rows.clone(), threads, block_rows, SwitchPolicy::never(), 0);
                assert_eq!(run.handler.rows, rows, "t={threads} b={block_rows}");
                assert!(run.handler.tail.is_empty());
                assert_eq!(run.switch_at, None);
                assert_eq!(run.workers.len(), threads);
                let claimed: u64 = run.workers.iter().map(|w| w.blocks_processed).sum();
                assert_eq!(claimed as usize, rows.len().div_ceil(block_rows));
                let seen: u64 = run.workers.iter().map(|w| w.tally.rows_scanned).sum();
                assert_eq!(seen as usize, rows.len(), "credits partition the tally");
            }
        }
    }

    #[test]
    fn switch_buffers_remaining_blocks_as_tail() {
        let rows: Vec<Vec<ColumnId>> = (0..100u32).map(|i| vec![i]).collect();
        let run = run_recorder(rows.clone(), 2, 10, SwitchPolicy::always_at(45), 1);
        // The first block boundary with remaining <= 45 is row 60.
        assert_eq!(run.switch_at, Some(60), "switch is block-aligned");
        assert_eq!(run.handler.rows, rows[..60].to_vec());
        assert_eq!(run.handler.tail, rows[60..].to_vec());
    }

    #[test]
    fn zero_rows_still_finishes_with_empty_tail() {
        let run = run_recorder(Vec::new(), 4, 512, SwitchPolicy::never(), 0);
        assert!(run.handler.rows.is_empty());
        assert!(run.handler.tail.is_empty());
        assert_eq!(run.switch_at, None);
        assert_eq!(run.workers.len(), 4);
    }

    #[test]
    fn more_workers_than_blocks() {
        let rows: Vec<Vec<ColumnId>> = (0..5u32).map(|i| vec![i]).collect();
        let run = run_recorder(rows.clone(), 8, 512, SwitchPolicy::never(), 0);
        assert_eq!(run.handler.rows, rows);
        assert_eq!(run.workers.len(), 8);
        let claimed: u64 = run.workers.iter().map(|w| w.blocks_processed).sum();
        assert_eq!(claimed, 1, "five rows fit one 512-row block");
    }

    #[test]
    fn reader_error_propagates() {
        #[derive(Debug, PartialEq)]
        struct Boom;
        let rows: Vec<Result<Vec<ColumnId>, Boom>> =
            vec![Ok(vec![0]), Ok(vec![1]), Err(Boom), Ok(vec![2])];
        let res = run_stage(
            Recorder::new(0),
            3,
            1,
            4,
            SwitchPolicy::never(),
            "test",
            rows.into_iter(),
        );
        match res {
            Err(e) => assert_eq!(e, Boom),
            Ok(_) => panic!("reader error must propagate"),
        }
    }
}
