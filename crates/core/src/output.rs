//! The shared accessor surface of the two mining outputs.
//!
//! [`ImplicationOutput`](crate::ImplicationOutput) and
//! [`SimilarityOutput`](crate::SimilarityOutput) carry different rule
//! types but answer the same questions: which pairs qualified, which rules
//! scored highest, what happened during the run. [`MinedOutput`] is that
//! common surface, so generic tooling (the CLI, benches, tests) can handle
//! either output through one bound instead of mirroring
//! `top_by_confidence` / `top_by_similarity` and `for_lhs` / `involving`
//! pairs of near-identical methods.

use crate::imp::ImplicationOutput;
use crate::rules::{ImplicationRule, SimilarityRule};
use crate::sim::SimilarityOutput;
use dmc_matrix::ColumnId;
use dmc_metrics::RunReport;

/// Uniform read access to a mining run's results, implemented by both
/// output types. The score is confidence for implications and Jaccard
/// similarity for similarity pairs.
pub trait MinedOutput {
    /// The concrete rule type.
    type Rule;

    /// All qualifying rules in canonical sorted order.
    fn rules(&self) -> &[Self::Rule];

    /// The structured run report (same schema across all eight drivers).
    fn report(&self) -> &RunReport;

    /// The rules' column pairs, in rule order.
    fn pairs(&self) -> Vec<(ColumnId, ColumnId)>;

    /// The `k` highest-scoring rules (ties by more hits, then canonical
    /// order).
    fn top(&self, k: usize) -> Vec<&Self::Rule>;

    /// All rules involving `col` on either side.
    fn involving(&self, col: ColumnId) -> Vec<&Self::Rule>;
}

impl MinedOutput for ImplicationOutput {
    type Rule = ImplicationRule;

    fn rules(&self) -> &[ImplicationRule] {
        &self.rules
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn pairs(&self) -> Vec<(ColumnId, ColumnId)> {
        ImplicationOutput::pairs(self)
    }

    fn top(&self, k: usize) -> Vec<&ImplicationRule> {
        let mut refs: Vec<&ImplicationRule> = self.rules.iter().collect();
        refs.sort_by(|a, b| {
            b.confidence()
                .partial_cmp(&a.confidence())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.hits.cmp(&a.hits))
                .then(a.cmp(b))
        });
        refs.truncate(k);
        refs
    }

    fn involving(&self, col: ColumnId) -> Vec<&ImplicationRule> {
        self.rules
            .iter()
            .filter(|r| r.lhs == col || r.rhs == col)
            .collect()
    }
}

impl MinedOutput for SimilarityOutput {
    type Rule = SimilarityRule;

    fn rules(&self) -> &[SimilarityRule] {
        &self.rules
    }

    fn report(&self) -> &RunReport {
        &self.report
    }

    fn pairs(&self) -> Vec<(ColumnId, ColumnId)> {
        SimilarityOutput::pairs(self)
    }

    fn top(&self, k: usize) -> Vec<&SimilarityRule> {
        let mut refs: Vec<&SimilarityRule> = self.rules.iter().collect();
        refs.sort_by(|a, b| {
            b.similarity()
                .partial_cmp(&a.similarity())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.hits.cmp(&a.hits))
                .then(a.cmp(b))
        });
        refs.truncate(k);
        refs
    }

    fn involving(&self, col: ColumnId) -> Vec<&SimilarityRule> {
        self.rules
            .iter()
            .filter(|r| r.a == col || r.b == col)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        find_implications, find_similarities, ImplicationConfig, SimilarityConfig, SparseMatrix,
    };

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    /// A generic consumer compiles against the trait once for both outputs.
    fn summarize<O: MinedOutput>(out: &O) -> (usize, usize, u64) {
        (
            out.rules().len(),
            out.top(2).len(),
            out.report().counters.rows_scanned,
        )
    }

    #[test]
    fn trait_surface_matches_inherent_methods() {
        let m = fig2();
        let imp = find_implications(&m, &ImplicationConfig::new(0.8));
        let sim = find_similarities(&m, &SimilarityConfig::new(0.4));

        assert_eq!(MinedOutput::pairs(&imp), imp.pairs());
        assert_eq!(MinedOutput::pairs(&sim), sim.pairs());
        assert_eq!(imp.top(3), imp.top_by_confidence(3));
        assert_eq!(sim.top(3), sim.top_by_similarity(3));
        assert_eq!(MinedOutput::involving(&sim, 4), sim.involving(4));

        let (imp_rules, imp_top, imp_rows) = summarize(&imp);
        assert_eq!(imp_rules, imp.rules.len());
        assert!(imp_top <= 2);
        assert!(imp_rows > 0, "report is populated through the trait");
        let (sim_rules, ..) = summarize(&sim);
        assert_eq!(sim_rules, sim.rules.len());
    }

    #[test]
    fn implication_involving_covers_both_sides() {
        let m = fig2();
        let imp = find_implications(&m, &ImplicationConfig::new(0.8));
        assert_eq!(imp.pairs(), vec![(0, 1), (2, 4)]);
        // Column 1 appears only as an RHS; `involving` still finds it.
        assert_eq!(MinedOutput::involving(&imp, 1).len(), 1);
        assert!(imp.for_lhs(1).is_empty());
    }
}
