//! The 100%-threshold fast paths (§4.3 of the paper).
//!
//! Exact rules are much cheaper than sub-100% rules:
//!
//! * no miss counters are needed — a single miss kills a candidate, so
//!   lists store bare column ids;
//! * after a column's first 1, no new candidate can ever be admitted
//!   (`maxmis = 0` closes the list immediately), so the per-row update is a
//!   pure sorted intersection.
//!
//! Two modes share the machinery:
//!
//! * [`HundredMode::Implication`] — 100%-confidence rules `c_j ⇒ c_k`
//!   (`S_j ⊆ S_k`), admission by the canonical column order;
//! * [`HundredMode::Identical`] — 100%-similar (identical) columns
//!   (DMC-sim step 2), admission restricted to equal 1-counts. Zero misses
//!   from the smaller side plus equal cardinality already implies set
//!   equality, so one direction of miss checking suffices.
//!
//! The DMC-bitmap tail (§4.2) applies here too: a closed column's candidate
//! survives iff `bm(c_j) & !bm(c_k)` is empty; a column entirely inside the
//! tail needs full tail hit counting.

use crate::candidates::ColumnLists;
use crate::fxhash::FxHashMap;
use crate::rules::{ImplicationRule, SimilarityRule};
use dmc_bitset::BitMatrix;
use dmc_matrix::{canonical_less, ColumnId};
use dmc_metrics::{CounterMemory, ScanTally};

/// Which kind of exact rule a [`HundredScan`] extracts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HundredMode {
    /// 100%-confidence implication rules.
    Implication,
    /// 100%-similar (identical) column pairs.
    Identical,
}

/// The simplified DMC scan for exact rules.
pub struct HundredScan {
    mode: HundredMode,
    ones: Vec<u32>,
    cnt: Vec<u32>,
    lists: ColumnLists<ColumnId>,
    /// Optional additional LHS restriction (columns outside it still serve
    /// as RHS candidates) — installed by the shard workers so one shard
    /// owns exactly the rules of its LHS-column range.
    lhs_mask: Option<Vec<bool>>,
    done: Vec<bool>,
    imp_rules: Vec<ImplicationRule>,
    sim_rules: Vec<SimilarityRule>,
    mem: CounterMemory,
    tally: ScanTally,
}

impl HundredScan {
    /// Prepares a scan over an `n_cols`-column matrix with the given
    /// pre-scan `ones`.
    #[must_use]
    pub fn new(n_cols: usize, mode: HundredMode, ones: Vec<u32>) -> Self {
        Self::with_history(n_cols, mode, ones, false)
    }

    /// Like [`HundredScan::new`], optionally recording the per-row memory
    /// history (the Fig-3 curve) — sample it via
    /// [`HundredScan::sample_memory`].
    #[must_use]
    pub fn with_history(
        n_cols: usize,
        mode: HundredMode,
        ones: Vec<u32>,
        record_history: bool,
    ) -> Self {
        let m = n_cols;
        assert_eq!(ones.len(), m);
        Self {
            mode,
            ones,
            cnt: vec![0; m],
            lists: ColumnLists::new(m),
            lhs_mask: None,
            done: vec![false; m],
            imp_rules: Vec::new(),
            sim_rules: Vec::new(),
            mem: if record_history {
                CounterMemory::with_history(4096)
            } else {
                CounterMemory::new()
            },
            tally: ScanTally::new(),
        }
    }

    /// Event counters of this scan so far.
    #[must_use]
    pub fn tally(&self) -> ScanTally {
        self.tally
    }

    /// Records a history sample after `rows_scanned` rows.
    pub fn sample_memory(&mut self, rows_scanned: usize) {
        self.mem.sample(rows_scanned);
    }

    /// Memory accounting of this stage's candidate lists.
    #[must_use]
    pub fn memory(&self) -> &CounterMemory {
        &self.mem
    }

    /// Restricts which columns act as LHS (they still serve as RHS
    /// candidates of other columns). Must be installed before the first
    /// row; masked columns keep `cnt = 0` and never complete, which is
    /// safe because nothing reads another column's counter here.
    pub(crate) fn set_lhs_mask(&mut self, mask: Vec<bool>) {
        assert_eq!(mask.len(), self.ones.len());
        self.lhs_mask = Some(mask);
    }

    #[inline]
    fn is_lhs(&self, j: ColumnId) -> bool {
        !self.done[j as usize] && self.lhs_mask.as_ref().is_none_or(|m| m[j as usize])
    }

    #[inline]
    fn admissible(&self, j: ColumnId, k: ColumnId) -> bool {
        if k == j {
            return false;
        }
        let (oj, ok) = (self.ones[j as usize], self.ones[k as usize]);
        match self.mode {
            HundredMode::Implication => canonical_less(j, oj, k, ok),
            HundredMode::Identical => oj == ok && k > j,
        }
    }

    /// Processes one row: create-on-first-1, otherwise intersect.
    pub fn process_row(&mut self, row: &[ColumnId]) {
        self.tally.row();
        for &j in row {
            if !self.is_lhs(j) {
                continue;
            }
            if self.cnt[j as usize] == 0 {
                let list: Vec<ColumnId> = row
                    .iter()
                    .copied()
                    .filter(|&k| self.admissible(j, k))
                    .collect();
                self.tally.admit(list.len());
                self.lists.install(j, list, &mut self.mem);
            } else {
                self.intersect(j, row);
            }
        }
        for &j in row {
            if !self.is_lhs(j) {
                continue;
            }
            self.cnt[j as usize] += 1;
            if self.cnt[j as usize] == self.ones[j as usize] {
                self.complete(j);
            }
        }
    }

    /// Applies one scheduler block entirely from its pre-aggregated
    /// bitmaps — no per-row replay at all.
    ///
    /// With `maxmis = 0` the sequential scan only ever (a) creates a
    /// column's list from its first row and (b) intersects it with later
    /// rows. Both fold to bitmap operations over the block: the list is
    /// created from the row of `j`'s first block 1 (`first_one`), and a
    /// candidate survives iff `popcount(bm(j) & !bm(k)) == 0`. Rules,
    /// tallies and counters match row-by-row processing exactly.
    pub(crate) fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &BitMatrix) {
        self.tally.rows(rows.len());
        for ji in 0..self.ones.len() {
            let j = ji as ColumnId;
            if !self.is_lhs(j) || self.ones[ji] == 0 {
                continue;
            }
            let Some(bits) = bm.get(j) else {
                continue;
            };
            let block_ones = bits.count_ones() as u32;
            if block_ones == 0 {
                continue;
            }
            if self.cnt[ji] == 0 {
                // Rows before `t0` have no `j`, so they contribute no
                // misses: installing from `t0` then folding the whole
                // block's misses below is exact.
                let t0 = bits.first_one().expect("bitmap has a set bit");
                let list: Vec<ColumnId> = rows[t0]
                    .iter()
                    .copied()
                    .filter(|&k| self.admissible(j, k))
                    .collect();
                self.tally.admit(list.len());
                self.lists.install(j, list, &mut self.mem);
            }
            if let Some(mut list) = self.lists.take(j) {
                let before = list.len();
                list.retain(|&k| bm.miss_count(j, k) == 0);
                let dropped = before - list.len();
                // One miss deletes a candidate, exactly as in the
                // sequential intersection.
                self.tally.miss(dropped);
                self.tally.delete(dropped);
                self.mem.remove_candidates(dropped);
                if list.is_empty() {
                    self.mem.remove_list();
                } else {
                    self.lists.put_back(j, list);
                }
            }
            self.cnt[ji] += block_ones;
            if self.cnt[ji] == self.ones[ji] {
                self.complete(j);
            }
        }
    }

    /// In-place sorted intersection of the candidate list with the row.
    fn intersect(&mut self, j: ColumnId, row: &[ColumnId]) {
        let Some(mut list) = self.lists.take(j) else {
            return;
        };
        let before = list.len();
        let mut write = 0;
        let mut ri = 0;
        for read in 0..list.len() {
            let k = list[read];
            while ri < row.len() && row[ri] < k {
                ri += 1;
            }
            if ri < row.len() && row[ri] == k {
                list[write] = k;
                write += 1;
            }
        }
        list.truncate(write);
        self.tally.miss(before - write);
        self.tally.delete(before - write);
        self.mem.remove_candidates(before - write);
        if list.is_empty() {
            self.mem.remove_list();
        } else {
            self.lists.put_back(j, list);
        }
    }

    fn complete(&mut self, j: ColumnId) {
        self.done[j as usize] = true;
        let Some(list) = self.lists.release(j, &mut self.mem) else {
            return;
        };
        let ones_j = self.ones[j as usize];
        for k in list {
            self.emit(j, k, ones_j);
        }
    }

    fn emit(&mut self, j: ColumnId, k: ColumnId, ones_j: u32) {
        self.tally.emit(1);
        let ones_k = self.ones[k as usize];
        match self.mode {
            HundredMode::Implication => self.imp_rules.push(ImplicationRule {
                lhs: j,
                rhs: k,
                hits: ones_j,
                lhs_ones: ones_j,
                rhs_ones: ones_k,
            }),
            HundredMode::Identical => self.sim_rules.push(SimilarityRule {
                a: j,
                b: k,
                hits: ones_j,
                a_ones: ones_j,
                b_ones: ones_k,
            }),
        }
    }

    /// Finishes over unscanned tail rows with bitmaps (§4.2 applied to the
    /// exact-rule scan).
    pub fn finish_with_bitmaps(&mut self, tail: &[&[ColumnId]]) {
        let all_active = vec![true; self.ones.len()];
        let bm = crate::bitmap::build_tail_bitmaps(tail, &all_active, &self.done);
        for j in 0..self.ones.len() as ColumnId {
            let ji = j as usize;
            if !self.is_lhs(j) || self.ones[ji] == 0 {
                continue;
            }
            if self.cnt[ji] > 0 {
                // Closed: survivors are candidates with no tail miss.
                if let Some(list) = self.lists.release(j, &mut self.mem) {
                    let ones_j = self.ones[ji];
                    for k in list {
                        if bm.miss_count(j, k) == 0 {
                            self.emit(j, k, ones_j);
                        } else {
                            self.tally.delete(1);
                        }
                    }
                }
            } else {
                // Entirely in the tail: count hits over j's tail rows.
                self.tail_only_column(&bm, tail, j);
            }
            self.done[ji] = true;
        }
    }

    fn tail_only_column(&mut self, bm: &BitMatrix, tail: &[&[ColumnId]], j: ColumnId) {
        let ones_j = self.ones[j as usize];
        let mut hits: FxHashMap<ColumnId, u32> = FxHashMap::default();
        if let Some(rows_of_j) = bm.get(j) {
            for t in rows_of_j.ones() {
                for &k in tail[t] {
                    if k != j {
                        *hits.entry(k).or_insert(0) += 1;
                    }
                }
            }
        }
        // Tail-only partners count as admissions so the tally reconciles.
        self.tally.admit(hits.len());
        for (k, h) in hits {
            if h == ones_j && self.admissible(j, k) {
                self.emit(j, k, ones_j);
            } else {
                self.tally.delete(1);
            }
        }
    }

    /// Consumes the scan, returning the emitted rules (implication rules in
    /// [`HundredMode::Implication`], similarity rules otherwise) and the
    /// memory tracker.
    #[must_use]
    pub fn into_parts(self) -> (Vec<ImplicationRule>, Vec<SimilarityRule>, CounterMemory) {
        (self.imp_rules, self.sim_rules, self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_matrix::SparseMatrix;

    fn fig1() -> SparseMatrix {
        SparseMatrix::from_rows(3, vec![vec![1, 2], vec![0, 1, 2], vec![0], vec![1]])
    }

    fn run_imp(matrix: &SparseMatrix, head: usize) -> Vec<(ColumnId, ColumnId)> {
        let mut scan = HundredScan::new(
            matrix.n_cols(),
            HundredMode::Implication,
            matrix.column_ones(),
        );
        for r in 0..head {
            scan.process_row(matrix.row(r));
        }
        let tail: Vec<&[ColumnId]> = (head..matrix.n_rows()).map(|r| matrix.row(r)).collect();
        scan.finish_with_bitmaps(&tail);
        let (mut rules, sims, _) = scan.into_parts();
        assert!(sims.is_empty());
        rules.sort();
        rules.iter().map(|r| (r.lhs, r.rhs)).collect()
    }

    /// Example 1.2: only c3 => c2 (0-indexed 2 => 1) holds at 100%.
    #[test]
    fn fig1_exact_rules() {
        let m = fig1();
        assert_eq!(run_imp(&m, m.n_rows()), vec![(2, 1)]);
    }

    #[test]
    fn switch_invariance_imp() {
        let m = fig1();
        let expected = run_imp(&m, m.n_rows());
        for head in 0..m.n_rows() {
            assert_eq!(run_imp(&m, head), expected, "head={head}");
        }
    }

    fn run_ident(matrix: &SparseMatrix, head: usize) -> Vec<(ColumnId, ColumnId)> {
        let mut scan = HundredScan::new(
            matrix.n_cols(),
            HundredMode::Identical,
            matrix.column_ones(),
        );
        for r in 0..head {
            scan.process_row(matrix.row(r));
        }
        let tail: Vec<&[ColumnId]> = (head..matrix.n_rows()).map(|r| matrix.row(r)).collect();
        scan.finish_with_bitmaps(&tail);
        let (imps, mut sims, _) = scan.into_parts();
        assert!(imps.is_empty());
        sims.sort();
        sims.iter().map(|r| (r.a, r.b)).collect()
    }

    #[test]
    fn identical_columns_found() {
        // Columns 0 and 2 identical; 1 and 4 identical; 3 different with
        // the same cardinality as 1/4.
        let m = SparseMatrix::from_rows(5, vec![vec![0, 1, 2, 4], vec![0, 2, 3], vec![1, 3, 4]]);
        assert_eq!(run_ident(&m, m.n_rows()), vec![(0, 2), (1, 4)]);
    }

    #[test]
    fn switch_invariance_identical() {
        let m = SparseMatrix::from_rows(
            4,
            vec![vec![0, 1], vec![0, 1, 2], vec![2, 3], vec![0, 1, 3]],
        );
        let expected = run_ident(&m, m.n_rows());
        for head in 0..m.n_rows() {
            assert_eq!(run_ident(&m, head), expected, "head={head}");
        }
    }

    #[test]
    fn different_cardinalities_never_pair_identically() {
        let m = SparseMatrix::from_rows(2, vec![vec![0, 1], vec![1]]);
        assert!(run_ident(&m, m.n_rows()).is_empty());
    }

    #[test]
    fn all_zero_columns_do_not_pair() {
        // Columns 2 and 3 have no 1s at all; "identical empty columns" are
        // not meaningful rules and must not be emitted.
        let m = SparseMatrix::from_rows(4, vec![vec![0, 1], vec![0, 1]]);
        assert_eq!(run_ident(&m, m.n_rows()), vec![(0, 1)]);
    }

    /// Block application is state-identical to row-by-row processing for
    /// both modes at every block size — rules, tallies, counters.
    #[test]
    fn apply_block_matches_row_by_row() {
        let m = SparseMatrix::from_rows(
            5,
            vec![vec![0, 1, 2, 4], vec![0, 2, 3], vec![1, 3, 4], vec![0, 2]],
        );
        let rows: Vec<Vec<ColumnId>> = m.rows().map(<[ColumnId]>::to_vec).collect();
        for mode in [HundredMode::Implication, HundredMode::Identical] {
            let mut seq = HundredScan::new(m.n_cols(), mode, m.column_ones());
            for row in m.rows() {
                seq.process_row(row);
            }
            seq.finish_with_bitmaps(&[]);
            for block in 1..=m.n_rows() {
                let mut blk = HundredScan::new(m.n_cols(), mode, m.column_ones());
                for chunk in rows.chunks(block) {
                    let mut bm = BitMatrix::new(chunk.len());
                    for (t, row) in chunk.iter().enumerate() {
                        for &c in row {
                            bm.set(c, t);
                        }
                    }
                    blk.apply_block(chunk, &bm);
                }
                blk.finish_with_bitmaps(&[]);
                assert_eq!(blk.tally(), seq.tally(), "mode={mode:?} block={block}");
                assert_eq!(blk.cnt, seq.cnt, "mode={mode:?} block={block}");
                let sorted = |s: &HundredScan| {
                    let mut pairs: Vec<(ColumnId, ColumnId)> = s
                        .imp_rules
                        .iter()
                        .map(|r| (r.lhs, r.rhs))
                        .chain(s.sim_rules.iter().map(|r| (r.a, r.b)))
                        .collect();
                    pairs.sort_unstable();
                    pairs
                };
                assert_eq!(sorted(&blk), sorted(&seq), "mode={mode:?} block={block}");
            }
        }
    }

    #[test]
    fn memory_is_released_at_completion() {
        let m = fig1();
        let mut scan = HundredScan::new(m.n_cols(), HundredMode::Implication, m.column_ones());
        for row in m.rows() {
            scan.process_row(row);
        }
        assert_eq!(scan.memory().current_candidates(), 0);
        assert!(scan.memory().peak_candidates() > 0);
    }
}
