//! Post-mining rule-base compaction: irredundant bases with confidence boost.
//!
//! DMC mines *every* qualifying rule, and at production thresholds the
//! output itself becomes the bottleneck — serving millions of raw rules,
//! most of which are logically implied by a handful of others. This module
//! shrinks a mined rule set to an **irredundant base** that is *lossless*:
//! [`CompactedBase::expand`] reconstructs the original rule set — including
//! every `hits`/`ones` count — byte-identically (after [`crate::write_rules`]
//! serialization) for any algorithm/threshold/`emit_reverse` combination.
//!
//! # Deduction schemes for single-antecedent rules
//!
//! DMC rules have exactly one column on each side, so of Balcázar's
//! deduction schemes for partial rules only three can fire, and each maps
//! to a concrete redundancy in the mined set:
//!
//! * **Reflexivity** — `c ⇒ c` is never informative. The miners never emit
//!   it; compaction asserts the invariant.
//! * **Canonical-direction augmentation** — a reverse rule `b ⇒ a` (emitted
//!   under [`crate::ImplicationConfig::emit_reverse`]) is determined by its
//!   canonical twin: it exists iff `conf(b ⇒ a) = hits/ones(b) ≥ minconf`,
//!   and every count in it is a permutation of the twin's. The base stores
//!   only canonical-direction rules plus one `emit_reverse` bit.
//! * **Transitivity-style cover pruning** — a 100%-confidence rule
//!   `a ⇒ b` states a set containment `S_a ⊆ S_b`. The mined canonical
//!   100%-rule set is *transitively closed* (containment composes, and the
//!   canonical order `(ones, id)` composes with it), so its transitive
//!   reduction loses nothing: the closure of the reduction is exactly the
//!   original edge set, and an implied edge `a ⇒ c` has fully determined
//!   counts `hits = lhs_ones = ones(a)`, `rhs_ones = ones(c)`.
//!   Columns with *equal* sets (containment both ways, equal `ones`) form
//!   equivalence classes; the reduction turns each class's complete
//!   pair-DAG into an id-ordered chain. A sub-100% rule `a ⇒ b` is then
//!   redundant when some class-mates `a' ≈ a`, `b' ≈ b` give a rule
//!   `a' ⇒ b'` with identical counts — each cross-class family keeps one
//!   representative (the `Ord`-minimal member).
//!
//! Sub-100% rules between distinct classes carry counts no other rule
//! determines, so they are irredundant and kept verbatim. The same
//! argument applies to similarity rules with `sim = 1.0` (equal sets ⇒
//! classes ⇒ chains) and `sim < 1.0` (class-family representatives).
//!
//! # Confidence boost
//!
//! Following the confidence-boost measure (arXiv:1103.4778) adapted to
//! single-antecedent rules: a rule `a ⇒ b` is only as interesting as its
//! advantage over its *generalizations* — rules `a' ⇒ b` whose antecedent
//! fires at least as often (`S_a ⊆ S_{a'}`, known exactly from the
//! 100%-rule containment order):
//!
//! ```text
//! boost(a ⇒ b) = conf(a ⇒ b) / max({minconf} ∪ {conf(a' ⇒ b) : S_a ⊆ S_{a'}, a' ∉ {a, b}})
//! ```
//!
//! `minconf` floors the denominator because an absent pair is known to sit
//! below the threshold. Rules implied by the base have boost exactly 1.0;
//! a base rule dominated by a generalization has boost < 1.0. For
//! similarity rules the generalizations are the class-family twins, whose
//! similarity is identical — so twinned rules get boost 1.0 and singleton
//! families `sim/minsim`. [`CompactionConfig`] filters the *served* base by
//! minimum boost and/or top-k without affecting the lossless base itself.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::rules::{ImplicationRule, SimilarityRule};
use crate::threshold::conf_qualifies;
use dmc_matrix::{canonical_less, ColumnId};
use dmc_metrics::CompactionReport;

/// Buckets of [`CompactedBase::boost_histogram`] (shared with the report
/// section).
pub use dmc_metrics::BOOST_HIST_BUCKETS;

/// Upper edges of the first `BOOST_HIST_BUCKETS - 1` histogram buckets:
/// `< 1.0`, `[1.0, 1.05)`, `[1.05, 1.25)`, `[1.25, 2.0)`, `[2.0, 4.0)`,
/// `≥ 4.0`.
pub const BOOST_HIST_EDGES: [f64; BOOST_HIST_BUCKETS - 1] = [1.0, 1.05, 1.25, 2.0, 4.0];

/// Tolerance for boost-threshold comparisons, mirroring the `REL_EPS`
/// guard in [`crate::threshold`]: a rule whose boost lands exactly on
/// `min_boost` must not be dropped by an `f64` rounding artifact.
const BOOST_EPS: f64 = 1e-9;

/// Which histogram bucket `boost` falls into.
#[must_use]
pub fn boost_bucket(boost: f64) -> usize {
    BOOST_HIST_EDGES
        .iter()
        .position(|&edge| boost < edge)
        .unwrap_or(BOOST_HIST_BUCKETS - 1)
}

/// Serving-side filters over a [`CompactedBase`].
///
/// The defaults (`min_boost = 0.0`, no top-k) select the entire base, so a
/// default config never breaks the expansion identity. Raising `min_boost`
/// only removes rules (monotone); `top_k` keeps the k highest-boost rules
/// of each kind, ties broken toward the `Ord`-smaller rule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionConfig {
    /// Keep base rules with `boost ≥ min_boost` (small epsilon-tolerant).
    pub min_boost: f64,
    /// Keep at most this many rules of each kind, highest boost first.
    pub top_k: Option<usize>,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        Self {
            min_boost: 0.0,
            top_k: None,
        }
    }
}

impl CompactionConfig {
    /// Builder: set the minimum boost.
    #[must_use]
    pub fn with_min_boost(mut self, min_boost: f64) -> Self {
        self.min_boost = min_boost;
        self
    }

    /// Builder: keep only the `k` highest-boost rules per kind.
    #[must_use]
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }
}

/// An implication rule of the base together with its confidence boost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoostedImplication {
    pub rule: ImplicationRule,
    pub boost: f64,
}

/// A similarity rule of the base together with its boost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoostedSimilarity {
    pub rule: SimilarityRule,
    pub boost: f64,
}

/// An irredundant, lossless base for a mined rule set.
///
/// Produced by [`compact`]; [`expand`](Self::expand) inverts it exactly.
#[derive(Clone, Debug)]
pub struct CompactedBase {
    /// Implication threshold the rules were mined at (also the reverse
    /// re-qualification bar and the boost floor).
    pub minconf: f64,
    /// Similarity threshold (boost floor for similarity rules).
    pub minsim: f64,
    /// Whether expansion re-emits qualifying reverse implication rules.
    pub emit_reverse: bool,
    /// Base implication rules, canonical direction, sorted by rule `Ord`.
    pub implications: Vec<BoostedImplication>,
    /// Base similarity rules, sorted by rule `Ord`.
    pub similarities: Vec<BoostedSimilarity>,
    /// Implication rules in the input (reverse rules included).
    pub imp_rules_in: usize,
    /// Similarity rules in the input.
    pub sim_rules_in: usize,
}

/// Compacts a mined rule set into its irredundant base.
///
/// `emit_reverse` declares whether the implications were mined with
/// reverse emission; `None` infers it from the input (safe: if no reverse
/// rule qualified, expansion is byte-identical under either flag). When
/// the input visibly contains reverse rules the flag is forced on.
#[must_use]
pub fn compact(
    implications: &[ImplicationRule],
    similarities: &[SimilarityRule],
    minconf: f64,
    minsim: f64,
    emit_reverse: Option<bool>,
) -> CompactedBase {
    let (imp_base, saw_reverse) = compact_imp_rules(implications, minconf);
    let sim_base = compact_sim_rules(similarities, minsim);
    CompactedBase {
        minconf,
        minsim,
        emit_reverse: saw_reverse || emit_reverse.unwrap_or(false),
        implications: imp_base,
        similarities: sim_base,
        imp_rules_in: implications.len(),
        sim_rules_in: similarities.len(),
    }
}

/// [`compact`] for an implication-only rule set.
#[must_use]
pub fn compact_implications(
    rules: &[ImplicationRule],
    minconf: f64,
    emit_reverse: Option<bool>,
) -> CompactedBase {
    compact(rules, &[], minconf, 1.0, emit_reverse)
}

/// [`compact`] for a similarity-only rule set.
#[must_use]
pub fn compact_similarities(rules: &[SimilarityRule], minsim: f64) -> CompactedBase {
    compact(&[], rules, 1.0, minsim, Some(false))
}

impl CompactedBase {
    /// Reinterprets an already-compacted rule set (e.g. a base file read
    /// back from disk) as a base, for [`expand`](Self::expand).
    ///
    /// Boosts are not reconstructible from the base alone and are stored
    /// as 1.0 placeholders; only expansion is meaningful on such a value.
    /// `emit_reverse` must be passed explicitly when the original mine
    /// emitted reverse rules (a base never contains one to infer from).
    #[must_use]
    pub fn from_base_rules(
        implications: Vec<ImplicationRule>,
        similarities: Vec<SimilarityRule>,
        minconf: f64,
        minsim: f64,
        emit_reverse: bool,
    ) -> Self {
        let imp_rules_in = implications.len();
        let sim_rules_in = similarities.len();
        Self {
            minconf,
            minsim,
            emit_reverse,
            implications: implications
                .into_iter()
                .map(|rule| BoostedImplication { rule, boost: 1.0 })
                .collect(),
            similarities: similarities
                .into_iter()
                .map(|rule| BoostedSimilarity { rule, boost: 1.0 })
                .collect(),
            imp_rules_in,
            sim_rules_in,
        }
    }

    /// Rules in the original input.
    #[must_use]
    pub fn rules_in(&self) -> usize {
        self.imp_rules_in + self.sim_rules_in
    }

    /// Rules in the base.
    #[must_use]
    pub fn rules_in_base(&self) -> usize {
        self.implications.len() + self.similarities.len()
    }

    /// `rules_in_base / rules_in`; 1.0 for an empty input.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.rules_in() == 0 {
            1.0
        } else {
            self.rules_in_base() as f64 / self.rules_in() as f64
        }
    }

    /// Histogram of base-rule boosts over the [`BOOST_HIST_EDGES`] buckets.
    #[must_use]
    pub fn boost_histogram(&self) -> [u64; BOOST_HIST_BUCKETS] {
        let mut hist = [0u64; BOOST_HIST_BUCKETS];
        for b in &self.implications {
            hist[boost_bucket(b.boost)] += 1;
        }
        for b in &self.similarities {
            hist[boost_bucket(b.boost)] += 1;
        }
        hist
    }

    /// The `compaction` section of the run report.
    #[must_use]
    pub fn report(&self) -> CompactionReport {
        CompactionReport {
            rules_in: self.rules_in() as u64,
            rules_in_base: self.rules_in_base() as u64,
            ratio: self.ratio(),
            boost_hist: self.boost_histogram(),
        }
    }

    /// The base rules passing `config`, each kind sorted by rule `Ord`.
    ///
    /// Raising `min_boost` (or lowering `top_k`) only ever removes rules.
    #[must_use]
    pub fn select(
        &self,
        config: &CompactionConfig,
    ) -> (Vec<BoostedImplication>, Vec<BoostedSimilarity>) {
        let imps = select_rules(&self.implications, config, |b| (b.boost, b.rule));
        let sims = select_rules(&self.similarities, config, |b| (b.boost, b.rule));
        (imps, sims)
    }

    /// Reconstructs the full mined rule set from the base.
    ///
    /// The returned vectors are byte-identical (under
    /// [`crate::write_rules`]) to the miner output the base was compacted
    /// from: closure of the 100%-rule reduction, class-family
    /// re-materialization of deduplicated sub-threshold rules, reverse
    /// re-emission under `emit_reverse`, then the miners' `sort + dedup`.
    #[must_use]
    pub fn expand(&self) -> (Vec<ImplicationRule>, Vec<SimilarityRule>) {
        (self.expand_implications(), self.expand_similarities())
    }

    fn expand_implications(&self) -> Vec<ImplicationRule> {
        let mut ones: FxHashMap<ColumnId, u32> = FxHashMap::default();
        let mut adj: FxHashMap<ColumnId, Vec<ColumnId>> = FxHashMap::default();
        let mut nodes: Vec<ColumnId> = Vec::new();
        for b in &self.implications {
            let r = b.rule;
            ones.insert(r.lhs, r.lhs_ones);
            ones.insert(r.rhs, r.rhs_ones);
            if r.hits == r.lhs_ones {
                adj.entry(r.lhs).or_default().push(r.rhs);
                if !nodes.contains(&r.lhs) {
                    nodes.push(r.lhs);
                }
                if !nodes.contains(&r.rhs) {
                    nodes.push(r.rhs);
                }
            }
        }

        // Transitive closure of the base's 100%-rule edges. The original
        // 100%-rule set was transitively closed, so closing its reduction
        // reproduces it exactly.
        let mut rules: Vec<ImplicationRule> = Vec::new();
        let mut classes = MinIdUnionFind::default();
        nodes.sort_unstable();
        for &u in &nodes {
            let reach = reachable_from(u, &adj);
            for &v in &reach {
                let (ou, ov) = (ones[&u], ones[&v]);
                rules.push(ImplicationRule {
                    lhs: u,
                    rhs: v,
                    hits: ou,
                    lhs_ones: ou,
                    rhs_ones: ov,
                });
                if ou == ov {
                    // Containment with equal sizes is set equality.
                    classes.union(u, v);
                }
            }
        }

        // Re-materialize each deduplicated sub-100% class family from its
        // representative.
        let members = classes.members();
        for b in &self.implications {
            let r = b.rule;
            if r.hits == r.lhs_ones {
                continue;
            }
            let lhs_class = class_of(&members, &classes, r.lhs);
            let rhs_class = class_of(&members, &classes, r.rhs);
            for &x in &lhs_class {
                for &y in &rhs_class {
                    rules.push(canonical_imp(x, r.lhs_ones, y, r.rhs_ones, r.hits));
                }
            }
        }

        if self.emit_reverse {
            let reversed: Vec<ImplicationRule> = rules
                .iter()
                .filter(|r| conf_qualifies(u64::from(r.hits), u64::from(r.rhs_ones), self.minconf))
                .map(|r| r.reversed())
                .collect();
            rules.extend(reversed);
        }
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    fn expand_similarities(&self) -> Vec<SimilarityRule> {
        let mut classes = MinIdUnionFind::default();
        let mut ones: FxHashMap<ColumnId, u32> = FxHashMap::default();
        for b in &self.similarities {
            let r = b.rule;
            ones.insert(r.a, r.a_ones);
            ones.insert(r.b, r.b_ones);
            if r.hits == r.a_ones && r.hits == r.b_ones {
                classes.union(r.a, r.b);
            }
        }

        // All pairs within each equal-set class carry sim 1.0.
        let mut rules: Vec<SimilarityRule> = Vec::new();
        let members = classes.members();
        for group in members.values() {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    let o = ones[&a];
                    rules.push(SimilarityRule {
                        a,
                        b,
                        hits: o,
                        a_ones: o,
                        b_ones: o,
                    });
                }
            }
        }

        for b in &self.similarities {
            let r = b.rule;
            if r.hits == r.a_ones && r.hits == r.b_ones {
                continue;
            }
            let a_class = class_of(&members, &classes, r.a);
            let b_class = class_of(&members, &classes, r.b);
            for &x in &a_class {
                for &y in &b_class {
                    rules.push(canonical_sim(x, r.a_ones, y, r.b_ones, r.hits));
                }
            }
        }
        rules.sort_unstable();
        rules.dedup();
        rules
    }
}

fn select_rules<T: Copy, R: Ord + Copy>(
    rules: &[T],
    config: &CompactionConfig,
    key: impl Fn(&T) -> (f64, R),
) -> Vec<T> {
    let mut kept: Vec<T> = rules
        .iter()
        .filter(|t| key(t).0 + BOOST_EPS >= config.min_boost)
        .copied()
        .collect();
    if let Some(k) = config.top_k {
        if kept.len() > k {
            kept.sort_by(|x, y| {
                let (bx, rx) = key(x);
                let (by, ry) = key(y);
                by.total_cmp(&bx).then_with(|| rx.cmp(&ry))
            });
            kept.truncate(k);
            kept.sort_by_key(|t| key(t).1);
        }
    }
    kept
}

/// Union-find over sparse column ids whose representative is the smallest
/// member — the natural class representative for deterministic output.
#[derive(Default)]
struct MinIdUnionFind {
    parent: FxHashMap<ColumnId, ColumnId>,
}

impl MinIdUnionFind {
    fn find(&mut self, x: ColumnId) -> ColumnId {
        let mut root = x;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression.
        let mut cur = x;
        while let Some(&p) = self.parent.get(&cur) {
            if p == cur {
                break;
            }
            self.parent.insert(cur, root);
            cur = p;
        }
        root
    }

    fn union(&mut self, a: ColumnId, b: ColumnId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(hi, lo);
        self.parent.entry(lo).or_insert(lo);
    }

    fn find_root(&mut self, x: ColumnId) -> ColumnId {
        if self.parent.contains_key(&x) {
            self.find(x)
        } else {
            x
        }
    }

    /// Root → ascending member list, for classes with ≥ 2 members.
    fn members(&mut self) -> FxHashMap<ColumnId, Vec<ColumnId>> {
        let keys: Vec<ColumnId> = self.parent.keys().copied().collect();
        let mut out: FxHashMap<ColumnId, Vec<ColumnId>> = FxHashMap::default();
        for k in keys {
            let root = self.find(k);
            out.entry(root).or_default().push(k);
        }
        for group in out.values_mut() {
            group.sort_unstable();
        }
        out.retain(|_, group| group.len() >= 2);
        out
    }
}

fn class_of(
    members: &FxHashMap<ColumnId, Vec<ColumnId>>,
    classes: &MinIdUnionFind,
    col: ColumnId,
) -> Vec<ColumnId> {
    // `members()` has already path-compressed every key, so a plain parent
    // lookup resolves the root without mutation.
    let root = classes
        .parent
        .get(&col)
        .copied()
        .map_or(col, |p| if p == col { col } else { p });
    members.get(&root).cloned().unwrap_or_else(|| vec![col])
}

fn canonical_imp(x: ColumnId, ox: u32, y: ColumnId, oy: u32, hits: u32) -> ImplicationRule {
    if canonical_less(x, ox, y, oy) {
        ImplicationRule {
            lhs: x,
            rhs: y,
            hits,
            lhs_ones: ox,
            rhs_ones: oy,
        }
    } else {
        ImplicationRule {
            lhs: y,
            rhs: x,
            hits,
            lhs_ones: oy,
            rhs_ones: ox,
        }
    }
}

fn canonical_sim(x: ColumnId, ox: u32, y: ColumnId, oy: u32, hits: u32) -> SimilarityRule {
    if canonical_less(x, ox, y, oy) {
        SimilarityRule {
            a: x,
            b: y,
            hits,
            a_ones: ox,
            b_ones: oy,
        }
    } else {
        SimilarityRule {
            a: y,
            b: x,
            hits,
            a_ones: oy,
            b_ones: ox,
        }
    }
}

fn reachable_from(start: ColumnId, adj: &FxHashMap<ColumnId, Vec<ColumnId>>) -> Vec<ColumnId> {
    let mut seen: FxHashSet<ColumnId> = FxHashSet::default();
    let mut stack: Vec<ColumnId> = adj.get(&start).cloned().unwrap_or_default();
    while let Some(v) = stack.pop() {
        if seen.insert(v) {
            if let Some(next) = adj.get(&v) {
                stack.extend(next.iter().copied());
            }
        }
    }
    let mut reach: Vec<ColumnId> = seen.into_iter().collect();
    reach.sort_unstable();
    reach
}

fn unordered(a: ColumnId, b: ColumnId) -> (ColumnId, ColumnId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Compacts canonical implication rules; returns the base (sorted, with
/// boosts) and whether reverse rules were present in the input.
fn compact_imp_rules(rules: &[ImplicationRule], minconf: f64) -> (Vec<BoostedImplication>, bool) {
    let mut canonical: Vec<ImplicationRule> = Vec::with_capacity(rules.len());
    let mut saw_reverse = false;
    for r in rules {
        debug_assert_ne!(r.lhs, r.rhs, "reflexive rule in miner output");
        if canonical_less(r.lhs, r.lhs_ones, r.rhs, r.rhs_ones) {
            canonical.push(*r);
        } else {
            saw_reverse = true;
        }
    }

    let mut ones: FxHashMap<ColumnId, u32> = FxHashMap::default();
    let mut pair_hits: FxHashMap<(ColumnId, ColumnId), u32> = FxHashMap::default();
    let mut succ: FxHashMap<ColumnId, Vec<ColumnId>> = FxHashMap::default();
    let mut edges: FxHashSet<(ColumnId, ColumnId)> = FxHashSet::default();
    let mut classes = MinIdUnionFind::default();
    for r in &canonical {
        ones.insert(r.lhs, r.lhs_ones);
        ones.insert(r.rhs, r.rhs_ones);
        pair_hits.insert(unordered(r.lhs, r.rhs), r.hits);
        if r.hits == r.lhs_ones {
            succ.entry(r.lhs).or_default().push(r.rhs);
            edges.insert((r.lhs, r.rhs));
            if r.lhs_ones == r.rhs_ones {
                classes.union(r.lhs, r.rhs);
            }
        }
    }

    let empty: Vec<ColumnId> = Vec::new();
    let mut base: Vec<ImplicationRule> = Vec::new();
    // 100% rules: keep exactly the transitive reduction. The edge set is
    // transitively closed, so one intermediate-hop test is a full path test.
    for r in &canonical {
        if r.hits != r.lhs_ones {
            continue;
        }
        let covered = succ
            .get(&r.lhs)
            .unwrap_or(&empty)
            .iter()
            .any(|&w| w != r.rhs && edges.contains(&(w, r.rhs)));
        if !covered {
            base.push(*r);
        }
    }

    // Sub-100% rules: one Ord-minimal representative per equal-set class
    // family (all members share every count, so any one determines all).
    let mut families: FxHashMap<(ColumnId, ColumnId), ImplicationRule> = FxHashMap::default();
    for r in &canonical {
        if r.hits == r.lhs_ones {
            continue;
        }
        let key = unordered(classes.find_root(r.lhs), classes.find_root(r.rhs));
        families
            .entry(key)
            .and_modify(|best| {
                if *r < *best {
                    *best = *r;
                }
            })
            .or_insert(*r);
    }
    base.extend(families.into_values());
    base.sort_unstable();

    let class_members = classes.members();
    let boosted = base
        .iter()
        .map(|r| BoostedImplication {
            rule: *r,
            boost: imp_boost(
                r,
                minconf,
                &ones,
                &succ,
                &classes,
                &class_members,
                &pair_hits,
            ),
        })
        .collect();
    (boosted, saw_reverse)
}

/// `conf(r) / max(minconf, best generalization confidence)`.
#[allow(clippy::too_many_arguments)]
fn imp_boost(
    r: &ImplicationRule,
    minconf: f64,
    ones: &FxHashMap<ColumnId, u32>,
    succ: &FxHashMap<ColumnId, Vec<ColumnId>>,
    classes: &MinIdUnionFind,
    class_members: &FxHashMap<ColumnId, Vec<ColumnId>>,
    pair_hits: &FxHashMap<(ColumnId, ColumnId), u32>,
) -> f64 {
    let conf = f64::from(r.hits) / f64::from(r.lhs_ones);
    let mut denom = minconf;
    // Generalizations of the antecedent: supersets via the (transitively
    // closed) 100%-rule successors, plus equal-set class mates.
    let empty: Vec<ColumnId> = Vec::new();
    let supersets = succ.get(&r.lhs).unwrap_or(&empty);
    let mates = class_of(class_members, classes, r.lhs);
    for &a in supersets.iter().chain(mates.iter()) {
        if a == r.lhs || a == r.rhs {
            continue;
        }
        if let Some(&h) = pair_hits.get(&unordered(a, r.rhs)) {
            let c = f64::from(h) / f64::from(ones[&a]);
            if c > denom {
                denom = c;
            }
        }
    }
    conf / denom
}

/// Compacts similarity rules: equal-set classes become id-ordered chains,
/// sub-1.0 rules one representative per class family.
fn compact_sim_rules(rules: &[SimilarityRule], minsim: f64) -> Vec<BoostedSimilarity> {
    let mut classes = MinIdUnionFind::default();
    let mut ones: FxHashMap<ColumnId, u32> = FxHashMap::default();
    for r in rules {
        debug_assert_ne!(r.a, r.b, "reflexive rule in miner output");
        ones.insert(r.a, r.a_ones);
        ones.insert(r.b, r.b_ones);
        if r.hits == r.a_ones && r.hits == r.b_ones {
            classes.union(r.a, r.b);
        }
    }

    let class_members = classes.members();
    let mut base: Vec<SimilarityRule> = Vec::new();
    // Chains: consecutive id-ordered pairs within each equal-set class.
    let mut roots: Vec<ColumnId> = class_members.keys().copied().collect();
    roots.sort_unstable();
    for root in roots {
        let group = &class_members[&root];
        let o = ones[&group[0]];
        for pair in group.windows(2) {
            base.push(SimilarityRule {
                a: pair[0],
                b: pair[1],
                hits: o,
                a_ones: o,
                b_ones: o,
            });
        }
    }

    let mut families: FxHashMap<(ColumnId, ColumnId), (SimilarityRule, usize)> =
        FxHashMap::default();
    for r in rules {
        if r.hits == r.a_ones && r.hits == r.b_ones {
            continue;
        }
        let key = unordered(classes.find_root(r.a), classes.find_root(r.b));
        families
            .entry(key)
            .and_modify(|(best, n)| {
                if *r < *best {
                    *best = *r;
                }
                *n += 1;
            })
            .or_insert((*r, 1));
    }
    let mut family_sizes: FxHashMap<(ColumnId, ColumnId), usize> = FxHashMap::default();
    for (rule, n) in families.into_values() {
        family_sizes.insert(unordered(rule.a, rule.b), n);
        base.push(rule);
    }
    base.sort_unstable();

    base.iter()
        .map(|r| {
            let sim = f64::from(r.hits) / f64::from(r.a_ones + r.b_ones - r.hits);
            let family = if r.hits == r.a_ones && r.hits == r.b_ones {
                // Within-class rule: the family is every pair of the class.
                let group = class_of(&class_members, &classes, r.a);
                group.len() * (group.len() - 1) / 2
            } else {
                family_sizes[&unordered(r.a, r.b)]
            };
            // Class twins share the exact similarity, so a twinned rule has
            // no advantage (boost 1.0); a singleton is measured off the
            // minsim floor.
            let boost = if family > 1 { 1.0 } else { sim / minsim };
            BoostedSimilarity { rule: *r, boost }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp(lhs: u32, rhs: u32, hits: u32, lo: u32, ro: u32) -> ImplicationRule {
        ImplicationRule {
            lhs,
            rhs,
            hits,
            lhs_ones: lo,
            rhs_ones: ro,
        }
    }

    fn sim(a: u32, b: u32, hits: u32, ao: u32, bo: u32) -> SimilarityRule {
        SimilarityRule {
            a,
            b,
            hits,
            a_ones: ao,
            b_ones: bo,
        }
    }

    fn imp_rules_of(base: &CompactedBase) -> Vec<ImplicationRule> {
        base.implications.iter().map(|b| b.rule).collect()
    }

    fn roundtrips_imp(rules: &[ImplicationRule], minconf: f64) -> CompactedBase {
        let base = compact_implications(rules, minconf, None);
        let (expanded, _) = base.expand();
        let mut expected = rules.to_vec();
        expected.sort_unstable();
        assert_eq!(expanded, expected, "expand(compact(rules)) != rules");
        base
    }

    #[test]
    fn containment_chain_reduces_to_two_edges() {
        // S_0 ⊂ S_1 ⊂ S_2 — the implied 0 ⇒ 2 is dropped, counts restored.
        let rules = vec![
            imp(0, 1, 10, 10, 20),
            imp(0, 2, 10, 10, 40),
            imp(1, 2, 20, 20, 40),
        ];
        let base = roundtrips_imp(&rules, 1.0);
        assert_eq!(
            imp_rules_of(&base),
            vec![imp(0, 1, 10, 10, 20), imp(1, 2, 20, 20, 40)]
        );
        assert_eq!(base.rules_in(), 3);
        assert_eq!(base.rules_in_base(), 2);
        assert!((base.ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn equality_class_reduces_to_chain() {
        // S_0 = S_1 = S_2: three pairwise rules, chain base.
        let rules = vec![imp(0, 1, 5, 5, 5), imp(0, 2, 5, 5, 5), imp(1, 2, 5, 5, 5)];
        let base = roundtrips_imp(&rules, 1.0);
        assert_eq!(
            imp_rules_of(&base),
            vec![imp(0, 1, 5, 5, 5), imp(1, 2, 5, 5, 5)]
        );
    }

    #[test]
    fn class_contained_in_column_keeps_single_bridge() {
        // {0, 1} equal sets, both ⊂ S_5. Base: equality edge + one bridge.
        let rules = vec![
            imp(0, 1, 10, 10, 10),
            imp(0, 5, 10, 10, 30),
            imp(1, 5, 10, 10, 30),
        ];
        let base = roundtrips_imp(&rules, 1.0);
        assert_eq!(base.rules_in_base(), 2);
    }

    #[test]
    fn sub_rule_families_deduplicate_across_classes() {
        // {0, 1} equal sets; both imply column 5 at conf 0.9.
        let rules = vec![
            imp(0, 1, 10, 10, 10),
            imp(0, 5, 9, 10, 30),
            imp(1, 5, 9, 10, 30),
        ];
        let base = roundtrips_imp(&rules, 0.9);
        assert_eq!(
            imp_rules_of(&base),
            vec![imp(0, 1, 10, 10, 10), imp(0, 5, 9, 10, 30)]
        );
    }

    #[test]
    fn equal_ones_cross_class_family_uses_unordered_key() {
        // Classes {1, 4} and {2, 3}, all four columns with 10 ones: the
        // canonical lhs flips between classes depending on ids, so the
        // family key must be unordered to avoid double re-materialization.
        let rules = vec![
            imp(1, 4, 10, 10, 10),
            imp(2, 3, 10, 10, 10),
            imp(1, 2, 6, 10, 10),
            imp(1, 3, 6, 10, 10),
            imp(2, 4, 6, 10, 10),
            imp(3, 4, 6, 10, 10),
        ];
        let base = roundtrips_imp(&rules, 0.6);
        assert_eq!(base.rules_in_base(), 3);
    }

    #[test]
    fn reverse_rules_are_inferred_and_rebuilt() {
        let forward = imp(0, 1, 9, 10, 40);
        let mut rules = vec![forward];
        // conf(1 ⇒ 0) = 9/40 ≥ 0.2, so a reverse mine emits it.
        rules.push(forward.reversed());
        rules.sort_unstable();
        let base = compact_implications(&rules, 0.2, None);
        assert!(base.emit_reverse, "reverse presence must be inferred");
        assert_eq!(base.rules_in_base(), 1);
        let (expanded, _) = base.expand();
        assert_eq!(expanded, rules);
    }

    #[test]
    fn emit_reverse_flag_is_harmless_when_nothing_qualifies() {
        // conf(1 ⇒ 0) = 1/40 < 0.9: the reverse mine emitted nothing, so
        // expansion is identical whether or not the flag is set.
        let rules = vec![imp(0, 1, 9, 10, 40)];
        let with_flag = compact_implications(&rules, 0.9, Some(true));
        let without = compact_implications(&rules, 0.9, Some(false));
        assert_eq!(with_flag.expand(), without.expand());
    }

    #[test]
    fn implied_reverse_of_closure_rule_requalifies() {
        // Equal sets {0, 1, 2}: every implied rule has conf 1.0 in both
        // directions, so a reverse mine emits all six rules; the base is
        // still just the two chain edges.
        let mut rules = vec![imp(0, 1, 5, 5, 5), imp(0, 2, 5, 5, 5), imp(1, 2, 5, 5, 5)];
        let reversed: Vec<ImplicationRule> = rules.iter().map(|r| r.reversed()).collect();
        rules.extend(reversed);
        rules.sort_unstable();
        let base = compact_implications(&rules, 1.0, None);
        assert_eq!(base.rules_in_base(), 2);
        let (expanded, _) = base.expand();
        assert_eq!(expanded, rules);
    }

    #[test]
    fn boost_measures_advantage_over_generalizations() {
        // S_0 ⊂ S_1; both imply column 9: conf(0 ⇒ 9) = 0.9 is *dominated*
        // by its generalization conf(1 ⇒ 9) = 0.95.
        let rules = vec![
            imp(0, 1, 10, 10, 20),
            imp(0, 9, 9, 10, 100),
            imp(1, 9, 19, 20, 100),
        ];
        let base = roundtrips_imp(&rules, 0.85);
        let boost_of = |lhs: u32, rhs: u32| {
            base.implications
                .iter()
                .find(|b| b.rule.lhs == lhs && b.rule.rhs == rhs)
                .expect("rule in base")
                .boost
        };
        assert!((boost_of(0, 9) - 0.9 / 0.95).abs() < 1e-12);
        // 1 ⇒ 9 has no known generalization: floored at minconf.
        assert!((boost_of(1, 9) - 0.95 / 0.85).abs() < 1e-12);
        // The 100% rule's reverse pair conf(1 ⇒ 0) = 10/20 is below the
        // floor; boost = 1.0 / 0.85.
        assert!((boost_of(0, 1) - 1.0 / 0.85).abs() < 1e-12);
    }

    #[test]
    fn min_boost_filtering_is_monotone() {
        let rules = vec![
            imp(0, 1, 10, 10, 20),
            imp(0, 9, 9, 10, 100),
            imp(1, 9, 19, 20, 100),
        ];
        let base = compact_implications(&rules, 0.85, None);
        let mut previous = usize::MAX;
        for step in 0..20 {
            let config = CompactionConfig::default().with_min_boost(0.1 * f64::from(step));
            let (imps, _) = base.select(&config);
            assert!(imps.len() <= previous, "raising min_boost must only remove");
            previous = imps.len();
        }
        // Exact-threshold rules survive the epsilon guard.
        let exact = CompactionConfig::default().with_min_boost(0.9 / 0.95);
        let (imps, _) = base.select(&exact);
        assert!(imps.iter().any(|b| b.rule == imp(0, 9, 9, 10, 100)));
    }

    #[test]
    fn top_k_keeps_highest_boost_in_rule_order() {
        let rules = vec![
            imp(0, 1, 10, 10, 20),
            imp(0, 9, 9, 10, 100),
            imp(1, 9, 19, 20, 100),
        ];
        let base = compact_implications(&rules, 0.85, None);
        let (top2, _) = base.select(&CompactionConfig::default().with_top_k(2));
        // Dominated 0 ⇒ 9 (boost < 1) drops first; survivors in rule order.
        assert_eq!(
            top2.iter().map(|b| b.rule).collect::<Vec<_>>(),
            vec![imp(0, 1, 10, 10, 20), imp(1, 9, 19, 20, 100)]
        );
        let (top0, _) = base.select(&CompactionConfig::default().with_top_k(0));
        assert!(top0.is_empty());
    }

    #[test]
    fn sim_classes_chain_and_families_deduplicate() {
        // Class {0, 1, 2} (equal sets), column 7 similar to all of them.
        let rules = vec![
            sim(0, 1, 8, 8, 8),
            sim(0, 2, 8, 8, 8),
            sim(1, 2, 8, 8, 8),
            sim(0, 7, 7, 8, 9),
            sim(1, 7, 7, 8, 9),
            sim(2, 7, 7, 8, 9),
        ];
        let base = compact_similarities(&rules, 0.6);
        let base_rules: Vec<SimilarityRule> = base.similarities.iter().map(|b| b.rule).collect();
        assert_eq!(
            base_rules,
            vec![sim(0, 1, 8, 8, 8), sim(0, 7, 7, 8, 9), sim(1, 2, 8, 8, 8)]
        );
        let (_, expanded) = base.expand();
        let mut expected = rules.clone();
        expected.sort_unstable();
        assert_eq!(expanded, expected);
        // Twinned rules carry no boost; chain edges of a ≥3 class neither.
        for b in &base.similarities {
            assert!((b.boost - 1.0).abs() < 1e-12, "twinned rule boost 1.0");
        }
    }

    #[test]
    fn singleton_sim_rule_boost_is_floored_at_minsim() {
        let rules = vec![sim(0, 7, 7, 8, 9)];
        let base = compact_similarities(&rules, 0.6);
        let s = 7.0 / 10.0;
        assert!((base.similarities[0].boost - s / 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_cover_the_line() {
        assert_eq!(boost_bucket(0.3), 0);
        assert_eq!(boost_bucket(1.0), 1);
        assert_eq!(boost_bucket(1.049), 1);
        assert_eq!(boost_bucket(1.05), 2);
        assert_eq!(boost_bucket(1.3), 3);
        assert_eq!(boost_bucket(2.0), 4);
        assert_eq!(boost_bucket(100.0), 5);
    }

    #[test]
    fn report_section_reconciles_with_base() {
        let rules = vec![
            imp(0, 1, 10, 10, 20),
            imp(0, 2, 10, 10, 40),
            imp(1, 2, 20, 20, 40),
        ];
        let base = compact_implications(&rules, 1.0, None);
        let report = base.report();
        assert_eq!(report.rules_in, 3);
        assert_eq!(report.rules_in_base, 2);
        assert_eq!(report.boost_hist.iter().sum::<u64>(), 2);
        assert!((report.ratio - base.ratio()).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_a_fixed_point() {
        let base = compact(&[], &[], 0.9, 0.9, None);
        assert_eq!(base.rules_in(), 0);
        assert_eq!(base.rules_in_base(), 0);
        assert!((base.ratio() - 1.0).abs() < 1e-12);
        assert_eq!(base.expand(), (Vec::new(), Vec::new()));
    }

    #[test]
    fn base_of_a_base_is_itself() {
        let rules = vec![
            imp(0, 1, 10, 10, 20),
            imp(0, 2, 10, 10, 40),
            imp(1, 2, 20, 20, 40),
            imp(0, 9, 9, 10, 100),
        ];
        let base = compact_implications(&rules, 0.9, None);
        let again = compact_implications(&imp_rules_of(&base), 0.9, None);
        assert_eq!(imp_rules_of(&again), imp_rules_of(&base));
    }

    #[test]
    fn from_base_rules_expands_like_the_original() {
        let forward = imp(0, 1, 9, 10, 40);
        let mut rules = vec![forward, forward.reversed()];
        rules.sort_unstable();
        let base = compact_implications(&rules, 0.2, None);
        let reread = CompactedBase::from_base_rules(
            imp_rules_of(&base),
            Vec::new(),
            0.2,
            1.0,
            base.emit_reverse,
        );
        assert_eq!(reread.expand(), base.expand());
    }
}
