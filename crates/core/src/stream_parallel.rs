//! Parallel out-of-core mining: the §4.1 spill replay fanned out to
//! LHS-partitioned workers.
//!
//! Pass 1 is the same prescan as the sequential streamed drivers
//! (normalize rows, count per-column 1s, spill into density buckets). The
//! spill is then sealed into a [`dmc_matrix::spill::SharedSpill`] and each
//! counting stage replays it on a dedicated reader thread that **decodes
//! every row exactly once**, batching rows for broadcast to the workers
//! (`crate::fanout`). Workers own round-robin LHS-column partitions and
//! apply the §4.2 bitmap-switch policy to their own counter arrays; the
//! deterministic merge keeps the output bit-identical to
//! [`crate::find_implications_streamed`] /
//! [`crate::find_similarities_streamed`] for any thread count.
//!
//! Memory stays `O(columns + candidates)` per worker plus the bounded
//! batch queues — independent of the row count, as in the sequential
//! streamed drivers.

use crate::config::{ImplicationConfig, SimilarityConfig};
use crate::fanout::{parallel_imp_pipeline, parallel_sim_pipeline, RunContext};
use crate::imp::ImplicationOutput;
use crate::sim::SimilarityOutput;
use crate::stream::{prescan, StreamError};
use dmc_matrix::ColumnId;
use dmc_metrics::PhaseTimer;

/// Streaming DMC-imp over a fallible row iterator with `threads` workers.
///
/// Output is identical to [`crate::find_implications_streamed`] (and, by
/// extension, to the in-memory drivers under bucketed sparsest-first
/// order).
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::implications(minconf).threads(n).run_streamed(rows, n_cols)`).
///
/// # Errors
///
/// Fails on source errors, spill IO errors, or out-of-range column ids.
/// Spill files are cleaned up on every path.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn find_implications_streamed_parallel<I, E>(
    rows: I,
    n_cols: usize,
    config: &ImplicationConfig,
    threads: usize,
) -> Result<ImplicationOutput, StreamError<E>>
where
    I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
    E: Send,
{
    assert!(threads > 0, "need at least one worker");
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, spill) = {
        let _g = timer.enter("pre-scan");
        prescan(rows, n_cols, &config.spill)?
    };
    let total_rows = spill.rows();
    let shared = spill.share()?;
    parallel_imp_pipeline(
        n_cols,
        &ones,
        total_rows,
        config,
        RunContext {
            threads,
            mode: "streamed",
            spill_bytes: shared.bytes(),
            stats: Some(shared.stats()),
            started,
        },
        timer,
        || Ok(shared.replay().map(|r| r.map_err(StreamError::from))),
    )
}

/// Streaming DMC-sim over a fallible row iterator with `threads` workers
/// (see [`find_implications_streamed_parallel`]).
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::similarities(minsim).threads(n).run_streamed(rows, n_cols)`).
///
/// # Errors
///
/// Fails on source errors, spill IO errors, or out-of-range column ids.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn find_similarities_streamed_parallel<I, E>(
    rows: I,
    n_cols: usize,
    config: &SimilarityConfig,
    threads: usize,
) -> Result<SimilarityOutput, StreamError<E>>
where
    I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
    E: Send,
{
    assert!(threads > 0, "need at least one worker");
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, spill) = {
        let _g = timer.enter("pre-scan");
        prescan(rows, n_cols, &config.spill)?
    };
    let total_rows = spill.rows();
    let shared = spill.share()?;
    parallel_sim_pipeline(
        n_cols,
        &ones,
        total_rows,
        config,
        RunContext {
            threads,
            mode: "streamed",
            spill_bytes: shared.bytes(),
            stats: Some(shared.stats()),
            started,
        },
        timer,
        || Ok(shared.replay().map(|r| r.map_err(StreamError::from))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{find_implications_streamed, find_similarities_streamed};
    use crate::{SparseMatrix, SwitchPolicy};
    use std::convert::Infallible;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    fn rows_of(m: &SparseMatrix) -> Vec<Result<Vec<ColumnId>, Infallible>> {
        m.rows().map(|r| Ok(r.to_vec())).collect()
    }

    #[test]
    fn matches_sequential_streamed_imp() {
        let m = fig2();
        for &minconf in &[1.0, 0.8, 0.5] {
            let cfg = ImplicationConfig::new(minconf);
            let seq = find_implications_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
            for threads in [1, 2, 3, 8] {
                let par =
                    find_implications_streamed_parallel(rows_of(&m), m.n_cols(), &cfg, threads)
                        .unwrap();
                assert_eq!(par.rules, seq.rules, "minconf={minconf} threads={threads}");
                assert_eq!(par.workers.len(), threads);
            }
        }
    }

    #[test]
    fn matches_sequential_streamed_sim() {
        let m = fig2();
        for &minsim in &[1.0, 0.75, 0.4] {
            let cfg = SimilarityConfig::new(minsim);
            let seq = find_similarities_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
            for threads in [1, 2, 3, 8] {
                let par =
                    find_similarities_streamed_parallel(rows_of(&m), m.n_cols(), &cfg, threads)
                        .unwrap();
                assert_eq!(par.rules, seq.rules, "minsim={minsim} threads={threads}");
            }
        }
    }

    #[test]
    fn forced_switch_matches_and_reports_positions() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8).with_switch(SwitchPolicy::always_at(3));
        let seq = find_implications_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
        for threads in [1, 2, 4] {
            let par = find_implications_streamed_parallel(rows_of(&m), m.n_cols(), &cfg, threads)
                .unwrap();
            assert_eq!(par.rules, seq.rules, "threads={threads}");
            assert!(par.workers.iter().all(|w| w.switch_at.is_some()));
            if threads == 1 {
                assert_eq!(par.bitmap_switch_at, seq.bitmap_switch_at);
            }
        }
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let rows: Vec<Result<Vec<ColumnId>, Infallible>> = vec![Ok(vec![0, 9])];
        let err = find_implications_streamed_parallel(rows, 3, &ImplicationConfig::new(1.0), 2)
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::ColumnOutOfRange { row: 0, id: 9 }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let rows: Vec<Result<Vec<ColumnId>, Infallible>> = vec![Ok(vec![0])];
        let _ = find_implications_streamed_parallel(rows, 1, &ImplicationConfig::new(1.0), 0);
    }
}
