//! Parallel out-of-core mining: the §4.1 spill replay driven through the
//! work-assisting block scheduler.
//!
//! Pass 1 is the same prescan as the sequential streamed drivers
//! (normalize rows, count per-column 1s, spill into density buckets). The
//! spill is then sealed into a [`dmc_matrix::spill::SharedSpill`] and each
//! counting stage replays it on the calling thread, which **decodes every
//! row exactly once** and publishes fixed-size row blocks to the
//! scheduler (`crate::fanout`). Workers claim blocks from a shared
//! cursor, aggregate them into per-block bitmaps, and fold them into the
//! single shared scan in global block order — so the output is
//! bit-identical to [`crate::find_implications_streamed`] /
//! [`crate::find_similarities_streamed`] at any thread count, and the
//! §4.2 bitmap switch fires at one global, block-aligned position.
//!
//! Memory stays `O(columns + candidates)` for the shared scan plus the
//! bounded block ring — independent of the row count, as in the
//! sequential streamed drivers.

use crate::config::{ImplicationConfig, SimilarityConfig};
use crate::fanout::{parallel_imp_pipeline, parallel_sim_pipeline, RunContext};
use crate::imp::ImplicationOutput;
use crate::sim::SimilarityOutput;
use crate::stream::{prescan, StreamError};
use dmc_matrix::ColumnId;
use dmc_metrics::PhaseTimer;

/// Streaming DMC-imp over a fallible row iterator with `threads` workers.
///
/// Output is identical to [`crate::find_implications_streamed`] (and, by
/// extension, to the in-memory drivers under bucketed sparsest-first
/// order).
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::implications(minconf).threads(n).mine_streamed(rows, n_cols)`).
///
/// # Errors
///
/// Fails on source errors, spill IO errors, or out-of-range column ids.
/// Spill files are cleaned up on every path. `threads == 0` is clamped to
/// one worker.
pub fn find_implications_streamed_parallel<I, E>(
    rows: I,
    n_cols: usize,
    config: &ImplicationConfig,
    threads: usize,
) -> Result<ImplicationOutput, StreamError<E>>
where
    I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
    E: Send,
{
    let threads = threads.max(1);
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, spill) = {
        let _g = timer.enter("pre-scan");
        prescan(rows, n_cols, &config.spill)?
    };
    let total_rows = spill.rows();
    let shared = spill.share()?;
    parallel_imp_pipeline(
        n_cols,
        &ones,
        total_rows,
        config,
        RunContext {
            threads,
            mode: "streamed",
            spill_bytes: shared.bytes(),
            stats: Some(shared.stats()),
            started,
        },
        timer,
        || Ok(shared.replay().map(|r| r.map_err(StreamError::from))),
    )
}

/// Streaming DMC-sim over a fallible row iterator with `threads` workers
/// (see [`find_implications_streamed_parallel`]).
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::similarities(minsim).threads(n).mine_streamed(rows, n_cols)`).
///
/// # Errors
///
/// Fails on source errors, spill IO errors, or out-of-range column ids.
/// `threads == 0` is clamped to one worker.
pub fn find_similarities_streamed_parallel<I, E>(
    rows: I,
    n_cols: usize,
    config: &SimilarityConfig,
    threads: usize,
) -> Result<SimilarityOutput, StreamError<E>>
where
    I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
    E: Send,
{
    let threads = threads.max(1);
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, spill) = {
        let _g = timer.enter("pre-scan");
        prescan(rows, n_cols, &config.spill)?
    };
    let total_rows = spill.rows();
    let shared = spill.share()?;
    parallel_sim_pipeline(
        n_cols,
        &ones,
        total_rows,
        config,
        RunContext {
            threads,
            mode: "streamed",
            spill_bytes: shared.bytes(),
            stats: Some(shared.stats()),
            started,
        },
        timer,
        || Ok(shared.replay().map(|r| r.map_err(StreamError::from))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{find_implications_streamed, find_similarities_streamed};
    use crate::{SparseMatrix, SwitchPolicy};
    use std::convert::Infallible;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    fn rows_of(m: &SparseMatrix) -> Vec<Result<Vec<ColumnId>, Infallible>> {
        m.rows().map(|r| Ok(r.to_vec())).collect()
    }

    #[test]
    fn matches_sequential_streamed_imp() {
        let m = fig2();
        for &minconf in &[1.0, 0.8, 0.5] {
            let cfg = ImplicationConfig::new(minconf);
            let seq = find_implications_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
            for threads in [1, 2, 3, 8] {
                let par =
                    find_implications_streamed_parallel(rows_of(&m), m.n_cols(), &cfg, threads)
                        .unwrap();
                assert_eq!(par.rules, seq.rules, "minconf={minconf} threads={threads}");
                assert_eq!(par.workers.len(), threads);
            }
        }
    }

    #[test]
    fn matches_sequential_streamed_sim() {
        let m = fig2();
        for &minsim in &[1.0, 0.75, 0.4] {
            let cfg = SimilarityConfig::new(minsim);
            let seq = find_similarities_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
            for threads in [1, 2, 3, 8] {
                let par =
                    find_similarities_streamed_parallel(rows_of(&m), m.n_cols(), &cfg, threads)
                        .unwrap();
                assert_eq!(par.rules, seq.rules, "minsim={minsim} threads={threads}");
            }
        }
    }

    #[test]
    fn forced_switch_matches_and_reports_global_position() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8)
            .with_switch(SwitchPolicy::always_at(3))
            .with_block_rows(2);
        let block = crate::fanout::effective_block_rows(cfg.block_rows);
        let seq = find_implications_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
        for threads in [1, 2, 4] {
            let par = find_implications_streamed_parallel(rows_of(&m), m.n_cols(), &cfg, threads)
                .unwrap();
            assert_eq!(par.rules, seq.rules, "threads={threads}");
            // One global, block-aligned switch position, same at every
            // thread count; workers never switch independently.
            let at = par.bitmap_switch_at.expect("always_at(3) must fire");
            assert_eq!(at % block, 0, "switch is block-aligned");
            assert!(m.n_rows() - at <= 3 || at == 0);
            assert!(par.workers.iter().all(|w| w.switch_at.is_none()));
        }
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let rows: Vec<Result<Vec<ColumnId>, Infallible>> = vec![Ok(vec![0, 9])];
        let err = find_implications_streamed_parallel(rows, 3, &ImplicationConfig::new(1.0), 2)
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::ColumnOutOfRange { row: 0, id: 9 }
        ));
    }

    #[test]
    fn zero_threads_clamped_to_one_worker() {
        let rows: Vec<Result<Vec<ColumnId>, Infallible>> = vec![Ok(vec![0])];
        let out =
            find_implications_streamed_parallel(rows, 1, &ImplicationConfig::new(1.0), 0).unwrap();
        assert_eq!(out.workers.len(), 1, "threads=0 clamps to one worker");
    }
}
