//! Out-of-core mining: two passes over a row *stream*, never holding the
//! matrix in memory.
//!
//! This is the workflow the paper actually ran: the corpora live on disk,
//! the first scan counts per-column 1s and partitions rows into density
//! bucket files (§4.1), and the second scan replays the buckets sparsest
//! first. Memory holds only the counter array (and the bitmap tail when
//! the §4.2 switch fires) — `O(columns + candidates)`, independent of the
//! row count.
//!
//! [`find_implications_streamed`] / [`find_similarities_streamed`] accept
//! any fallible row iterator (e.g. `dmc_matrix::io::RowLines` over a file)
//! and spill to a [`BucketSpill`] in the system temp directory. The scan
//! order is always the paper's bucketed sparsest-first (that is what the
//! spill files encode); other [`crate::RowOrder`]s require an in-memory
//! matrix.

use crate::base::BaseScan;
use crate::bitmap::finish_with_bitmaps;
use crate::config::{ImplicationConfig, SimilarityConfig};
use crate::hundred::{HundredMode, HundredScan};
use crate::imp::ImplicationOutput;
use crate::sim::{SimScan, SimilarityOutput};
use crate::threshold::{conf_qualifies, only_exact_rules_conf, only_exact_rules_sim};
use dmc_matrix::spill::{BucketSpill, SpillReadError};
use dmc_matrix::spill_io::{SpillIoSnapshot, SpillSettings};
use dmc_matrix::ColumnId;
use dmc_metrics::{CounterMemory, IoReport, PhaseTimer, ReportBuilder, StageReport};
use std::io;

/// Errors from the streaming drivers.
#[derive(Debug)]
pub enum StreamError<E> {
    /// The caller's row source failed.
    Source(E),
    /// Spill-file IO failed (after any transient-fault retries). The
    /// original [`io::ErrorKind`] and the spill operation that hit it are
    /// both preserved, so callers can classify the failure.
    Io {
        /// What the spill was doing ("spill io", "open spill bucket",
        /// "read spill frame").
        context: &'static str,
        /// The underlying error, kind intact.
        error: io::Error,
    },
    /// A spill frame failed its integrity checks (torn write, truncation,
    /// bit rot): the run aborts rather than decode garbage rows.
    CorruptSpill {
        /// 0-based index of the offending frame in replay order.
        frame: u64,
        /// Which guard tripped (e.g. "checksum mismatch").
        reason: &'static str,
    },
    /// A row contained an id `>= n_cols`; payload is (row index, id).
    ColumnOutOfRange { row: usize, id: ColumnId },
}

impl<E> StreamError<E> {
    /// The underlying [`io::ErrorKind`], for I/O failures.
    #[must_use]
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            StreamError::Io { error, .. } => Some(error.kind()),
            _ => None,
        }
    }
}

impl<E: std::fmt::Display> std::fmt::Display for StreamError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Source(e) => write!(f, "row source error: {e}"),
            StreamError::Io { context, error } => {
                write!(f, "spill io error ({context}): {error}")
            }
            StreamError::CorruptSpill { frame, reason } => {
                write!(f, "corrupt spill frame {frame}: {reason}")
            }
            StreamError::ColumnOutOfRange { row, id } => {
                write!(f, "row {row}: column id {id} out of range")
            }
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for StreamError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Source(e) => Some(e),
            StreamError::Io { error, .. } => Some(error),
            StreamError::CorruptSpill { .. } | StreamError::ColumnOutOfRange { .. } => None,
        }
    }
}

impl<E> From<io::Error> for StreamError<E> {
    fn from(error: io::Error) -> Self {
        StreamError::Io {
            context: "spill io",
            error,
        }
    }
}

impl<E> From<SpillReadError> for StreamError<E> {
    fn from(e: SpillReadError) -> Self {
        match e {
            SpillReadError::Io { context, error } => StreamError::Io { context, error },
            SpillReadError::Corrupt { frame, reason } => {
                StreamError::CorruptSpill { frame, reason }
            }
        }
    }
}

/// Converts a spill stats snapshot into the report's `io` section.
pub(crate) fn io_report(snap: SpillIoSnapshot) -> IoReport {
    IoReport {
        frames_written: snap.frames_written,
        frames_read: snap.frames_read,
        replays: snap.replays,
        write_retries: snap.write_retries,
        read_retries: snap.read_retries,
        corrupt_frames: snap.corrupt_frames,
    }
}

/// Pass 1: count column 1s and spill normalized rows into density buckets.
pub(crate) fn prescan<I, E>(
    rows: I,
    n_cols: usize,
    settings: &SpillSettings,
) -> Result<(Vec<u32>, BucketSpill), StreamError<E>>
where
    I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
{
    let mut spill = BucketSpill::with_settings(n_cols, settings.clone())?;
    let mut ones = vec![0u32; n_cols];
    for (idx, row) in rows.into_iter().enumerate() {
        let mut row = row.map_err(StreamError::Source)?;
        row.sort_unstable();
        row.dedup();
        if let Some(&max) = row.last() {
            if max as usize >= n_cols {
                return Err(StreamError::ColumnOutOfRange { row: idx, id: max });
            }
        }
        for &c in &row {
            ones[c as usize] += 1;
        }
        spill.push_row(&row)?;
    }
    Ok((ones, spill))
}

/// One scan's hooks for the spill replay: the switch policy reads the
/// counter footprint, rows feed the scan, and the tail finishes it. Shared
/// by the sequential replay below and the parallel block scheduler
/// (`crate::fanout`), which additionally folds pre-aggregated row blocks
/// through [`ReplayHandler::apply_block`] and partitions the scan's tally
/// into per-worker credits via [`ReplayHandler::tally`] snapshots.
pub(crate) trait ReplayHandler {
    fn counter_bytes(&self) -> usize;
    fn row(&mut self, row: &[ColumnId]);
    fn tail(&mut self, tail: &[&[ColumnId]]);
    /// Applies one block of rows plus its column bitmaps, producing the
    /// same state as feeding the rows through [`ReplayHandler::row`].
    fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &dmc_bitset::BitMatrix);
    /// Snapshot of the scan's event counters.
    fn tally(&self) -> dmc_metrics::ScanTally;
}

/// Replays the spill through a [`ReplayHandler`], honoring the switch
/// policy. Returns the switch position, if any.
fn replay_with_switch<E, H: ReplayHandler>(
    spill: &mut BucketSpill,
    total_rows: usize,
    switch: crate::config::SwitchPolicy,
    handler: &mut H,
) -> Result<Option<usize>, StreamError<E>> {
    let mut replay = spill.replay()?;
    let mut pos = 0usize;
    loop {
        let remaining = total_rows - pos;
        if switch.should_switch(remaining, handler.counter_bytes()) {
            // Materialize the tail (bounded by the policy's max_tail_rows).
            let mut tail_rows: Vec<Vec<ColumnId>> = Vec::with_capacity(remaining);
            for row in replay {
                tail_rows.push(row?);
            }
            let tail: Vec<&[ColumnId]> = tail_rows.iter().map(Vec::as_slice).collect();
            handler.tail(&tail);
            return Ok(Some(pos));
        }
        match replay.next() {
            Some(row) => {
                handler.row(&row?);
                pos += 1;
            }
            None => {
                handler.tail(&[]);
                return Ok(None);
            }
        }
    }
}

impl ReplayHandler for HundredScan {
    fn counter_bytes(&self) -> usize {
        self.memory().current_bytes()
    }
    fn row(&mut self, row: &[ColumnId]) {
        self.process_row(row);
    }
    fn tail(&mut self, tail: &[&[ColumnId]]) {
        self.finish_with_bitmaps(tail);
    }
    fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &dmc_bitset::BitMatrix) {
        self.apply_block(rows, bm);
    }
    fn tally(&self) -> dmc_metrics::ScanTally {
        self.tally()
    }
}

impl ReplayHandler for BaseScan {
    fn counter_bytes(&self) -> usize {
        self.memory().current_bytes()
    }
    fn row(&mut self, row: &[ColumnId]) {
        self.process_row(row);
    }
    fn tail(&mut self, tail: &[&[ColumnId]]) {
        finish_with_bitmaps(self, tail);
    }
    fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &dmc_bitset::BitMatrix) {
        self.apply_block(rows, bm);
    }
    fn tally(&self) -> dmc_metrics::ScanTally {
        self.tally()
    }
}

impl ReplayHandler for SimScan {
    fn counter_bytes(&self) -> usize {
        self.memory_bytes()
    }
    fn row(&mut self, row: &[ColumnId]) {
        self.process_row(row);
    }
    fn tail(&mut self, tail: &[&[ColumnId]]) {
        self.finish_with_bitmaps(tail);
    }
    fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &dmc_bitset::BitMatrix) {
        self.apply_block(rows, bm);
    }
    fn tally(&self) -> dmc_metrics::ScanTally {
        self.tally()
    }
}

/// Streaming DMC-imp over a fallible row iterator.
///
/// Equivalent to [`crate::find_implications`] with
/// `RowOrder::BucketedSparsestFirst` (the config's `row_order` is ignored —
/// the spill files *are* the bucket order).
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::implications(minconf).mine_streamed(rows, n_cols)`).
///
/// # Errors
///
/// Fails on source errors, spill IO errors, or out-of-range column ids.
pub fn find_implications_streamed<I, E>(
    rows: I,
    n_cols: usize,
    config: &ImplicationConfig,
) -> Result<ImplicationOutput, StreamError<E>>
where
    I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
{
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, mut spill) = {
        let _g = timer.enter("pre-scan");
        prescan(rows, n_cols, &config.spill)?
    };
    let total_rows = spill.rows();
    let mut report = ReportBuilder::new("implication", "streamed", 0, config.minconf);
    report.dims(total_rows, n_cols);
    report.spill_bytes(spill.bytes());

    let mut rules = Vec::new();
    let mut memory = CounterMemory::new();
    let mut bitmap_switch_at = None;

    if config.hundred_stage || config.minconf >= 1.0 {
        let _g = timer.enter("100% rules");
        let mut scan = HundredScan::new(n_cols, HundredMode::Implication, ones.clone());
        replay_with_switch(&mut spill, total_rows, config.switch, &mut scan)?;
        let tally = scan.tally();
        let (imp, _, mem) = scan.into_parts();
        report.hundred_stage(StageReport::new(
            tally,
            imp.len() as u64,
            mem.peak_candidates(),
        ));
        rules.extend(imp);
        memory.absorb_peak(&mem);
    }

    if config.minconf < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_conf(u64::from(o), config.minconf))
                    .collect(),
            )
        } else {
            None
        };
        let mut scan = BaseScan::new(
            n_cols,
            config.minconf,
            ones,
            active,
            config.release_completed,
            false,
        );
        {
            let _g = timer.enter("<100% rules");
            bitmap_switch_at =
                replay_with_switch(&mut spill, total_rows, config.switch, &mut scan)?;
        }
        let tally = scan.tally();
        let (stage_rules, mem) = scan.into_parts();
        let before = rules.len();
        if config.hundred_stage {
            rules.extend(stage_rules.into_iter().filter(|r| r.misses() > 0));
        } else {
            rules.extend(stage_rules);
        }
        report.sub_stage(StageReport::new(
            tally,
            (rules.len() - before) as u64,
            mem.peak_candidates(),
        ));
        memory.absorb_peak(&mem);
    }

    if config.emit_reverse {
        let reversed: Vec<_> = rules
            .iter()
            .filter(|r| conf_qualifies(u64::from(r.hits), u64::from(r.rhs_ones), config.minconf))
            .map(|r| r.reversed())
            .collect();
        report.reverse_rules(reversed.len() as u64);
        rules.extend(reversed);
    }
    rules.sort_unstable();
    rules.dedup();
    let phases = timer.report();
    report.io_counters(io_report(spill.stats().snapshot()));
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    Ok(ImplicationOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers: Vec::new(),
        report,
    })
}

/// Streaming DMC-sim over a fallible row iterator (see
/// [`find_implications_streamed`]).
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::similarities(minsim).mine_streamed(rows, n_cols)`).
///
/// # Errors
///
/// Fails on source errors, spill IO errors, or out-of-range column ids.
pub fn find_similarities_streamed<I, E>(
    rows: I,
    n_cols: usize,
    config: &SimilarityConfig,
) -> Result<SimilarityOutput, StreamError<E>>
where
    I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
{
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, mut spill) = {
        let _g = timer.enter("pre-scan");
        prescan(rows, n_cols, &config.spill)?
    };
    let total_rows = spill.rows();
    let mut report = ReportBuilder::new("similarity", "streamed", 0, config.minsim);
    report.dims(total_rows, n_cols);
    report.spill_bytes(spill.bytes());

    let mut rules = Vec::new();
    let mut memory = CounterMemory::new();
    let mut bitmap_switch_at = None;

    if config.hundred_stage || config.minsim >= 1.0 {
        let _g = timer.enter("100% rules");
        let mut scan = HundredScan::new(n_cols, HundredMode::Identical, ones.clone());
        replay_with_switch(&mut spill, total_rows, config.switch, &mut scan)?;
        let tally = scan.tally();
        let (_, sims, mem) = scan.into_parts();
        report.hundred_stage(StageReport::new(
            tally,
            sims.len() as u64,
            mem.peak_candidates(),
        ));
        rules.extend(sims);
        memory.absorb_peak(&mem);
    }

    if config.minsim < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_sim(u64::from(o), config.minsim))
                    .collect(),
            )
        } else {
            None
        };
        let mut scan = SimScan::new(n_cols, config, ones, active);
        {
            let _g = timer.enter("<100% rules");
            bitmap_switch_at =
                replay_with_switch(&mut spill, total_rows, config.switch, &mut scan)?;
        }
        let tally = scan.tally();
        let (stage_rules, mem) = scan.into_parts();
        let before = rules.len();
        if config.hundred_stage {
            rules.extend(stage_rules.into_iter().filter(|r| r.hits < r.union()));
        } else {
            rules.extend(stage_rules);
        }
        report.sub_stage(StageReport::new(
            tally,
            (rules.len() - before) as u64,
            mem.peak_candidates(),
        ));
        memory.absorb_peak(&mem);
    }

    rules.sort_unstable();
    rules.dedup();
    let phases = timer.report();
    report.io_counters(io_report(spill.stats().snapshot()));
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    Ok(SimilarityOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers: Vec::new(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_implications, find_similarities, SparseMatrix, SwitchPolicy};
    use dmc_matrix::order::RowOrder;
    use std::convert::Infallible;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    fn rows_of(m: &SparseMatrix) -> Vec<Result<Vec<ColumnId>, Infallible>> {
        m.rows().map(|r| Ok(r.to_vec())).collect()
    }

    #[test]
    fn streamed_imp_matches_in_memory() {
        let m = fig2();
        for &minconf in &[1.0, 0.8, 0.5] {
            let cfg = ImplicationConfig::new(minconf);
            let in_mem = find_implications(&m, &cfg);
            let streamed = find_implications_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
            assert_eq!(streamed.rules, in_mem.rules, "minconf={minconf}");
        }
    }

    #[test]
    fn streamed_sim_matches_in_memory() {
        let m = fig2();
        for &minsim in &[1.0, 0.75, 0.4] {
            let cfg = SimilarityConfig::new(minsim);
            let in_mem = find_similarities(&m, &cfg);
            let streamed = find_similarities_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
            assert_eq!(streamed.rules, in_mem.rules, "minsim={minsim}");
        }
    }

    #[test]
    fn streamed_imp_with_forced_switch() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8).with_switch(SwitchPolicy::always_at(3));
        let streamed = find_implications_streamed(rows_of(&m), m.n_cols(), &cfg).unwrap();
        assert_eq!(streamed.pairs(), vec![(0, 1), (2, 4)]);
        assert!(streamed.bitmap_switch_at.is_some());
    }

    #[test]
    fn streamed_normalizes_unsorted_rows() {
        let rows: Vec<Result<Vec<ColumnId>, Infallible>> =
            vec![Ok(vec![2, 0, 2]), Ok(vec![0, 2]), Ok(vec![1])];
        let out = find_implications_streamed(rows, 3, &ImplicationConfig::new(1.0)).unwrap();
        // Columns 0 and 2 are identical: both directions canonical -> (0, 2).
        assert_eq!(out.pairs(), vec![(0, 2)]);
    }

    #[test]
    fn streamed_rejects_out_of_range_ids() {
        let rows: Vec<Result<Vec<ColumnId>, Infallible>> = vec![Ok(vec![0, 9])];
        let err = find_implications_streamed(rows, 3, &ImplicationConfig::new(1.0)).unwrap_err();
        assert!(matches!(
            err,
            StreamError::ColumnOutOfRange { row: 0, id: 9 }
        ));
    }

    #[test]
    fn streamed_propagates_source_errors() {
        #[derive(Debug)]
        struct Boom;
        impl std::fmt::Display for Boom {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "boom")
            }
        }
        let rows: Vec<Result<Vec<ColumnId>, Boom>> = vec![Ok(vec![0]), Err(Boom)];
        let err = find_implications_streamed(rows, 2, &ImplicationConfig::new(1.0)).unwrap_err();
        assert!(matches!(err, StreamError::Source(Boom)));
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn streamed_equals_bucketed_in_memory_on_random_data() {
        // The stream replays in bucket order; in-memory with the same order
        // must agree rule-for-rule (order invariance is proven elsewhere,
        // this checks the plumbing end to end).
        let mut rows: Vec<Vec<ColumnId>> = Vec::new();
        for i in 0..60u32 {
            rows.push(vec![i % 5, 5 + (i % 3), 8 + (i % 7) % 4]);
        }
        rows.push((0..12).collect());
        let m = SparseMatrix::from_rows(12, rows);
        let cfg = ImplicationConfig::new(0.7).with_row_order(RowOrder::BucketedSparsestFirst);
        let in_mem = find_implications(&m, &cfg);
        let streamed = find_implications_streamed(rows_of(&m), 12, &cfg).unwrap();
        assert_eq!(streamed.rules, in_mem.rules);
    }
}
