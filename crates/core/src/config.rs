//! Run configuration for the DMC drivers.

use dmc_matrix::order::RowOrder;
use dmc_matrix::spill_io::{RetryPolicy, SpillSettings};

/// When to abandon DMC-base counting and finish with the low-memory
/// DMC-bitmap tail phase (§4.2 "memory-explosion elimination").
///
/// The paper switches "when the number of remaining rows becomes 64 or less,
/// and the memory size for the counter array … exceeds 50MB"; both knobs are
/// configurable here. [`SwitchPolicy::never`] disables the switch (useful
/// for ablation).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SwitchPolicy {
    /// Switch only when this many or fewer rows remain.
    pub max_tail_rows: usize,
    /// Switch only once the modeled counter-array footprint exceeds this
    /// many bytes.
    pub memory_limit_bytes: usize,
}

impl SwitchPolicy {
    /// The paper's settings: 64 remaining rows, 50 MB counter array.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            max_tail_rows: 64,
            memory_limit_bytes: 50 * 1024 * 1024,
        }
    }

    /// Never switch to the bitmap phase.
    #[must_use]
    pub fn never() -> Self {
        Self {
            max_tail_rows: 0,
            memory_limit_bytes: usize::MAX,
        }
    }

    /// Switch as soon as `max_tail_rows` or fewer rows remain, regardless
    /// of memory (useful for tests and ablation).
    #[must_use]
    pub fn always_at(max_tail_rows: usize) -> Self {
        Self {
            max_tail_rows,
            memory_limit_bytes: 0,
        }
    }

    /// `true` when the scan should switch with `remaining` rows left and
    /// the given counter footprint.
    #[inline]
    #[must_use]
    pub fn should_switch(&self, remaining: usize, counter_bytes: usize) -> bool {
        remaining > 0 && remaining <= self.max_tail_rows && counter_bytes >= self.memory_limit_bytes
    }
}

impl Default for SwitchPolicy {
    fn default() -> Self {
        Self::paper()
    }
}

/// Default row-block size for the parallel block scheduler.
pub const DEFAULT_BLOCK_ROWS: usize = 512;

#[cfg(feature = "serde")]
fn default_block_rows() -> usize {
    DEFAULT_BLOCK_ROWS
}

/// Configuration for [`crate::find_implications`] (DMC-imp).
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ImplicationConfig {
    /// Minimum confidence in `(0, 1]`.
    pub minconf: f64,
    /// Row scan order for the counting pass (§4.1). Default: the paper's
    /// bucketed sparsest-first order.
    pub row_order: RowOrder,
    /// DMC-bitmap switch policy (§4.2).
    pub switch: SwitchPolicy,
    /// Run the dedicated 100%-rule stage before the sub-100% stage
    /// (§4.3 / Algorithm 4.2 steps 2–3). Disabling it runs a single general
    /// pass; the rule set is identical either way.
    pub hundred_stage: bool,
    /// Release a column's candidate list as soon as the column completes
    /// (Algorithm 3.1 step 3(b)). Kept as a toggle because the paper's
    /// §4.1 memory histories were evidently measured without the release.
    pub release_completed: bool,
    /// Also emit the reverse direction `c_j ⇒ c_i` when it independently
    /// meets `minconf`. The paper reports only the canonical
    /// small-to-large direction; the reverse is recoverable because
    /// `Conf(c_j ⇒ c_i) ≤ Conf(c_i ⇒ c_j)`.
    pub emit_reverse: bool,
    /// Record the per-row candidate-count history (the Fig-3 curve) in the
    /// output's memory tracker.
    pub record_memory_history: bool,
    /// Rows per block for the parallel block scheduler. Values below 1 are
    /// treated as 1. Ignored by the sequential drivers. The
    /// `DMC_BLOCK_ROWS` environment variable, when set and parseable,
    /// overrides this at run time (useful for stress testing).
    #[cfg_attr(feature = "serde", serde(default = "default_block_rows"))]
    pub block_rows: usize,
    /// Spill I/O settings for the streamed drivers (backend, retry policy,
    /// directory). Ignored by the in-memory drivers.
    #[cfg_attr(feature = "serde", serde(skip, default))]
    pub spill: SpillSettings,
}

impl ImplicationConfig {
    /// A configuration with the paper's defaults at the given `minconf`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < minconf <= 1`.
    #[must_use]
    pub fn new(minconf: f64) -> Self {
        assert!(
            minconf > 0.0 && minconf <= 1.0,
            "minconf must be in (0, 1], got {minconf}"
        );
        Self {
            minconf,
            row_order: RowOrder::BucketedSparsestFirst,
            switch: SwitchPolicy::paper(),
            hundred_stage: true,
            release_completed: true,
            emit_reverse: false,
            record_memory_history: false,
            block_rows: DEFAULT_BLOCK_ROWS,
            spill: SpillSettings::default(),
        }
    }

    /// Builder-style: set the row order.
    #[must_use]
    pub fn with_row_order(mut self, order: RowOrder) -> Self {
        self.row_order = order;
        self
    }

    /// Builder-style: set the switch policy.
    #[must_use]
    pub fn with_switch(mut self, switch: SwitchPolicy) -> Self {
        self.switch = switch;
        self
    }

    /// Builder-style: toggle the 100%-rule stage.
    #[must_use]
    pub fn with_hundred_stage(mut self, on: bool) -> Self {
        self.hundred_stage = on;
        self
    }

    /// Builder-style: toggle reverse-rule emission.
    #[must_use]
    pub fn with_reverse(mut self, on: bool) -> Self {
        self.emit_reverse = on;
        self
    }

    /// Builder-style: set the parallel scheduler's rows-per-block.
    #[must_use]
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        self.block_rows = block_rows;
        self
    }

    /// Builder-style: set the spill I/O settings (streamed drivers).
    #[must_use]
    pub fn with_spill(mut self, spill: SpillSettings) -> Self {
        self.spill = spill;
        self
    }

    /// Builder-style: cap transient spill-fault retries (streamed drivers).
    #[must_use]
    pub fn with_spill_retries(mut self, max_retries: u32) -> Self {
        self.spill.retry = RetryPolicy {
            max_retries,
            ..self.spill.retry
        };
        self
    }
}

/// Configuration for [`crate::find_similarities`] (DMC-sim).
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimilarityConfig {
    /// Minimum Jaccard similarity in `(0, 1]`.
    pub minsim: f64,
    /// Row scan order for the counting pass (§4.1).
    pub row_order: RowOrder,
    /// DMC-bitmap switch policy (§4.2).
    pub switch: SwitchPolicy,
    /// Run the dedicated identical-column stage before the sub-100% stage
    /// (Algorithm 5.1 steps 2–3).
    pub hundred_stage: bool,
    /// Apply maximum-hits pruning (§5.2).
    pub max_hits_pruning: bool,
    /// Release candidate lists at column completion (see
    /// [`ImplicationConfig::release_completed`]).
    pub release_completed: bool,
    /// Record the per-row candidate-count history.
    pub record_memory_history: bool,
    /// Rows per block for the parallel block scheduler (see
    /// [`ImplicationConfig::block_rows`]).
    #[cfg_attr(feature = "serde", serde(default = "default_block_rows"))]
    pub block_rows: usize,
    /// Spill I/O settings for the streamed drivers (backend, retry policy,
    /// directory). Ignored by the in-memory drivers.
    #[cfg_attr(feature = "serde", serde(skip, default))]
    pub spill: SpillSettings,
}

impl SimilarityConfig {
    /// A configuration with the paper's defaults at the given `minsim`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < minsim <= 1`.
    #[must_use]
    pub fn new(minsim: f64) -> Self {
        assert!(
            minsim > 0.0 && minsim <= 1.0,
            "minsim must be in (0, 1], got {minsim}"
        );
        Self {
            minsim,
            row_order: RowOrder::BucketedSparsestFirst,
            switch: SwitchPolicy::paper(),
            hundred_stage: true,
            max_hits_pruning: true,
            release_completed: true,
            record_memory_history: false,
            block_rows: DEFAULT_BLOCK_ROWS,
            spill: SpillSettings::default(),
        }
    }

    /// Builder-style: set the row order.
    #[must_use]
    pub fn with_row_order(mut self, order: RowOrder) -> Self {
        self.row_order = order;
        self
    }

    /// Builder-style: set the switch policy.
    #[must_use]
    pub fn with_switch(mut self, switch: SwitchPolicy) -> Self {
        self.switch = switch;
        self
    }

    /// Builder-style: toggle maximum-hits pruning.
    #[must_use]
    pub fn with_max_hits_pruning(mut self, on: bool) -> Self {
        self.max_hits_pruning = on;
        self
    }

    /// Builder-style: toggle the identical-column stage.
    #[must_use]
    pub fn with_hundred_stage(mut self, on: bool) -> Self {
        self.hundred_stage = on;
        self
    }

    /// Builder-style: set the parallel scheduler's rows-per-block.
    #[must_use]
    pub fn with_block_rows(mut self, block_rows: usize) -> Self {
        self.block_rows = block_rows;
        self
    }

    /// Builder-style: set the spill I/O settings (streamed drivers).
    #[must_use]
    pub fn with_spill(mut self, spill: SpillSettings) -> Self {
        self.spill = spill;
        self
    }

    /// Builder-style: cap transient spill-fault retries (streamed drivers).
    #[must_use]
    pub fn with_spill_retries(mut self, max_retries: u32) -> Self {
        self.spill.retry = RetryPolicy {
            max_retries,
            ..self.spill.retry
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_switch_policy_values() {
        let p = SwitchPolicy::paper();
        assert_eq!(p.max_tail_rows, 64);
        assert_eq!(p.memory_limit_bytes, 50 * 1024 * 1024);
        // Over-limit memory but too many remaining rows: no switch.
        assert!(!p.should_switch(65, usize::MAX));
        // Few rows but small memory: no switch.
        assert!(!p.should_switch(10, 1024));
        assert!(p.should_switch(64, 51 * 1024 * 1024));
        assert!(
            !p.should_switch(0, usize::MAX),
            "nothing left to switch for"
        );
    }

    #[test]
    fn never_and_always_policies() {
        assert!(!SwitchPolicy::never().should_switch(1, usize::MAX));
        assert!(SwitchPolicy::always_at(100).should_switch(100, 0));
        assert!(!SwitchPolicy::always_at(100).should_switch(101, 0));
    }

    #[test]
    #[should_panic(expected = "minconf must be in (0, 1]")]
    fn rejects_zero_minconf() {
        let _ = ImplicationConfig::new(0.0);
    }

    #[test]
    #[should_panic(expected = "minsim must be in (0, 1]")]
    fn rejects_oversized_minsim() {
        let _ = SimilarityConfig::new(1.5);
    }

    #[test]
    fn builders_set_fields() {
        let c = ImplicationConfig::new(0.9)
            .with_row_order(RowOrder::Original)
            .with_switch(SwitchPolicy::never())
            .with_hundred_stage(false)
            .with_reverse(true);
        assert_eq!(c.row_order, RowOrder::Original);
        assert_eq!(c.switch, SwitchPolicy::never());
        assert!(!c.hundred_stage);
        assert!(c.emit_reverse);

        let s = SimilarityConfig::new(0.8).with_max_hits_pruning(false);
        assert!(!s.max_hits_pruning);
    }

    #[test]
    fn block_rows_defaults_and_builds() {
        assert_eq!(ImplicationConfig::new(0.9).block_rows, DEFAULT_BLOCK_ROWS);
        assert_eq!(SimilarityConfig::new(0.9).block_rows, DEFAULT_BLOCK_ROWS);
        assert_eq!(ImplicationConfig::new(0.9).with_block_rows(7).block_rows, 7);
        assert_eq!(SimilarityConfig::new(0.9).with_block_rows(3).block_rows, 3);
    }
}
