//! The [`Miner`] facade: one builder-style entry point over the eight
//! `find_*` drivers.
//!
//! The crate grew four implication drivers and four similarity drivers
//! (in-memory/streamed × sequential/parallel), each a free function with
//! its own signature. [`Miner`] folds that choice into configuration: the
//! *what* (implications vs similarities, threshold, knobs) is set on the
//! builder, and the *how* (in-memory vs streamed, sequential vs parallel)
//! falls out of which `run` method is called and the configured thread
//! count.
//!
//! ```
//! use dmc_core::{Miner, SparseMatrix};
//!
//! let m = SparseMatrix::from_rows(3, vec![
//!     vec![1, 2], vec![0, 1, 2], vec![0], vec![1],
//! ]);
//! let out = Miner::implications(1.0).mine(&m).unwrap();
//! assert_eq!(out.pairs(), vec![(2, 1)]);
//!
//! // Same mine, four workers over a row stream:
//! let rows: Vec<Result<Vec<u32>, std::convert::Infallible>> =
//!     vec![Ok(vec![1, 2]), Ok(vec![0, 1, 2]), Ok(vec![0]), Ok(vec![1])];
//! let streamed = Miner::implications(1.0).threads(4).mine_streamed(rows, 3).unwrap();
//! assert_eq!(streamed.pairs(), vec![(2, 1)]);
//! ```
//!
//! Every driver produces the same rules for the same input (the parallel
//! and streamed drivers are bit-identical to the sequential in-memory one
//! under bucketed sparsest-first order), so switching execution strategy
//! is purely an operational decision. The free `find_*` functions remain
//! for backward compatibility; new code should prefer the facade — or,
//! for long-lived use (incremental ingest, point queries), the
//! [`Engine`](crate::Engine) the facade now fronts.
//!
//! Both `mine` methods return [`MineError`], the unified error enum: the
//! in-memory path never actually fails (its only possible error, a bad
//! threshold, panics in the constructor instead), and the streamed path
//! folds the old [`StreamError`] variants in. The previous `run` /
//! `run_streamed` signatures survive as `#[deprecated]` wrappers.

use crate::config::{ImplicationConfig, SimilarityConfig, SwitchPolicy};
use crate::engine::{dispatch_implications, dispatch_similarities};
use crate::error::MineError;
use crate::imp::ImplicationOutput;
use crate::sim::SimilarityOutput;
use crate::stream::{find_implications_streamed, find_similarities_streamed, StreamError};
use crate::stream_parallel::{
    find_implications_streamed_parallel, find_similarities_streamed_parallel,
};
use dmc_matrix::order::RowOrder;
use dmc_matrix::spill_io::SpillSettings;
use dmc_matrix::{ColumnId, SparseMatrix};

/// Converts the unified error back to the legacy stream error for the
/// deprecated `run_streamed` wrappers. `Config` cannot occur on the
/// facade path (the constructors panic on bad thresholds before a run
/// exists).
fn to_stream_error<E>(e: MineError<E>) -> StreamError<E> {
    match e {
        MineError::Config(e) => unreachable!("facade constructors validate thresholds: {e}"),
        MineError::Source(e) => StreamError::Source(e),
        MineError::Io { context, error } => StreamError::Io { context, error },
        MineError::CorruptSpill { frame, reason } => StreamError::CorruptSpill { frame, reason },
        MineError::ColumnOutOfRange { row, id } => StreamError::ColumnOutOfRange { row, id },
    }
}

/// Entry point of the facade; see the [module docs](self).
pub struct Miner;

impl Miner {
    /// Starts configuring an implication mine at `minconf`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < minconf <= 1`.
    #[must_use]
    pub fn implications(minconf: f64) -> ImplicationMiner {
        ImplicationMiner {
            config: ImplicationConfig::new(minconf),
            threads: 1,
        }
    }

    /// Starts configuring a similarity mine at `minsim`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < minsim <= 1`.
    #[must_use]
    pub fn similarities(minsim: f64) -> SimilarityMiner {
        SimilarityMiner {
            config: SimilarityConfig::new(minsim),
            threads: 1,
        }
    }
}

/// A configured implication mine, created by [`Miner::implications`].
#[derive(Clone, Debug)]
pub struct ImplicationMiner {
    config: ImplicationConfig,
    threads: usize,
}

impl ImplicationMiner {
    /// Worker count. The request is resolved through
    /// [`effective_workers`](crate::effective_workers) at run time: it is
    /// capped at the host's available parallelism (lift the cap with
    /// `DMC_SCHED_OVERSUBSCRIBE=1`), and when the resolved count is `0` or
    /// `1` the sequential drivers run; otherwise the work-assisting
    /// block-scheduler drivers run with that many workers. Rules are
    /// bit-identical either way.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Row scan order for the counting pass (§4.1). In-memory runs only;
    /// streamed runs always replay in bucketed sparsest-first order.
    #[must_use]
    pub fn order(mut self, order: RowOrder) -> Self {
        self.config.row_order = order;
        self
    }

    /// DMC-bitmap switch policy (§4.2).
    #[must_use]
    pub fn switch(mut self, policy: SwitchPolicy) -> Self {
        self.config.switch = policy;
        self
    }

    /// Toggle the dedicated 100%-rule stage (§4.3).
    #[must_use]
    pub fn hundred_stage(mut self, on: bool) -> Self {
        self.config.hundred_stage = on;
        self
    }

    /// Also emit qualifying reverse directions `c_j ⇒ c_i`.
    #[must_use]
    pub fn reverse(mut self, on: bool) -> Self {
        self.config.emit_reverse = on;
        self
    }

    /// Record the per-row candidate-count history (the Fig-3 curve).
    #[must_use]
    pub fn memory_history(mut self, on: bool) -> Self {
        self.config.record_memory_history = on;
        self
    }

    /// Spill I/O settings for streamed runs (backend, retry policy,
    /// directory). Ignored by `run`.
    #[must_use]
    pub fn spill(mut self, spill: SpillSettings) -> Self {
        self.config.spill = spill;
        self
    }

    /// Cap on transient spill-fault retries for streamed runs.
    #[must_use]
    pub fn spill_retries(mut self, max_retries: u32) -> Self {
        self.config = self.config.with_spill_retries(max_retries);
        self
    }

    /// The underlying [`ImplicationConfig`].
    #[must_use]
    pub fn config(&self) -> &ImplicationConfig {
        &self.config
    }

    /// Mines an in-memory matrix.
    ///
    /// # Errors
    ///
    /// Never fails today — the constructor already validated the
    /// threshold, and in-memory mines have no IO — but the signature is
    /// uniform with [`mine_streamed`](Self::mine_streamed) so generic
    /// callers handle one error type.
    pub fn mine(&self, matrix: &SparseMatrix) -> Result<ImplicationOutput, MineError> {
        Ok(dispatch_implications(matrix, &self.config, self.threads))
    }

    /// Mines a fallible row stream out-of-core (two passes, §4.1 density
    /// buckets on disk).
    ///
    /// # Errors
    ///
    /// Fails on source errors, spill IO errors, or out-of-range column
    /// ids.
    pub fn mine_streamed<I, E>(
        &self,
        rows: I,
        n_cols: usize,
    ) -> Result<ImplicationOutput, MineError<E>>
    where
        I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
        E: Send,
    {
        let workers = crate::fanout::effective_workers(self.threads);
        let out = if workers <= 1 {
            find_implications_streamed(rows, n_cols, &self.config)
        } else {
            find_implications_streamed_parallel(rows, n_cols, &self.config, workers)
        };
        out.map_err(MineError::from)
    }

    /// Mines an in-memory matrix.
    #[deprecated(
        since = "0.1.0",
        note = "use `mine`, which reports the unified `MineError`"
    )]
    #[must_use]
    pub fn run(&self, matrix: &SparseMatrix) -> ImplicationOutput {
        self.mine(matrix).expect("in-memory mines are infallible")
    }

    /// Mines a fallible row stream out-of-core.
    ///
    /// # Errors
    ///
    /// Fails on source errors, spill IO errors, or out-of-range column
    /// ids.
    #[deprecated(
        since = "0.1.0",
        note = "use `mine_streamed`, which reports the unified `MineError`"
    )]
    pub fn run_streamed<I, E>(
        &self,
        rows: I,
        n_cols: usize,
    ) -> Result<ImplicationOutput, StreamError<E>>
    where
        I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
        E: Send,
    {
        self.mine_streamed(rows, n_cols).map_err(to_stream_error)
    }
}

/// A configured similarity mine, created by [`Miner::similarities`].
#[derive(Clone, Debug)]
pub struct SimilarityMiner {
    config: SimilarityConfig,
    threads: usize,
}

impl SimilarityMiner {
    /// Worker count; see [`ImplicationMiner::threads`] — the request is
    /// resolved through [`effective_workers`](crate::effective_workers)
    /// at run time, and a resolved count of `0` or `1` runs the
    /// sequential drivers.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Row scan order for the counting pass (§4.1). In-memory runs only;
    /// streamed runs always replay in bucketed sparsest-first order.
    #[must_use]
    pub fn order(mut self, order: RowOrder) -> Self {
        self.config.row_order = order;
        self
    }

    /// DMC-bitmap switch policy (§4.2).
    #[must_use]
    pub fn switch(mut self, policy: SwitchPolicy) -> Self {
        self.config.switch = policy;
        self
    }

    /// Toggle the dedicated identical-column stage (Algorithm 5.1).
    #[must_use]
    pub fn hundred_stage(mut self, on: bool) -> Self {
        self.config.hundred_stage = on;
        self
    }

    /// Toggle maximum-hits pruning (§5.2).
    #[must_use]
    pub fn max_hits_pruning(mut self, on: bool) -> Self {
        self.config.max_hits_pruning = on;
        self
    }

    /// Record the per-row candidate-count history.
    #[must_use]
    pub fn memory_history(mut self, on: bool) -> Self {
        self.config.record_memory_history = on;
        self
    }

    /// Spill I/O settings for streamed runs (backend, retry policy,
    /// directory). Ignored by `run`.
    #[must_use]
    pub fn spill(mut self, spill: SpillSettings) -> Self {
        self.config.spill = spill;
        self
    }

    /// Cap on transient spill-fault retries for streamed runs.
    #[must_use]
    pub fn spill_retries(mut self, max_retries: u32) -> Self {
        self.config = self.config.with_spill_retries(max_retries);
        self
    }

    /// The underlying [`SimilarityConfig`].
    #[must_use]
    pub fn config(&self) -> &SimilarityConfig {
        &self.config
    }

    /// Mines an in-memory matrix.
    ///
    /// # Errors
    ///
    /// Never fails today; see [`ImplicationMiner::mine`].
    pub fn mine(&self, matrix: &SparseMatrix) -> Result<SimilarityOutput, MineError> {
        Ok(dispatch_similarities(matrix, &self.config, self.threads))
    }

    /// Mines a fallible row stream out-of-core (see
    /// [`ImplicationMiner::mine_streamed`]).
    ///
    /// # Errors
    ///
    /// Fails on source errors, spill IO errors, or out-of-range column
    /// ids.
    pub fn mine_streamed<I, E>(
        &self,
        rows: I,
        n_cols: usize,
    ) -> Result<SimilarityOutput, MineError<E>>
    where
        I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
        E: Send,
    {
        let workers = crate::fanout::effective_workers(self.threads);
        let out = if workers <= 1 {
            find_similarities_streamed(rows, n_cols, &self.config)
        } else {
            find_similarities_streamed_parallel(rows, n_cols, &self.config, workers)
        };
        out.map_err(MineError::from)
    }

    /// Mines an in-memory matrix.
    #[deprecated(
        since = "0.1.0",
        note = "use `mine`, which reports the unified `MineError`"
    )]
    #[must_use]
    pub fn run(&self, matrix: &SparseMatrix) -> SimilarityOutput {
        self.mine(matrix).expect("in-memory mines are infallible")
    }

    /// Mines a fallible row stream out-of-core.
    ///
    /// # Errors
    ///
    /// Fails on source errors, spill IO errors, or out-of-range column
    /// ids.
    #[deprecated(
        since = "0.1.0",
        note = "use `mine_streamed`, which reports the unified `MineError`"
    )]
    pub fn run_streamed<I, E>(
        &self,
        rows: I,
        n_cols: usize,
    ) -> Result<SimilarityOutput, StreamError<E>>
    where
        I: IntoIterator<Item = Result<Vec<ColumnId>, E>>,
        E: Send,
    {
        self.mine_streamed(rows, n_cols).map_err(to_stream_error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imp::find_implications;
    use crate::sim::find_similarities;
    use std::convert::Infallible;

    /// Serializes the tests that read or write `DMC_SCHED_OVERSUBSCRIBE`:
    /// the variable is process-global and the harness runs tests
    /// concurrently.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    fn rows_of(m: &SparseMatrix) -> Vec<Result<Vec<ColumnId>, Infallible>> {
        m.rows().map(|r| Ok(r.to_vec())).collect()
    }

    #[test]
    fn facade_matches_free_functions_across_all_strategies() {
        // Force the requested counts through on any host: without this,
        // `effective_workers` caps at the core count and a single-core CI
        // box would dispatch every run to the sequential drivers.
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("DMC_SCHED_OVERSUBSCRIBE", "1");
        let m = fig2();
        let expected = find_implications(&m, &ImplicationConfig::new(0.8));

        let seq = Miner::implications(0.8).mine(&m).unwrap();
        assert_eq!(seq.rules, expected.rules);
        assert!(
            seq.workers.is_empty(),
            "threads<=1 is the sequential driver"
        );

        let par = Miner::implications(0.8).threads(4).mine(&m).unwrap();
        assert_eq!(par.rules, expected.rules);
        assert_eq!(par.workers.len(), 4);

        let streamed = Miner::implications(0.8)
            .mine_streamed(rows_of(&m), m.n_cols())
            .unwrap();
        assert_eq!(streamed.rules, expected.rules);

        let streamed_par = Miner::implications(0.8)
            .threads(3)
            .mine_streamed(rows_of(&m), m.n_cols())
            .unwrap();
        assert_eq!(streamed_par.rules, expected.rules);
        assert_eq!(streamed_par.workers.len(), 3);
    }

    #[test]
    fn sim_facade_matches_free_functions() {
        let m = fig2();
        let expected = find_similarities(&m, &SimilarityConfig::new(0.4));

        assert_eq!(
            Miner::similarities(0.4).mine(&m).unwrap().rules,
            expected.rules
        );
        assert_eq!(
            Miner::similarities(0.4).threads(2).mine(&m).unwrap().rules,
            expected.rules
        );
        assert_eq!(
            Miner::similarities(0.4)
                .mine_streamed(rows_of(&m), m.n_cols())
                .unwrap()
                .rules,
            expected.rules
        );
        assert_eq!(
            Miner::similarities(0.4)
                .threads(2)
                .mine_streamed(rows_of(&m), m.n_cols())
                .unwrap()
                .rules,
            expected.rules
        );
    }

    /// Serializes rule vectors through the canonical text format, so the
    /// wrapper comparisons below are byte-level, not just `Eq`-level.
    fn imp_bytes(rules: &[crate::ImplicationRule]) -> Vec<u8> {
        let mut buf = Vec::new();
        crate::write_rules(rules, &[], &mut buf).unwrap();
        buf
    }

    fn sim_bytes(rules: &[crate::SimilarityRule]) -> Vec<u8> {
        let mut buf = Vec::new();
        crate::write_rules(&[], rules, &mut buf).unwrap();
        buf
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_mine_identically() {
        let m = fig2();
        // Each deprecated wrapper must byte-match its replacement on the
        // serialized rule set.
        let expected = imp_bytes(&Miner::implications(0.8).mine(&m).unwrap().rules);
        assert_eq!(imp_bytes(&Miner::implications(0.8).run(&m).rules), expected);
        let expected_streamed = imp_bytes(
            &Miner::implications(0.8)
                .mine_streamed(rows_of(&m), m.n_cols())
                .unwrap()
                .rules,
        );
        assert_eq!(
            imp_bytes(
                &Miner::implications(0.8)
                    .run_streamed(rows_of(&m), m.n_cols())
                    .unwrap()
                    .rules
            ),
            expected_streamed
        );
        assert_eq!(
            expected, expected_streamed,
            "in-memory and streamed agree on fig2"
        );

        let expected = sim_bytes(&Miner::similarities(0.4).mine(&m).unwrap().rules);
        assert_eq!(sim_bytes(&Miner::similarities(0.4).run(&m).rules), expected);
        assert_eq!(
            sim_bytes(
                &Miner::similarities(0.4)
                    .run_streamed(rows_of(&m), m.n_cols())
                    .unwrap()
                    .rules
            ),
            expected,
            "deprecated sim run_streamed byte-matches mine_streamed"
        );
    }

    #[test]
    fn builder_knobs_reach_the_config() {
        let m = fig2();
        let imp = Miner::implications(0.8)
            .order(RowOrder::Original)
            .switch(SwitchPolicy::always_at(3))
            .hundred_stage(false)
            .reverse(true)
            .memory_history(true);
        let cfg = imp.config();
        assert_eq!(cfg.row_order, RowOrder::Original);
        assert!(!cfg.hundred_stage);
        assert!(cfg.emit_reverse);
        assert!(cfg.record_memory_history);
        let out = imp.mine(&m).unwrap();
        let expected = find_implications(&m, cfg);
        assert_eq!(out.rules, expected.rules);
        assert!(
            !out.memory.history().is_empty(),
            "memory_history(true) records the Fig-3 curve"
        );

        let sim = Miner::similarities(0.6).max_hits_pruning(false);
        assert!(!sim.config().max_hits_pruning);
        assert_eq!(
            sim.mine(&m).unwrap().rules,
            find_similarities(&m, &SimilarityConfig::new(0.6).with_max_hits_pruning(false)).rules
        );
    }

    #[test]
    fn zero_threads_means_sequential() {
        let m = fig2();
        let out = Miner::implications(0.8).threads(0).mine(&m).unwrap();
        assert!(out.workers.is_empty());
    }

    #[test]
    fn thread_request_is_capped_at_host_cores() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::remove_var("DMC_SCHED_OVERSUBSCRIBE");
        let m = fig2();
        let resolved = crate::fanout::effective_workers(64);
        let out = Miner::implications(0.8).threads(64).mine(&m).unwrap();
        if resolved > 1 {
            assert_eq!(out.workers.len(), resolved);
        } else {
            assert!(out.workers.is_empty(), "capped to 1 → sequential driver");
        }
        assert_eq!(
            out.rules,
            find_implications(&m, &ImplicationConfig::new(0.8)).rules,
            "the cap never changes the rules"
        );
    }

    #[test]
    #[should_panic(expected = "minconf must be in (0, 1]")]
    fn facade_validates_threshold() {
        let _ = Miner::implications(0.0);
    }
}
