//! DMC-sim (Algorithm 5.1): mining similarity rules.
//!
//! Similarity (Jaccard) rules reuse the miss-counting machinery with three
//! twists:
//!
//! * **Per-pair budgets.** The tolerable miss count of a pair depends on
//!   both column sizes (`Sim ≥ minsim ⟺ hits ≥ minsim(|S_i|+|S_j|)/(1+minsim)`),
//!   so each candidate stores its own budget, computed at admission from
//!   [`crate::threshold::max_misses_sim`].
//! * **Column-density pruning (§5.1).** A pair with
//!   `|S_i|/|S_j| < minsim` cannot qualify; such candidates are never
//!   admitted (`max_misses_sim` returns `None`).
//! * **Maximum-hits pruning (§5.2).** Misses are only counted from the
//!   smaller column, but the remaining 1s of *both* columns bound the final
//!   hit count: `ĥ = hits_so_far + min(rem_i, rem_j)`. A candidate whose
//!   optimistic similarity `ĥ/(|S_i|+|S_j|−ĥ)` is below `minsim` is deleted
//!   even if it never misses again (Example 5.1). The check uses the
//!   pre-row snapshot (`cnt` before this row, misses before this row's
//!   update), exactly as in the paper's example.
//!
//! Identical columns (100% similarity) come from the shared exact scan
//! ([`crate::hundred`]); this module's scan finds the sub-100% pairs.

use crate::candidates::{ColumnLists, SimCandidate};
use crate::config::{SimilarityConfig, SwitchPolicy};
use crate::fxhash::FxHashMap;
use crate::hundred::{HundredMode, HundredScan};
use crate::rules::SimilarityRule;
use crate::threshold::{max_misses_sim, only_exact_rules_sim, sim_qualifies};
use dmc_bitset::BitMatrix;
use dmc_matrix::{canonical_less, ColumnId, RowId, SparseMatrix};
use dmc_metrics::{
    CounterMemory, PhaseReport, PhaseTimer, ReportBuilder, RunReport, ScanTally, StageReport,
    WorkerReport,
};

/// Result of [`find_similarities`].
#[derive(Debug)]
pub struct SimilarityOutput {
    /// All qualifying pairs, canonical (`a` before `b`), sorted.
    pub rules: Vec<SimilarityRule>,
    /// Phase breakdown: `pre-scan`, `100% rules`, `<100% rules`,
    /// `bitmap tail`.
    pub phases: PhaseReport,
    /// Counter-array accounting across all stages.
    pub memory: CounterMemory,
    /// Whether the sub-100% stage switched to DMC-bitmap, and after how
    /// many scanned rows. Parallel drivers report one global position at
    /// any thread count, aligned to a block boundary of the scheduler.
    pub bitmap_switch_at: Option<usize>,
    /// Per-worker phase times, credited tally shares and block-scheduling
    /// counters. Empty for the sequential drivers; one entry per worker
    /// for the parallel drivers.
    pub workers: Vec<WorkerReport>,
    /// The machine-readable run report (same schema across all drivers).
    pub report: RunReport,
}

impl SimilarityOutput {
    /// Convenience: `(a, b)` pairs of the rules.
    #[must_use]
    pub fn pairs(&self) -> Vec<(ColumnId, ColumnId)> {
        self.rules.iter().map(|r| (r.a, r.b)).collect()
    }

    /// The `k` pairs with the highest similarity (ties by more hits, then
    /// canonical order).
    ///
    /// Thin wrapper kept for backward compatibility; prefer
    /// [`MinedOutput::top`](crate::MinedOutput::top), which works across
    /// both output types.
    #[must_use]
    pub fn top_by_similarity(&self, k: usize) -> Vec<&SimilarityRule> {
        crate::MinedOutput::top(self, k)
    }

    /// All pairs involving `col` (either side).
    ///
    /// Thin wrapper kept for backward compatibility; prefer
    /// [`MinedOutput::involving`](crate::MinedOutput::involving).
    #[must_use]
    pub fn involving(&self, col: ColumnId) -> Vec<&SimilarityRule> {
        crate::MinedOutput::involving(self, col)
    }
}

/// Mines all similarity rules of `matrix` at `config.minsim`. Exact — no
/// false positives or negatives.
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::similarities(minsim).mine(&matrix)`); this free function
/// remains for backward compatibility.
#[must_use]
pub fn find_similarities(matrix: &SparseMatrix, config: &SimilarityConfig) -> SimilarityOutput {
    find_similarities_masked(matrix, config, None)
}

/// [`find_similarities`] restricted to the LHS (canonically smaller)
/// columns selected by `lhs_mask` (`None` = all). Masked columns still
/// serve as RHS partners — their `cnt` advances so the §5.2 bound reads
/// the same values as in an unmasked run — so each unmasked column's
/// candidate evolution is byte-identical to the unsharded run (DESIGN.md
/// §13).
#[must_use]
pub(crate) fn find_similarities_masked(
    matrix: &SparseMatrix,
    config: &SimilarityConfig,
    lhs_mask: Option<&[bool]>,
) -> SimilarityOutput {
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let mut memory = if config.record_memory_history {
        CounterMemory::with_history(4096)
    } else {
        CounterMemory::new()
    };

    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };

    let mut rules = Vec::new();
    let mut bitmap_switch_at = None;
    let mut report = ReportBuilder::new("similarity", "in-memory", 0, config.minsim);
    report.dims(matrix.n_rows(), matrix.n_cols());

    // Step 2: identical (100%-similar) columns.
    if config.hundred_stage || config.minsim >= 1.0 {
        let _g = timer.enter("100% rules");
        let mut scan = HundredScan::new(matrix.n_cols(), HundredMode::Identical, ones.clone());
        if let Some(mask) = lhs_mask {
            scan.set_lhs_mask(mask.to_vec());
        }
        let mut switched = false;
        for (pos, &r) in order.iter().enumerate() {
            let remaining = order.len() - pos;
            if config
                .switch
                .should_switch(remaining, scan.memory().current_bytes())
            {
                let tail: Vec<&[ColumnId]> = order[pos..]
                    .iter()
                    .map(|&r| matrix.row(r as usize))
                    .collect();
                scan.finish_with_bitmaps(&tail);
                switched = true;
                break;
            }
            scan.process_row(matrix.row(r as usize));
        }
        if !switched {
            scan.finish_with_bitmaps(&[]);
        }
        let tally = scan.tally();
        let (_, sims, mem) = scan.into_parts();
        report.hundred_stage(StageReport::new(
            tally,
            sims.len() as u64,
            mem.peak_candidates(),
        ));
        rules.extend(sims);
        memory.absorb_peak(&mem);
    }

    // Steps 3–4: sub-100% pairs over columns that can reach minsim with at
    // least one disagreement.
    if config.minsim < 1.0 {
        let active: Option<Vec<bool>> = if config.hundred_stage {
            Some(
                ones.iter()
                    .map(|&o| !only_exact_rules_sim(u64::from(o), config.minsim))
                    .collect(),
            )
        } else {
            None
        };
        let mut scan = SimScan::new(matrix.n_cols(), config, ones, active);
        scan.lhs_mask = lhs_mask.map(<[bool]>::to_vec);
        {
            let _g = timer.enter("<100% rules");
            bitmap_switch_at = scan_rows_sim(matrix, &order, &config.switch, &mut scan);
        }
        if let Some(pos) = bitmap_switch_at {
            let _g = timer.enter("bitmap tail");
            let tail: Vec<&[ColumnId]> = order[pos..]
                .iter()
                .map(|&r| matrix.row(r as usize))
                .collect();
            scan.finish_with_bitmaps(&tail);
        }
        let tally = scan.tally();
        let (stage_rules, mem) = scan.into_parts();
        let before = rules.len();
        if config.hundred_stage {
            rules.extend(stage_rules.into_iter().filter(|r| r.hits < r.union()));
        } else {
            rules.extend(stage_rules);
        }
        report.sub_stage(StageReport::new(
            tally,
            (rules.len() - before) as u64,
            mem.peak_candidates(),
        ));
        memory.absorb_peak(&mem);
    }

    rules.sort_unstable();
    rules.dedup();
    let phases = timer.report();
    report.wall(started.elapsed());
    let report = report.finish(rules.len(), &phases, &memory, bitmap_switch_at);
    SimilarityOutput {
        rules,
        phases,
        memory,
        bitmap_switch_at,
        workers: Vec::new(),
        report,
    }
}

fn scan_rows_sim(
    matrix: &SparseMatrix,
    order: &[RowId],
    switch: &SwitchPolicy,
    scan: &mut SimScan,
) -> Option<usize> {
    for (pos, &r) in order.iter().enumerate() {
        let remaining = order.len() - pos;
        if switch.should_switch(remaining, scan.mem.current_bytes()) {
            return Some(pos);
        }
        scan.process_row(matrix.row(r as usize));
        scan.mem.sample(pos + 1);
    }
    None
}

/// The sub-100% similarity scan state.
pub(crate) struct SimScan {
    minsim: f64,
    max_hits_pruning: bool,
    release_completed: bool,
    ones: Vec<u32>,
    cnt: Vec<u32>,
    /// Per-column admission limit: the largest budget any pair of this
    /// column can have (attained at an equal-sized partner). Once
    /// `cnt > limit`, no new candidate can ever be viable.
    admit_limit: Vec<u32>,
    lists: ColumnLists<SimCandidate>,
    active: Vec<bool>,
    /// Optional additional LHS restriction (columns outside it still count
    /// and serve as RHS) — used by [`SimScan::apply_block`] to replay a
    /// block only for the columns whose lists were open at block start.
    lhs_mask: Option<Vec<bool>>,
    done: Vec<bool>,
    rules: Vec<SimilarityRule>,
    pub(crate) mem: CounterMemory,
    pub(crate) tally: ScanTally,
    scratch: Vec<SimCandidate>,
}

impl SimScan {
    pub(crate) fn new(
        n_cols: usize,
        config: &SimilarityConfig,
        ones: Vec<u32>,
        active: Option<Vec<bool>>,
    ) -> Self {
        let m = n_cols;
        assert_eq!(ones.len(), m);
        let admit_limit: Vec<u32> = ones
            .iter()
            .map(|&o| {
                max_misses_sim(u64::from(o), u64::from(o), config.minsim).map_or(0, |b| b as u32)
            })
            .collect();
        let active = active.unwrap_or_else(|| vec![true; m]);
        assert_eq!(active.len(), m);
        Self {
            minsim: config.minsim,
            max_hits_pruning: config.max_hits_pruning,
            release_completed: config.release_completed,
            ones,
            cnt: vec![0; m],
            admit_limit,
            lists: ColumnLists::new(m),
            active,
            lhs_mask: None,
            done: vec![false; m],
            rules: Vec::new(),
            mem: if config.record_memory_history {
                CounterMemory::with_history(4096)
            } else {
                CounterMemory::new()
            },
            tally: ScanTally::new(),
            scratch: Vec::new(),
        }
    }

    pub(crate) fn into_parts(self) -> (Vec<SimilarityRule>, CounterMemory) {
        (self.rules, self.mem)
    }

    /// Event counters of this scan so far.
    pub(crate) fn tally(&self) -> ScanTally {
        self.tally
    }

    /// Modeled counter-array footprint (for switch policies).
    pub(crate) fn memory_bytes(&self) -> usize {
        self.mem.current_bytes()
    }

    #[inline]
    fn is_lhs(&self, j: ColumnId) -> bool {
        let ji = j as usize;
        self.active[ji] && !self.done[ji] && self.lhs_mask.as_ref().is_none_or(|m| m[ji])
    }

    /// Budget for the pair `(j, k)` if it is admissible at all.
    #[inline]
    fn pair_budget(&self, j: ColumnId, k: ColumnId) -> Option<u32> {
        if k == j || !self.active[k as usize] {
            return None;
        }
        let (oj, ok) = (self.ones[j as usize], self.ones[k as usize]);
        if !canonical_less(j, oj, k, ok) {
            return None;
        }
        max_misses_sim(u64::from(oj), u64::from(ok), self.minsim).map(|b| b as u32)
    }

    /// §5.2: `true` if the pair can still reach `minsim`, judged from the
    /// pre-row snapshot (`miss_old` = misses before this row's update).
    #[inline]
    fn max_hits_viable(&self, j: ColumnId, k: ColumnId, miss_old: u32) -> bool {
        if !self.max_hits_pruning {
            return true;
        }
        let (oj, ok) = (self.ones[j as usize], self.ones[k as usize]);
        let (cj, ck) = (self.cnt[j as usize], self.cnt[k as usize]);
        let hits_so_far = cj - miss_old;
        let rem = (oj - cj).min(ok - ck);
        let hat = u64::from(hits_so_far + rem);
        sim_qualifies(hat, u64::from(oj), u64::from(ok), self.minsim)
    }

    pub(crate) fn process_row(&mut self, row: &[ColumnId]) {
        self.tally.row();
        for &j in row {
            let ji = j as usize;
            if !self.is_lhs(j) || self.ones[ji] == 0 {
                continue;
            }
            let cnt_j = self.cnt[ji];
            if cnt_j == 0 {
                self.create_list(j, row);
            } else if cnt_j <= self.admit_limit[ji] {
                self.merge_open(j, row, cnt_j);
            } else {
                self.update_closed(j, row);
            }
        }
        // `cnt` advances for every active column — the §5.2 bound reads the
        // RHS column's remaining count even when that column's own list is
        // excluded from this replay. Completion, however, is deferred for
        // masked-out columns: their lists still carry pre-block miss counts
        // that [`SimScan::apply_block`] folds in afterwards.
        for &j in row {
            let ji = j as usize;
            if !self.active[ji] || self.done[ji] || self.ones[ji] == 0 {
                continue;
            }
            self.cnt[ji] += 1;
            if self.cnt[ji] == self.ones[ji] && self.lhs_mask.as_ref().is_none_or(|m| m[ji]) {
                self.complete_column(j);
            }
        }
    }

    /// Applies one scheduler block (see [`crate::base::BaseScan::apply_block`]).
    ///
    /// Open columns (`cnt ≤ admit_limit`) replay the rows exactly; closed
    /// columns fold their block misses word-batched from `bm` and re-run
    /// the §5.2 bound at the block boundary. The emitted rule set is
    /// identical to row-by-row processing; `misses_counted` may be lower
    /// (a boundary deletion can pre-empt the miss sequential counting
    /// would still charge at the candidate's next row), deterministically
    /// so for a fixed block size.
    pub(crate) fn apply_block(&mut self, rows: &[Vec<ColumnId>], bm: &BitMatrix) {
        let m = self.ones.len();
        let saved = self.lhs_mask.take();
        let open: Vec<bool> = (0..m)
            .map(|ji| {
                self.active[ji]
                    && !self.done[ji]
                    && saved.as_ref().is_none_or(|s| s[ji])
                    && self.cnt[ji] <= self.admit_limit[ji]
            })
            .collect();
        self.lhs_mask = Some(open);
        for row in rows {
            self.process_row(row);
        }
        let open = std::mem::replace(&mut self.lhs_mask, saved).expect("mask was just installed");
        for (ji, &is_open) in open.iter().enumerate() {
            let j = ji as ColumnId;
            if is_open || !self.is_lhs(j) || self.ones[ji] == 0 {
                continue;
            }
            if bm.get(j).is_none() {
                // No row of this block carries `j`: no misses, no counter
                // movement — the sequential scan would not touch the list.
                continue;
            }
            self.fold_closed(j, bm);
        }
    }

    /// Folds one block into a closed column: word-batched miss counting,
    /// budget and §5.2 checks at the boundary, then the completion the
    /// masked replay deferred.
    fn fold_closed(&mut self, j: ColumnId, bm: &BitMatrix) {
        let ji = j as usize;
        if let Some(mut list) = self.lists.take(j) {
            let before = list.len();
            let mut write = 0;
            for read in 0..list.len() {
                let mut c = list[read];
                let block_miss = bm.miss_count(j, c.col) as u32;
                if block_miss > 0 {
                    // The sequential scan stops counting at the miss that
                    // exhausts the pair's budget.
                    let applied = block_miss.min(c.budget + 1 - c.miss);
                    c.miss += applied;
                    self.tally.miss(applied as usize);
                    if c.miss > c.budget {
                        self.tally.delete(1);
                        continue;
                    }
                }
                // §5.2 at the boundary: `cnt` is already block-final, so ĥ
                // here is at most the minimum over the per-row snapshots.
                if !self.max_hits_viable(j, c.col, c.miss) {
                    self.tally.delete(1);
                    continue;
                }
                list[write] = c;
                write += 1;
            }
            list.truncate(write);
            self.mem.remove_candidates(before - write);
            if list.is_empty() {
                self.mem.remove_list();
            } else {
                self.lists.put_back(j, list);
            }
        }
        if self.cnt[ji] == self.ones[ji] {
            self.complete_column(j);
        }
    }

    fn create_list(&mut self, j: ColumnId, row: &[ColumnId]) {
        let list: Vec<SimCandidate> = row
            .iter()
            .filter_map(|&k| {
                self.pair_budget(j, k).map(|budget| SimCandidate {
                    col: k,
                    miss: 0,
                    budget,
                })
            })
            .collect();
        self.tally.admit(list.len());
        self.lists.install(j, list, &mut self.mem);
    }

    fn merge_open(&mut self, j: ColumnId, row: &[ColumnId], cnt_j: u32) {
        let Some(mut list) = self.lists.take(j) else {
            debug_assert!(false, "open merge on column c{j} without a list");
            self.lists.install(j, Vec::new(), &mut self.mem);
            return;
        };
        let before = list.len();
        self.scratch.clear();
        let mut li = 0;
        let mut ri = 0;
        loop {
            let list_col = list.get(li).map(|c| c.col);
            let row_col = row.get(ri).copied();
            match (list_col, row_col) {
                (Some(lc), Some(rc)) if lc == rc => {
                    // Hit — but §5.2 may still kill the pair (Example 5.1
                    // deletes (c1, c2) at a row where both are 1).
                    let c = list[li];
                    if self.max_hits_viable(j, c.col, c.miss) {
                        self.scratch.push(c);
                    } else {
                        self.tally.delete(1);
                    }
                    li += 1;
                    ri += 1;
                }
                (Some(lc), Some(rc)) if lc < rc => {
                    self.miss_candidate(j, list[li]);
                    li += 1;
                }
                (Some(_), None) => {
                    self.miss_candidate(j, list[li]);
                    li += 1;
                }
                (_, Some(rc)) => {
                    if let Some(budget) = self.pair_budget(j, rc) {
                        if cnt_j <= budget {
                            let cand = SimCandidate {
                                col: rc,
                                miss: cnt_j,
                                budget,
                            };
                            if self.max_hits_viable(j, rc, cnt_j) {
                                self.tally.admit(1);
                                self.scratch.push(cand);
                            }
                        }
                    }
                    ri += 1;
                }
                (None, None) => break,
            }
        }
        std::mem::swap(&mut list, &mut self.scratch);
        let after = list.len();
        if after > before {
            self.mem.add_candidates(after - before);
        } else {
            self.mem.remove_candidates(before - after);
        }
        self.lists.put_back(j, list);
    }

    /// Applies a miss to a candidate during the open merge; pushes the
    /// survivor into `scratch`.
    #[inline]
    fn miss_candidate(&mut self, j: ColumnId, mut c: SimCandidate) {
        let miss_old = c.miss;
        c.miss += 1;
        self.tally.miss(1);
        if c.miss <= c.budget && self.max_hits_viable(j, c.col, miss_old) {
            self.scratch.push(c);
        } else {
            self.tally.delete(1);
        }
    }

    fn update_closed(&mut self, j: ColumnId, row: &[ColumnId]) {
        let Some(mut list) = self.lists.take(j) else {
            return;
        };
        let before = list.len();
        let mut write = 0;
        let mut ri = 0;
        for read in 0..list.len() {
            let mut c = list[read];
            while ri < row.len() && row[ri] < c.col {
                ri += 1;
            }
            let hit = ri < row.len() && row[ri] == c.col;
            let miss_old = c.miss;
            if !hit {
                c.miss += 1;
                self.tally.miss(1);
                if c.miss > c.budget {
                    self.tally.delete(1);
                    continue;
                }
            }
            if !self.max_hits_viable(j, c.col, miss_old) {
                self.tally.delete(1);
                continue;
            }
            list[write] = c;
            write += 1;
        }
        list.truncate(write);
        self.mem.remove_candidates(before - write);
        if list.is_empty() {
            self.mem.remove_list();
        } else {
            self.lists.put_back(j, list);
        }
    }

    fn complete_column(&mut self, j: ColumnId) {
        let ji = j as usize;
        self.done[ji] = true;
        let ones_j = self.ones[ji];
        if self.release_completed {
            if let Some(list) = self.lists.release(j, &mut self.mem) {
                for c in &list {
                    self.emit(j, ones_j, c);
                }
            }
        } else if let Some(list) = self.lists.take(j) {
            for c in &list {
                self.emit(j, ones_j, c);
            }
            self.lists.put_back(j, list);
        }
    }

    fn emit(&mut self, j: ColumnId, ones_j: u32, c: &SimCandidate) {
        debug_assert!(c.miss <= c.budget);
        self.tally.emit(1);
        self.rules.push(SimilarityRule {
            a: j,
            b: c.col,
            hits: ones_j - c.miss,
            a_ones: ones_j,
            b_ones: self.ones[c.col as usize],
        });
    }

    /// §4.2 applied to the similarity scan.
    pub(crate) fn finish_with_bitmaps(&mut self, tail: &[&[ColumnId]]) {
        let bm = crate::bitmap::build_tail_bitmaps(tail, &self.active, &self.done);
        for j in 0..self.ones.len() as ColumnId {
            let ji = j as usize;
            if !self.is_lhs(j) || self.ones[ji] == 0 {
                continue;
            }
            if self.cnt[ji] > self.admit_limit[ji] {
                self.phase1_closed(&bm, j);
            } else {
                self.phase2_open(&bm, tail, j);
            }
            self.done[ji] = true;
        }
    }

    fn phase1_closed(&mut self, bm: &BitMatrix, j: ColumnId) {
        let ones_j = self.ones[j as usize];
        let Some(list) = self.lists.release(j, &mut self.mem) else {
            return;
        };
        for c in list {
            let total_miss = c.miss + bm.miss_count(j, c.col) as u32;
            if total_miss <= c.budget {
                self.tally.emit(1);
                self.rules.push(SimilarityRule {
                    a: j,
                    b: c.col,
                    hits: ones_j - total_miss,
                    a_ones: ones_j,
                    b_ones: self.ones[c.col as usize],
                });
            } else {
                self.tally.delete(1);
            }
        }
    }

    fn phase2_open(&mut self, bm: &BitMatrix, tail: &[&[ColumnId]], j: ColumnId) {
        let ji = j as usize;
        let ones_j = self.ones[ji];
        let cnt_j = self.cnt[ji];
        let mut hits: FxHashMap<ColumnId, u32> = FxHashMap::default();
        let mut from_list = 0;
        if let Some(list) = self.lists.release(j, &mut self.mem) {
            from_list = list.len();
            for c in list {
                hits.insert(c.col, cnt_j - c.miss);
            }
        }
        if let Some(rows_of_j) = bm.get(j) {
            for t in rows_of_j.ones() {
                for &k in tail[t] {
                    if k != j && self.active[k as usize] {
                        *hits.entry(k).or_insert(0) += 1;
                    }
                }
            }
        }
        // Tail-only partners are admissions the counting scan never saw.
        self.tally.admit(hits.len() - from_list);
        for (k, h) in hits {
            let ok = self.ones[k as usize];
            if canonical_less(j, ones_j, k, ok)
                && sim_qualifies(u64::from(h), u64::from(ones_j), u64::from(ok), self.minsim)
            {
                self.tally.emit(1);
                self.rules.push(SimilarityRule {
                    a: j,
                    b: k,
                    hits: h,
                    a_ones: ones_j,
                    b_ones: ok,
                });
            } else {
                self.tally.delete(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_matrix::order::RowOrder;

    /// Figure 5 / Example 5.1: columns c1 (4 ones) and c2 (5 ones) with a
    /// single shared row early; maximum-hits pruning kills the pair at r4.
    fn fig5() -> SparseMatrix {
        // Reconstruction satisfying the example's trace: before r4,
        // cnt(c1) = 1 and cnt(c2) = 3; r2 is the hit; r4 has both.
        SparseMatrix::from_rows(
            2,
            vec![
                vec![1],    // r1: c2 only
                vec![0, 1], // r2: both (the 1 hit)
                vec![1],    // r3: c2 only
                vec![0, 1], // r4: both — pruned here in the example
                vec![0],
                vec![0],
                vec![1],
            ],
        )
    }

    #[test]
    fn example_5_1_max_hits_pruning_fires() {
        let m = fig5();
        // ones: c0 = 4, c1 = 5. At minsim 0.75 the best possible outcome
        // after r3 is 3 hits -> sim 0.5 < 0.75: no rule.
        let out = find_similarities(&m, &SimilarityConfig::new(0.75));
        assert!(out.rules.is_empty());
        // Sanity: with pruning disabled the result is identical (pruning
        // only saves memory).
        let no_prune = find_similarities(
            &m,
            &SimilarityConfig::new(0.75).with_max_hits_pruning(false),
        );
        assert!(no_prune.rules.is_empty());
    }

    #[test]
    fn example_5_1_candidate_deleted_at_r4() {
        let m = fig5();
        let cfg = SimilarityConfig::new(0.75);
        let ones = m.column_ones();
        let mut scan = SimScan::new(m.n_cols(), &cfg, ones, None);
        for r in 0..3 {
            scan.process_row(m.row(r));
        }
        assert_eq!(
            scan.lists.get(0).map(Vec::len),
            Some(1),
            "pair (c1, c2) alive before r4"
        );
        scan.process_row(m.row(3));
        // Deleted at r4 despite r4 being a hit (Example 5.1).
        assert!(scan.lists.get(0).is_none() || scan.lists.get(0).unwrap().is_empty());
    }

    #[test]
    fn without_pruning_candidate_survives_r4_but_no_rule() {
        let m = fig5();
        let cfg = SimilarityConfig::new(0.75).with_max_hits_pruning(false);
        let ones = m.column_ones();
        let mut scan = SimScan::new(m.n_cols(), &cfg, ones, None);
        for r in 0..4 {
            scan.process_row(m.row(r));
        }
        assert_eq!(scan.lists.get(0).map(Vec::len), Some(1), "still counted");
        for r in 4..m.n_rows() {
            scan.process_row(m.row(r));
        }
        let (rules, _) = scan.into_parts();
        assert!(rules.is_empty(), "budget deletion catches it by the end");
    }

    #[test]
    fn finds_similar_and_identical_pairs() {
        // c0 = c1 identical; c2 similar to both (3 of 4 rows); c3 disjoint.
        let m = SparseMatrix::from_rows(
            4,
            vec![vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 2], vec![0, 1, 3]],
        );
        let out = find_similarities(&m, &SimilarityConfig::new(0.75));
        let described: Vec<String> = out.rules.iter().map(ToString::to_string).collect();
        assert_eq!(
            described,
            vec![
                "c0 ~ c1 (sim 4/4 = 1.000)",
                "c2 ~ c0 (sim 3/4 = 0.750)",
                "c2 ~ c1 (sim 3/4 = 0.750)",
            ]
        );
    }

    #[test]
    fn minsim_one_returns_only_identicals() {
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1, 2], vec![0, 1]]);
        let out = find_similarities(&m, &SimilarityConfig::new(1.0));
        assert_eq!(out.pairs(), vec![(0, 1)]);
    }

    #[test]
    fn hundred_stage_toggle_is_equivalent() {
        let m = fig_mixed();
        for &minsim in &[1.0, 0.9, 0.75, 0.5, 0.3] {
            let with = find_similarities(&m, &SimilarityConfig::new(minsim));
            let without =
                find_similarities(&m, &SimilarityConfig::new(minsim).with_hundred_stage(false));
            assert_eq!(with.rules, without.rules, "minsim={minsim}");
        }
    }

    #[test]
    fn pruning_toggle_is_equivalent() {
        let m = fig_mixed();
        for &minsim in &[0.9, 0.75, 0.5, 0.3] {
            let with = find_similarities(&m, &SimilarityConfig::new(minsim));
            let without = find_similarities(
                &m,
                &SimilarityConfig::new(minsim).with_max_hits_pruning(false),
            );
            assert_eq!(with.rules, without.rules, "minsim={minsim}");
        }
    }

    #[test]
    fn forced_bitmap_switch_is_equivalent() {
        let m = fig_mixed();
        let base = find_similarities(&m, &SimilarityConfig::new(0.5));
        for tail in 1..=m.n_rows() {
            let cfg = SimilarityConfig::new(0.5).with_switch(SwitchPolicy::always_at(tail));
            let out = find_similarities(&m, &cfg);
            assert_eq!(out.rules, base.rules, "tail={tail}");
        }
    }

    #[test]
    fn row_orders_are_equivalent() {
        let m = fig_mixed();
        let base = find_similarities(&m, &SimilarityConfig::new(0.5));
        for order in [
            RowOrder::Original,
            RowOrder::ExactSparsestFirst,
            RowOrder::Custom((0..m.n_rows() as u32).rev().collect()),
        ] {
            let out = find_similarities(
                &m,
                &SimilarityConfig::new(0.5).with_row_order(order.clone()),
            );
            assert_eq!(out.rules, base.rules, "order={order:?}");
        }
    }

    /// Block application emits exactly the rules of row-by-row processing
    /// at every block size (misses_counted may legitimately differ — a
    /// boundary §5.2 deletion pre-empts later sequential misses — but the
    /// admitted/deleted/emitted balance must match).
    #[test]
    fn apply_block_matches_row_by_row() {
        let m = fig_mixed();
        let rows: Vec<Vec<ColumnId>> = m.rows().map(<[ColumnId]>::to_vec).collect();
        for &minsim in &[0.9, 0.75, 0.5, 0.3] {
            let cfg = SimilarityConfig::new(minsim);
            let mut seq = SimScan::new(m.n_cols(), &cfg, m.column_ones(), None);
            for row in m.rows() {
                seq.process_row(row);
            }
            for block in 1..=m.n_rows() {
                let mut blk = SimScan::new(m.n_cols(), &cfg, m.column_ones(), None);
                for chunk in rows.chunks(block) {
                    let mut bm = BitMatrix::new(chunk.len());
                    for (t, row) in chunk.iter().enumerate() {
                        for &c in row {
                            bm.set(c, t);
                        }
                    }
                    blk.apply_block(chunk, &bm);
                }
                blk.finish_with_bitmaps(&[]);
                let mut expected = seq.rules.clone();
                expected.sort_unstable();
                let mut got = blk.rules.clone();
                got.sort_unstable();
                assert_eq!(got, expected, "minsim={minsim} block={block}");
                let (s, b) = (seq.tally(), blk.tally());
                assert_eq!(
                    (s.candidates_admitted, s.candidates_deleted, s.rules_emitted),
                    (b.candidates_admitted, b.candidates_deleted, b.rules_emitted),
                    "minsim={minsim} block={block}"
                );
                assert_eq!(blk.cnt, seq.cnt, "minsim={minsim} block={block}");
            }
        }
    }

    #[test]
    fn density_pruning_blocks_lopsided_pairs() {
        // c0 ⊂ c1 with |S_0| = 2, |S_1| = 8: containment sim = 0.25.
        let rows: Vec<Vec<ColumnId>> = (0..8)
            .map(|r| if r < 2 { vec![0, 1] } else { vec![1] })
            .collect();
        let m = SparseMatrix::from_rows(2, rows);
        assert!(find_similarities(&m, &SimilarityConfig::new(0.5))
            .rules
            .is_empty());
        let loose = find_similarities(&m, &SimilarityConfig::new(0.25));
        assert_eq!(loose.pairs(), vec![(0, 1)]);
    }

    /// A small matrix mixing identical, similar and dissimilar columns.
    fn fig_mixed() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![0, 1, 2, 4],
                vec![0, 1, 2],
                vec![0, 1, 3, 4],
                vec![2, 3, 5],
                vec![0, 1, 2, 3],
                vec![4, 5],
                vec![0, 1, 4, 5],
            ],
        )
    }
}

#[cfg(test)]
mod output_tests {
    use super::*;

    #[test]
    fn top_and_involving_queries() {
        let m = SparseMatrix::from_rows(3, vec![vec![0, 1], vec![0, 1], vec![0, 1, 2], vec![2]]);
        let out = find_similarities(&m, &SimilarityConfig::new(0.3));
        assert!(!out.rules.is_empty());
        let top = out.top_by_similarity(1);
        assert_eq!(top.len(), 1);
        let best = top[0].similarity();
        assert!(out.rules.iter().all(|r| r.similarity() <= best + 1e-12));
        let with_two = out.involving(2);
        assert!(with_two.iter().all(|r| r.a == 2 || r.b == 2));
    }
}
