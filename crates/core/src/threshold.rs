//! Threshold arithmetic shared by every algorithm in the workspace.
//!
//! All qualification decisions — in DMC, in the baselines, and in the exact
//! oracle used by the tests — go through these predicates, so boundary
//! semantics are defined exactly once:
//!
//! * a rule with confidence **exactly** `minconf` (or similarity exactly
//!   `minsim`) qualifies, and
//! * a relative epsilon ([`REL_EPS`]) absorbs `f64` artifacts. Without it,
//!   `minconf = 0.9, ones = 10` would reject a 9-hit rule because
//!   `0.9_f64 * 10.0 = 9.000000000000002`.
//!
//! The derived budgets fix three off-by-one statements in the paper:
//!
//! * §4.3 claims a column with "fewer than 9" 1s must have no miss at
//!   `minconf = 0.9`; the exact bound is fewer than 10
//!   ([`max_misses_conf`]`(9, 0.9) == 0` but `(10, 0.9) == 1`).
//! * Algorithm 4.2 step 3 removes columns with
//!   `ones ≤ 1/(1 − minconf)`; taken literally that also drops columns that
//!   still carry sub-100% rules. The exact removal set is
//!   `max_misses_conf(ones, minconf) == 0` ([`only_exact_rules_conf`]).
//! * Algorithm 5.1 step 3 removes columns with
//!   `ones ≤ 1/(1 − minsim) − 1`; the exact keep condition for a sub-100%
//!   pair is `ones/(ones + 1) ≥ minsim` ([`only_exact_rules_sim`]).

/// Relative tolerance on threshold comparisons: a ratio within `REL_EPS` of
/// the threshold counts as meeting it.
pub const REL_EPS: f64 = 1e-9;

/// `true` iff a rule `lhs ⇒ rhs` with `hits` co-occurrences out of `ones`
/// LHS occurrences meets `minconf`.
///
/// `ones == 0` never qualifies (the confidence is undefined).
#[inline]
#[must_use]
pub fn conf_qualifies(hits: u64, ones: u64, minconf: f64) -> bool {
    ones > 0 && hits as f64 >= (minconf - REL_EPS) * ones as f64
}

/// `true` iff a pair with `hits` co-occurrences and column sizes
/// `ones_a`, `ones_b` meets `minsim` (Jaccard over the union).
///
/// # Panics
///
/// Panics in debug builds if `hits > min(ones_a, ones_b)`.
#[inline]
#[must_use]
pub fn sim_qualifies(hits: u64, ones_a: u64, ones_b: u64, minsim: f64) -> bool {
    debug_assert!(hits <= ones_a.min(ones_b));
    let union = ones_a + ones_b - hits;
    union > 0 && hits as f64 >= (minsim - REL_EPS) * union as f64
}

/// The smallest hit count that lets a column with `ones` 1s satisfy
/// `minconf` (i.e. the `ones − maxmis` bar of the paper).
///
/// Returns 0 when `ones == 0`.
#[must_use]
pub fn min_hits_conf(ones: u64, minconf: f64) -> u64 {
    if ones == 0 {
        return 0;
    }
    let mut h = ((minconf - REL_EPS) * ones as f64).ceil().max(0.0) as u64;
    h = h.min(ones);
    while h > 0 && conf_qualifies(h - 1, ones, minconf) {
        h -= 1;
    }
    while h < ones && !conf_qualifies(h, ones, minconf) {
        h += 1;
    }
    h
}

/// `maxmis(c)` of the paper: the largest tolerable miss count for a column
/// with `ones` 1s at `minconf`.
///
/// ```
/// use dmc_core::threshold::max_misses_conf;
/// assert_eq!(max_misses_conf(100, 0.85), 15); // Example 1.3
/// assert_eq!(max_misses_conf(10, 0.9), 1);    // exact boundary (see module docs)
/// assert_eq!(max_misses_conf(9, 0.9), 0);
/// assert_eq!(max_misses_conf(5, 0.8), 1);     // Example 3.1
/// ```
#[must_use]
pub fn max_misses_conf(ones: u64, minconf: f64) -> u64 {
    ones - min_hits_conf(ones, minconf)
}

/// The smallest hit count letting a pair with column sizes `ones_a ≤ ones_b`
/// meet `minsim`, or `None` when even `hits = min(ones_a, ones_b)` (full
/// containment) falls short — the §5.1 column-density pruning condition.
#[must_use]
pub fn min_hits_sim(ones_a: u64, ones_b: u64, minsim: f64) -> Option<u64> {
    let cap = ones_a.min(ones_b);
    if !sim_qualifies(cap, ones_a, ones_b, minsim) {
        return None;
    }
    // h / (ones_a + ones_b − h) ≥ s  ⟺  h ≥ s(ones_a + ones_b)/(1 + s)
    let total = (ones_a + ones_b) as f64;
    let s = minsim - REL_EPS;
    let mut h = ((s * total) / (1.0 + s)).ceil().max(0.0) as u64;
    h = h.min(cap);
    while h > 0 && sim_qualifies(h - 1, ones_a, ones_b, minsim) {
        h -= 1;
    }
    while h < cap && !sim_qualifies(h, ones_a, ones_b, minsim) {
        h += 1;
    }
    Some(h)
}

/// The per-pair miss budget of DMC-sim: misses of the smaller column
/// tolerated before the pair cannot reach `minsim`. `None` means the pair
/// is pruned outright (column-density pruning).
#[must_use]
pub fn max_misses_sim(ones_a: u64, ones_b: u64, minsim: f64) -> Option<u64> {
    min_hits_sim(ones_a, ones_b, minsim).map(|h| ones_a.min(ones_b) - h)
}

/// `true` iff a column with `ones` 1s can only participate in *exact*
/// (100%-confidence) rules as an LHS — the corrected Algorithm 4.2 step 3
/// removal condition.
#[inline]
#[must_use]
pub fn only_exact_rules_conf(ones: u64, minconf: f64) -> bool {
    max_misses_conf(ones, minconf) == 0
}

/// `true` iff a column with `ones` 1s can only participate in *identical*
/// (100%-similar) pairs as the smaller column — the corrected Algorithm 5.1
/// step 3 removal condition.
///
/// The best non-identical pair for a column of size `o` is full containment
/// in a column of size `o + 1`, giving similarity `o/(o+1)`.
#[inline]
#[must_use]
pub fn only_exact_rules_sim(ones: u64, minsim: f64) -> bool {
    !sim_qualifies(ones, ones, ones + 1, minsim)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conf_boundary_is_inclusive() {
        assert!(conf_qualifies(85, 100, 0.85));
        assert!(!conf_qualifies(84, 100, 0.85));
        assert!(conf_qualifies(9, 10, 0.9), "0.9 * 10 float artifact");
        assert!(conf_qualifies(3, 4, 0.75));
        assert!(!conf_qualifies(0, 0, 0.5), "empty column never qualifies");
        assert!(conf_qualifies(5, 5, 1.0));
        assert!(!conf_qualifies(4, 5, 1.0));
    }

    #[test]
    fn min_hits_conf_agrees_with_predicate() {
        for &minconf in &[1.0, 0.99, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.5, 0.333, 0.01] {
            for ones in 0..200u64 {
                let h = min_hits_conf(ones, minconf);
                if ones == 0 {
                    assert_eq!(h, 0);
                    continue;
                }
                assert!(
                    conf_qualifies(h, ones, minconf),
                    "h={h} ones={ones} c={minconf}"
                );
                if h > 0 {
                    assert!(
                        !conf_qualifies(h - 1, ones, minconf),
                        "h-1 qualifies: h={h} ones={ones} c={minconf}"
                    );
                }
            }
        }
    }

    #[test]
    fn example_1_3_budget() {
        // 100 ones at 85% confidence: up to 15 misses tolerated.
        assert_eq!(max_misses_conf(100, 0.85), 15);
    }

    #[test]
    fn hundred_percent_budget_is_zero() {
        for ones in 1..50 {
            assert_eq!(max_misses_conf(ones, 1.0), 0);
        }
    }

    #[test]
    fn sim_boundary_is_inclusive() {
        // 3 hits, sizes 4 and 5 -> union 6, sim 0.5.
        assert!(sim_qualifies(3, 4, 5, 0.5));
        assert!(!sim_qualifies(3, 4, 5, 0.51));
        // 9 hits, sizes 9 and 10 -> sim 0.9 exactly.
        assert!(sim_qualifies(9, 9, 10, 0.9));
        assert!(!sim_qualifies(0, 0, 0, 0.5), "empty union never qualifies");
        assert!(sim_qualifies(5, 5, 5, 1.0), "identical columns");
    }

    #[test]
    fn min_hits_sim_agrees_with_predicate() {
        for &minsim in &[1.0, 0.95, 0.9, 0.8, 0.75, 0.5, 0.25, 0.05] {
            for oa in 0..40u64 {
                for ob in oa..40u64 {
                    match min_hits_sim(oa, ob, minsim) {
                        None => {
                            assert!(
                                !sim_qualifies(oa.min(ob), oa, ob, minsim),
                                "density-pruned pair is achievable: {oa},{ob},{minsim}"
                            );
                        }
                        Some(h) => {
                            assert!(sim_qualifies(h, oa, ob, minsim));
                            if h > 0 {
                                assert!(!sim_qualifies(h - 1, oa, ob, minsim));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn density_pruning_matches_ratio_condition() {
        // §5.1: a pair with |S_i|/|S_j| < minsim is impossible.
        assert_eq!(max_misses_sim(4, 10, 0.75), None);
        assert!(max_misses_sim(9, 10, 0.75).is_some());
        // Example 5.1 says "one miss is allowed" for ones 4 and 5 at
        // minsim 0.75, but that is the loose per-column bound
        // (1 − 0.75) · 4: with one miss the best similarity is
        // 3/(4+5−3) = 0.5 < 0.75. The exact pair budget is 0 misses
        // (4 hits -> 4/5 = 0.8 qualifies); tighter budgets only delete
        // candidates earlier and cannot lose rules.
        assert_eq!(max_misses_sim(4, 5, 0.75), Some(0));
    }

    /// Cross-validate the float predicates against exact rational
    /// arithmetic for every threshold p/q with small q: `hits/ones >= p/q`
    /// iff `hits * q >= p * ones`.
    #[test]
    fn conf_predicate_matches_rational_arithmetic() {
        for q in 1u64..=12 {
            for p in 1..=q {
                let minconf = p as f64 / q as f64;
                for ones in 1u64..=60 {
                    for hits in 0..=ones {
                        let exact = hits * q >= p * ones;
                        assert_eq!(
                            conf_qualifies(hits, ones, minconf),
                            exact,
                            "hits={hits} ones={ones} minconf={p}/{q}"
                        );
                    }
                }
            }
        }
    }

    /// Same cross-check for similarity: `hits/union >= p/q` iff
    /// `hits * q >= p * union`.
    #[test]
    fn sim_predicate_matches_rational_arithmetic() {
        for q in 1u64..=8 {
            for p in 1..=q {
                let minsim = p as f64 / q as f64;
                for oa in 1u64..=20 {
                    for ob in oa..=20 {
                        for hits in 0..=oa {
                            let union = oa + ob - hits;
                            let exact = hits * q >= p * union;
                            assert_eq!(
                                sim_qualifies(hits, oa, ob, minsim),
                                exact,
                                "hits={hits} oa={oa} ob={ob} minsim={p}/{q}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn exact_only_conditions() {
        // minconf 0.9: columns with <= 9 ones only carry exact rules.
        assert!(only_exact_rules_conf(9, 0.9));
        assert!(!only_exact_rules_conf(10, 0.9));
        // minsim 0.9: ones 9 can reach 9/10 = 0.9 -> keep; ones 8 -> 8/9 < 0.9.
        assert!(!only_exact_rules_sim(9, 0.9));
        assert!(only_exact_rules_sim(8, 0.9));
        // minsim 1.0: nothing but identical pairs ever qualifies.
        assert!(only_exact_rules_sim(1000, 1.0));
    }
}
