//! Independent re-verification of mined rules against a matrix.
//!
//! `dmc verify` and the test harness use this to check a rules file with
//! arithmetic that shares nothing with the miners' counting paths: hits
//! are recomputed from the column row-sets by sorted-merge intersection.

use crate::rules::{ImplicationRule, SimilarityRule};
use crate::threshold::{conf_qualifies, sim_qualifies};
use dmc_matrix::SparseMatrix;

/// The outcome of re-checking one rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuleCheck {
    /// Counts and threshold both check out.
    Valid,
    /// Stored counts disagree with the matrix; payload is the recomputed
    /// (hits, lhs/a ones, rhs/b ones).
    WrongCounts(u32, u32, u32),
    /// Counts are right but the rule misses the threshold.
    BelowThreshold,
}

fn intersection(a: &[u32], b: &[u32]) -> u32 {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Re-checks implication rules against `matrix` at `minconf`.
///
/// Returns one [`RuleCheck`] per rule, in order.
#[must_use]
pub fn verify_implications(
    matrix: &SparseMatrix,
    rules: &[ImplicationRule],
    minconf: f64,
) -> Vec<RuleCheck> {
    let cols = matrix.column_rows();
    rules
        .iter()
        .map(|r| {
            let lhs_rows = &cols[r.lhs as usize];
            let rhs_rows = &cols[r.rhs as usize];
            let hits = intersection(lhs_rows, rhs_rows);
            let (ol, or_) = (lhs_rows.len() as u32, rhs_rows.len() as u32);
            if hits != r.hits || ol != r.lhs_ones || or_ != r.rhs_ones {
                RuleCheck::WrongCounts(hits, ol, or_)
            } else if !conf_qualifies(u64::from(hits), u64::from(ol), minconf) {
                RuleCheck::BelowThreshold
            } else {
                RuleCheck::Valid
            }
        })
        .collect()
}

/// Re-checks similarity rules against `matrix` at `minsim`.
#[must_use]
pub fn verify_similarities(
    matrix: &SparseMatrix,
    rules: &[SimilarityRule],
    minsim: f64,
) -> Vec<RuleCheck> {
    let cols = matrix.column_rows();
    rules
        .iter()
        .map(|r| {
            let a_rows = &cols[r.a as usize];
            let b_rows = &cols[r.b as usize];
            let hits = intersection(a_rows, b_rows);
            let (oa, ob) = (a_rows.len() as u32, b_rows.len() as u32);
            if hits != r.hits || oa != r.a_ones || ob != r.b_ones {
                RuleCheck::WrongCounts(hits, oa, ob)
            } else if !sim_qualifies(u64::from(hits), u64::from(oa), u64::from(ob), minsim) {
                RuleCheck::BelowThreshold
            } else {
                RuleCheck::Valid
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_implications, find_similarities, ImplicationConfig, SimilarityConfig};

    fn sample() -> SparseMatrix {
        SparseMatrix::from_rows(
            4,
            vec![vec![0, 1, 2], vec![0, 1], vec![1, 2, 3], vec![0, 1, 2]],
        )
    }

    #[test]
    fn mined_rules_verify_valid() {
        let m = sample();
        let imps = find_implications(&m, &ImplicationConfig::new(0.6)).rules;
        assert!(!imps.is_empty());
        assert!(verify_implications(&m, &imps, 0.6)
            .iter()
            .all(|c| *c == RuleCheck::Valid));

        let sims = find_similarities(&m, &SimilarityConfig::new(0.5)).rules;
        assert!(!sims.is_empty());
        assert!(verify_similarities(&m, &sims, 0.5)
            .iter()
            .all(|c| *c == RuleCheck::Valid));
    }

    #[test]
    fn detects_wrong_counts() {
        let m = sample();
        let mut rule = find_implications(&m, &ImplicationConfig::new(0.6)).rules[0];
        rule.hits += 1;
        let checks = verify_implications(&m, &[rule], 0.6);
        assert!(matches!(checks[0], RuleCheck::WrongCounts(..)));
    }

    #[test]
    fn detects_below_threshold() {
        let m = sample();
        // A correct-count rule checked at a stricter threshold.
        let rules = find_implications(&m, &ImplicationConfig::new(0.6)).rules;
        let weakest = rules
            .iter()
            .min_by(|a, b| a.confidence().partial_cmp(&b.confidence()).unwrap())
            .copied()
            .unwrap();
        assert!(weakest.confidence() < 1.0);
        let checks = verify_implications(&m, &[weakest], 1.0);
        assert_eq!(checks[0], RuleCheck::BelowThreshold);
    }
}
