//! Parallel DMC-imp (the paper's §7 future-work item 2).
//!
//! The paper suggests a divide-and-conquer parallelization in the style of
//! FDM. Miss counting decomposes cleanly by **LHS column**: the candidate
//! list of `c_j` is touched only at rows containing `c_j`, and never reads
//! another column's list. So each worker scans the whole row stream but owns
//! a disjoint subset of LHS columns (round-robin, to balance the skewed
//! column-density distributions of Fig 4); every column remains visible as
//! an RHS candidate to every worker.
//!
//! The result is bit-identical to the sequential scan: same rules, same
//! counts. Workers use `crossbeam` scoped threads and return their rules
//! for a deterministic merge-and-sort.

use crate::base::BaseScan;
use crate::bitmap::finish_with_bitmaps;
use crate::config::{ImplicationConfig, SimilarityConfig};
use crate::imp::ImplicationOutput;
use crate::rules::{ImplicationRule, SimilarityRule};
use crate::sim::{SimScan, SimilarityOutput};
use crate::threshold::conf_qualifies;
use dmc_matrix::{ColumnId, SparseMatrix};
use dmc_metrics::{CounterMemory, PhaseTimer};

/// Mines implication rules with `threads` workers; output is identical to
/// [`crate::find_implications`].
///
/// `bitmap_switch_at` is reported as `None`: each worker applies the switch
/// policy to its own (smaller) counter array, so there is no single switch
/// position for the run.
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn find_implications_parallel(
    matrix: &SparseMatrix,
    config: &ImplicationConfig,
    threads: usize,
) -> ImplicationOutput {
    assert!(threads > 0, "need at least one worker");
    let mut timer = PhaseTimer::new();

    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };

    // Workers mine *all* rules (including exact ones) for their LHS
    // partition in a single pass, so neither the separate 100% stage nor
    // the Algorithm 4.2 step-3 column removal applies here; every column
    // stays active. The sequential driver remains the reference
    // implementation of the staged pipeline.
    let active: Vec<bool> = vec![true; matrix.n_cols()];

    let scan_guard = timer.enter("<100% rules");
    let worker_results: Vec<(Vec<ImplicationRule>, CounterMemory)> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let ones = ones.clone();
                    let active = active.clone();
                    let order = &order;
                    scope.spawn(move |_| {
                        let mut scan = BaseScan::new(
                            matrix.n_cols(),
                            config.minconf,
                            ones,
                            Some(active),
                            config.release_completed,
                            false,
                        );
                        let lhs: Vec<bool> =
                            (0..matrix.n_cols()).map(|c| c % threads == w).collect();
                        scan.set_lhs_mask(lhs);
                        let mut switched = false;
                        for (pos, &r) in order.iter().enumerate() {
                            let remaining = order.len() - pos;
                            if config
                                .switch
                                .should_switch(remaining, scan.memory().current_bytes())
                            {
                                let tail: Vec<&[ColumnId]> = order[pos..]
                                    .iter()
                                    .map(|&r| matrix.row(r as usize))
                                    .collect();
                                finish_with_bitmaps(&mut scan, &tail);
                                switched = true;
                                break;
                            }
                            scan.process_row(matrix.row(r as usize));
                        }
                        if !switched {
                            finish_with_bitmaps(&mut scan, &[]);
                        }
                        scan.into_parts()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");
    drop(scan_guard);

    let mut rules = Vec::new();
    let mut memory = CounterMemory::new();
    for (worker_rules, mem) in worker_results {
        rules.extend(worker_rules);
        memory.absorb_peak(&mem);
    }

    if config.emit_reverse {
        let reversed: Vec<ImplicationRule> = rules
            .iter()
            .filter(|r| conf_qualifies(u64::from(r.hits), u64::from(r.rhs_ones), config.minconf))
            .map(|r| r.reversed())
            .collect();
        rules.extend(reversed);
    }
    rules.sort_unstable();
    rules.dedup();
    ImplicationOutput {
        rules,
        phases: timer.report(),
        memory,
        bitmap_switch_at: None,
    }
}

/// Mines similarity rules with `threads` workers; output is identical to
/// [`crate::find_similarities`]. Workers partition the smaller-column side
/// of each pair round-robin; `cnt` counters (which the §5.2 bound reads for
/// both sides) advance in every worker.
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn find_similarities_parallel(
    matrix: &SparseMatrix,
    config: &SimilarityConfig,
    threads: usize,
) -> SimilarityOutput {
    assert!(threads > 0, "need at least one worker");
    let mut timer = PhaseTimer::new();

    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };

    let scan_guard = timer.enter("<100% rules");
    let worker_results: Vec<(Vec<SimilarityRule>, CounterMemory)> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let ones = ones.clone();
                    let order = &order;
                    scope.spawn(move |_| {
                        let mut scan = SimScan::new(matrix.n_cols(), config, ones, None);
                        let lhs: Vec<bool> =
                            (0..matrix.n_cols()).map(|c| c % threads == w).collect();
                        scan.set_lhs_mask(lhs);
                        let mut switched = false;
                        for (pos, &r) in order.iter().enumerate() {
                            let remaining = order.len() - pos;
                            if config.switch.should_switch(remaining, scan.memory_bytes()) {
                                let tail: Vec<&[ColumnId]> = order[pos..]
                                    .iter()
                                    .map(|&r| matrix.row(r as usize))
                                    .collect();
                                scan.finish_with_bitmaps(&tail);
                                switched = true;
                                break;
                            }
                            scan.process_row(matrix.row(r as usize));
                        }
                        if !switched {
                            scan.finish_with_bitmaps(&[]);
                        }
                        scan.into_parts()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");
    drop(scan_guard);

    let mut rules = Vec::new();
    let mut memory = CounterMemory::new();
    for (worker_rules, mem) in worker_results {
        rules.extend(worker_rules);
        memory.absorb_peak(&mem);
    }
    rules.sort_unstable();
    rules.dedup();
    SimilarityOutput {
        rules,
        phases: timer.report(),
        memory,
        bitmap_switch_at: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{find_implications, find_similarities};
    use dmc_matrix::SparseMatrix;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    #[test]
    fn matches_sequential_at_various_thread_counts() {
        let m = fig2();
        for &minconf in &[1.0, 0.8, 0.5] {
            let cfg = ImplicationConfig::new(minconf);
            let seq = find_implications(&m, &cfg);
            for threads in [1, 2, 3, 8] {
                let par = find_implications_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minconf={minconf} threads={threads}");
            }
        }
    }

    #[test]
    fn reverse_emission_matches_sequential() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8).with_reverse(true);
        let seq = find_implications(&m, &cfg);
        let par = find_implications_parallel(&m, &cfg, 4);
        assert_eq!(par.rules, seq.rules);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let m = fig2();
        let _ = find_implications_parallel(&m, &ImplicationConfig::new(0.9), 0);
    }

    #[test]
    fn sim_matches_sequential_at_various_thread_counts() {
        let m = fig2();
        for &minsim in &[1.0, 0.75, 0.4] {
            let cfg = SimilarityConfig::new(minsim);
            let seq = find_similarities(&m, &cfg);
            for threads in [1, 2, 3, 8] {
                let par = find_similarities_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minsim={minsim} threads={threads}");
            }
        }
    }

    #[test]
    fn sim_parallel_with_pruning_disabled_matches() {
        let m = fig2();
        let cfg = SimilarityConfig::new(0.6).with_max_hits_pruning(false);
        let seq = find_similarities(&m, &cfg);
        let par = find_similarities_parallel(&m, &cfg, 3);
        assert_eq!(par.rules, seq.rules);
    }
}
