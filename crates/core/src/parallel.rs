//! Parallel DMC-imp / DMC-sim over an in-memory matrix (the paper's §7
//! future-work item 2).
//!
//! The paper suggests a divide-and-conquer parallelization in the style of
//! FDM. Miss counting decomposes cleanly by **LHS column**: the candidate
//! list of `c_j` is touched only at rows containing `c_j`, and never reads
//! another column's list. So each worker owns a disjoint subset of LHS
//! columns (round-robin, to balance the skewed column-density
//! distributions of Fig 4); every column remains visible as an RHS
//! candidate to every worker.
//!
//! Rows are fanned out by the shared batched engine (`crate::fanout`): one
//! reader thread traverses the matrix in scan order exactly once per stage
//! and broadcasts reference-counted row batches to the workers — the
//! matrix is no longer walked `threads`× per pass. The drivers run the
//! same staged pipeline as their sequential counterparts (100%-rule stage,
//! Algorithm 4.2 step-3 column removal, sub-100% stage), so the merged,
//! sorted output is bit-identical to [`crate::find_implications`] /
//! [`crate::find_similarities`].
//!
//! Per-worker phase times, counter-array peaks and bitmap-switch positions
//! are reported in the output's `workers` field.

use crate::config::{ImplicationConfig, SimilarityConfig};
use crate::fanout::{parallel_imp_pipeline, parallel_sim_pipeline, RunContext};
use crate::imp::ImplicationOutput;
use crate::sim::SimilarityOutput;
use dmc_matrix::{RowId, SparseMatrix};
use dmc_metrics::PhaseTimer;
use std::convert::Infallible;

fn unwrap_infallible<T>(result: Result<T, Infallible>) -> T {
    match result {
        Ok(value) => value,
        Err(never) => match never {},
    }
}

/// Mines implication rules with `threads` workers; output is identical to
/// [`crate::find_implications`] (same staged pipeline, same rules).
///
/// `bitmap_switch_at` is the run's switch position when `threads == 1`;
/// with more workers each applies the switch policy to its own (smaller)
/// counter array, so there is no single position — see the per-worker
/// `workers[w].switch_at` instead.
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::implications(minconf).threads(n).run(&matrix)`).
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn find_implications_parallel(
    matrix: &SparseMatrix,
    config: &ImplicationConfig,
    threads: usize,
) -> ImplicationOutput {
    assert!(threads > 0, "need at least one worker");
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };
    unwrap_infallible(parallel_imp_pipeline(
        matrix.n_cols(),
        &ones,
        order.len(),
        config,
        RunContext {
            threads,
            mode: "in-memory",
            spill_bytes: 0,
            stats: None,
            started,
        },
        timer,
        || Ok(matrix_rows(matrix, &order)),
    ))
}

/// Mines similarity rules with `threads` workers; output is identical to
/// [`crate::find_similarities`]. Workers partition the smaller-column side
/// of each pair round-robin; `cnt` counters (which the §5.2 bound reads
/// for both sides) advance in every worker.
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::similarities(minsim).threads(n).run(&matrix)`).
///
/// # Panics
///
/// Panics if `threads == 0`.
#[must_use]
pub fn find_similarities_parallel(
    matrix: &SparseMatrix,
    config: &SimilarityConfig,
    threads: usize,
) -> SimilarityOutput {
    assert!(threads > 0, "need at least one worker");
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };
    unwrap_infallible(parallel_sim_pipeline(
        matrix.n_cols(),
        &ones,
        order.len(),
        config,
        RunContext {
            threads,
            mode: "in-memory",
            spill_bytes: 0,
            stats: None,
            started,
        },
        timer,
        || Ok(matrix_rows(matrix, &order)),
    ))
}

/// The matrix's rows in scan order as an infallible fan-out source; each
/// row is copied out exactly once per pass.
fn matrix_rows<'a>(
    matrix: &'a SparseMatrix,
    order: &'a [RowId],
) -> impl Iterator<Item = Result<Vec<dmc_matrix::ColumnId>, Infallible>> + Send + 'a {
    order.iter().map(|&r| Ok(matrix.row(r as usize).to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchPolicy;
    use crate::{find_implications, find_similarities};
    use dmc_matrix::SparseMatrix;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    #[test]
    fn matches_sequential_at_various_thread_counts() {
        let m = fig2();
        for &minconf in &[1.0, 0.8, 0.5] {
            let cfg = ImplicationConfig::new(minconf);
            let seq = find_implications(&m, &cfg);
            for threads in [1, 2, 3, 8] {
                let par = find_implications_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minconf={minconf} threads={threads}");
                assert_eq!(par.workers.len(), threads);
            }
        }
    }

    #[test]
    fn staged_pipeline_matches_sequential_with_exact_only_columns() {
        // Column 5 appears once: at minconf 0.9 its maxmis is 0, so the
        // staged pipeline must remove it from the sub-100% stage
        // (Algorithm 4.2 step 3) yet still report its exact rules from the
        // 100% stage. Regression for the old all-columns-active driver.
        let m = SparseMatrix::from_rows(
            6,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2, 5],
                vec![0, 1],
                vec![0, 1, 3],
                vec![1, 3, 4],
                vec![0, 2, 4],
                vec![0, 1, 4],
                vec![1, 2, 3],
                vec![0, 1, 2],
                vec![0, 1, 3],
            ],
        );
        for &minconf in &[0.9, 0.75, 0.6] {
            let cfg = ImplicationConfig::new(minconf);
            let seq = find_implications(&m, &cfg);
            assert!(
                !seq.rules.is_empty(),
                "test needs a non-trivial rule set at {minconf}"
            );
            for threads in 1..=4 {
                let par = find_implications_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minconf={minconf} threads={threads}");
            }
        }
        // The exact-only column's 100% rules survive the staged pipeline.
        let par = find_implications_parallel(&m, &ImplicationConfig::new(0.9), 3);
        assert!(
            par.rules.iter().any(|r| r.lhs == 5),
            "column 5's exact rule must come from the 100% stage"
        );
    }

    #[test]
    fn per_worker_switch_positions_are_reported() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8).with_switch(SwitchPolicy::always_at(3));
        for threads in [1, 2, 4] {
            let par = find_implications_parallel(&m, &cfg, threads);
            assert_eq!(par.workers.len(), threads);
            for w in &par.workers {
                assert!(
                    w.switch_at.is_some(),
                    "always_at(3) must switch every worker (threads={threads})"
                );
            }
            if threads == 1 {
                let seq = find_implications(&m, &cfg);
                assert_eq!(par.bitmap_switch_at, seq.bitmap_switch_at);
            } else {
                assert_eq!(par.bitmap_switch_at, None);
            }
        }
    }

    #[test]
    fn reverse_emission_matches_sequential() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8).with_reverse(true);
        let seq = find_implications(&m, &cfg);
        let par = find_implications_parallel(&m, &cfg, 4);
        assert_eq!(par.rules, seq.rules);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let m = fig2();
        let _ = find_implications_parallel(&m, &ImplicationConfig::new(0.9), 0);
    }

    #[test]
    fn sim_matches_sequential_at_various_thread_counts() {
        let m = fig2();
        for &minsim in &[1.0, 0.75, 0.4] {
            let cfg = SimilarityConfig::new(minsim);
            let seq = find_similarities(&m, &cfg);
            for threads in [1, 2, 3, 8] {
                let par = find_similarities_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minsim={minsim} threads={threads}");
                assert_eq!(par.workers.len(), threads);
            }
        }
    }

    #[test]
    fn sim_parallel_with_pruning_disabled_matches() {
        let m = fig2();
        let cfg = SimilarityConfig::new(0.6).with_max_hits_pruning(false);
        let seq = find_similarities(&m, &cfg);
        let par = find_similarities_parallel(&m, &cfg, 3);
        assert_eq!(par.rules, seq.rules);
    }

    #[test]
    fn worker_phase_times_cover_the_stages() {
        let m = fig2();
        let par = find_implications_parallel(&m, &ImplicationConfig::new(0.8), 2);
        for w in &par.workers {
            let names: Vec<&str> = w.phases.phases().iter().map(|(n, _)| *n).collect();
            assert!(names.contains(&"100% rules"), "phases: {names:?}");
            assert!(names.contains(&"<100% rules"), "phases: {names:?}");
            assert!(names.contains(&"bitmap tail"), "phases: {names:?}");
        }
    }
}
