//! Parallel DMC-imp / DMC-sim over an in-memory matrix (the paper's §7
//! future-work item 2).
//!
//! These drivers run the work-assisting block scheduler of
//! [`crate::fanout`]: there is **one scan per stage**, the calling thread
//! streams the matrix in scan order exactly once per stage and chops it
//! into row blocks, and workers claim blocks from a shared cursor,
//! aggregate each into per-block column bitmaps, and take turns folding
//! the aggregates into the scan in global block order. No counting work
//! is duplicated across workers (the old design ran the full scan
//! `threads`× over disjoint LHS partitions, which made 4 threads slower
//! than 1 on in-memory inputs).
//!
//! Because blocks fold strictly in row order, the scan passes through the
//! sequential scan's state at every block boundary: the sorted rule set
//! is bit-identical to [`crate::find_implications`] /
//! [`crate::find_similarities`] at any thread count. The §4.2 bitmap
//! switch is evaluated at block boundaries inside the fold, so the run's
//! `bitmap_switch_at` is a single, global, block-aligned position —
//! identical at every thread count.
//!
//! Per-worker phase times, credited tally shares, and block-scheduling
//! counters (blocks claimed / stolen) are reported in the output's
//! `workers` field.

use crate::config::{ImplicationConfig, SimilarityConfig};
use crate::fanout::{parallel_imp_pipeline, parallel_sim_pipeline, RunContext};
use crate::imp::ImplicationOutput;
use crate::sim::SimilarityOutput;
use dmc_matrix::{RowId, SparseMatrix};
use dmc_metrics::PhaseTimer;
use std::convert::Infallible;

fn unwrap_infallible<T>(result: Result<T, Infallible>) -> T {
    match result {
        Ok(value) => value,
        Err(never) => match never {},
    }
}

/// Mines implication rules with `threads` workers; output is identical to
/// [`crate::find_implications`] (same staged pipeline, same rules).
///
/// `bitmap_switch_at` is the run's single, global switch position at any
/// thread count, aligned to a block boundary (a multiple of the effective
/// block size). `threads == 0` is clamped to one worker.
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::implications(minconf).threads(n).mine(&matrix)`).
#[must_use]
pub fn find_implications_parallel(
    matrix: &SparseMatrix,
    config: &ImplicationConfig,
    threads: usize,
) -> ImplicationOutput {
    let threads = threads.max(1);
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };
    unwrap_infallible(parallel_imp_pipeline(
        matrix.n_cols(),
        &ones,
        order.len(),
        config,
        RunContext {
            threads,
            mode: "in-memory",
            spill_bytes: 0,
            stats: None,
            started,
        },
        timer,
        || Ok(matrix_rows(matrix, &order)),
    ))
}

/// Mines similarity rules with `threads` workers; output is identical to
/// [`crate::find_similarities`] (same staged pipeline, same rules, one
/// shared scan fed by the block scheduler).
///
/// New code should prefer the [`crate::Miner`] facade
/// (`Miner::similarities(minsim).threads(n).mine(&matrix)`).
/// `threads == 0` is clamped to one worker.
#[must_use]
pub fn find_similarities_parallel(
    matrix: &SparseMatrix,
    config: &SimilarityConfig,
    threads: usize,
) -> SimilarityOutput {
    let threads = threads.max(1);
    let started = std::time::Instant::now();
    let mut timer = PhaseTimer::new();
    let (ones, order) = {
        let _g = timer.enter("pre-scan");
        (matrix.column_ones(), config.row_order.permutation(matrix))
    };
    unwrap_infallible(parallel_sim_pipeline(
        matrix.n_cols(),
        &ones,
        order.len(),
        config,
        RunContext {
            threads,
            mode: "in-memory",
            spill_bytes: 0,
            stats: None,
            started,
        },
        timer,
        || Ok(matrix_rows(matrix, &order)),
    ))
}

/// The matrix's rows in scan order as an infallible fan-out source; each
/// row is copied out exactly once per pass.
fn matrix_rows<'a>(
    matrix: &'a SparseMatrix,
    order: &'a [RowId],
) -> impl Iterator<Item = Result<Vec<dmc_matrix::ColumnId>, Infallible>> + Send + 'a {
    order.iter().map(|&r| Ok(matrix.row(r as usize).to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchPolicy;
    use crate::{find_implications, find_similarities};
    use dmc_matrix::SparseMatrix;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    #[test]
    fn matches_sequential_at_various_thread_counts() {
        let m = fig2();
        for &minconf in &[1.0, 0.8, 0.5] {
            let cfg = ImplicationConfig::new(minconf);
            let seq = find_implications(&m, &cfg);
            for threads in [1, 2, 3, 8] {
                let par = find_implications_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minconf={minconf} threads={threads}");
                assert_eq!(par.workers.len(), threads);
            }
        }
    }

    #[test]
    fn staged_pipeline_matches_sequential_with_exact_only_columns() {
        // Column 5 appears once: at minconf 0.9 its maxmis is 0, so the
        // staged pipeline must remove it from the sub-100% stage
        // (Algorithm 4.2 step 3) yet still report its exact rules from the
        // 100% stage. Regression for the old all-columns-active driver.
        let m = SparseMatrix::from_rows(
            6,
            vec![
                vec![0, 1, 2],
                vec![0, 1, 2, 5],
                vec![0, 1],
                vec![0, 1, 3],
                vec![1, 3, 4],
                vec![0, 2, 4],
                vec![0, 1, 4],
                vec![1, 2, 3],
                vec![0, 1, 2],
                vec![0, 1, 3],
            ],
        );
        for &minconf in &[0.9, 0.75, 0.6] {
            let cfg = ImplicationConfig::new(minconf);
            let seq = find_implications(&m, &cfg);
            assert!(
                !seq.rules.is_empty(),
                "test needs a non-trivial rule set at {minconf}"
            );
            for threads in 1..=4 {
                let par = find_implications_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minconf={minconf} threads={threads}");
            }
        }
        // The exact-only column's 100% rules survive the staged pipeline.
        let par = find_implications_parallel(&m, &ImplicationConfig::new(0.9), 3);
        assert!(
            par.rules.iter().any(|r| r.lhs == 5),
            "column 5's exact rule must come from the 100% stage"
        );
    }

    /// The first block boundary where `remaining <= max_tail` — what the
    /// fold's boundary-aligned switch check must report.
    fn expected_block_switch(total: usize, block: usize, max_tail: usize) -> Option<usize> {
        let mut p = 0;
        while p < total {
            if total - p <= max_tail {
                return Some(p);
            }
            p += block;
        }
        None
    }

    #[test]
    fn switch_position_is_global_and_block_aligned() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8)
            .with_switch(SwitchPolicy::always_at(3))
            .with_block_rows(2);
        let block = crate::fanout::effective_block_rows(cfg.block_rows);
        let expected = expected_block_switch(m.n_rows(), block, 3);
        let seq = find_implications(&m, &cfg);
        for threads in [1, 2, 4] {
            let par = find_implications_parallel(&m, &cfg, threads);
            assert_eq!(par.workers.len(), threads);
            assert_eq!(
                par.bitmap_switch_at, expected,
                "switch is block-aligned and thread-count invariant (threads={threads})"
            );
            // Workers no longer switch independently; the position is
            // run-level.
            assert!(par.workers.iter().all(|w| w.switch_at.is_none()));
            assert_eq!(par.rules, seq.rules, "threads={threads}");
        }
    }

    #[test]
    fn reverse_emission_matches_sequential() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8).with_reverse(true);
        let seq = find_implications(&m, &cfg);
        let par = find_implications_parallel(&m, &cfg, 4);
        assert_eq!(par.rules, seq.rules);
    }

    #[test]
    fn zero_threads_clamped_to_one_worker() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.9);
        let seq = find_implications(&m, &cfg);
        let par = find_implications_parallel(&m, &cfg, 0);
        assert_eq!(par.workers.len(), 1, "threads=0 clamps to one worker");
        assert_eq!(par.rules, seq.rules);
        let par = find_similarities_parallel(&m, &SimilarityConfig::new(0.75), 0);
        assert_eq!(par.workers.len(), 1);
    }

    #[test]
    fn sim_matches_sequential_at_various_thread_counts() {
        let m = fig2();
        for &minsim in &[1.0, 0.75, 0.4] {
            let cfg = SimilarityConfig::new(minsim);
            let seq = find_similarities(&m, &cfg);
            for threads in [1, 2, 3, 8] {
                let par = find_similarities_parallel(&m, &cfg, threads);
                assert_eq!(par.rules, seq.rules, "minsim={minsim} threads={threads}");
                assert_eq!(par.workers.len(), threads);
            }
        }
    }

    #[test]
    fn sim_parallel_with_pruning_disabled_matches() {
        let m = fig2();
        let cfg = SimilarityConfig::new(0.6).with_max_hits_pruning(false);
        let seq = find_similarities(&m, &cfg);
        let par = find_similarities_parallel(&m, &cfg, 3);
        assert_eq!(par.rules, seq.rules);
    }

    #[test]
    fn worker_phase_times_cover_the_stages() {
        let m = fig2();
        let par = find_implications_parallel(&m, &ImplicationConfig::new(0.8), 2);
        let mut any_tail = false;
        for w in &par.workers {
            let names: Vec<&str> = w.phases.phases().iter().map(|(n, _)| *n).collect();
            assert!(names.contains(&"100% rules"), "phases: {names:?}");
            assert!(names.contains(&"<100% rules"), "phases: {names:?}");
            any_tail |= names.contains(&"bitmap tail");
        }
        // Exactly one worker runs each stage's finishing fold, so the
        // tail phase shows up somewhere but not necessarily everywhere.
        assert!(any_tail, "some worker must report the finishing fold");
    }

    #[test]
    fn block_counters_sum_to_block_count_per_stage() {
        let m = fig2();
        let cfg = ImplicationConfig::new(0.8).with_block_rows(2);
        let block = crate::fanout::effective_block_rows(cfg.block_rows);
        let blocks_per_stage = m.n_rows().div_ceil(block) as u64;
        for threads in [1, 3] {
            let par = find_implications_parallel(&m, &cfg, threads);
            let claimed: u64 = par.workers.iter().map(|w| w.blocks_processed).sum();
            // Two counting stages (100% + sub-100%) each chop the same rows.
            assert_eq!(claimed, 2 * blocks_per_stage, "threads={threads}");
            let stolen: u64 = par.workers.iter().map(|w| w.blocks_stolen).sum();
            assert!(stolen <= claimed);
        }
    }
}
