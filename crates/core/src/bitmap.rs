//! DMC-bitmap (Algorithm 4.1): the low-memory tail phase.
//!
//! When scanning sparsest-first, the densest rows come last and can explode
//! the candidate lists (§4.2, Fig 3). Once few rows remain and the counter
//! array is large, the driver stops miss-counting, loads the remaining
//! *tail* rows, builds one bitmap per column over those rows, and finishes
//! in two phases:
//!
//! * **Phase 1** — columns whose candidate list is *closed*
//!   (`cnt > maxmis`): the list is final, so each candidate's total miss
//!   count is its counter plus `popcount(bm(c_j) & !bm(c_k))`.
//! * **Phase 2** — columns still *open* (`cnt ≤ maxmis`): the list may be
//!   missing tail-only partners, so hits are counted instead: seed hit
//!   counters with `cnt(c_j) − mis(c_j, c_k)` from the list, add tail
//!   co-occurrences, and emit partners with
//!   `hit ≥ ones(c_j) − maxmis(c_j)`.
//!
//! Candidates that were *deleted* during the counting scan need no special
//! care in Phase 2: their misses already exceeded the budget, so even
//! crediting them zero head hits cannot raise them back over the bar.

use crate::base::BaseScan;
use crate::fxhash::FxHashMap;
use crate::rules::ImplicationRule;
use dmc_bitset::BitMatrix;
use dmc_matrix::{canonical_less, ColumnId};

/// Builds the per-column tail bitmaps. Only columns that are active, not
/// done, and actually appear in the tail get a bitmap (absent ≡ all-zero).
pub(crate) fn build_tail_bitmaps(
    tail: &[&[ColumnId]],
    active: &[bool],
    done: &[bool],
) -> BitMatrix {
    let mut bm = BitMatrix::new(tail.len());
    for (t, row) in tail.iter().enumerate() {
        for &k in *row {
            if active[k as usize] && !done[k as usize] {
                bm.set(k, t);
            }
        }
    }
    bm
}

/// Finishes an implication [`BaseScan`] over the unscanned `tail` rows.
///
/// After this returns, every active column's rules have been emitted and
/// the scan is complete.
pub fn finish_with_bitmaps(scan: &mut BaseScan, tail: &[&[ColumnId]]) {
    let bm = build_tail_bitmaps(tail, &scan.active, &scan.done);
    let n_cols = scan.ones.len();

    for j in 0..n_cols as ColumnId {
        let ji = j as usize;
        if !scan.needs_finish(j) || scan.ones[ji] == 0 {
            continue;
        }
        if scan.cnt[ji] > scan.maxmis[ji] {
            phase1_closed(scan, &bm, j);
        } else {
            phase2_open(scan, &bm, tail, j);
        }
        scan.done[ji] = true;
    }
}

/// Phase 1: finish a closed column by bitmap miss counting.
fn phase1_closed(scan: &mut BaseScan, bm: &BitMatrix, j: ColumnId) {
    let ji = j as usize;
    let Some(list) = scan.lists.release(j, &mut scan.mem) else {
        return;
    };
    let ones_j = scan.ones[ji];
    let maxmis_j = scan.maxmis[ji];
    for cand in list {
        let total_miss = cand.miss + bm.miss_count(j, cand.col) as u32;
        if total_miss <= maxmis_j {
            scan.tally.emit(1);
            scan.rules.push(ImplicationRule {
                lhs: j,
                rhs: cand.col,
                hits: ones_j - total_miss,
                lhs_ones: ones_j,
                rhs_ones: scan.ones[cand.col as usize],
            });
        } else {
            scan.tally.delete(1);
        }
    }
}

/// Phase 2: finish an open column by hit counting over its tail rows.
fn phase2_open(scan: &mut BaseScan, bm: &BitMatrix, tail: &[&[ColumnId]], j: ColumnId) {
    let ji = j as usize;
    let ones_j = scan.ones[ji];
    let min_hits = ones_j - scan.maxmis[ji];
    let cnt_j = scan.cnt[ji];

    let mut hits: FxHashMap<ColumnId, u32> = FxHashMap::default();
    let mut from_list = 0;
    if let Some(list) = scan.lists.release(j, &mut scan.mem) {
        from_list = list.len();
        for cand in list {
            hits.insert(cand.col, cnt_j - cand.miss);
        }
    }
    if let Some(rows_of_j) = bm.get(j) {
        for t in rows_of_j.ones() {
            for &k in tail[t] {
                if k != j && scan.active[k as usize] {
                    *hits.entry(k).or_insert(0) += 1;
                }
            }
        }
    }
    // Tail-only partners entered the hit table without ever being list
    // candidates; count them as admissions so the tally reconciles.
    scan.tally.admit(hits.len() - from_list);
    for (k, h) in hits {
        if h >= min_hits && canonical_less(j, ones_j, k, scan.ones[k as usize]) {
            scan.tally.emit(1);
            scan.rules.push(ImplicationRule {
                lhs: j,
                rhs: k,
                hits: h,
                lhs_ones: ones_j,
                rhs_ones: scan.ones[k as usize],
            });
        } else {
            scan.tally.delete(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmc_matrix::SparseMatrix;

    fn fig2() -> SparseMatrix {
        SparseMatrix::from_rows(
            6,
            vec![
                vec![1, 5],
                vec![2, 3, 4],
                vec![2, 4],
                vec![0, 1, 2, 5],
                vec![0, 1, 2, 3, 4],
                vec![0, 1, 3, 5],
                vec![0, 2, 3, 4, 5],
                vec![3, 5],
                vec![0, 1, 4],
            ],
        )
    }

    fn run_with_switch_at(
        matrix: &SparseMatrix,
        minconf: f64,
        head_rows: usize,
    ) -> Vec<ImplicationRule> {
        let mut scan = BaseScan::new(
            matrix.n_cols(),
            minconf,
            matrix.column_ones(),
            None,
            true,
            false,
        );
        for r in 0..head_rows {
            scan.process_row(matrix.row(r));
        }
        let tail: Vec<&[ColumnId]> = (head_rows..matrix.n_rows())
            .map(|r| matrix.row(r))
            .collect();
        finish_with_bitmaps(&mut scan, &tail);
        let (mut rules, _) = scan.into_parts();
        rules.sort();
        rules
    }

    /// Switching at any point must produce exactly the rules of the pure
    /// counting scan.
    #[test]
    fn switch_point_is_output_invariant() {
        let m = fig2();
        let expected = run_with_switch_at(&m, 0.8, m.n_rows());
        assert_eq!(
            expected.iter().map(|r| (r.lhs, r.rhs)).collect::<Vec<_>>(),
            vec![(0, 1), (2, 4)]
        );
        for head in 0..m.n_rows() {
            assert_eq!(run_with_switch_at(&m, 0.8, head), expected, "head={head}");
        }
    }

    #[test]
    fn switch_point_invariant_at_other_thresholds() {
        let m = fig2();
        for &minconf in &[1.0, 0.9, 0.6, 0.4] {
            let expected = run_with_switch_at(&m, minconf, m.n_rows());
            for head in 0..m.n_rows() {
                assert_eq!(
                    run_with_switch_at(&m, minconf, head),
                    expected,
                    "minconf={minconf} head={head}"
                );
            }
        }
    }

    /// All-bitmap execution (switch before any row) equals the full scan —
    /// Phase 2 alone must find everything.
    #[test]
    fn pure_bitmap_run_matches() {
        let m = fig2();
        let rules = run_with_switch_at(&m, 0.8, 0);
        assert_eq!(
            rules.iter().map(|r| (r.lhs, r.rhs)).collect::<Vec<_>>(),
            vec![(0, 1), (2, 4)]
        );
    }

    #[test]
    fn tail_bitmaps_skip_done_and_inactive() {
        let mut active = vec![true; 3];
        active[0] = false;
        let mut done = vec![false; 3];
        done[1] = true;
        let rows: Vec<Vec<ColumnId>> = vec![vec![0, 1, 2], vec![0, 2]];
        let tail: Vec<&[ColumnId]> = rows.iter().map(Vec::as_slice).collect();
        let bm = build_tail_bitmaps(&tail, &active, &done);
        assert_eq!(bm.count_ones(0), 0, "inactive column gets no bitmap");
        assert_eq!(bm.count_ones(1), 0, "done column gets no bitmap");
        assert_eq!(bm.count_ones(2), 2);
    }
}
