//! Rule types produced by the miners.

use dmc_matrix::ColumnId;
use std::fmt;

/// An implication rule `lhs ⇒ rhs` with its exact counts.
///
/// `confidence() = hits / lhs_ones`; miners only emit rules whose
/// confidence meets the configured threshold, but the counts are kept so
/// downstream consumers can re-rank or re-filter without another scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ImplicationRule {
    pub lhs: ColumnId,
    pub rhs: ColumnId,
    /// Rows where both columns are 1.
    pub hits: u32,
    /// `|S_lhs|`.
    pub lhs_ones: u32,
    /// `|S_rhs|`.
    pub rhs_ones: u32,
}

impl ImplicationRule {
    /// `hits / lhs_ones` (0 for an empty LHS column).
    #[must_use]
    pub fn confidence(&self) -> f64 {
        if self.lhs_ones == 0 {
            0.0
        } else {
            f64::from(self.hits) / f64::from(self.lhs_ones)
        }
    }

    /// Misses of the LHS against the RHS: `lhs_ones − hits`.
    #[must_use]
    pub fn misses(&self) -> u32 {
        self.lhs_ones - self.hits
    }

    /// The reverse rule `rhs ⇒ lhs` (same hits, swapped roles).
    #[must_use]
    pub fn reversed(&self) -> Self {
        Self {
            lhs: self.rhs,
            rhs: self.lhs,
            hits: self.hits,
            lhs_ones: self.rhs_ones,
            rhs_ones: self.lhs_ones,
        }
    }
}

impl fmt::Display for ImplicationRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{} => c{} (conf {}/{} = {:.3})",
            self.lhs,
            self.rhs,
            self.hits,
            self.lhs_ones,
            self.confidence()
        )
    }
}

/// A similarity rule `a ≃ b` with its exact counts. Stored with
/// `a < b` canonically (fewer ones first, ties by id).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimilarityRule {
    pub a: ColumnId,
    pub b: ColumnId,
    /// Rows where both columns are 1.
    pub hits: u32,
    /// `|S_a|`.
    pub a_ones: u32,
    /// `|S_b|`.
    pub b_ones: u32,
}

impl SimilarityRule {
    /// Jaccard similarity `hits / |S_a ∪ S_b|` (0 for an empty union).
    #[must_use]
    pub fn similarity(&self) -> f64 {
        let union = self.union();
        if union == 0 {
            0.0
        } else {
            f64::from(self.hits) / f64::from(union)
        }
    }

    /// `|S_a ∪ S_b|`.
    #[must_use]
    pub fn union(&self) -> u32 {
        self.a_ones + self.b_ones - self.hits
    }
}

impl fmt::Display for SimilarityRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{} ~ c{} (sim {}/{} = {:.3})",
            self.a,
            self.b,
            self.hits,
            self.union(),
            self.similarity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_and_misses() {
        let r = ImplicationRule {
            lhs: 3,
            rhs: 7,
            hits: 17,
            lhs_ones: 20,
            rhs_ones: 30,
        };
        assert!((r.confidence() - 0.85).abs() < 1e-12);
        assert_eq!(r.misses(), 3);
    }

    #[test]
    fn zero_lhs_confidence_is_zero() {
        let r = ImplicationRule {
            lhs: 0,
            rhs: 1,
            hits: 0,
            lhs_ones: 0,
            rhs_ones: 5,
        };
        assert_eq!(r.confidence(), 0.0);
    }

    #[test]
    fn reversed_swaps_roles() {
        let r = ImplicationRule {
            lhs: 1,
            rhs: 2,
            hits: 4,
            lhs_ones: 5,
            rhs_ones: 8,
        };
        let rev = r.reversed();
        assert_eq!(rev.lhs, 2);
        assert_eq!(rev.rhs, 1);
        assert_eq!(rev.lhs_ones, 8);
        assert!((rev.confidence() - 0.5).abs() < 1e-12);
        assert_eq!(rev.reversed(), r);
    }

    #[test]
    fn similarity_math() {
        let s = SimilarityRule {
            a: 1,
            b: 2,
            hits: 3,
            a_ones: 4,
            b_ones: 5,
        };
        assert_eq!(s.union(), 6);
        assert!((s.similarity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        let r = ImplicationRule {
            lhs: 1,
            rhs: 2,
            hits: 4,
            lhs_ones: 5,
            rhs_ones: 8,
        };
        assert_eq!(r.to_string(), "c1 => c2 (conf 4/5 = 0.800)");
        let s = SimilarityRule {
            a: 0,
            b: 9,
            hits: 2,
            a_ones: 2,
            b_ones: 2,
        };
        assert_eq!(s.to_string(), "c0 ~ c9 (sim 2/2 = 1.000)");
    }
}
