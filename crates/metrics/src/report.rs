//! The machine-readable run report.
//!
//! A [`RunReport`] rolls one mining run's trajectory — phase timings,
//! typed event counters, per-stage outcomes, worker aggregates, the
//! DMC-bitmap switch position and spill volume — into a single value that
//! is attached to the driver output and can be rendered as JSON with
//! [`RunReport::to_json`]. All eight drivers (implication/similarity ×
//! in-memory/streamed × sequential/parallel) populate the same schema,
//! identified by [`RUN_REPORT_SCHEMA`].
//!
//! The report is self-checking: [`RunReport::reconciles`] verifies the
//! §6-style accounting identities (admitted = deleted + emitted per stage,
//! stage sums = run totals, kept rules = rendered rules, switch position
//! within the scanned row range), which the proptest suite exercises on
//! random matrices and CI re-checks on the emitted JSON.

use crate::json::JsonWriter;
use crate::memory::CounterMemory;
use crate::tally::ScanTally;
use crate::timer::PhaseReport;
use crate::worker::WorkerReport;

/// Schema identifier embedded in every JSON report. v2 added the `io`
/// section (spill frame/retry/corruption counters); v3 added
/// `wall_seconds` (driver-measured end-to-end wall clock); v4 added the
/// per-worker `blocks_processed` / `blocks_stolen` counters of the
/// work-assisting block scheduler; v5 added the `serve` and `ingest`
/// sections (null for plain batch runs) reported by long-lived engines;
/// v6 added the `shard` section (null for single-process runs) carrying
/// the per-shard column ranges, rule counts, counter fingerprints and
/// counters of a multi-process `dmc shard` merge; v7 added the
/// `compaction` section (null unless a compaction stage ran) carrying the
/// input/base rule counts, the compaction ratio and the boost histogram
/// of the irredundant rule base; v8 added the `telemetry` section (null
/// unless live telemetry was captured) summarizing the run's registry —
/// named counters plus per-histogram count/p50/p90/p99/max — reconciled
/// against the `serve` section's request counter.
pub const RUN_REPORT_SCHEMA: &str = "dmc.run_report.v8";

/// Cumulative incremental-ingest counters of a long-lived engine. `None`
/// in the run report until the engine has ingested at least one batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Ingest calls (row batches) applied since the mine.
    pub batches: u64,
    /// Rows appended across all batches.
    pub rows_ingested: u64,
    /// Tracked-pair hit counters bumped by batch co-occurrences.
    pub pairs_bumped: u64,
    /// Untracked batch-co-occurring pairs recounted from the postings.
    pub pairs_recounted: u64,
    /// Recounted pairs admitted to the rule set.
    pub rules_born: u64,
    /// Tracked pairs pruned because their budget was exceeded.
    pub rules_died: u64,
}

/// Request-serving counters of a rule-serving daemon. `None` in the run
/// report unless a serving layer attaches them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Client connections accepted.
    pub connections: u64,
    /// Requests answered (including error responses).
    pub requests: u64,
    /// Requests answered with an error response.
    pub errors: u64,
}

/// Spill I/O counters for one out-of-core run: how many frames crossed
/// the disk boundary, how often transient faults were retried, and how
/// many frames the integrity checks rejected. `None` in the run report
/// for in-memory runs (no spill).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoReport {
    /// Row frames written to the spill during the pre-scan.
    pub frames_written: u64,
    /// Row frames decoded across all replays.
    pub frames_read: u64,
    /// Full spill replays (one per counting stage).
    pub replays: u64,
    /// Write calls retried after a transient failure.
    pub write_retries: u64,
    /// Read calls retried after a transient failure.
    pub read_retries: u64,
    /// Frames rejected by the checksum/framing guards.
    pub corrupt_frames: u64,
}

/// One shard's manifest entry inside a merged (multi-process) run report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard index (0-based, dense).
    pub index: usize,
    /// First LHS column owned by the shard (inclusive).
    pub col_lo: u32,
    /// One past the last LHS column owned by the shard.
    pub col_hi: u32,
    /// Rules the shard emitted (including its reverse rules).
    pub rules: u64,
    /// CRC32 counter fingerprint over the shard's header and rule bytes.
    pub fingerprint: u32,
    /// The shard worker's run-level event counters.
    pub counters: ScanTally,
}

/// The shard section of a merged run report: one entry per worker, in
/// shard order. `None` for single-process runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Number of shards the column range was split into.
    pub n_shards: usize,
    /// Per-shard manifest entries, ordered by shard index.
    pub shards: Vec<ShardSummary>,
}

/// Number of buckets in [`CompactionReport::boost_hist`].
pub const BOOST_HIST_BUCKETS: usize = 6;

/// The compaction section of a run report: how far the post-mining
/// compaction stage shrank the rule set, and the confidence-boost
/// distribution of the surviving base. `None` unless a compaction stage
/// ran.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CompactionReport {
    /// Rules fed into compaction (reverse rules included).
    pub rules_in: u64,
    /// Rules in the irredundant base (always ≤ `rules_in`; the dropped
    /// rules are reconstructed exactly by expansion).
    pub rules_in_base: u64,
    /// `rules_in_base / rules_in` (1.0 for an empty input).
    pub ratio: f64,
    /// Histogram of base-rule boosts: `< 1.0`, `[1.0, 1.05)`,
    /// `[1.05, 1.25)`, `[1.25, 2.0)`, `[2.0, 4.0)`, `≥ 4.0`. Sums to
    /// `rules_in_base`.
    pub boost_hist: [u64; BOOST_HIST_BUCKETS],
}

impl Default for CompactionReport {
    fn default() -> Self {
        Self {
            rules_in: 0,
            rules_in_base: 0,
            ratio: 1.0,
            boost_hist: [0; BOOST_HIST_BUCKETS],
        }
    }
}

/// One latency histogram's summary inside the run report's `telemetry`
/// section.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryHistogram {
    /// The instrument's dotted registry name (`"serve.request.rule"`).
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Median latency in microseconds.
    pub p50_us: u64,
    /// 90th-percentile latency in microseconds.
    pub p90_us: u64,
    /// 99th-percentile latency in microseconds.
    pub p99_us: u64,
    /// Largest observed latency in microseconds.
    pub max_us: u64,
}

/// The telemetry section of a run report: a final summary of the live
/// registry (counters and latency histograms) captured when the run shut
/// down. `None` unless a telemetry-aware surface (the serve daemon, the
/// shard coordinator) attached it. Gauges are deliberately absent — they
/// are instantaneous values and carry no information once the run is over.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Per-histogram summaries, sorted by name.
    pub histograms: Vec<TelemetryHistogram>,
    /// Span events the bounded ring buffer evicted during the run.
    pub events_dropped: u64,
}

impl TelemetryReport {
    /// Summarizes a live registry snapshot into the report form.
    #[must_use]
    pub fn from_snapshot(snapshot: &crate::telemetry::RegistrySnapshot) -> Self {
        Self {
            counters: snapshot.counters.clone(),
            histograms: snapshot
                .histograms
                .iter()
                .map(|(name, h)| TelemetryHistogram {
                    name: name.clone(),
                    count: h.count,
                    p50_us: h.quantile_us(0.50),
                    p90_us: h.quantile_us(0.90),
                    p99_us: h.quantile_us(0.99),
                    max_us: h.max_us,
                })
                .collect(),
            events_dropped: crate::telemetry::events_dropped(),
        }
    }

    /// Total observations across histograms whose name starts with
    /// `prefix`.
    #[must_use]
    pub fn count_with_prefix(&self, prefix: &str) -> u64 {
        self.histograms
            .iter()
            .filter(|h| h.name.starts_with(prefix))
            .map(|h| h.count)
            .sum()
    }
}

/// Outcome of one driver stage (the 100%-rule stage or the sub-100% stage).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageReport {
    /// Event counters summed over the stage's scans (all workers).
    pub tally: ScanTally,
    /// Rules from this stage that survived driver-level filtering.
    pub rules_kept: u64,
    /// Largest candidate count observed in any single counter array.
    pub peak_candidates: usize,
}

impl StageReport {
    /// A stage report from a finished scan's tally.
    #[must_use]
    pub fn new(tally: ScanTally, rules_kept: u64, peak_candidates: usize) -> Self {
        Self {
            tally,
            rules_kept,
            peak_candidates,
        }
    }
}

/// Per-worker aggregate for parallel drivers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerSummary {
    /// Worker index (0-based).
    pub worker: usize,
    /// Total busy time across the worker's phases, in seconds.
    pub busy_seconds: f64,
    /// Event counters summed over the worker's stages.
    pub tally: ScanTally,
    /// Peak candidate count in the worker's counter arrays (zero under
    /// the block scheduler, which shares one counter array).
    pub peak_candidates: usize,
    /// Row position where this worker observed the bitmap switch.
    pub switch_at: Option<usize>,
    /// Row blocks this worker claimed and aggregated.
    pub blocks_processed: u64,
    /// Claimed blocks whose preferred owner was another worker.
    pub blocks_stolen: u64,
}

impl From<&WorkerReport> for WorkerSummary {
    fn from(r: &WorkerReport) -> Self {
        Self {
            worker: r.worker,
            busy_seconds: r.phases.total().as_secs_f64(),
            tally: r.tally,
            peak_candidates: r.memory.peak_candidates(),
            switch_at: r.switch_at,
            blocks_processed: r.blocks_processed,
            blocks_stolen: r.blocks_stolen,
        }
    }
}

/// The full trajectory of one mining run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// `"implication"` or `"similarity"`.
    pub algorithm: &'static str,
    /// `"in-memory"` or `"streamed"`.
    pub mode: &'static str,
    /// Worker threads used (0 for the sequential drivers).
    pub threads: usize,
    /// Rows in the input (after the pre-scan, for streamed runs).
    pub rows: usize,
    /// Columns in the input.
    pub cols: usize,
    /// The confidence / similarity threshold mined at.
    pub threshold: f64,
    /// Rules in the final output.
    pub rules: usize,
    /// Event counters summed over every stage and worker.
    pub counters: ScanTally,
    /// The 100%-rule stage, when the driver ran it.
    pub hundred: Option<StageReport>,
    /// The sub-100% counting stage, when the driver ran it.
    pub sub: Option<StageReport>,
    /// Reversed implication rules appended by `emit_reverse`.
    pub reverse_rules: u64,
    /// Wall-clock phase timings `(name, seconds)`, first-seen order.
    pub phases: Vec<(&'static str, f64)>,
    /// End-to-end wall clock of the driver invocation in seconds, measured
    /// by the driver itself (entry to exit). Covers the gaps between named
    /// phases, so `wall_seconds >=` the phase sum up to timer resolution;
    /// benchmark harnesses should read this instead of re-measuring around
    /// the call.
    pub wall_seconds: f64,
    /// Peak candidate count across all counter arrays.
    pub peak_candidates: usize,
    /// Peak counter-array footprint in bytes (paper's memory model).
    pub peak_counter_bytes: usize,
    /// Global row position of the DMC-bitmap switch, if it happened
    /// (per-worker positions live in [`RunReport::workers`]).
    pub bitmap_switch_at: Option<usize>,
    /// Bytes written to the out-of-core spill (streamed runs).
    pub spill_bytes: u64,
    /// Spill I/O counters (streamed runs; `None` in-memory).
    pub io: Option<IoReport>,
    /// Per-worker aggregates (empty for sequential runs).
    pub workers: Vec<WorkerSummary>,
    /// Request-serving counters (`None` for batch runs; a serving layer
    /// attaches them before rendering).
    pub serve: Option<ServeStats>,
    /// Cumulative incremental-ingest counters (`None` for batch runs and
    /// for engines that have not ingested yet).
    pub ingest: Option<IngestStats>,
    /// Per-shard manifest entries of a multi-process merge (`None` for
    /// single-process runs).
    pub shard: Option<ShardReport>,
    /// Rule-base compaction outcome (`None` unless a compaction stage
    /// ran).
    pub compaction: Option<CompactionReport>,
    /// Final live-telemetry summary (`None` unless a telemetry-aware
    /// surface attached it).
    pub telemetry: Option<TelemetryReport>,
}

impl RunReport {
    /// Sum of the named phase timings in seconds (a lower bound on
    /// [`RunReport::wall_seconds`]).
    #[must_use]
    pub fn phase_total_seconds(&self) -> f64 {
        self.phases.iter().map(|(_, s)| s).sum()
    }

    /// Seconds spent in the named phase (zero if the phase never ran).
    #[must_use]
    pub fn phase_seconds(&self, name: &str) -> f64 {
        self.phases
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |(_, s)| *s)
    }

    /// Renders the report as pretty-printed JSON with a fixed key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.object();
        w.string("schema", RUN_REPORT_SCHEMA);
        w.string("algorithm", self.algorithm);
        w.string("mode", self.mode);
        w.uint("threads", self.threads as u64);
        w.uint("rows", self.rows as u64);
        w.uint("cols", self.cols as u64);
        w.float("threshold", self.threshold);
        w.uint("rules", self.rules as u64);
        write_tally(&mut w, "counters", &self.counters);
        match &self.hundred {
            Some(stage) => write_stage(&mut w, "hundred_stage", stage),
            None => w.null("hundred_stage"),
        }
        match &self.sub {
            Some(stage) => write_stage(&mut w, "sub_stage", stage),
            None => w.null("sub_stage"),
        }
        w.uint("reverse_rules", self.reverse_rules);
        w.array_key("phases");
        for (name, seconds) in &self.phases {
            w.object();
            w.string("phase", name);
            w.float("seconds", *seconds);
            w.end_object();
        }
        w.end_array();
        w.float("wall_seconds", self.wall_seconds);
        w.uint("peak_candidates", self.peak_candidates as u64);
        w.uint("peak_counter_bytes", self.peak_counter_bytes as u64);
        w.opt_uint("bitmap_switch_at", self.bitmap_switch_at.map(|v| v as u64));
        w.uint("spill_bytes", self.spill_bytes);
        match &self.io {
            Some(io) => {
                w.object_key("io");
                w.uint("frames_written", io.frames_written);
                w.uint("frames_read", io.frames_read);
                w.uint("replays", io.replays);
                w.uint("write_retries", io.write_retries);
                w.uint("read_retries", io.read_retries);
                w.uint("corrupt_frames", io.corrupt_frames);
                w.end_object();
            }
            None => w.null("io"),
        }
        w.array_key("workers");
        for worker in &self.workers {
            w.object();
            w.uint("worker", worker.worker as u64);
            w.float("busy_seconds", worker.busy_seconds);
            write_tally(&mut w, "counters", &worker.tally);
            w.uint("peak_candidates", worker.peak_candidates as u64);
            w.opt_uint("switch_at", worker.switch_at.map(|v| v as u64));
            w.uint("blocks_processed", worker.blocks_processed);
            w.uint("blocks_stolen", worker.blocks_stolen);
            w.end_object();
        }
        w.end_array();
        match &self.serve {
            Some(s) => {
                w.object_key("serve");
                w.uint("connections", s.connections);
                w.uint("requests", s.requests);
                w.uint("errors", s.errors);
                w.end_object();
            }
            None => w.null("serve"),
        }
        match &self.ingest {
            Some(i) => {
                w.object_key("ingest");
                w.uint("batches", i.batches);
                w.uint("rows_ingested", i.rows_ingested);
                w.uint("pairs_bumped", i.pairs_bumped);
                w.uint("pairs_recounted", i.pairs_recounted);
                w.uint("rules_born", i.rules_born);
                w.uint("rules_died", i.rules_died);
                w.end_object();
            }
            None => w.null("ingest"),
        }
        match &self.shard {
            Some(s) => {
                w.object_key("shard");
                w.uint("n_shards", s.n_shards as u64);
                w.array_key("shards");
                for entry in &s.shards {
                    w.object();
                    w.uint("index", entry.index as u64);
                    w.uint("col_lo", u64::from(entry.col_lo));
                    w.uint("col_hi", u64::from(entry.col_hi));
                    w.uint("rules", entry.rules);
                    w.uint("fingerprint", u64::from(entry.fingerprint));
                    write_tally(&mut w, "counters", &entry.counters);
                    w.end_object();
                }
                w.end_array();
                w.end_object();
            }
            None => w.null("shard"),
        }
        match &self.compaction {
            Some(c) => {
                w.object_key("compaction");
                w.uint("rules_in", c.rules_in);
                w.uint("rules_in_base", c.rules_in_base);
                w.float("ratio", c.ratio);
                w.array_key("boost_hist");
                for &bucket in &c.boost_hist {
                    w.item_uint(bucket);
                }
                w.end_array();
                w.end_object();
            }
            None => w.null("compaction"),
        }
        match &self.telemetry {
            Some(t) => {
                w.object_key("telemetry");
                w.object_key("counters");
                for (name, v) in &t.counters {
                    w.uint(name, *v);
                }
                w.end_object();
                w.array_key("histograms");
                for h in &t.histograms {
                    w.object();
                    w.string("name", &h.name);
                    w.uint("count", h.count);
                    w.uint("p50_us", h.p50_us);
                    w.uint("p90_us", h.p90_us);
                    w.uint("p99_us", h.p99_us);
                    w.uint("max_us", h.max_us);
                    w.end_object();
                }
                w.end_array();
                w.uint("events_dropped", t.events_dropped);
                w.end_object();
            }
            None => w.null("telemetry"),
        }
        w.end_object();
        w.finish()
    }

    /// Checks the report's accounting identities.
    ///
    /// * each stage tally reconciles (admitted = deleted + emitted),
    /// * run counters equal the sum of the stage tallies,
    /// * rendered rules equal kept 100%-stage rules + kept sub-stage rules
    ///   + reversed rules,
    /// * worker tallies (when present) sum to the run counters,
    /// * the switch position and per-stage rows stay within the scanned
    ///   row range.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        let mut stage_sum = ScanTally::new();
        let mut kept = self.reverse_rules;
        for stage in self.hundred.iter().chain(self.sub.iter()) {
            if !stage.tally.reconciles() {
                return false;
            }
            stage_sum.merge(&stage.tally);
            kept += stage.rules_kept;
        }
        if stage_sum != self.counters || kept != self.rules as u64 {
            return false;
        }
        if !self.workers.is_empty() {
            let mut worker_sum = ScanTally::new();
            for worker in &self.workers {
                worker_sum.merge(&worker.tally);
                if worker.switch_at.is_some_and(|at| at > self.rows) {
                    return false;
                }
            }
            if worker_sum != self.counters {
                return false;
            }
        }
        if self.bitmap_switch_at.is_some_and(|at| at > self.rows) {
            return false;
        }
        // The io section (streamed runs) has its own identities: every row
        // became exactly one spilled frame, every replay decoded every
        // frame, and a report from a *successful* run carries no corrupt
        // frames (corruption aborts the run before a report exists).
        if let Some(io) = &self.io {
            if io.frames_written != self.rows as u64
                || io.frames_read != io.frames_written * io.replays
                || io.corrupt_frames != 0
            {
                return false;
            }
        }
        // The v5 sections have their own identities: a daemon cannot have
        // erred on more requests than it answered, and an ingesting engine
        // cannot have birthed more rules than it recounted pairs (a birth
        // is an admission from a recount) nor ingested rows without a
        // batch.
        if let Some(s) = &self.serve {
            if s.errors > s.requests {
                return false;
            }
        }
        if let Some(i) = &self.ingest {
            if i.rules_born > i.pairs_recounted || (i.batches == 0 && i.rows_ingested > 0) {
                return false;
            }
        }
        // The v6 shard section: entries are dense by index, every shard's
        // own tally reconciles, the column ranges tile `[0, cols)` exactly
        // (no gap, no overlap), and the per-shard counters and rule counts
        // sum to the merged totals.
        if let Some(s) = &self.shard {
            if s.n_shards != s.shards.len() || s.shards.is_empty() {
                return false;
            }
            let mut shard_sum = ScanTally::new();
            let mut shard_rules = 0u64;
            let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(s.shards.len());
            for (i, entry) in s.shards.iter().enumerate() {
                if entry.index != i || entry.col_lo > entry.col_hi || !entry.counters.reconciles() {
                    return false;
                }
                shard_sum.merge(&entry.counters);
                shard_rules += entry.rules;
                ranges.push((entry.col_lo, entry.col_hi));
            }
            ranges.sort_unstable();
            if ranges.first().map(|r| r.0) != Some(0)
                || ranges.last().map(|r| r.1) != Some(self.cols as u32)
                || ranges.windows(2).any(|w| w[0].1 != w[1].0)
            {
                return false;
            }
            if shard_sum != self.counters || shard_rules != self.rules as u64 {
                return false;
            }
        }
        // The v7 compaction section: the base can never exceed the input
        // (every drop is a provable redundancy), the boost histogram
        // accounts for every base rule exactly once, and the recorded
        // ratio matches the counts (1.0 by convention for empty input).
        if let Some(c) = &self.compaction {
            if c.rules_in_base > c.rules_in {
                return false;
            }
            if c.boost_hist.iter().sum::<u64>() != c.rules_in_base {
                return false;
            }
            let expected = if c.rules_in == 0 {
                1.0
            } else {
                c.rules_in_base as f64 / c.rules_in as f64
            };
            if (c.ratio - expected).abs() > 1e-9 {
                return false;
            }
        }
        // The v8 telemetry section: quantiles are monotone and bounded by
        // the recorded max (the bucket scheme guarantees it, so a report
        // violating it was tampered with), an empty histogram has all-zero
        // latencies, and — because the daemon times *every* received frame
        // into exactly one `serve.request.*` histogram (parse failures and
        // shutdown included) — the per-type request counts must sum to the
        // serve section's request counter exactly.
        if let Some(t) = &self.telemetry {
            for h in &t.histograms {
                if h.p50_us > h.p90_us || h.p90_us > h.p99_us || h.p99_us > h.max_us {
                    return false;
                }
                if h.count == 0 && h.max_us != 0 {
                    return false;
                }
            }
            if let Some(s) = &self.serve {
                if t.count_with_prefix("serve.request.") != s.requests {
                    return false;
                }
            }
        }
        // Each stage scans every row once per participating worker.
        let scans = self.threads.max(1) as u64;
        let per_stage_cap = self.rows as u64 * scans;
        self.hundred
            .iter()
            .chain(self.sub.iter())
            .all(|stage| stage.tally.rows_scanned <= per_stage_cap)
    }
}

fn write_tally(w: &mut JsonWriter, key: &str, tally: &ScanTally) {
    w.object_key(key);
    w.uint("rows_scanned", tally.rows_scanned);
    w.uint("candidates_admitted", tally.candidates_admitted);
    w.uint("candidates_deleted", tally.candidates_deleted);
    w.uint("misses_counted", tally.misses_counted);
    w.uint("rules_emitted", tally.rules_emitted);
    w.end_object();
}

fn write_stage(w: &mut JsonWriter, key: &str, stage: &StageReport) {
    w.object_key(key);
    write_tally(w, "counters", &stage.tally);
    w.uint("rules_kept", stage.rules_kept);
    w.uint("peak_candidates", stage.peak_candidates as u64);
    w.end_object();
}

/// Assembles a [`RunReport`] as a driver run progresses.
#[derive(Debug)]
pub struct ReportBuilder {
    report: RunReport,
}

impl ReportBuilder {
    /// Starts a report for one driver invocation.
    #[must_use]
    pub fn new(
        algorithm: &'static str,
        mode: &'static str,
        threads: usize,
        threshold: f64,
    ) -> Self {
        Self {
            report: RunReport {
                algorithm,
                mode,
                threads,
                threshold,
                ..RunReport::default()
            },
        }
    }

    /// Records the input dimensions.
    pub fn dims(&mut self, rows: usize, cols: usize) -> &mut Self {
        self.report.rows = rows;
        self.report.cols = cols;
        self
    }

    /// Records the 100%-rule stage outcome.
    pub fn hundred_stage(&mut self, stage: StageReport) -> &mut Self {
        self.report.hundred = Some(stage);
        self
    }

    /// Records the sub-100% counting stage outcome.
    pub fn sub_stage(&mut self, stage: StageReport) -> &mut Self {
        self.report.sub = Some(stage);
        self
    }

    /// Records how many reversed rules the driver appended.
    pub fn reverse_rules(&mut self, n: u64) -> &mut Self {
        self.report.reverse_rules = n;
        self
    }

    /// Records bytes written to the out-of-core spill.
    pub fn spill_bytes(&mut self, bytes: u64) -> &mut Self {
        self.report.spill_bytes = bytes;
        self
    }

    /// Records the spill I/O counters (streamed runs).
    pub fn io_counters(&mut self, io: IoReport) -> &mut Self {
        self.report.io = Some(io);
        self
    }

    /// Records the driver's end-to-end wall clock. When never called,
    /// [`ReportBuilder::finish`] falls back to the sum of the named phases.
    pub fn wall(&mut self, elapsed: std::time::Duration) -> &mut Self {
        self.report.wall_seconds = elapsed.as_secs_f64();
        self
    }

    /// Adds one worker's aggregate.
    pub fn push_worker(&mut self, worker: WorkerSummary) -> &mut Self {
        self.report.workers.push(worker);
        self
    }

    /// Finalizes the report from the run-level aggregates.
    #[must_use]
    pub fn finish(
        mut self,
        rules: usize,
        phases: &PhaseReport,
        memory: &CounterMemory,
        bitmap_switch_at: Option<usize>,
    ) -> RunReport {
        self.report.rules = rules;
        self.report.phases = phases
            .phases()
            .iter()
            .map(|(name, d)| (*name, d.as_secs_f64()))
            .collect();
        if self.report.wall_seconds == 0.0 {
            self.report.wall_seconds = phases.total().as_secs_f64();
        }
        self.report.peak_candidates = memory.peak_candidates();
        self.report.peak_counter_bytes = memory.peak_bytes();
        self.report.bitmap_switch_at = bitmap_switch_at;
        let mut counters = ScanTally::new();
        for stage in self.report.hundred.iter().chain(self.report.sub.iter()) {
            counters.merge(&stage.tally);
        }
        self.report.counters = counters;
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use std::time::Duration;

    fn sample_tally(admit: u64, delete: u64, emit: u64) -> ScanTally {
        ScanTally {
            rows_scanned: 10,
            candidates_admitted: admit,
            candidates_deleted: delete,
            misses_counted: 4,
            rules_emitted: emit,
        }
    }

    fn sample_report() -> RunReport {
        let mut timer = crate::timer::PhaseTimer::new();
        timer.record("pre-scan", Duration::from_millis(2));
        timer.record("<100% rules", Duration::from_millis(5));
        let phases = timer.report();
        let mut memory = CounterMemory::new();
        memory.add_list();
        memory.add_candidates(7);

        let mut builder = ReportBuilder::new("implication", "in-memory", 0, 0.9);
        builder
            .dims(10, 5)
            .hundred_stage(StageReport::new(sample_tally(3, 1, 2), 2, 3))
            .sub_stage(StageReport::new(sample_tally(6, 2, 4), 3, 7))
            .reverse_rules(1);
        builder.finish(6, &phases, &memory, Some(8))
    }

    #[test]
    fn builder_sums_stage_counters() {
        let report = sample_report();
        assert_eq!(report.counters.candidates_admitted, 9);
        assert_eq!(report.counters.rules_emitted, 6);
        assert_eq!(report.peak_candidates, 7);
        assert_eq!(report.phases.len(), 2);
        assert!(report.reconciles());
    }

    #[test]
    fn wall_seconds_defaults_to_phase_total_and_accepts_override() {
        let report = sample_report();
        assert!((report.wall_seconds - 0.007).abs() < 1e-9);
        assert!((report.phase_total_seconds() - 0.007).abs() < 1e-9);
        assert!((report.phase_seconds("pre-scan") - 0.002).abs() < 1e-9);
        assert_eq!(report.phase_seconds("absent"), 0.0);

        let mut timer = crate::timer::PhaseTimer::new();
        timer.record("pre-scan", Duration::from_millis(2));
        let mut builder = ReportBuilder::new("implication", "in-memory", 0, 0.9);
        builder.wall(Duration::from_millis(10));
        let report = builder.finish(0, &timer.report(), &CounterMemory::new(), None);
        assert!((report.wall_seconds - 0.010).abs() < 1e-9);

        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert_eq!(
            v.get("wall_seconds").and_then(JsonValue::as_f64),
            Some(0.01)
        );
    }

    #[test]
    fn reconcile_catches_rule_mismatch() {
        let mut report = sample_report();
        report.rules += 1;
        assert!(!report.reconciles());
    }

    #[test]
    fn reconcile_catches_switch_past_rows() {
        let mut report = sample_report();
        report.bitmap_switch_at = Some(report.rows + 1);
        assert!(!report.reconciles());
    }

    fn with_io(mut report: RunReport, io: IoReport) -> RunReport {
        report.io = Some(io);
        report
    }

    fn good_io(rows: u64) -> IoReport {
        IoReport {
            frames_written: rows,
            frames_read: rows * 2,
            replays: 2,
            write_retries: 1,
            read_retries: 3,
            corrupt_frames: 0,
        }
    }

    #[test]
    fn reconcile_accepts_consistent_io_section() {
        let report = sample_report();
        let rows = report.rows as u64;
        assert!(with_io(report, good_io(rows)).reconciles());
    }

    #[test]
    fn reconcile_catches_io_frame_mismatch() {
        let report = sample_report();
        let rows = report.rows as u64;
        let mut io = good_io(rows);
        io.frames_written += 1;
        assert!(!with_io(report.clone(), io).reconciles());

        let mut io = good_io(rows);
        io.frames_read += 1;
        assert!(!with_io(report.clone(), io).reconciles());

        let mut io = good_io(rows);
        io.corrupt_frames = 1;
        assert!(
            !with_io(report, io).reconciles(),
            "a successful run never reports corrupt frames"
        );
    }

    #[test]
    fn io_section_renders_and_defaults_to_null() {
        let report = sample_report();
        let text = report.to_json();
        let v = JsonValue::parse(&text).expect("report JSON parses");
        assert!(
            matches!(v.get("io"), Some(JsonValue::Null)),
            "in-memory runs carry io: null"
        );

        let rows = report.rows as u64;
        let with = with_io(report, good_io(rows));
        let v = JsonValue::parse(&with.to_json()).expect("report JSON parses");
        let io = v.get("io").expect("io object present");
        assert_eq!(
            io.get("frames_written").and_then(JsonValue::as_u64),
            Some(rows)
        );
        assert_eq!(io.get("replays").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            io.get("corrupt_frames").and_then(JsonValue::as_u64),
            Some(0)
        );
    }

    #[test]
    fn reconcile_catches_worker_sum_mismatch() {
        let mut report = sample_report();
        report.workers.push(WorkerSummary {
            worker: 0,
            busy_seconds: 0.1,
            tally: sample_tally(1, 0, 1),
            peak_candidates: 2,
            switch_at: None,
            blocks_processed: 1,
            blocks_stolen: 0,
        });
        assert!(!report.reconciles());
    }

    #[test]
    fn serve_and_ingest_sections_render_and_reconcile() {
        let report = sample_report();
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert!(matches!(v.get("serve"), Some(JsonValue::Null)));
        assert!(matches!(v.get("ingest"), Some(JsonValue::Null)));

        let mut report = sample_report();
        report.serve = Some(ServeStats {
            connections: 3,
            requests: 41,
            errors: 2,
        });
        report.ingest = Some(IngestStats {
            batches: 4,
            rows_ingested: 2000,
            pairs_bumped: 900,
            pairs_recounted: 120,
            rules_born: 5,
            rules_died: 3,
        });
        assert!(report.reconciles());
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert_eq!(
            v.get("serve")
                .and_then(|s| s.get("requests"))
                .and_then(JsonValue::as_u64),
            Some(41)
        );
        assert_eq!(
            v.get("ingest")
                .and_then(|i| i.get("rows_ingested"))
                .and_then(JsonValue::as_u64),
            Some(2000)
        );

        report.serve.as_mut().unwrap().errors = 99;
        assert!(!report.reconciles(), "errors > requests is impossible");
        report.serve.as_mut().unwrap().errors = 2;
        report.ingest.as_mut().unwrap().rules_born = 1000;
        assert!(!report.reconciles(), "births come from recounts");
    }

    /// Builds a consistent shard section for `sample_report`: two shards
    /// splitting the run counters and rules.
    fn sample_shard_section(report: &RunReport) -> ShardReport {
        let mut left = report.counters;
        left.rows_scanned = 10;
        left.candidates_admitted = 5;
        left.candidates_deleted = 2;
        left.rules_emitted = 3;
        let mut right = report.counters;
        right.rows_scanned = report.counters.rows_scanned - 10;
        right.candidates_admitted = report.counters.candidates_admitted - 5;
        right.candidates_deleted = report.counters.candidates_deleted - 2;
        right.rules_emitted = report.counters.rules_emitted - 3;
        right.misses_counted = 0;
        ShardReport {
            n_shards: 2,
            shards: vec![
                ShardSummary {
                    index: 0,
                    col_lo: 0,
                    col_hi: 2,
                    rules: 2,
                    fingerprint: 0xDEAD_BEEF,
                    counters: left,
                },
                ShardSummary {
                    index: 1,
                    col_lo: 2,
                    col_hi: report.cols as u32,
                    rules: report.rules as u64 - 2,
                    fingerprint: 0x1234_5678,
                    counters: right,
                },
            ],
        }
    }

    #[test]
    fn shard_section_renders_and_reconciles() {
        let report = sample_report();
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert!(
            matches!(v.get("shard"), Some(JsonValue::Null)),
            "single-process runs carry shard: null"
        );

        let mut report = sample_report();
        report.shard = Some(sample_shard_section(&report));
        assert!(report.reconciles());
        let v = JsonValue::parse(&report.to_json()).unwrap();
        let shard = v.get("shard").expect("shard object present");
        assert_eq!(shard.get("n_shards").and_then(JsonValue::as_u64), Some(2));
        let shards = shard
            .get("shards")
            .and_then(JsonValue::as_array)
            .expect("shards array");
        assert_eq!(shards.len(), 2);
        assert_eq!(
            shards[0].get("fingerprint").and_then(JsonValue::as_u64),
            Some(0xDEAD_BEEF)
        );
    }

    #[test]
    fn shard_reconcile_catches_gap_overlap_and_sum_mismatch() {
        let base = sample_report();

        let mut gap = base.clone();
        let mut section = sample_shard_section(&base);
        section.shards[1].col_lo = 3; // hole between shard 0 and 1
        gap.shard = Some(section);
        assert!(!gap.reconciles(), "range gap must fail");

        let mut overlap = base.clone();
        let mut section = sample_shard_section(&base);
        section.shards[1].col_lo = 1; // overlaps shard 0
        overlap.shard = Some(section);
        assert!(!overlap.reconciles(), "range overlap must fail");

        let mut sum = base.clone();
        let mut section = sample_shard_section(&base);
        section.shards[0].counters.candidates_admitted += 1;
        section.shards[0].counters.rules_emitted += 1;
        sum.shard = Some(section);
        assert!(!sum.reconciles(), "counter sum mismatch must fail");

        let mut rules = base;
        let mut section = sample_shard_section(&rules);
        section.shards[0].rules += 1;
        rules.shard = Some(section);
        assert!(!rules.reconciles(), "rule sum mismatch must fail");
    }

    fn sample_compaction_section() -> CompactionReport {
        CompactionReport {
            rules_in: 10,
            rules_in_base: 4,
            ratio: 0.4,
            boost_hist: [1, 1, 0, 2, 0, 0],
        }
    }

    #[test]
    fn compaction_section_renders_and_reconciles() {
        let report = sample_report();
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert!(
            matches!(v.get("compaction"), Some(JsonValue::Null)),
            "runs without a compaction stage carry compaction: null"
        );

        let mut report = sample_report();
        report.compaction = Some(sample_compaction_section());
        assert!(report.reconciles());
        let v = JsonValue::parse(&report.to_json()).unwrap();
        let section = v.get("compaction").expect("compaction object present");
        assert_eq!(
            section.get("rules_in").and_then(JsonValue::as_u64),
            Some(10)
        );
        assert_eq!(
            section.get("rules_in_base").and_then(JsonValue::as_u64),
            Some(4)
        );
        assert_eq!(section.get("ratio").and_then(JsonValue::as_f64), Some(0.4));
        let hist = section
            .get("boost_hist")
            .and_then(JsonValue::as_array)
            .expect("boost_hist array");
        assert_eq!(hist.len(), BOOST_HIST_BUCKETS);
        let total: u64 = hist.iter().filter_map(JsonValue::as_u64).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn compaction_reconcile_catches_inflation_and_bad_histogram() {
        let base = sample_report();

        let mut grown = base.clone();
        let mut section = sample_compaction_section();
        section.rules_in_base = section.rules_in + 1;
        section.ratio = section.rules_in_base as f64 / section.rules_in as f64;
        section.boost_hist = [section.rules_in_base, 0, 0, 0, 0, 0];
        grown.compaction = Some(section);
        assert!(!grown.reconciles(), "base larger than input must fail");

        let mut hist = base.clone();
        let mut section = sample_compaction_section();
        section.boost_hist[0] += 1;
        hist.compaction = Some(section);
        assert!(!hist.reconciles(), "histogram sum mismatch must fail");

        let mut ratio = base.clone();
        let mut section = sample_compaction_section();
        section.ratio = 0.7;
        ratio.compaction = Some(section);
        assert!(!ratio.reconciles(), "ratio mismatch must fail");

        let mut empty = base;
        empty.compaction = Some(CompactionReport::default());
        assert!(empty.reconciles(), "empty input with ratio 1.0 reconciles");
    }

    fn sample_telemetry_section(requests: u64) -> TelemetryReport {
        TelemetryReport {
            counters: vec![("serve.bytes_in".to_string(), 512)],
            histograms: vec![
                TelemetryHistogram {
                    name: "serve.request.rule".to_string(),
                    count: requests - 1,
                    p50_us: 4,
                    p90_us: 8,
                    p99_us: 15,
                    max_us: 15,
                },
                TelemetryHistogram {
                    name: "serve.request.stats".to_string(),
                    count: 1,
                    p50_us: 9,
                    p90_us: 9,
                    p99_us: 9,
                    max_us: 9,
                },
            ],
            events_dropped: 0,
        }
    }

    #[test]
    fn telemetry_section_renders_and_reconciles() {
        let report = sample_report();
        let v = JsonValue::parse(&report.to_json()).unwrap();
        assert!(
            matches!(v.get("telemetry"), Some(JsonValue::Null)),
            "runs without telemetry carry telemetry: null"
        );

        let mut report = sample_report();
        report.serve = Some(ServeStats {
            connections: 2,
            requests: 7,
            errors: 0,
        });
        report.telemetry = Some(sample_telemetry_section(7));
        assert!(report.reconciles());
        let v = JsonValue::parse(&report.to_json()).unwrap();
        let section = v.get("telemetry").expect("telemetry object present");
        assert_eq!(
            section
                .get("counters")
                .and_then(|c| c.get("serve.bytes_in"))
                .and_then(JsonValue::as_u64),
            Some(512)
        );
        let hists = section
            .get("histograms")
            .and_then(JsonValue::as_array)
            .expect("histograms array");
        assert_eq!(hists.len(), 2);
        assert_eq!(
            hists[0].get("name").and_then(JsonValue::as_str),
            Some("serve.request.rule")
        );
        assert_eq!(hists[0].get("p99_us").and_then(JsonValue::as_u64), Some(15));
    }

    #[test]
    fn telemetry_reconcile_catches_count_and_quantile_violations() {
        let mut base = sample_report();
        base.serve = Some(ServeStats {
            connections: 2,
            requests: 7,
            errors: 0,
        });

        let mut short = base.clone();
        short.telemetry = Some(sample_telemetry_section(6));
        assert!(
            !short.reconciles(),
            "histogram counts must sum to serve.requests"
        );

        let mut order = base.clone();
        let mut section = sample_telemetry_section(7);
        section.histograms[0].p50_us = 100; // above p90
        order.telemetry = Some(section);
        assert!(!order.reconciles(), "non-monotone quantiles must fail");

        let mut over_max = base.clone();
        let mut section = sample_telemetry_section(7);
        section.histograms[1].max_us = section.histograms[1].p99_us - 1;
        over_max.telemetry = Some(section);
        assert!(!over_max.reconciles(), "p99 above max must fail");

        let mut ghost = base;
        let mut section = sample_telemetry_section(7);
        section.histograms[1].count = 0;
        section.histograms[0].count += 1; // keep the sum identity intact
        ghost.telemetry = Some(section);
        assert!(!ghost.reconciles(), "an empty histogram cannot carry a max");
    }

    #[test]
    fn telemetry_from_snapshot_summarizes_registry() {
        let registry = crate::telemetry::Registry::new();
        registry.counter("mine.blocks_claimed").add(3);
        let h = registry.histogram("serve.request.rule");
        h.record_us(10);
        h.record_us(1000);
        let t = TelemetryReport::from_snapshot(&registry.snapshot());
        assert_eq!(t.counters, vec![("mine.blocks_claimed".to_string(), 3)]);
        assert_eq!(t.histograms.len(), 1);
        let hist = &t.histograms[0];
        assert_eq!(hist.count, 2);
        assert_eq!(hist.max_us, 1000);
        assert!(hist.p50_us <= hist.p90_us && hist.p99_us <= hist.max_us);
        assert_eq!(t.count_with_prefix("serve.request."), 2);
        assert_eq!(t.count_with_prefix("absent."), 0);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let report = sample_report();
        let text = report.to_json();
        let v = JsonValue::parse(&text).expect("report JSON parses");
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some(RUN_REPORT_SCHEMA)
        );
        assert_eq!(
            v.get("algorithm").and_then(JsonValue::as_str),
            Some("implication")
        );
        assert_eq!(v.get("rules").and_then(JsonValue::as_u64), Some(6));
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("candidates_admitted"))
                .and_then(JsonValue::as_u64),
            Some(9)
        );
        assert_eq!(
            v.get("hundred_stage")
                .and_then(|s| s.get("rules_kept"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(
            v.get("bitmap_switch_at").and_then(JsonValue::as_u64),
            Some(8)
        );
        let phases = v.get("phases").and_then(JsonValue::as_array).unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(
            v.get("workers")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(0)
        );
    }
}
